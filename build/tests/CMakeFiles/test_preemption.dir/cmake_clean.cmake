file(REMOVE_RECURSE
  "CMakeFiles/test_preemption.dir/test_preemption.cc.o"
  "CMakeFiles/test_preemption.dir/test_preemption.cc.o.d"
  "test_preemption"
  "test_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

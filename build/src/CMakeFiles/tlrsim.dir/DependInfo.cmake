
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/directory.cc" "src/CMakeFiles/tlrsim.dir/coherence/directory.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/coherence/directory.cc.o.d"
  "/root/repo/src/coherence/interconnect.cc" "src/CMakeFiles/tlrsim.dir/coherence/interconnect.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/coherence/interconnect.cc.o.d"
  "/root/repo/src/coherence/l1_controller.cc" "src/CMakeFiles/tlrsim.dir/coherence/l1_controller.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/coherence/l1_controller.cc.o.d"
  "/root/repo/src/coherence/memory_controller.cc" "src/CMakeFiles/tlrsim.dir/coherence/memory_controller.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/coherence/memory_controller.cc.o.d"
  "/root/repo/src/core/predictors.cc" "src/CMakeFiles/tlrsim.dir/core/predictors.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/core/predictors.cc.o.d"
  "/root/repo/src/core/spec_engine.cc" "src/CMakeFiles/tlrsim.dir/core/spec_engine.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/core/spec_engine.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/tlrsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/isa.cc" "src/CMakeFiles/tlrsim.dir/cpu/isa.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/cpu/isa.cc.o.d"
  "/root/repo/src/cpu/program.cc" "src/CMakeFiles/tlrsim.dir/cpu/program.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/cpu/program.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/tlrsim.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/system.cc" "src/CMakeFiles/tlrsim.dir/harness/system.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/harness/system.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/tlrsim.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/harness/table.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/tlrsim.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/tlrsim.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/line.cc" "src/CMakeFiles/tlrsim.dir/mem/line.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/mem/line.cc.o.d"
  "/root/repo/src/mem/victim_cache.cc" "src/CMakeFiles/tlrsim.dir/mem/victim_cache.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/mem/victim_cache.cc.o.d"
  "/root/repo/src/mem/write_buffer.cc" "src/CMakeFiles/tlrsim.dir/mem/write_buffer.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/mem/write_buffer.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/tlrsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/tlrsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/tlrsim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sync/barrier.cc" "src/CMakeFiles/tlrsim.dir/sync/barrier.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/sync/barrier.cc.o.d"
  "/root/repo/src/sync/layout.cc" "src/CMakeFiles/tlrsim.dir/sync/layout.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/sync/layout.cc.o.d"
  "/root/repo/src/sync/lock_progs.cc" "src/CMakeFiles/tlrsim.dir/sync/lock_progs.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/sync/lock_progs.cc.o.d"
  "/root/repo/src/workloads/apps.cc" "src/CMakeFiles/tlrsim.dir/workloads/apps.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/workloads/apps.cc.o.d"
  "/root/repo/src/workloads/extra.cc" "src/CMakeFiles/tlrsim.dir/workloads/extra.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/workloads/extra.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/tlrsim.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/scenarios.cc" "src/CMakeFiles/tlrsim.dir/workloads/scenarios.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/workloads/scenarios.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/tlrsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/tlrsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

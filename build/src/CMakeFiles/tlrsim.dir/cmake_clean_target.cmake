file(REMOVE_RECURSE
  "libtlrsim.a"
)

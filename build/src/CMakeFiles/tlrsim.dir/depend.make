# Empty dependencies file for tlrsim.
# This may be replaced when dependencies are built.

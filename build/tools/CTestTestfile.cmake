# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/tlrsim" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list "/root/repo/build/tools/tlrsim" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tlr_single_counter "/root/repo/build/tools/tlrsim" "--workload=single-counter" "--scheme=tlr" "--cpus=8" "--ops=256")
set_tests_properties(cli_tlr_single_counter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mcs_dlist "/root/repo/build/tools/tlrsim" "--workload=dlist" "--scheme=mcs" "--cpus=4" "--ops=128")
set_tests_properties(cli_mcs_dlist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_directory_bank "/root/repo/build/tools/tlrsim" "--workload=bank" "--scheme=tlr" "--protocol=directory" "--cpus=4" "--ops=64")
set_tests_properties(cli_directory_bank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_preemption "/root/repo/build/tools/tlrsim" "--workload=single-counter" "--scheme=tlr" "--cpus=4" "--ops=128" "--preempt-every=2000" "--preempt-quantum=500")
set_tests_properties(cli_preemption PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_small_write_buffer "/root/repo/build/tools/tlrsim" "--workload=cholesky" "--scheme=tlr" "--cpus=4" "--ops=16" "--wb-lines=8")
set_tests_properties(cli_small_write_buffer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_strict_scheme "/root/repo/build/tools/tlrsim" "--workload=rotated-blocks" "--scheme=tlr-strict" "--cpus=4" "--ops=32")
set_tests_properties(cli_strict_scheme PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")

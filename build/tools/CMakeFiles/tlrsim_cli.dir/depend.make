# Empty dependencies file for tlrsim_cli.
# This may be replaced when dependencies are built.

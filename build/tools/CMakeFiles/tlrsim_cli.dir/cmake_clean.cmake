file(REMOVE_RECURSE
  "CMakeFiles/tlrsim_cli.dir/tlrsim.cc.o"
  "CMakeFiles/tlrsim_cli.dir/tlrsim.cc.o.d"
  "tlrsim"
  "tlrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

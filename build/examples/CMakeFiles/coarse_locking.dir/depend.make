# Empty dependencies file for coarse_locking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coarse_locking.dir/coarse_locking.cpp.o"
  "CMakeFiles/coarse_locking.dir/coarse_locking.cpp.o.d"
  "coarse_locking"
  "coarse_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

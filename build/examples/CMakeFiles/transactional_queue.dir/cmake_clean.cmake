file(REMOVE_RECURSE
  "CMakeFiles/transactional_queue.dir/transactional_queue.cpp.o"
  "CMakeFiles/transactional_queue.dir/transactional_queue.cpp.o.d"
  "transactional_queue"
  "transactional_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

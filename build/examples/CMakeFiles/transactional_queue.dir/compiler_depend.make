# Empty compiler generated dependencies file for transactional_queue.
# This may be replaced when dependencies are built.

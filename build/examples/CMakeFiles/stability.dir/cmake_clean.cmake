file(REMOVE_RECURSE
  "CMakeFiles/stability.dir/stability.cpp.o"
  "CMakeFiles/stability.dir/stability.cpp.o.d"
  "stability"
  "stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stability.
# This may be replaced when dependencies are built.

# Empty dependencies file for exp_yield_timeout.
# This may be replaced when dependencies are built.

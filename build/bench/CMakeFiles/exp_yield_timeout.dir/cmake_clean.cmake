file(REMOVE_RECURSE
  "CMakeFiles/exp_yield_timeout.dir/exp_yield_timeout.cc.o"
  "CMakeFiles/exp_yield_timeout.dir/exp_yield_timeout.cc.o.d"
  "exp_yield_timeout"
  "exp_yield_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_yield_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exp_protocols.dir/exp_protocols.cc.o"
  "CMakeFiles/exp_protocols.dir/exp_protocols.cc.o.d"
  "exp_protocols"
  "exp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_protocols.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_coarse_vs_fine.dir/exp_coarse_vs_fine.cc.o"
  "CMakeFiles/exp_coarse_vs_fine.dir/exp_coarse_vs_fine.cc.o.d"
  "exp_coarse_vs_fine"
  "exp_coarse_vs_fine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_coarse_vs_fine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp_coarse_vs_fine.
# This may be replaced when dependencies are built.

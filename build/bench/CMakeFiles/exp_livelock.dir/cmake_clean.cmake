file(REMOVE_RECURSE
  "CMakeFiles/exp_livelock.dir/exp_livelock.cc.o"
  "CMakeFiles/exp_livelock.dir/exp_livelock.cc.o.d"
  "exp_livelock"
  "exp_livelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp_livelock.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_rmw_predictor.dir/exp_rmw_predictor.cc.o"
  "CMakeFiles/exp_rmw_predictor.dir/exp_rmw_predictor.cc.o.d"
  "exp_rmw_predictor"
  "exp_rmw_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rmw_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

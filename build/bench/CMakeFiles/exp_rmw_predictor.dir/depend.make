# Empty dependencies file for exp_rmw_predictor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_multiple_counter.dir/fig08_multiple_counter.cc.o"
  "CMakeFiles/fig08_multiple_counter.dir/fig08_multiple_counter.cc.o.d"
  "fig08_multiple_counter"
  "fig08_multiple_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multiple_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig08_multiple_counter.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig10_doubly_linked_list.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_doubly_linked_list.dir/fig10_doubly_linked_list.cc.o"
  "CMakeFiles/fig10_doubly_linked_list.dir/fig10_doubly_linked_list.cc.o.d"
  "fig10_doubly_linked_list"
  "fig10_doubly_linked_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_doubly_linked_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_resources.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_resources.dir/exp_resources.cc.o"
  "CMakeFiles/exp_resources.dir/exp_resources.cc.o.d"
  "exp_resources"
  "exp_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig09_single_counter.dir/fig09_single_counter.cc.o"
  "CMakeFiles/fig09_single_counter.dir/fig09_single_counter.cc.o.d"
  "fig09_single_counter"
  "fig09_single_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_single_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

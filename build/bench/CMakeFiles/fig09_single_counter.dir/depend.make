# Empty dependencies file for fig09_single_counter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_preemption.dir/exp_preemption.cc.o"
  "CMakeFiles/exp_preemption.dir/exp_preemption.cc.o.d"
  "exp_preemption"
  "exp_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

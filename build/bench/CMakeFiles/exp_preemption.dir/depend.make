# Empty dependencies file for exp_preemption.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig11_applications.
# This may be replaced when dependencies are built.

/**
 * @file
 * Unit tests for the timestamp ordering rules, the silent store-pair
 * predictor, the read-modify-write predictor, the layout allocator
 * and the generated lock code.
 */

#include <gtest/gtest.h>

#include "core/predictors.hh"
#include "core/timestamp.hh"
#include "cpu/program.hh"
#include "sync/layout.hh"
#include "sync/lock_progs.hh"

using namespace tlr;

TEST(Timestamp, EarlierClockWins)
{
    Timestamp a = Timestamp::make(3, 7);
    Timestamp b = Timestamp::make(5, 1);
    EXPECT_TRUE(a.earlierThan(b));
    EXPECT_FALSE(b.earlierThan(a));
}

TEST(Timestamp, TiesBreakOnCpuId)
{
    Timestamp a = Timestamp::make(4, 1);
    Timestamp b = Timestamp::make(4, 2);
    EXPECT_TRUE(a.earlierThan(b));
    EXPECT_FALSE(b.earlierThan(a));
}

TEST(Timestamp, UntimestampedHasLowestPriority)
{
    Timestamp none; // invalid
    Timestamp any = Timestamp::make(1'000'000, 15);
    EXPECT_TRUE(any.earlierThan(none));
    EXPECT_FALSE(none.earlierThan(any));
    EXPECT_FALSE(none.earlierThan(Timestamp{}));
}

TEST(Timestamp, TotalOrderAmongValid)
{
    std::vector<Timestamp> all;
    for (std::uint64_t c = 0; c < 4; ++c)
        for (CpuId p = 0; p < 4; ++p)
            all.push_back(Timestamp::make(c, p));
    for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_FALSE(all[i].earlierThan(all[i]));
        for (size_t j = i + 1; j < all.size(); ++j) {
            EXPECT_NE(all[i].earlierThan(all[j]),
                      all[j].earlierThan(all[i]));
        }
    }
}

TEST(SilentPairPredictor, ElidesByDefault)
{
    SilentPairPredictor p(4);
    EXPECT_TRUE(p.shouldElide(100));
}

TEST(SilentPairPredictor, PenaltyBlocksThenReprobes)
{
    SilentPairPredictor p(4);
    p.penalize(100);
    // Confidence exhausted: blocked, but every 16th query re-probes.
    int allowed = 0;
    for (int i = 0; i < 32; ++i)
        allowed += p.shouldElide(100) ? 1 : 0;
    EXPECT_EQ(allowed, 2);
}

TEST(SilentPairPredictor, RewardRestoresConfidence)
{
    SilentPairPredictor p(4);
    p.penalize(100);
    p.reward(100);
    EXPECT_TRUE(p.shouldElide(100));
}

TEST(SilentPairPredictor, CapacityEvictsLru)
{
    SilentPairPredictor p(2);
    p.penalize(1); // blocked
    p.penalize(2); // blocked
    EXPECT_FALSE(p.shouldElide(1));
    p.shouldElide(3); // evicts LRU entry (pc=2 was... pc=1 refreshed)
    // pc=2 was least recently used and is forgotten: elide by default.
    EXPECT_TRUE(p.shouldElide(2));
}

TEST(RmwPredictor, TrainsOnLoadStorePairs)
{
    RmwPredictor p(8, 4);
    EXPECT_FALSE(p.predictExclusive(10));
    p.observeLoad(10, 0x1000);
    p.observeStore(0x1000);
    EXPECT_TRUE(p.predictExclusive(10));
}

TEST(RmwPredictor, WindowLimitsMatching)
{
    RmwPredictor p(8, 2);
    p.observeLoad(10, 0x1000);
    p.observeLoad(11, 0x2000);
    p.observeLoad(12, 0x3000); // pushes 0x1000 out of the window
    p.observeStore(0x1000);
    EXPECT_FALSE(p.predictExclusive(10));
    p.observeStore(0x3000);
    EXPECT_TRUE(p.predictExclusive(12));
}

TEST(RmwPredictor, DistinctAddressesDoNotTrain)
{
    RmwPredictor p(8, 4);
    p.observeLoad(10, 0x1000);
    p.observeStore(0x1008); // different word
    EXPECT_FALSE(p.predictExclusive(10));
}

TEST(RmwPredictor, CapacityBoundsTable)
{
    RmwPredictor p(2, 8);
    for (int i = 0; i < 4; ++i) {
        p.observeLoad(100 + i, 0x1000u + 64u * static_cast<unsigned>(i));
        p.observeStore(0x1000u + 64u * static_cast<unsigned>(i));
    }
    EXPECT_LE(p.tableSize(), 2u);
}

TEST(Layout, AlignmentAndPadding)
{
    Layout lay;
    Addr a = lay.alloc(8);
    Addr b = lay.allocLine();
    Addr c = lay.allocLine();
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % lineBytes, 0u);
    EXPECT_EQ(c - b, static_cast<Addr>(lineBytes));
    Addr d = lay.allocLines(3);
    Addr e = lay.allocLine();
    EXPECT_EQ(e - d, static_cast<Addr>(3 * lineBytes));
}

TEST(Layout, LockClassifierMatchesWholeLine)
{
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = lay.allocLine();
    auto cls = lay.classifier();
    EXPECT_TRUE(cls(lock));
    EXPECT_TRUE(cls(lock + 8)); // same line
    EXPECT_FALSE(cls(data));
    lay.registerSyncAddr(data);
    // Classifier snapshots are independent of later registration.
    EXPECT_FALSE(cls(data));
    EXPECT_TRUE(lay.classifier()(data));
}

TEST(LockProgs, TtsSequenceAssembles)
{
    ProgramBuilder b;
    b.li(1, 0x1000);
    emitTtsAcquire(b, 1, 2, 3);
    emitTtsRelease(b, 1);
    b.halt();
    auto p = b.build();
    // The acquire must contain LL, SC and the release a plain store.
    bool hasLl = false, hasSc = false, hasSt = false;
    for (int i = 0; i < p->size(); ++i) {
        hasLl |= p->at(i).op == Opcode::Ll;
        hasSc |= p->at(i).op == Opcode::Sc;
        hasSt |= p->at(i).op == Opcode::St;
    }
    EXPECT_TRUE(hasLl && hasSc && hasSt);
}

TEST(LockProgs, McsSequencesAssemble)
{
    ProgramBuilder b;
    b.li(1, 0x1000).li(2, 0x2000);
    emitMcsAcquire(b, 1, 2, 3, 4, 5);
    emitMcsRelease(b, 1, 2, 3, 4);
    b.halt();
    EXPECT_GT(b.build()->size(), 10);
}

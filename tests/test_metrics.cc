/**
 * @file
 * Metrics-layer tests: histogram bucket math and percentile
 * interpolation, merge commutativity (byte-identical JSON), the JSON
 * reader, the tlrstat diff engine, end-to-end collection through a
 * real simulation, and the zero-overhead-off contract (metrics on vs
 * off: identical cycles and counters).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/system.hh"
#include "metrics/collector.hh"
#include "metrics/histogram.hh"
#include "metrics/statdiff.hh"
#include "sim/build_info.hh"
#include "sim/json.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

TEST(Histogram, BucketBoundariesRoundTrip)
{
    // Every bucket's floor maps back to that bucket, and the value one
    // below the floor maps to the previous bucket.
    for (unsigned i = 0; i < Histogram::numBuckets; ++i) {
        std::uint64_t lo = Histogram::bucketLo(i);
        std::uint64_t hi = Histogram::bucketHi(i);
        EXPECT_EQ(Histogram::bucketIndex(lo), i) << "lo of bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(hi), i) << "hi of bucket " << i;
        if (i > 0) {
            EXPECT_EQ(Histogram::bucketLo(i), Histogram::bucketHi(i - 1) + 1)
                << "buckets " << i - 1 << "/" << i << " not contiguous";
        }
    }
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(~0ull),
              Histogram::numBuckets - 1);
    // Relative bucket width is bounded: hi <= lo * 1.25 for all
    // non-tiny buckets (4 sub-buckets per octave; exact hi is one
    // below the next floor, which double rounding may absorb).
    for (unsigned i = Histogram::subBuckets; i < Histogram::numBuckets;
         ++i) {
        double lo = static_cast<double>(Histogram::bucketLo(i));
        double hi = static_cast<double>(Histogram::bucketHi(i));
        EXPECT_LE(hi, lo * 1.25) << "bucket " << i;
    }
}

TEST(Histogram, EmptyAndSingleSample)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);

    h.record(12345);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 12345u);
    EXPECT_EQ(h.min(), 12345u);
    EXPECT_EQ(h.max(), 12345u);
    // The [min, max] clamp makes single-sample percentiles exact even
    // though the containing bucket is wide.
    EXPECT_EQ(h.percentile(0), 12345.0);
    EXPECT_EQ(h.percentile(50), 12345.0);
    EXPECT_EQ(h.percentile(99), 12345.0);
    EXPECT_EQ(h.percentile(100), 12345.0);
}

TEST(Histogram, PercentilesOnUniformRange)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.mean(), 500.5);
    // Log buckets are at most 25% wide, so interpolated percentiles
    // land within one bucket width of the exact answer.
    EXPECT_NEAR(h.percentile(50), 500, 130);
    EXPECT_NEAR(h.percentile(90), 900, 230);
    EXPECT_NEAR(h.percentile(99), 990, 250);
    EXPECT_EQ(h.percentile(100), 1000.0);
    // Monotonic in p.
    double prev = 0;
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        double v = h.percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
}

TEST(Histogram, MergeIsCommutativeByteIdentical)
{
    Histogram a, b;
    for (std::uint64_t v = 1; v < 500; v += 3)
        a.record(v);
    for (std::uint64_t v = 100; v < 100000; v += 997)
        b.record(v, 2);

    Histogram ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.json(), ba.json());

    // Associative too: (a+b)+c == a+(b+c).
    Histogram c;
    c.record(7, 42);
    Histogram left = ab;
    left.merge(c);
    Histogram right = c;
    right.merge(b);
    right.merge(a);
    EXPECT_EQ(left.json(), right.json());

    // Merging an empty histogram is the identity.
    Histogram empty, aCopy = a;
    aCopy.merge(empty);
    EXPECT_EQ(aCopy.json(), a.json());
}

TEST(Json, ParsesSimDumps)
{
    const std::string text =
        "{\"schema_version\": 2, \"meta\": {\"compiler\": \"g++\"},\n"
        " \"counters\": {\"a.b\": 7, \"a.c\": -1.5},\n"
        " \"arr\": [1, 2, true, null, \"s\"]}";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(text, v, err)) << err;
    ASSERT_TRUE(v.isObject());
    const JsonValue *sv = v.find("schema_version");
    ASSERT_NE(sv, nullptr);
    EXPECT_EQ(sv->number, 2.0);
    const JsonValue *ab = v.find("counters")->find("a.b");
    ASSERT_NE(ab, nullptr);
    EXPECT_EQ(ab->number, 7.0);
    EXPECT_EQ(v.find("counters")->find("a.c")->number, -1.5);
    ASSERT_TRUE(v.find("arr")->isArray());
    EXPECT_EQ(v.find("arr")->elements.size(), 5u);
    EXPECT_EQ(v.find("arr")->elements[4].string, "s");

    JsonValue bad;
    EXPECT_FALSE(parseJson("{\"k\": }", bad, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseJson("", bad, err));
}

namespace
{

JsonValue
mustParse(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, v, err)) << err;
    return v;
}

} // namespace

TEST(StatDiff, FlagsThresholdAndKeyChanges)
{
    JsonValue oldDoc = mustParse(
        "{\"schema_version\": 2, \"meta\": {\"compiler\": \"x\"},"
        " \"counters\": {\"a\": 100, \"b\": 10, \"gone\": 1}}");
    JsonValue newDoc = mustParse(
        "{\"schema_version\": 2, \"meta\": {\"compiler\": \"y\"},"
        " \"counters\": {\"a\": 150, \"b\": 10, \"new\": 5}}");
    DiffOptions opt;
    opt.thresholdPct = 20;
    DiffReport rep = diffStats(oldDoc, newDoc, opt);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.exceeded, 1u); // a: +50%
    ASSERT_EQ(rep.onlyOld.size(), 1u);
    EXPECT_EQ(rep.onlyOld[0], "counters.gone");
    ASSERT_EQ(rep.onlyNew.size(), 1u);
    EXPECT_EQ(rep.onlyNew[0], "counters.new");
    // meta differences must not appear as metric rows.
    for (const DiffRow &r : rep.rows)
        EXPECT_EQ(r.key.rfind("meta", 0), std::string::npos) << r.key;

    opt.thresholdPct = 60;
    EXPECT_EQ(diffStats(oldDoc, newDoc, opt).exceeded, 0u);
}

TEST(StatDiff, RefusesSchemaMismatch)
{
    JsonValue v2 = mustParse("{\"schema_version\": 2, \"a\": 1}");
    JsonValue v3 = mustParse("{\"schema_version\": 3, \"a\": 1}");
    JsonValue legacy = mustParse("{\"a\": 1}");

    DiffOptions opt;
    EXPECT_TRUE(diffStats(v2, v3, opt).schemaMismatch);
    EXPECT_TRUE(diffStats(v2, legacy, opt).schemaMismatch);
    // Two legacy dumps compare fine.
    EXPECT_TRUE(diffStats(legacy, legacy, opt).ok());
    EXPECT_TRUE(diffStats(v2, v2, opt).ok());
}

TEST(StatDiff, PrefixSelectsComparisonRoot)
{
    JsonValue doc = mustParse(
        "{\"baseline\": {\"x\": 100}, \"current\": {\"x\": 130}}");
    DiffOptions opt;
    opt.thresholdPct = 20;
    opt.oldPrefix = "baseline";
    opt.newPrefix = "current";
    DiffReport rep = diffStats(doc, doc, opt);
    ASSERT_TRUE(rep.ok());
    ASSERT_EQ(rep.rows.size(), 1u);
    EXPECT_EQ(rep.rows[0].key, "x");
    EXPECT_NEAR(rep.rows[0].relPct, 30.0, 1e-9);
    EXPECT_EQ(rep.exceeded, 1u);

    opt.oldPrefix = "no.such.path";
    EXPECT_FALSE(diffStats(doc, doc, opt).ok());
}

TEST(StatDiff, HostThreadsMismatchMakesHostPerfReportOnly)
{
    // Baseline recorded on a different host-thread budget: speedup,
    // efficiency, wall time and events/sec comparisons are
    // meaningless, so they are reported but never gate (exceeded);
    // simulated metrics still gate normally.
    JsonValue oldDoc = mustParse(
        "{\"schema_version\": 2, \"host_threads\": 8,"
        " \"threads_4_speedup\": 3.0, \"threads_4_wall_sec\": 1.0,"
        " \"threads_4_events_per_sec\": 4e6,"
        " \"threads_4_efficiency\": 0.75,"
        " \"simulated_cycles\": 1000}");
    JsonValue newDoc = mustParse(
        "{\"schema_version\": 2, \"host_threads\": 1,"
        " \"threads_4_speedup\": 0.5, \"threads_4_wall_sec\": 9.0,"
        " \"threads_4_events_per_sec\": 4e5,"
        " \"threads_4_efficiency\": 0.12,"
        " \"simulated_cycles\": 2000}");
    DiffOptions opt;
    opt.thresholdPct = 20;
    DiffReport rep = diffStats(oldDoc, newDoc, opt);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep.hostThreadsDiffer);
    EXPECT_EQ(rep.exceeded, 1u); // only simulated_cycles gates
    for (const DiffRow &r : rep.rows) {
        if (r.key == "simulated_cycles") {
            EXPECT_TRUE(r.exceeded);
            EXPECT_FALSE(r.reportOnly);
        } else {
            EXPECT_TRUE(r.reportOnly) << r.key;
            EXPECT_FALSE(r.exceeded) << r.key;
        }
    }
    std::string text = renderDiff(rep, opt);
    EXPECT_NE(text.find("host_threads differs"), std::string::npos);
    EXPECT_NE(text.find("(report-only)"), std::string::npos);

    // Same host_threads: everything gates as usual.
    DiffReport same = diffStats(oldDoc, oldDoc, opt);
    EXPECT_FALSE(same.hostThreadsDiffer);
    EXPECT_EQ(same.exceeded, 0u);
}

namespace
{

MachineParams
metricsParams(Scheme s, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    mp.collectMetrics = true;
    return mp;
}

Workload
counterWorkload(Scheme s, int cpus, std::uint64_t ops)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = ops;
    return makeSingleCounter(p);
}

} // namespace

TEST(Collector, EndToEndTlrRunProducesProfiles)
{
    RunStats r = runWorkload(metricsParams(Scheme::BaseSleTlr, 4),
                             counterWorkload(Scheme::BaseSleTlr, 4, 256));
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.valid);
    ASSERT_NE(r.metrics, nullptr);
    const MetricsSnapshot &m = *r.metrics;

    EXPECT_GT(m.records, 0u);
    EXPECT_GT(m.runTicks, 0u);
    // Committed critical sections show up in the latency histogram.
    EXPECT_GT(m.csLatency.count(), 0u);
    EXPECT_GT(m.commitLatency.count(), 0u);
    // One retries sample per finished instance: a commit or an abort
    // outcome (csLatency additionally counts real lock holds, so it is
    // not part of this identity).
    EXPECT_EQ(m.retries.count(), r.commits + m.abortLatency.count());
    // The single shared counter lock must appear in the profile with
    // the commits the scheme performed. The profile counts elided
    // *instances*, the scalar stat every elide (re-elisions, nests).
    ASSERT_FALSE(m.locks.empty());
    std::uint64_t elisions = 0, commits = 0;
    for (const auto &[addr, prof] : m.locks) {
        (void)addr;
        elisions += prof.elisions;
        commits += prof.commits;
    }
    EXPECT_GT(elisions, 0u);
    EXPECT_LE(elisions, r.elisions);
    EXPECT_EQ(commits, r.commits);
    // Interconnect accounting saw address and data traffic.
    EXPECT_GT(m.msgs[static_cast<unsigned>(MsgClass::AddrGetX)].count +
                  m.msgs[static_cast<unsigned>(MsgClass::AddrGetS)].count,
              0u);
    EXPECT_GT(m.msgs[static_cast<unsigned>(MsgClass::Data)].bytes, 0u);
    EXPECT_FALSE(m.links.empty());
    // Rendered outputs are well-formed.
    EXPECT_NE(m.summary().find("hottest locks"), std::string::npos);
    JsonValue parsed;
    std::string err;
    ASSERT_TRUE(parseJson(m.json(), parsed, err)) << err;
    EXPECT_NE(parsed.find("histograms"), nullptr);
    EXPECT_NE(parsed.find("interconnect"), nullptr);
}

TEST(Collector, SnapshotMergeMatchesCombinedJson)
{
    RunStats a = runWorkload(metricsParams(Scheme::BaseSleTlr, 2),
                             counterWorkload(Scheme::BaseSleTlr, 2, 128));
    RunStats b = runWorkload(metricsParams(Scheme::BaseSleTlr, 4),
                             counterWorkload(Scheme::BaseSleTlr, 4, 128));
    ASSERT_NE(a.metrics, nullptr);
    ASSERT_NE(b.metrics, nullptr);

    MetricsSnapshot ab = *a.metrics;
    ab.merge(*b.metrics);
    MetricsSnapshot ba = *b.metrics;
    ba.merge(*a.metrics);
    EXPECT_EQ(ab.json(), ba.json());
    EXPECT_EQ(ab.records, a.metrics->records + b.metrics->records);
    EXPECT_EQ(ab.csLatency.count(),
              a.metrics->csLatency.count() + b.metrics->csLatency.count());
}

TEST(Collector, MetricsOffIsBitIdenticalToCollection)
{
    // The zero-overhead contract, both directions: metrics off leaves
    // the sink disarmed (no emits at all), and metrics on must not
    // perturb the simulation — identical cycles and identical scalar
    // counters either way.
    for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr}) {
        MachineParams off = metricsParams(s, 4);
        off.collectMetrics = false;
        MachineParams on = metricsParams(s, 4);

        System sysOff(off);
        installWorkload(sysOff, counterWorkload(s, 4, 256));
        ASSERT_TRUE(sysOff.run());
        EXPECT_EQ(sysOff.metrics(), nullptr);
        EXPECT_EQ(sysOff.traceSink().emitted(), 0u);

        System sysOn(on);
        installWorkload(sysOn, counterWorkload(s, 4, 256));
        ASSERT_TRUE(sysOn.run());
        ASSERT_NE(sysOn.metrics(), nullptr);
        EXPECT_GT(sysOn.traceSink().emitted(), 0u);

        EXPECT_EQ(sysOff.completionTick(), sysOn.completionTick())
            << schemeName(s);
        EXPECT_EQ(sysOff.stats().dumpJson(), sysOn.stats().dumpJson())
            << schemeName(s);
    }
}

TEST(BuildInfo, MetaJsonIsValidAndVersioned)
{
    EXPECT_GE(statsSchemaVersion, 2);
    JsonValue meta;
    std::string err;
    ASSERT_TRUE(parseJson(buildMetaJson(), meta, err)) << err;
    ASSERT_NE(meta.find("compiler"), nullptr);
    EXPECT_FALSE(meta.find("compiler")->string.empty());
    ASSERT_NE(meta.find("git_sha"), nullptr);
    ASSERT_NE(meta.find("build_type"), nullptr);

    // A full dump embeds the version, the meta block and the flat
    // counters and parses back.
    StatSet st;
    st.counter("g", "n") = 7;
    JsonValue doc;
    ASSERT_TRUE(parseJson(st.dumpJson(), doc, err)) << err;
    EXPECT_EQ(doc.find("schema_version")->number,
              static_cast<double>(statsSchemaVersion));
    ASSERT_NE(doc.find("counters"), nullptr);
    EXPECT_EQ(doc.find("counters")->find("g.n")->number, 7.0);
}

// The v2 -> v3 bump: embedding a metrics section switches the
// document to metricsSchemaVersion; counter-only dumps keep the v2
// layout bit-for-bit (zero-overhead-off), and tlrstat keeps refusing
// to diff across the two.
TEST(BuildInfo, MetricsSectionBumpsSchemaVersion)
{
    EXPECT_EQ(metricsSchemaVersion, statsSchemaVersion + 1);

    StatSet st;
    st.counter("g", "n") = 7;
    MetricsSnapshot snap;
    snap.locks[0x10000].commits = 3;
    snap.locks[0x10000].restarts = 1;

    JsonValue plain, withMetrics;
    std::string err;
    ASSERT_TRUE(parseJson(st.dumpJson(), plain, err)) << err;
    ASSERT_TRUE(parseJson(st.dumpJson("  \"metrics\": " + snap.json()),
                          withMetrics, err))
        << err;
    EXPECT_EQ(plain.find("schema_version")->number,
              static_cast<double>(statsSchemaVersion));
    EXPECT_EQ(withMetrics.find("schema_version")->number,
              static_cast<double>(metricsSchemaVersion));

    // Cross-version diff still refuses.
    DiffOptions opt;
    EXPECT_TRUE(diffStats(plain, withMetrics, opt).schemaMismatch);
}

// The v3 abort digest: derived totals, rate, and hottest-lock row in
// both the JSON and the helpers the bench digests print.
TEST(Metrics, AbortDigest)
{
    MetricsSnapshot snap;
    snap.locks[0x10040].commits = 6;
    snap.locks[0x10040].restarts = 2;
    snap.locks[0x10080].commits = 4;
    snap.locks[0x10080].restarts = 1;
    snap.locks[0x10080].defers = 5;

    EXPECT_EQ(snap.totalCommits(), 10u);
    EXPECT_EQ(snap.totalRestarts(), 3u);
    EXPECT_NEAR(snap.abortRate(), 3.0 / 13.0, 1e-9);
    auto [addr, cont] = snap.hottestLock();
    EXPECT_EQ(addr, 0x10080u);
    EXPECT_EQ(cont, 6u); // restarts + fallbacks + defers

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(snap.json(), v, err)) << err;
    const JsonValue *aborts = v.find("aborts");
    ASSERT_NE(aborts, nullptr);
    EXPECT_EQ(aborts->find("commits")->number, 10.0);
    EXPECT_EQ(aborts->find("restarts")->number, 3.0);
    EXPECT_NEAR(aborts->find("abort_rate")->number, 3.0 / 13.0, 1e-6);
    EXPECT_EQ(aborts->find("hottest_lock")->number,
              static_cast<double>(0x10080));
    EXPECT_EQ(aborts->find("hottest_lock_contention")->number, 6.0);

    // Empty snapshot: rate 0, no hottest lock.
    MetricsSnapshot idle;
    EXPECT_EQ(idle.abortRate(), 0.0);
    EXPECT_EQ(idle.hottestLock().second, 0u);
}

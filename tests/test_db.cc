/**
 * @file
 * Database workload suite tests: deterministic cross-platform Zipfian
 * key generation, the workload registry, data-integrity validation of
 * every db workload under the full scheme matrix at 8 cpus, and the
 * contention-rises-with-skew property the bench_db JSON exposes.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "metrics/collector.hh"
#include "workloads/db/db.hh"
#include "workloads/db/keydist.hh"
#include "workloads/registry.hh"

using namespace tlr;

namespace
{

// ---------------------------------------------------------------- keydist

TEST(KeyDist, SameSeedSameStream)
{
    KeyDist a(1024, 0.8, Rng(7));
    KeyDist b(1024, 0.8, Rng(7));
    for (int i = 0; i < 4096; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
    KeyDist c(1024, 0.8, Rng(8));
    bool differs = false;
    KeyDist a2(1024, 0.8, Rng(7));
    for (int i = 0; i < 64; ++i)
        differs = differs || a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(KeyDist, DrawsStayInRange)
{
    for (double theta : {0.0, 0.6, 0.99}) {
        KeyDist kd(37, theta, Rng(11));
        for (int i = 0; i < 10000; ++i)
            ASSERT_LT(kd.next(), 37u);
    }
}

double
hottestKeyFraction(double theta, std::uint64_t seed)
{
    KeyDist kd(256, theta, Rng(seed));
    std::map<std::uint64_t, int> freq;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        ++freq[kd.next()];
    int top = 0;
    for (const auto &[k, n] : freq)
        top = std::max(top, n);
    return static_cast<double>(top) / draws;
}

/** Empirical mass of the hottest key must grow with theta. */
TEST(KeyDist, SkewMonotonicInTheta)
{
    double prevTop = -1.0;
    for (double theta : {0.0, 0.6, 0.99}) {
        double topFrac = hottestKeyFraction(theta, 123);
        EXPECT_GT(topFrac, prevTop) << "theta " << theta;
        prevTop = topFrac;
    }
    // Sanity anchors: uniform keeps the hottest key near 1/256; the
    // YCSB-default skew concentrates over 10% of draws on one key.
    EXPECT_LT(hottestKeyFraction(0.0, 5), 0.02);
    EXPECT_GT(hottestKeyFraction(0.99, 5), 0.10);
}

/** First 64 draws for a pinned (n, theta, seed) — the cross-platform
 *  stability contract. KeyDist only uses exactly-specified IEEE-754
 *  arithmetic (detPow/detLn/detExp, no libm), so these values must
 *  reproduce bit-for-bit on any conforming host. */
TEST(KeyDist, GoldenFirst64Draws)
{
    const std::uint64_t golden[64] = {
        54, 1, 2, 4, 0, 116, 1, 77, 4, 25, 1, 11, 13, 13, 33, 1,
        0, 11, 0, 39, 198, 0, 22, 25, 0, 2, 54, 70, 181, 40, 72, 98,
        30, 69, 28, 5, 0, 2, 60, 0, 14, 0, 2, 66, 34, 3, 0, 0,
        12, 213, 5, 1, 0, 3, 0, 88, 37, 17, 121, 0, 2, 207, 24, 0,
    };
    KeyDist kd(256, 0.99, Rng(42));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(kd.next(), golden[i]) << "draw " << i;

    // theta = 0 routes through Rng::below, already platform-stable.
    const std::uint64_t goldenUniform[16] = {
        149, 3, 82, 148, 242, 6, 93, 164,
        213, 174, 191, 190, 230, 183, 220, 242,
    };
    KeyDist u(256, 0.0, Rng(42));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(u.next(), goldenUniform[i]) << "draw " << i;
}

// --------------------------------------------------------------- registry

TEST(Registry, KnowsEveryLegacyNameAndDbFamily)
{
    for (const char *name :
         {"single-counter", "multiple-counter", "dlist",
          "reverse-writers", "rotated-blocks", "bank", "octree",
          "history", "mp3d-coarse", "radiosity", "hash-kv", "ycsb-a",
          "ycsb-b", "ycsb-c", "ordered-index", "partition",
          "tpcc-lite"})
        EXPECT_NE(findWorkload(name), nullptr) << name;
    EXPECT_EQ(findWorkload("no-such-workload"), nullptr);
}

TEST(Registry, SortedByCategoryThenName)
{
    const std::vector<WorkloadEntry> &reg = workloadRegistry();
    ASSERT_GT(reg.size(), 10u);
    for (size_t i = 1; i < reg.size(); ++i) {
        const WorkloadEntry &a = reg[i - 1];
        const WorkloadEntry &b = reg[i];
        EXPECT_TRUE(a.category < b.category ||
                    (a.category == b.category && a.name < b.name))
            << a.name << " vs " << b.name;
    }
    for (const WorkloadEntry &e : reg) {
        EXPECT_FALSE(e.summary.empty()) << e.name;
        EXPECT_FALSE(e.params.empty()) << e.name;
        EXPECT_TRUE(static_cast<bool>(e.make)) << e.name;
    }
}

TEST(Registry, ListTextGroupsByCategory)
{
    std::string text = workloadListText();
    // Every category header appears once, every workload listed.
    for (const WorkloadEntry &e : workloadRegistry())
        EXPECT_NE(text.find("  " + e.name), std::string::npos) << e.name;
    size_t db = text.find("database workloads");
    size_t micro = text.find("microbenchmarks");
    ASSERT_NE(db, std::string::npos);
    ASSERT_NE(micro, std::string::npos);
    EXPECT_LT(db, micro); // categories are alphabetical
}

TEST(Registry, FactoriesHonorParams)
{
    WorkloadParams p;
    p.numCpus = 4;
    p.ops = 8;
    Workload wl = makeRegisteredWorkload("ycsb-a", p);
    EXPECT_EQ(wl.name, "ycsb-a");
    EXPECT_EQ(wl.programs.size(), 4u);
    Workload idx = makeRegisteredWorkload("ordered-index", p);
    EXPECT_EQ(idx.programs.size(), 4u);
}

// ----------------------------------------------------- validator matrix

struct DbCase
{
    const char *name;
    Workload (*make)(const DbParams &);
};

const DbCase kCases[] = {
    {"hash-kv", makeHashKv},
    {"ordered-index", makeOrderedIndex},
    {"partition", makePartitionedTable},
    {"tpcc-lite", makeTpccLite},
};

/** Every db workload must complete and pass its data-integrity
 *  validator under every scheme at 8 cpus — the elision schemes may
 *  not corrupt database state. */
TEST(DbWorkloads, ValidUnderFullSchemeMatrix)
{
    for (const DbCase &c : kCases) {
        for (Scheme s :
             {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
              Scheme::BaseSleTlr, Scheme::TlrStrictTs}) {
            DbParams p;
            p.numCpus = 8;
            p.opsPerCpu = 48;
            p.lockKind = schemeLockKind(s);
            RunStats r = runScheme(s, p.numCpus, c.make(p));
            EXPECT_TRUE(r.completed) << c.name << "/" << schemeName(s);
            EXPECT_TRUE(r.valid) << c.name << "/" << schemeName(s);
            EXPECT_GT(r.cycles, 0u);
        }
    }
}

/** The YCSB presets really change the mix: the read-only C mix must
 *  run faster (fewer invalidations) than the update-heavy A mix under
 *  TLR, and all validate. */
TEST(DbWorkloads, YcsbMixesValidate)
{
    DbParams p;
    p.numCpus = 8;
    p.opsPerCpu = 64;
    p.lockKind = schemeLockKind(Scheme::BaseSleTlr);
    for (char mix : {'a', 'b', 'c'}) {
        RunStats r =
            runScheme(Scheme::BaseSleTlr, 8, makeYcsb(mix, p));
        EXPECT_TRUE(r.completed) << mix;
        EXPECT_TRUE(r.valid) << mix;
    }
}

/** Different seeds generate different op streams but still validate
 *  (the validators recompute expectations per seed). */
TEST(DbWorkloads, SeedsVaryAndValidate)
{
    for (std::uint64_t seed : {1ull, 999ull}) {
        DbParams p;
        p.numCpus = 8;
        p.opsPerCpu = 32;
        p.seed = seed;
        p.lockKind = schemeLockKind(Scheme::BaseSleTlr);
        RunStats r =
            runScheme(Scheme::BaseSleTlr, 8, makeTpccLite(p));
        EXPECT_TRUE(r.completed) << seed;
        EXPECT_TRUE(r.valid) << seed;
    }
}

// --------------------------------------------- contention rises with skew

RunStats
runTlrWithMetrics(Workload (*make)(const DbParams &), double theta)
{
    DbParams p;
    p.numCpus = 8;
    p.opsPerCpu = 128; // mirrors the bench_db grid scale
    p.theta = theta;
    p.lockKind = schemeLockKind(Scheme::BaseSleTlr);
    MachineParams mp;
    mp.numCpus = 8;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.collectMetrics = true;
    return runWorkload(mp, make(p));
}

/** The property bench_db --bench-json exposes: under TLR the abort /
 *  contention profile grows with key skew. Ordered-index restarts and
 *  partition hottest-lock contention are the cleanest monotone
 *  signals (deterministic runs, so exact comparisons are stable). */
TEST(DbWorkloads, AbortProfileRisesWithTheta)
{
    std::uint64_t prevRestarts = 0;
    bool first = true;
    for (double theta : {0.0, 0.6, 0.99}) {
        RunStats r = runTlrWithMetrics(makeOrderedIndex, theta);
        ASSERT_TRUE(r.valid);
        if (!first)
            EXPECT_GT(r.restarts, prevRestarts) << "theta " << theta;
        prevRestarts = r.restarts;
        first = false;
    }

    std::uint64_t prevHot = 0;
    first = true;
    for (double theta : {0.0, 0.6, 0.99}) {
        RunStats r = runTlrWithMetrics(makePartitionedTable, theta);
        ASSERT_TRUE(r.valid);
        ASSERT_TRUE(r.metrics != nullptr);
        std::uint64_t hot = r.metrics->hottestLock().second;
        if (!first)
            EXPECT_GT(hot, prevHot) << "theta " << theta;
        prevHot = hot;
        first = false;
    }

    std::uint64_t prevDefers = 0;
    first = true;
    for (double theta : {0.0, 0.6, 0.99}) {
        RunStats r = runTlrWithMetrics(makeTpccLite, theta);
        ASSERT_TRUE(r.valid);
        if (!first)
            EXPECT_GT(r.defers, prevDefers) << "theta " << theta;
        prevDefers = r.defers;
        first = false;
    }
}

} // namespace

/**
 * @file
 * Unit tests for the memory substrate: cache array geometry and LRU,
 * victim cache, merging write buffer, and backing store.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/cache_array.hh"
#include "mem/victim_cache.hh"
#include "mem/write_buffer.hh"

using namespace tlr;

TEST(CacheArray, GeometryValidation)
{
    CacheArray ok(128 * 1024, 4);
    EXPECT_EQ(ok.numSets(), 128u * 1024 / (4 * lineBytes));
    EXPECT_THROW(CacheArray(1000, 3), std::runtime_error);
    EXPECT_THROW(CacheArray(128 * 1024, 0), std::runtime_error);
}

TEST(CacheArray, FindAfterInstall)
{
    CacheArray c(8 * 1024, 2);
    Addr a = 0x1000;
    CacheLine *slot = c.allocateSlot(a);
    ASSERT_NE(slot, nullptr);
    slot->addr = a;
    slot->state = CohState::Shared;
    slot->data[3] = 99;
    CacheLine *found = c.find(a);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->data[3], 99u);
    EXPECT_EQ(c.find(0x2000), nullptr);
}

TEST(CacheArray, LruVictimSelection)
{
    // 2-way cache: fill a set, then confirm the LRU way is chosen.
    CacheArray c(2 * lineBytes * 4, 2); // 4 sets, 2 ways
    unsigned set_span = c.numSets() * lineBytes;
    Addr a0 = 0x0, a1 = a0 + set_span, a2 = a1 + set_span; // same set
    auto install = [&](Addr a, std::uint64_t use) {
        CacheLine *s = c.allocateSlot(a);
        s->addr = a;
        s->state = CohState::Shared;
        c.touch(*s, use);
        return s;
    };
    install(a0, 10);
    install(a1, 20);
    CacheLine *victim = c.allocateSlot(a2);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->addr, a0); // least recently used
}

TEST(CacheArray, PinnedLinesAreNotEvicted)
{
    CacheArray c(2 * lineBytes * 1, 2); // 1 set, 2 ways
    auto install = [&](Addr a, bool pinned) {
        CacheLine *s = c.allocateSlot(a);
        s->addr = a;
        s->state = CohState::Modified;
        s->pinned = pinned;
        return s;
    };
    install(0x000, true);
    CacheLine *b = install(0x040, true);
    EXPECT_EQ(b->addr, 0x040u);
    EXPECT_EQ(c.allocateSlot(0x080), nullptr); // everything pinned
    b->pinned = false;
    CacheLine *v = c.allocateSlot(0x080);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->addr, 0x040u);
}

TEST(VictimCache, InsertFindEraseAndCapacity)
{
    VictimCache v(2);
    CacheLine l;
    l.addr = 0x100;
    l.state = CohState::Modified;
    EXPECT_TRUE(v.insert(l));
    l.addr = 0x200;
    EXPECT_TRUE(v.insert(l));
    l.addr = 0x300;
    EXPECT_FALSE(v.insert(l)); // full
    ASSERT_NE(v.find(0x100), nullptr);
    v.erase(0x100);
    EXPECT_EQ(v.find(0x100), nullptr);
    EXPECT_TRUE(v.insert(l)); // space again
}

TEST(WriteBuffer, MergesWritesPerLine)
{
    WriteBuffer wb(2);
    EXPECT_TRUE(wb.write(0x1000, 1));
    EXPECT_TRUE(wb.write(0x1008, 2)); // same line: merges
    EXPECT_EQ(wb.lineCount(), 1u);
    EXPECT_TRUE(wb.write(0x2000, 3));
    EXPECT_EQ(wb.lineCount(), 2u);
    EXPECT_FALSE(wb.write(0x3000, 4)); // capacity = unique lines
    // Rewriting an existing line is always allowed.
    EXPECT_TRUE(wb.write(0x1000, 9));
    EXPECT_EQ(wb.read(0x1000), std::optional<std::uint64_t>(9));
    EXPECT_EQ(wb.read(0x1008), std::optional<std::uint64_t>(2));
    EXPECT_EQ(wb.read(0x1010), std::nullopt); // word not written
    EXPECT_EQ(wb.read(0x4000), std::nullopt);
    wb.clear();
    EXPECT_EQ(wb.lineCount(), 0u);
}

TEST(BackingStore, WordAndLineAccess)
{
    BackingStore bs(1024);
    EXPECT_EQ(bs.readWord(0x1000), 0u);
    bs.writeWord(0x1008, 55);
    EXPECT_EQ(bs.readWord(0x1008), 55u);
    LineData ld = bs.readLine(0x1000);
    EXPECT_EQ(ld[1], 55u);
    ld[2] = 66;
    bs.writeLine(0x1000, ld);
    EXPECT_EQ(bs.readWord(0x1010), 66u);
}

TEST(BackingStore, L2FilterTracksRecency)
{
    BackingStore bs(2);
    EXPECT_FALSE(bs.accessL2(0x000)); // cold
    EXPECT_TRUE(bs.accessL2(0x000));  // warm
    bs.accessL2(0x040);
    bs.accessL2(0x080); // exceeds capacity: filter resets
    EXPECT_TRUE(bs.accessL2(0x080));
}

/**
 * @file
 * L1Controller unit tests with scriptable speculation hooks: drive
 * the controller directly (two controllers on a real broadcast
 * interconnect + memory) and check the TLR decision logic — deferral
 * vs restart by timestamp, un-timestamped request policy, strict-mode
 * enforcement, deferred-queue service at commit/abort — without the
 * core/engine stack on top.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/interconnect.hh"
#include "coherence/l1_controller.hh"
#include "coherence/memory_controller.hh"
#include "mem/backing_store.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tlr;

namespace
{

/** Scriptable SpecHooks: the test sets the mode/timestamp and records
 *  every callback the controller makes. */
class FakeHooks : public SpecHooks
{
  public:
    bool spec = false;
    bool tlr = false;
    bool strict = false;
    bool deferUnts = true;
    Timestamp ts;

    std::vector<AbortReason> aborts;
    std::vector<std::pair<CacheOp, std::uint64_t>> completions;
    L1Controller *l1 = nullptr; ///< set after construction

    bool specActive() const override { return spec; }
    bool tlrActive() const override { return spec && tlr; }
    Timestamp currentTs() const override { return ts; }
    bool strictTimestamps() const override { return strict; }
    bool deferUntimestamped() const override { return deferUnts; }
    void noteConflictTs(const Timestamp &) override {}

    void
    conflictAbort(Addr, AbortReason reason) override
    {
        aborts.push_back(reason);
        spec = false; // engine leaves speculation...
        l1->abortTransaction();
    }

    void
    resourceAbort(Addr, AbortReason reason) override
    {
        aborts.push_back(reason);
        spec = false;
        l1->abortTransaction();
    }

    void specMshrDrained(Addr) override {}

    void
    cacheOpDone(const CacheOp &op, std::uint64_t value) override
    {
        completions.emplace_back(op, value);
    }
};

struct Rig
{
    EventQueue eq;
    StatSet stats;
    BackingStore store{1 << 16};
    BroadcastInterconnect net{eq, stats, InterconnectParams{}};
    MemoryController mem{eq, stats, net, store, MemParams{}};
    FakeHooks hooks0, hooks1;
    L1Controller l1a{eq, stats, 0, L1Params{}, net, mem, hooks0};
    L1Controller l1b{eq, stats, 1, L1Params{}, net, mem, hooks1};

    Rig()
    {
        net.setMemory(&mem);
        net.addSnooper(&l1a);
        net.addSnooper(&l1b);
        hooks0.l1 = &l1a;
        hooks1.l1 = &l1b;
    }

    void
    run()
    {
        ASSERT_TRUE(eq.run(1'000'000));
    }

    void
    access(L1Controller &c, CacheOp::Kind kind, Addr addr,
           std::uint64_t data = 0, bool spec = false)
    {
        CacheOp op;
        op.kind = kind;
        op.addr = addr;
        op.data = data;
        op.spec = spec;
        c.access(op);
    }
};

constexpr Addr lineA = 0x4000;

} // namespace

TEST(Controller, MissFillsFromMemoryExclusive)
{
    Rig r;
    r.store.writeWord(lineA, 99);
    r.access(r.l1a, CacheOp::Kind::LoadShared, lineA);
    r.run();
    ASSERT_EQ(r.hooks0.completions.size(), 1u);
    EXPECT_EQ(r.hooks0.completions[0].second, 99u);
    EXPECT_EQ(r.l1a.lineState(lineA), CohState::Exclusive);
}

TEST(Controller, TlrOwnerDefersLaterTimestamp)
{
    Rig r;
    // cpu0: transactional exclusive copy with the earlier timestamp.
    r.hooks0.spec = r.hooks0.tlr = true;
    r.hooks0.ts = Timestamp::make(1, 0);
    r.access(r.l1a, CacheOp::Kind::LoadExclusive, lineA, 0, true);
    r.run();
    // cpu1: conflicting transactional GetX with a later timestamp.
    r.hooks1.spec = r.hooks1.tlr = true;
    r.hooks1.ts = Timestamp::make(5, 1);
    r.access(r.l1b, CacheOp::Kind::EnsureExclusive, lineA, 0, true);
    r.eq.run(2'000); // bounded: cpu1 is deferred, so no completion
    EXPECT_EQ(r.l1a.deferredCount(), 1u);
    EXPECT_TRUE(r.hooks0.aborts.empty());
    EXPECT_TRUE(r.hooks1.completions.empty());
    // Commit at cpu0 services the deferred request.
    WriteBuffer wb(4);
    r.hooks0.spec = false;
    r.l1a.commitTransaction(wb);
    r.run();
    EXPECT_EQ(r.l1a.deferredCount(), 0u);
    ASSERT_EQ(r.hooks1.completions.size(), 1u);
    EXPECT_EQ(r.l1b.lineState(lineA), CohState::Modified);
    EXPECT_EQ(r.l1a.lineState(lineA), CohState::Invalid);
}

TEST(Controller, StrictModeRestartsOnEarlierTimestamp)
{
    Rig r;
    // cpu0 holds the line transactionally with the LATER timestamp and
    // strict timestamp enforcement.
    r.hooks0.spec = r.hooks0.tlr = true;
    r.hooks0.strict = true;
    r.hooks0.ts = Timestamp::make(9, 0);
    r.access(r.l1a, CacheOp::Kind::LoadExclusive, lineA, 0, true);
    r.run();
    // cpu1 requests with the earlier timestamp: cpu0 must lose now.
    r.hooks1.spec = r.hooks1.tlr = true;
    r.hooks1.ts = Timestamp::make(2, 1);
    r.access(r.l1b, CacheOp::Kind::EnsureExclusive, lineA, 0, true);
    r.run();
    ASSERT_EQ(r.hooks0.aborts.size(), 1u);
    EXPECT_EQ(r.hooks0.aborts[0], AbortReason::ConflictLost);
    ASSERT_EQ(r.hooks1.completions.size(), 1u);
    EXPECT_EQ(r.l1b.lineState(lineA), CohState::Modified);
}

TEST(Controller, UntimestampedRequestDeferredByPolicy)
{
    Rig r;
    r.hooks0.spec = r.hooks0.tlr = true;
    r.hooks0.ts = Timestamp::make(3, 0);
    r.access(r.l1a, CacheOp::Kind::LoadExclusive, lineA, 0, true);
    r.run();
    // Non-transactional store from cpu1 (no timestamp): with the defer
    // policy it waits; the transaction is not disturbed.
    r.access(r.l1b, CacheOp::Kind::Store, lineA, 42, false);
    r.eq.run(2'000);
    EXPECT_EQ(r.l1a.deferredCount(), 1u);
    EXPECT_TRUE(r.hooks0.aborts.empty());
    WriteBuffer wb(4);
    r.hooks0.spec = false;
    r.l1a.commitTransaction(wb);
    r.run();
    ASSERT_EQ(r.hooks1.completions.size(), 1u);
    EXPECT_EQ(r.l1b.peekWord(lineA), 42u);
}

TEST(Controller, UntimestampedRequestAbortsByPolicy)
{
    Rig r;
    r.hooks0.deferUnts = false; // paper's first approach: treat as race
    r.hooks0.spec = r.hooks0.tlr = true;
    r.hooks0.ts = Timestamp::make(3, 0);
    r.access(r.l1a, CacheOp::Kind::LoadExclusive, lineA, 0, true);
    r.run();
    r.access(r.l1b, CacheOp::Kind::Store, lineA, 42, false);
    r.run();
    ASSERT_GE(r.hooks0.aborts.size(), 1u);
    ASSERT_EQ(r.hooks1.completions.size(), 1u);
    EXPECT_EQ(r.l1b.peekWord(lineA), 42u);
}

TEST(Controller, SleOnlyAlwaysRestartsOnConflict)
{
    Rig r;
    r.hooks0.spec = true; // SLE without TLR: cannot defer
    r.hooks0.tlr = false;
    r.access(r.l1a, CacheOp::Kind::LoadExclusive, lineA, 0, true);
    r.run();
    r.hooks1.spec = r.hooks1.tlr = true;
    r.hooks1.ts = Timestamp::make(9, 1);
    r.access(r.l1b, CacheOp::Kind::EnsureExclusive, lineA, 0, true);
    r.run();
    ASSERT_EQ(r.hooks0.aborts.size(), 1u);
    ASSERT_EQ(r.hooks1.completions.size(), 1u);
}

TEST(Controller, AbortServicesDeferredWithPreTransactionalData)
{
    Rig r;
    r.store.writeWord(lineA, 7); // pre-transactional value
    r.hooks0.spec = r.hooks0.tlr = true;
    r.hooks0.ts = Timestamp::make(1, 0);
    r.access(r.l1a, CacheOp::Kind::EnsureExclusive, lineA, 0, true);
    r.run();
    // Later-ts reader is deferred...
    r.hooks1.spec = r.hooks1.tlr = true;
    r.hooks1.ts = Timestamp::make(4, 1);
    r.access(r.l1b, CacheOp::Kind::LoadShared, lineA, 0, true);
    r.eq.run(2'000);
    ASSERT_EQ(r.l1a.deferredCount(), 1u);
    // ...then the transaction aborts: the reader must observe the
    // pre-transactional value (speculative data lived in the write
    // buffer and is discarded, never exposed).
    r.hooks0.spec = false;
    r.l1a.abortTransaction();
    r.run();
    ASSERT_EQ(r.hooks1.completions.size(), 1u);
    EXPECT_EQ(r.hooks1.completions[0].second, 7u);
}

TEST(Controller, LinkRegisterClearedByRemoteWrite)
{
    Rig r;
    CacheOp ll;
    ll.kind = CacheOp::Kind::LoadShared;
    ll.addr = lineA;
    ll.isLl = true;
    r.l1a.access(ll);
    r.run();
    EXPECT_TRUE(r.l1a.linkValid(lineA));
    r.access(r.l1b, CacheOp::Kind::Store, lineA, 1, false);
    r.run();
    EXPECT_FALSE(r.l1a.linkValid(lineA));
}

TEST(Controller, DebugStateRendersMshrsAndDeferred)
{
    Rig r;
    r.hooks0.spec = r.hooks0.tlr = true;
    r.hooks0.ts = Timestamp::make(1, 0);
    r.access(r.l1a, CacheOp::Kind::LoadExclusive, lineA, 0, true);
    r.run();
    r.hooks1.spec = r.hooks1.tlr = true;
    r.hooks1.ts = Timestamp::make(4, 1);
    r.access(r.l1b, CacheOp::Kind::EnsureExclusive, lineA, 0, true);
    r.eq.run(2'000);
    std::string dump = r.l1a.debugState();
    EXPECT_NE(dump.find("DEFERRED"), std::string::npos);
}

/**
 * @file
 * Epoch-timeline unit and end-to-end tests (src/timeline/,
 * DESIGN.md §14): epoch rollup arithmetic, each online detector fired
 * from a synthetic stream, offline reconstruction byte-identity
 * against a recorded raw trace, epoch sums matching the StatSet
 * whole-run totals, and the timeline-off zero-perturbation contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "explain/rawtrace.hh"
#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/system.hh"
#include "timeline/timeline.hh"
#include "trace/events.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

TraceRecord
rec(Tick tick, TraceEvent kind, std::int16_t cpu = 0, Addr addr = 0,
    std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
    std::uint64_t a3 = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.kind = kind;
    r.cpu = cpu;
    r.addr = addr;
    r.a0 = a0;
    r.a1 = a1;
    r.a2 = a2;
    r.a3 = a3;
    return r;
}

MachineParams
machineParams(Scheme s, int cpus, Tick timeline_epoch = 0)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    mp.timelineEpoch = timeline_epoch;
    return mp;
}

MicroParams
microParams(Scheme s, int cpus, std::uint64_t ops)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = ops;
    return p;
}

TEST(EpochRollup, CountsLandInTheirEpochs)
{
    EpochTimeline tl(100);
    tl.onRecord(rec(10, TraceEvent::TxnCommit));
    tl.onRecord(rec(99, TraceEvent::TxnCommit));
    tl.onRecord(rec(100, TraceEvent::TxnRestart, 1, 0x80));
    tl.onRecord(rec(250, TraceEvent::TxnElide, 0, 0x40, 0, 0, 0, 1));
    tl.finish(250);

    ASSERT_EQ(tl.epochs().size(), 3u);
    EXPECT_EQ(tl.epochs()[0].commits, 2u);
    EXPECT_EQ(tl.epochs()[0].restarts, 0u);
    EXPECT_EQ(tl.epochs()[1].restarts, 1u);
    EXPECT_EQ(tl.epochs()[1].hotLine, 0x80u);
    EXPECT_EQ(tl.epochs()[2].elisions, 1u);
    EXPECT_EQ(tl.epochs()[2].startTick, 200u);
    EXPECT_EQ(tl.finalTick(), 250u);
}

TEST(EpochRollup, EmptyEpochsStillEmitRows)
{
    EpochTimeline tl(50);
    tl.onRecord(rec(5, TraceEvent::TxnCommit));
    tl.onRecord(rec(255, TraceEvent::TxnCommit));
    tl.finish(255);

    // Epochs 1..4 saw no records but must appear (the CSV must have
    // one row per epoch for tlrstat's per-epoch pairing to work).
    ASSERT_EQ(tl.epochs().size(), 6u);
    for (size_t i = 1; i <= 4; ++i)
        EXPECT_EQ(tl.epochs()[i].records, 0u) << "epoch " << i;
    EXPECT_EQ(tl.epochs()[5].commits, 1u);
}

TEST(EpochRollup, ReElisionDoesNotCountAsNewInstance)
{
    EpochTimeline tl(100);
    tl.onRecord(rec(1, TraceEvent::TxnElide, 0, 0x40, 0, 0, 0, 1));
    tl.onRecord(rec(2, TraceEvent::TxnElide, 0, 0x40, 0, 0, 0, 0));
    tl.finish(2);
    EXPECT_EQ(tl.epochs()[0].elisions, 1u);
}

TEST(EpochRollup, DeferWaitSpansCompleteOnService)
{
    EpochTimeline tl(100);
    // cpu1 parks on line 0x80 (owner cpu0) at t=10, serviced at t=70.
    tl.onRecord(rec(10, TraceEvent::CohDefer, 0, 0x80, 1));
    tl.onRecord(rec(70, TraceEvent::CohService, 0, 0x80, 1));
    tl.finish(99);

    ASSERT_EQ(tl.epochs().size(), 1u);
    EXPECT_EQ(tl.epochs()[0].defers, 1u);
    EXPECT_EQ(tl.epochs()[0].services, 1u);
    EXPECT_EQ(tl.epochs()[0].deferWaitSum, 60u);
    EXPECT_EQ(tl.epochs()[0].deferWaitCount, 1u);
    EXPECT_EQ(tl.epochs()[0].deferWaitMax, 60u);
}

TEST(Detectors, RestartStormFiresOnSpike)
{
    EpochTimeline tl(100);
    // Epoch 0: a livelock-style burst well above stormMinRestarts with
    // no trailing history — must fire immediately (the Figure 2 case).
    for (int i = 0; i < 20; ++i)
        tl.onRecord(rec(static_cast<Tick>(i), TraceEvent::TxnRestart,
                        static_cast<std::int16_t>(i % 2), 0x80));
    tl.finish(150);

    ASSERT_FALSE(tl.alerts().empty());
    EXPECT_EQ(tl.alerts()[0].kind, "restart-storm");
    EXPECT_EQ(tl.alerts()[0].epoch, 0u);
    EXPECT_EQ(tl.alerts()[0].line, 0x80u);
    EXPECT_EQ(tl.alerts()[0].value, 20u);
}

TEST(Detectors, RestartStormIsEdgeTriggered)
{
    EpochTimeline tl(100);
    // Two consecutive storm epochs: one alert at onset, not two.
    for (int e = 0; e < 2; ++e)
        for (int i = 0; i < 20; ++i)
            tl.onRecord(rec(static_cast<Tick>(e * 100 + i),
                            TraceEvent::TxnRestart, 0, 0x80));
    tl.finish(250);

    size_t storms = 0;
    for (const TimelineAlert &a : tl.alerts())
        if (a.kind == "restart-storm")
            ++storms;
    EXPECT_EQ(storms, 1u);
}

TEST(Detectors, SteadyRestartRateDoesNotStorm)
{
    EpochTimeline tl(100);
    // The same per-epoch rate for 10 epochs: above stormMinRestarts
    // but never above stormFactor x the trailing mean after epoch 0...
    // except epoch 0 itself, which has no history. Use a rate below
    // stormMinRestarts so nothing fires at all.
    for (int e = 0; e < 10; ++e)
        for (int i = 0; i < 10; ++i)
            tl.onRecord(rec(static_cast<Tick>(e * 100 + i),
                            TraceEvent::TxnRestart, 0, 0x80));
    tl.finish(999);

    for (const TimelineAlert &a : tl.alerts())
        EXPECT_NE(a.kind, "restart-storm");
}

TEST(Detectors, ConvoyFiresWhenQueueReachesThreshold)
{
    EpochTimeline tl(100);
    // Three distinct waiters pile onto line 0x80 before any service.
    tl.onRecord(rec(10, TraceEvent::CohDefer, 0, 0x80, 1));
    tl.onRecord(rec(20, TraceEvent::CohDefer, 0, 0x80, 2));
    tl.onRecord(rec(30, TraceEvent::CohDefer, 0, 0x80, 3));
    tl.finish(99);

    ASSERT_FALSE(tl.alerts().empty());
    EXPECT_EQ(tl.alerts()[0].kind, "convoy");
    EXPECT_EQ(tl.alerts()[0].line, 0x80u);
    EXPECT_EQ(tl.alerts()[0].value, 3u);
    EXPECT_EQ(tl.epochs()[0].maxQueue, 3u);
    // The causal chain starts from the longest-waiting deferral.
    EXPECT_NE(tl.alerts()[0].chain.find("cpu1 waits on cpu0"),
              std::string::npos);
}

TEST(Detectors, ConvoyTwoWaitersIsQuiet)
{
    EpochTimeline tl(100);
    tl.onRecord(rec(10, TraceEvent::CohDefer, 0, 0x80, 1));
    tl.onRecord(rec(20, TraceEvent::CohDefer, 0, 0x80, 2));
    tl.onRecord(rec(40, TraceEvent::CohService, 0, 0x80, 1));
    tl.onRecord(rec(50, TraceEvent::CohService, 0, 0x80, 2));
    tl.finish(99);
    EXPECT_TRUE(tl.alerts().empty());
}

TEST(Detectors, ConvoyReArmsAfterDraining)
{
    EpochTimeline tl(100);
    auto pile = [&](Tick base) {
        for (std::uint64_t w = 1; w <= 3; ++w)
            tl.onRecord(rec(base + w, TraceEvent::CohDefer, 0, 0x80, w));
    };
    auto drain = [&](Tick base) {
        for (std::uint64_t w = 1; w <= 3; ++w)
            tl.onRecord(
                rec(base + w, TraceEvent::CohService, 0, 0x80, w));
    };
    pile(0);
    drain(50);
    // Epoch 1: fully drained, queue high-water 0 -> the line re-arms.
    tl.onRecord(rec(150, TraceEvent::TxnCommit));
    pile(200);
    tl.finish(299);

    size_t convoys = 0;
    for (const TimelineAlert &a : tl.alerts())
        if (a.kind == "convoy")
            ++convoys;
    EXPECT_EQ(convoys, 2u);
}

TEST(Detectors, StarvationFiresOnAgedDeferral)
{
    EpochTimeline tl(100);
    // Feed enough quick waits that the p99-derived threshold is small,
    // then leave one deferral parked for many epochs.
    for (std::uint64_t i = 0; i < 50; ++i) {
        tl.onRecord(rec(i, TraceEvent::CohDefer, 0, 0x40, 2));
        tl.onRecord(rec(i + 10, TraceEvent::CohService, 0, 0x40, 2));
    }
    tl.onRecord(rec(90, TraceEvent::CohDefer, 0, 0x80, 1));
    tl.onRecord(rec(900, TraceEvent::TxnCommit));
    tl.finish(999);

    size_t starved = 0;
    for (const TimelineAlert &a : tl.alerts()) {
        if (a.kind != "starvation")
            continue;
        ++starved;
        EXPECT_EQ(a.line, 0x80u);
        EXPECT_NE(a.chain.find("cpu1 waits on cpu0"),
                  std::string::npos);
    }
    EXPECT_EQ(starved, 1u); // once per (line, waiter), not per epoch
}

TEST(Detectors, ThroughputCollapseFiresWhenCommitsStopUnderConflict)
{
    EpochTimeline tl(100);
    // Four healthy epochs (20 commits each), then commits stop while
    // restarts continue.
    for (int e = 0; e < 4; ++e)
        for (int i = 0; i < 20; ++i)
            tl.onRecord(rec(static_cast<Tick>(e * 100 + i),
                            TraceEvent::TxnCommit));
    for (int i = 0; i < 5; ++i)
        tl.onRecord(rec(static_cast<Tick>(400 + i),
                        TraceEvent::TxnRestart, 0, 0x80));
    tl.finish(499);

    bool collapsed = false;
    for (const TimelineAlert &a : tl.alerts())
        if (a.kind == "throughput-collapse") {
            collapsed = true;
            EXPECT_EQ(a.epoch, 4u);
        }
    EXPECT_TRUE(collapsed);
}

TEST(Detectors, IdleTailIsNotACollapse)
{
    EpochTimeline tl(100);
    // Commits stop because the run finished: no restarts, no defers —
    // quiet epochs must not read as a pathology.
    for (int e = 0; e < 4; ++e)
        for (int i = 0; i < 20; ++i)
            tl.onRecord(rec(static_cast<Tick>(e * 100 + i),
                            TraceEvent::TxnCommit));
    tl.onRecord(rec(450, TraceEvent::CohMiss, 0, 0x80));
    tl.finish(499);

    for (const TimelineAlert &a : tl.alerts())
        EXPECT_NE(a.kind, "throughput-collapse");
}

TEST(Csv, HeaderRowsAndAlertsRoundToStableText)
{
    EpochTimeline tl(100);
    tl.onRecord(rec(10, TraceEvent::TxnCommit));
    tl.finish(150);

    std::string csv = tl.csv();
    EXPECT_NE(csv.find("# tlr-timeline schema=1 epoch_len=100"),
              std::string::npos);
    EXPECT_NE(csv.find("epoch,start_tick,records,commits"),
              std::string::npos);
    // Two epochs (0-99, 100-150) => header comment + column row + 2.
    size_t lines = 0;
    for (char c : csv)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, 4u);
}

TEST(EndToEnd, EpochSumsMatchStatSetTotals)
{
    Scheme s = Scheme::BaseSleTlr;
    System sys(machineParams(s, 8, 500));
    installWorkload(sys,
                    makeSingleCounter(microParams(s, 8, 512)));
    ASSERT_TRUE(sys.run());
    ASSERT_NE(sys.timeline(), nullptr);

    std::uint64_t commits = 0, restarts = 0, fallbacks = 0;
    for (const EpochRow &e : sys.timeline()->epochs()) {
        commits += e.commits;
        restarts += e.restarts;
        fallbacks += e.fallbacks;
    }
    // The per-epoch values are deltas of the same events the StatSet
    // counts, so the timeline must sum back to the whole-run totals.
    EXPECT_EQ(commits, sys.stats().sum("spec", "commits"));
    EXPECT_EQ(restarts, sys.stats().sum("spec", "restarts"));
    EXPECT_EQ(fallbacks, sys.stats().sum("spec", "fallbacks"));
}

TEST(EndToEnd, OfflineReconstructionIsByteIdentical)
{
    Scheme s = Scheme::BaseSleTlr;
    std::string path = testing::TempDir() + "timeline_e2e.trace";

    MachineParams mp = machineParams(s, 8, 500);
    System sys(mp);
    RawTraceWriter writer;
    ASSERT_EQ(writer.open(path), "");
    sys.addTraceListener(&writer);
    installWorkload(sys, makeSingleCounter(microParams(s, 8, 512)));
    ASSERT_TRUE(sys.run());
    std::string online = sys.timeline()->csv();

    RawTraceReader reader;
    ASSERT_EQ(reader.open(path), "");
    EpochTimeline offline(500);
    reader.replay(offline);
    EXPECT_EQ(online, offline.csv());
    std::remove(path.c_str());
}

TEST(EndToEnd, TimelineOnDoesNotPerturbTheRun)
{
    Scheme s = Scheme::BaseSleTlr;

    System plain(machineParams(s, 8));
    installWorkload(plain, makeSingleCounter(microParams(s, 8, 512)));
    ASSERT_TRUE(plain.run());

    System timed(machineParams(s, 8, 500));
    installWorkload(timed, makeSingleCounter(microParams(s, 8, 512)));
    ASSERT_TRUE(timed.run());

    EXPECT_EQ(plain.completionTick(), timed.completionTick());
    EXPECT_EQ(plain.stats().dumpJson(), timed.stats().dumpJson());
}

TEST(EndToEnd, EpochCallbackSeesEveryClosedEpochOnce)
{
    EpochTimeline tl(100);
    std::vector<std::uint64_t> seen;
    tl.setEpochCallback([&](const EpochRow &e, std::uint64_t) {
        seen.push_back(e.epoch);
    });
    tl.onRecord(rec(10, TraceEvent::TxnCommit));
    tl.onRecord(rec(350, TraceEvent::TxnCommit));
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2}));
    // finish() must not invoke the callback (the progress line would
    // trail the final report otherwise), but the rows still close.
    tl.finish(350);
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(tl.epochs().size(), 4u);
}

TEST(Json, SectionCarriesSchemaEpochsAndAlerts)
{
    EpochTimeline tl(100);
    tl.onRecord(rec(10, TraceEvent::TxnCommit));
    tl.finish(120);
    std::string json = tl.json();
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"epoch_len\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"final_tick\": 120"), std::string::npos);
    EXPECT_NE(json.find("\"epochs\": ["), std::string::npos);
    EXPECT_NE(json.find("\"alerts\": ["), std::string::npos);
}

TEST(Tracks, CounterTracksSampleEveryEpoch)
{
    EpochTimeline tl(100);
    tl.onRecord(rec(10, TraceEvent::TxnCommit));
    tl.onRecord(rec(150, TraceEvent::TxnRestart, 0, 0x80));
    tl.finish(199);

    std::vector<CounterTrack> tracks = tl.counterTracks();
    ASSERT_EQ(tracks.size(), 3u);
    EXPECT_EQ(tracks[0].name, "epoch commits");
    ASSERT_EQ(tracks[0].samples.size(), 2u);
    EXPECT_EQ(tracks[0].samples[0].second, 1u);
    EXPECT_EQ(tracks[1].samples[1].second, 1u); // epoch 1 restart
    EXPECT_EQ(tracks[1].samples[1].first, 100u);
}

} // namespace

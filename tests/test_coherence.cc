/**
 * @file
 * Coherence-protocol litmus tests: hand-written programs (no locks)
 * run on the full system, checking MOESI state transitions, data
 * transfer between caches, upgrade races, LL/SC atomicity and
 * writeback behavior.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

MachineParams
baseParams(int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = SpecConfig{}; // no SLE/TLR: raw protocol
    mp.spec.enableRmwPredictor = false;
    mp.maxTicks = 10'000'000;
    return mp;
}

constexpr Addr addrA = 0x20000;
constexpr Addr addrB = 0x21000;
constexpr Addr flagAddr = 0x22000;

/** Program: spin until flag == v, used for cross-cpu ordering. */
void
emitWaitFlag(ProgramBuilder &b, std::uint64_t v, Reg t0, Reg t1)
{
    std::string spin = b.uniqueLabel("waitflag");
    b.li(t1, static_cast<std::int64_t>(v));
    b.li(30, static_cast<std::int64_t>(flagAddr));
    b.label(spin);
    b.ld(t0, 30);
    b.bne(t0, t1, spin);
}

} // namespace

TEST(Coherence, StoreIsVisibleToOtherCpu)
{
    System sys(baseParams(2));
    {
        ProgramBuilder b; // producer
        b.li(1, addrA).li(2, 77).st(2, 1);
        b.li(1, flagAddr).li(2, 1).st(2, 1);
        b.halt();
        sys.setProgram(0, b.build());
    }
    {
        ProgramBuilder b; // consumer
        emitWaitFlag(b, 1, 3, 4);
        b.li(1, addrA).ld(5, 1).halt();
        sys.setProgram(1, b.build());
    }
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.core(1).reg(5), 77u);
}

TEST(Coherence, ExclusiveOnSoleReader)
{
    System sys(baseParams(2));
    {
        ProgramBuilder b;
        b.li(1, addrA).ld(2, 1).halt();
        sys.setProgram(0, b.build());
    }
    {
        ProgramBuilder b;
        b.halt();
        sys.setProgram(1, b.build());
    }
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.l1(0).lineState(addrA), CohState::Exclusive);
}

TEST(Coherence, ConcurrentReadersGetShared)
{
    System sys(baseParams(2));
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder b;
        b.li(1, addrA).ld(2, 1).halt();
        sys.setProgram(c, b.build());
    }
    ASSERT_TRUE(sys.run());
    // Neither cache may hold the line writable.
    EXPECT_FALSE(isWritableState(sys.l1(0).lineState(addrA)));
    EXPECT_FALSE(isWritableState(sys.l1(1).lineState(addrA)));
    EXPECT_TRUE(isValidState(sys.l1(0).lineState(addrA)));
    EXPECT_TRUE(isValidState(sys.l1(1).lineState(addrA)));
}

TEST(Coherence, OwnerSuppliesDirtyDataAndBecomesOwned)
{
    System sys(baseParams(2));
    {
        ProgramBuilder b; // writer, then raises flag
        b.li(1, addrA).li(2, 123).st(2, 1);
        b.li(1, flagAddr).li(2, 1).st(2, 1);
        b.halt();
        sys.setProgram(0, b.build());
    }
    {
        ProgramBuilder b; // reader
        emitWaitFlag(b, 1, 3, 4);
        b.li(1, addrA).ld(5, 1).halt();
        sys.setProgram(1, b.build());
    }
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.core(1).reg(5), 123u);
    // MOESI: the dirty owner downgrades M -> O on a snooped read.
    EXPECT_EQ(sys.l1(0).lineState(addrA), CohState::Owned);
    EXPECT_EQ(sys.l1(1).lineState(addrA), CohState::Shared);
    // Memory was never updated (no writeback happened).
    EXPECT_EQ(sys.memory().readWord(addrA), 0u);
}

TEST(Coherence, WriteInvalidatesAllSharers)
{
    System sys(baseParams(3));
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder b; // two readers
        b.li(1, addrA).ld(2, 1);
        b.li(1, flagAddr).li(2, 1).st(2, 1, static_cast<std::int64_t>(
                                               8 * c));
        b.halt();
        sys.setProgram(c, b.build());
    }
    {
        ProgramBuilder b; // writer waits for both readers
        std::string spin = b.uniqueLabel("w");
        b.li(30, flagAddr);
        b.label(spin);
        b.ld(2, 30, 0).ld(3, 30, 8).add(4, 2, 3).li(5, 2);
        b.bne(4, 5, spin);
        b.li(1, addrA).li(2, 9).st(2, 1).halt();
        sys.setProgram(2, b.build());
    }
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.l1(2).lineState(addrA), CohState::Modified);
    EXPECT_EQ(sys.l1(0).lineState(addrA), CohState::Invalid);
    EXPECT_EQ(sys.l1(1).lineState(addrA), CohState::Invalid);
    EXPECT_EQ(readCoherent(sys, addrA), 9u);
}

TEST(Coherence, LlScAtomicCountersWithoutLocks)
{
    // Four cpus atomically increment a counter with raw LL/SC loops.
    const int cpus = 4;
    const int iters = 50;
    System sys(baseParams(cpus));
    for (int c = 0; c < cpus; ++c) {
        ProgramBuilder b;
        b.li(1, addrA).li(4, iters);
        b.label("loop");
        b.label("retry");
        b.ll(2, 1);
        b.addi(2, 2, 1);
        b.sc(3, 2, 1);
        b.beq(3, 0, "retry");
        b.addi(4, 4, -1);
        b.bne(4, 0, "loop");
        b.halt();
        sys.setProgram(c, b.build());
    }
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, addrA), static_cast<std::uint64_t>(
                                            cpus * iters));
}

TEST(Coherence, UpgradeRaceLosesCleanly)
{
    // Both cpus read then write the same line: one upgrade must lose
    // and convert to GetX; the final value is one of the two stores
    // and both stores became globally visible in some order.
    System sys(baseParams(2));
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder b;
        b.li(1, addrA).ld(2, 1); // bring in Shared
        b.li(3, 100 + c).st(3, 1);
        b.halt();
        sys.setProgram(c, b.build());
    }
    ASSERT_TRUE(sys.run());
    std::uint64_t v = readCoherent(sys, addrA);
    EXPECT_TRUE(v == 100 || v == 101);
}

TEST(Coherence, CapacityEvictionWritesBack)
{
    // Touch ways+1 distinct lines mapping to one set; the evicted
    // dirty line must reach memory.
    MachineParams mp = baseParams(1);
    System sys(mp);
    const unsigned sets =
        static_cast<unsigned>(mp.l1.sizeBytes / (mp.l1.ways * lineBytes));
    const Addr stride = static_cast<Addr>(sets) * lineBytes;
    ProgramBuilder b;
    for (unsigned i = 0; i <= mp.l1.ways; ++i) {
        b.li(1, static_cast<std::int64_t>(addrA + i * stride));
        b.li(2, 500 + static_cast<int>(i));
        b.st(2, 1);
    }
    b.halt();
    sys.setProgram(0, b.build());
    ASSERT_TRUE(sys.run());
    // The first line was evicted (LRU) and written back to memory.
    EXPECT_EQ(sys.memory().readWord(addrA), 500u);
    EXPECT_EQ(sys.l1(0).lineState(addrA), CohState::Invalid);
    EXPECT_GT(sys.stats().get("mem", "writeBacks"), 0u);
}

TEST(Coherence, ScFailsWhenLineStolenBetweenLlAndSc)
{
    // cpu0 LLs, then waits for cpu1 to write the line, then SCs.
    System sys(baseParams(2));
    {
        ProgramBuilder b;
        b.li(1, addrA).ll(2, 1);
        b.li(1, flagAddr).li(2, 1).st(2, 1); // signal cpu1
        emitWaitFlag(b, 2, 3, 4);            // wait for cpu1's store
        b.li(1, addrA).li(2, 55).sc(5, 2, 1);
        b.halt();
        sys.setProgram(0, b.build());
    }
    {
        ProgramBuilder b;
        emitWaitFlag(b, 1, 3, 4);
        b.li(1, addrA).li(2, 66).st(2, 1); // steal the linked line
        b.li(1, flagAddr).li(2, 2).st(2, 1);
        b.halt();
        sys.setProgram(1, b.build());
    }
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.core(0).reg(5), 0u); // SC must fail
    EXPECT_EQ(readCoherent(sys, addrA), 66u);
}

TEST(Coherence, ReadSharedAcrossManyCpus)
{
    const int cpus = 8;
    System sys(baseParams(cpus));
    for (int c = 0; c < cpus; ++c) {
        ProgramBuilder b;
        b.li(1, addrB).ld(2, 1).halt();
        sys.setProgram(c, b.build());
    }
    ASSERT_TRUE(sys.run());
    int valid = 0;
    for (int c = 0; c < cpus; ++c) {
        CohState st = sys.l1(c).lineState(addrB);
        EXPECT_FALSE(isWritableState(st));
        valid += isValidState(st) ? 1 : 0;
    }
    EXPECT_GT(valid, 0);
}

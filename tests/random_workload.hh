/**
 * @file
 * Shared randomized-workload generator for the stress suites (both
 * interconnect protocols): random processor counts, lock pools,
 * critical-section shapes, nesting and think times, with a
 * deterministically recomputable expected counter total.
 */

#ifndef TLR_TESTS_RANDOM_WORKLOAD_HH
#define TLR_TESTS_RANDOM_WORKLOAD_HH

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "sim/rng.hh"
#include "sync/layout.hh"
#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlrtest
{

using namespace tlr;


constexpr Reg rIter = 1;
constexpr Reg rLock = 2;
constexpr Reg rQn = 3;
constexpr Reg rAddr = 4;
constexpr Reg rVal = 5;
constexpr Reg rT0 = 6;
constexpr Reg rT1 = 7;
constexpr Reg rT2 = 8;
constexpr Reg rSel = 9;
constexpr Reg rN = 10;
constexpr Reg rLock2 = 11;

/** A randomly shaped lock-based workload. */
inline Workload
makeRandomWorkload(std::uint64_t seed, int &cpus_out, LockKind kind)
{
    Rng rng(seed * 2654435761ull + 17);
    const int cpus = static_cast<int>(rng.range(2, 8));
    const unsigned numLocks = static_cast<unsigned>(rng.range(1, 4));
    const unsigned blocksPerLock = static_cast<unsigned>(rng.range(1, 3));
    const unsigned iters = static_cast<unsigned>(rng.range(8, 40));
    const unsigned delayMax = static_cast<unsigned>(rng.range(0, 80));
    const bool nested = numLocks >= 2 && rng.below(2) == 0;
    cpus_out = cpus;

    Layout lay;
    std::vector<Addr> locks;
    for (unsigned i = 0; i < numLocks; ++i)
        locks.push_back(lay.allocLock());
    std::vector<Addr> blocks; // blocksPerLock lines per lock
    for (unsigned i = 0; i < numLocks * blocksPerLock; ++i)
        blocks.push_back(lay.allocLine());
    std::vector<std::vector<Addr>> qnodes; // [cpu][lock]
    if (kind == LockKind::Mcs) {
        for (int c = 0; c < cpus; ++c) {
            std::vector<Addr> qs;
            for (unsigned i = 0; i < numLocks; ++i) {
                Addr q = lay.allocLine();
                lay.registerSyncAddr(q);
                qs.push_back(q);
            }
            qnodes.push_back(qs);
        }
    }

    Workload wl;
    wl.name = "random-" + std::to_string(seed);
    wl.lockClassifier = lay.classifier();

    for (int c = 0; c < cpus; ++c) {
        Rng prng = rng.fork(static_cast<std::uint64_t>(c) + 100);
        ProgramBuilder b;
        b.li(rIter, iters);
        b.label("loop");
        // Pick a lock (varies per iteration via the runtime RNG).
        unsigned lockIdx =
            static_cast<unsigned>(prng.below(numLocks));
        b.li(rLock, static_cast<std::int64_t>(locks[lockIdx]));
        if (kind == LockKind::Mcs)
            b.li(rQn, static_cast<std::int64_t>(
                          qnodes[static_cast<size_t>(c)][lockIdx]));
        emitAcquire(b, kind, rLock, rQn, rT0, rT1, rT2);
        // Optionally nest a second (strictly higher-index) lock so no
        // lock-order deadlock is possible.
        unsigned lock2Idx = 0;
        bool doNest = nested && kind == LockKind::TestAndTestAndSet &&
                      lockIdx + 1 < numLocks;
        if (doNest) {
            lock2Idx = lockIdx + 1;
            b.li(rLock2, static_cast<std::int64_t>(locks[lock2Idx]));
            emitAcquire(b, kind, rLock2, rQn, rT0, rT1, rT2);
        }
        // Touch 1..blocksPerLock counters of the outer lock's region.
        unsigned touches =
            1 + static_cast<unsigned>(prng.below(blocksPerLock));
        for (unsigned t = 0; t < touches; ++t) {
            Addr a = blocks[lockIdx * blocksPerLock + t];
            b.li(rAddr, static_cast<std::int64_t>(a));
            b.ld(rVal, rAddr);
            b.addi(rVal, rVal, 1);
            b.st(rVal, rAddr);
        }
        if (doNest) {
            Addr a = blocks[lock2Idx * blocksPerLock];
            b.li(rAddr, static_cast<std::int64_t>(a));
            b.ld(rVal, rAddr);
            b.addi(rVal, rVal, 1);
            b.st(rVal, rAddr);
            emitTtsRelease(b, rLock2);
        }
        emitRelease(b, kind, rLock, rQn, rT0, rT1);
        if (delayMax > 0) {
            b.li(rT0, delayMax);
            b.rnd(rT1, rT0);
            b.delay(rT1);
        }
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }

    // Validation: total increments across all blocks must equal the
    // total number of touches, which we recompute deterministically
    // from the same per-cpu RNG streams.
    std::uint64_t expected = 0;
    for (int c = 0; c < cpus; ++c) {
        Rng prng = rng.fork(static_cast<std::uint64_t>(c) + 100);
        unsigned lockIdx = static_cast<unsigned>(prng.below(numLocks));
        bool doNest = nested && kind == LockKind::TestAndTestAndSet &&
                      lockIdx + 1 < numLocks;
        unsigned touches =
            1 + static_cast<unsigned>(prng.below(blocksPerLock));
        expected += (touches + (doNest ? 1 : 0)) *
                    static_cast<std::uint64_t>(iters);
    }
    std::vector<Addr> blocksCopy = blocks;
    wl.validate = [blocksCopy, expected](System &sys) {
        std::uint64_t sum = 0;
        for (Addr a : blocksCopy)
            sum += readCoherent(sys, a);
        return sum == expected;
    };
    return wl;
}

} // namespace tlrtest

#endif // TLR_TESTS_RANDOM_WORKLOAD_HH

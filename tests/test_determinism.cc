/**
 * @file
 * Determinism and event-pool regression tests for the host-performance
 * kernel: identical configs must produce byte-identical stats dumps,
 * parallel sweeps must equal serial sweeps, and the pooled event
 * representation (inline vs spilled captures, timing wheel vs far
 * heap, reset()) must behave as documented.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "sim/event_queue.hh"
#include "trace/sink.hh"
#include "workloads/micro.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

/** Kernel scheduling shape (batched vs per-global segments, dynamic vs
 *  fixed windows, explicit lookahead). Simulated results must not
 *  depend on any of it; only the pkernel.* scheduling counters may. */
struct WindowPolicy
{
    bool batched = true;
    bool dynamic = true;
    Tick lookahead = 0;
};

/** Drop the "pkernel.*" counter lines from a stats dump. Scheduling
 *  policies (window size, batching) legitimately change how many
 *  windows/barriers/segments the kernel ran, so cross-policy
 *  comparisons strip them; everything else must stay byte-identical.
 *  Same-policy thread-count comparisons keep the full dump. */
std::string
stripPkernel(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    std::size_t pos = 0;
    while (pos < json.size()) {
        std::size_t eol = json.find('\n', pos);
        if (eol == std::string::npos)
            eol = json.size() - 1;
        if (json.find("\"pkernel.", pos) >= eol)
            out.append(json, pos, eol - pos + 1);
        pos = eol + 1;
    }
    return out;
}

MicroParams
microParams(Scheme s, int cpus, std::uint64_t ops)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = ops;
    return p;
}

MachineParams
machineParams(Scheme s, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    return mp;
}

// Run one config to completion and return the full stats JSON dump.
std::string
statsJson(Scheme s, int cpus, std::uint64_t ops)
{
    System sys(machineParams(s, cpus));
    installWorkload(sys, makeSingleCounter(microParams(s, cpus, ops)));
    EXPECT_TRUE(sys.run());
    return sys.stats().dumpJson();
}

// One run on the parallel kernel; returns "cycles\n<stats json>" so a
// single string equality covers both the simulated-time result and
// every counter. Pass @p raw to also collect the trace-file record
// stream the run produced.
std::string
parallelFingerprint(Scheme s, Protocol proto, int cpus, std::uint64_t ops,
                    unsigned threads, WindowPolicy pol = {},
                    std::vector<TraceRecord> *raw = nullptr)
{
    MachineParams mp = machineParams(s, cpus);
    mp.protocol = proto;
    mp.threads = threads;
    mp.lookahead = pol.lookahead;
    mp.batchedGlobals = pol.batched;
    mp.dynamicLookahead = pol.dynamic;
    System sys(mp);
    struct Collector : TraceListener
    {
        std::vector<TraceRecord> *out;
        void onRecord(const TraceRecord &r) override
        {
            out->push_back(r);
        }
    } col;
    if (raw) {
        col.out = raw;
        sys.addTraceListener(&col);
    }
    installWorkload(sys, makeSingleCounter(microParams(s, cpus, ops)));
    EXPECT_TRUE(sys.run());
    return std::to_string(sys.completionTick()) + "/" +
           std::to_string(sys.kernelEventsExecuted()) + "\n" +
           sys.stats().dumpJson();
}

} // namespace

TEST(Determinism, SameConfigTwiceByteIdenticalStats)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr}) {
        std::string a = statsJson(s, 8, 512);
        std::string b = statsJson(s, 8, 512);
        EXPECT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "scheme " << schemeName(s);
    }
}

TEST(Determinism, SweepSerialEqualsParallel)
{
    auto makeTasks = [] {
        std::vector<SweepTask> tasks;
        for (Scheme s : {Scheme::Base, Scheme::Mcs, Scheme::BaseSleTlr})
            for (int n : {2, 4, 8})
                tasks.push_back(makeSweepTask(
                    std::string(schemeName(s)) + "/p" + std::to_string(n),
                    machineParams(s, n),
                    makeMultipleCounter(microParams(s, n, 512))));
        return tasks;
    };
    auto serial = runSweep(makeTasks(), 1);
    auto parallel = runSweep(makeTasks(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const RunStats &a = serial[i].stats;
        const RunStats &b = parallel[i].stats;
        EXPECT_EQ(a.completed, b.completed) << i;
        EXPECT_EQ(a.valid, b.valid) << i;
        EXPECT_EQ(a.cycles, b.cycles) << i;
        EXPECT_EQ(a.commits, b.commits) << i;
        EXPECT_EQ(a.restarts, b.restarts) << i;
        EXPECT_EQ(a.busTransactions, b.busTransactions) << i;
        EXPECT_EQ(a.l1Misses, b.l1Misses) << i;
        EXPECT_EQ(a.kernelEvents, b.kernelEvents) << i;
    }
}

TEST(Determinism, FullRunStatsJsonStableAcrossRepeats)
{
    // Harness-level: runWorkload twice, compare the one-line summary
    // fields the figures are built from.
    MachineParams mp = machineParams(Scheme::BaseSleTlr, 4);
    Workload wl =
        makeDoublyLinkedList(microParams(Scheme::BaseSleTlr, 4, 256));
    RunStats a = runWorkload(mp, wl);
    RunStats b = runWorkload(mp, wl);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.kernelEvents, b.kernelEvents);
}

// DESIGN.md §13 hard requirement: the partitioned kernel's results
// are bit-identical for every worker count, per scheme and protocol.
// The schedule (windows, barriers, commit order) depends only on the
// configuration, so threads=2/4/8 must reproduce threads=1 exactly —
// simulated cycles, event population and every counter.
TEST(ParallelDeterminism, ThreadCountBitIdenticalAllSchemes)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr,
                     Scheme::TlrStrictTs, Scheme::Mcs}) {
        for (Protocol proto : {Protocol::Broadcast, Protocol::Directory}) {
            std::string base =
                parallelFingerprint(s, proto, 4, 128, 1);
            for (unsigned t : {2u, 4u, 8u}) {
                EXPECT_EQ(base, parallelFingerprint(s, proto, 4, 128, t))
                    << schemeName(s) << " proto "
                    << (proto == Protocol::Directory ? "dir" : "bus")
                    << " threads " << t;
            }
        }
    }
}

TEST(ParallelDeterminism, LookaheadOneStressBitIdentical)
{
    // lookahead=1 maximizes barrier count — every window is a single
    // tick wide. More synchronization, identical results. The window
    // policy differs from the default run, so the pkernel scheduling
    // counters are stripped; thread counts within the stress policy
    // still compare the full dump.
    WindowPolicy one;
    one.lookahead = 1;
    for (Protocol proto : {Protocol::Broadcast, Protocol::Directory}) {
        std::string base = stripPkernel(
            parallelFingerprint(Scheme::BaseSleTlr, proto, 4, 128, 1));
        std::string stress1 =
            parallelFingerprint(Scheme::BaseSleTlr, proto, 4, 128, 1, one);
        std::string stress4 =
            parallelFingerprint(Scheme::BaseSleTlr, proto, 4, 128, 4, one);
        EXPECT_EQ(stress1, stress4); // same policy: full-dump identity
        EXPECT_EQ(base, stripPkernel(stress1));
        EXPECT_EQ(base, stripPkernel(stress4));
    }
}

// Satellite of the batched/dynamic overhaul: every combination of the
// scheduling knobs produces the same simulated cycles, event
// population, stats (minus the pkernel scheduling counters) and the
// same raw trace byte stream — the policies change host scheduling
// shape only. Within each policy, thread counts stay fully
// bit-identical including the pkernel counters.
TEST(ParallelDeterminism, WindowPolicyMatrixInvariant)
{
    const WindowPolicy policies[] = {
        {true, true, 0},   // default: batched + dynamic
        {false, false, 0}, // compat: the PR 7 schedule
        {true, false, 0},  // batched segments, fixed windows
        {false, true, 0},  // per-global segments, dynamic windows
    };
    for (Protocol proto : {Protocol::Broadcast, Protocol::Directory}) {
        std::vector<TraceRecord> baseRaw;
        std::string base = parallelFingerprint(
            Scheme::BaseSleTlr, proto, 4, 128, 1, policies[0], &baseRaw);
        ASSERT_FALSE(baseRaw.empty());
        for (const WindowPolicy &pol : policies) {
            std::vector<TraceRecord> raw;
            std::string one = parallelFingerprint(
                Scheme::BaseSleTlr, proto, 4, 128, 1, pol, &raw);
            EXPECT_EQ(stripPkernel(base), stripPkernel(one))
                << "batched=" << pol.batched
                << " dynamic=" << pol.dynamic;
            ASSERT_EQ(baseRaw.size(), raw.size());
            for (std::size_t i = 0; i < raw.size(); ++i) {
                ASSERT_EQ(0, std::memcmp(&baseRaw[i], &raw[i],
                                         sizeof(TraceRecord)))
                    << "raw trace diverges at record " << i
                    << " batched=" << pol.batched
                    << " dynamic=" << pol.dynamic;
            }
            for (unsigned t : {2u, 4u, 8u}) {
                EXPECT_EQ(one, parallelFingerprint(Scheme::BaseSleTlr,
                                                   proto, 4, 128, t, pol))
                    << "threads " << t << " batched=" << pol.batched
                    << " dynamic=" << pol.dynamic;
            }
        }
    }
}

// Compat-policy twin of ThreadCountBitIdenticalAllSchemes: with
// batching and dynamic windows disabled the kernel must still be
// bit-identical for every worker count across the scheme matrix.
TEST(ParallelDeterminism, CompatPolicyThreadBitIdenticalAllSchemes)
{
    WindowPolicy compat{false, false, 0};
    for (Scheme s : {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr,
                     Scheme::TlrStrictTs, Scheme::Mcs}) {
        for (Protocol proto : {Protocol::Broadcast, Protocol::Directory}) {
            std::string base =
                parallelFingerprint(s, proto, 4, 128, 1, compat);
            for (unsigned t : {2u, 4u, 8u}) {
                EXPECT_EQ(base,
                          parallelFingerprint(s, proto, 4, 128, t, compat))
                    << schemeName(s) << " proto "
                    << (proto == Protocol::Directory ? "dir" : "bus")
                    << " threads " << t;
            }
        }
    }
}

TEST(ParallelDeterminism, OversizedLookaheadClampedNotFatal)
{
    // Requests past min(snoopLatency, dataLatency) are clamped to the
    // derived bound, so the result matches the default window size.
    WindowPolicy oversized;
    oversized.lookahead = 1'000'000;
    std::string base = parallelFingerprint(Scheme::BaseSleTlr,
                                           Protocol::Broadcast, 4, 128, 2);
    EXPECT_EQ(base, parallelFingerprint(Scheme::BaseSleTlr,
                                        Protocol::Broadcast, 4, 128, 2,
                                        oversized));
}

TEST(ParallelDeterminism, DbWorkloadBitIdentical)
{
    WorkloadParams wp;
    wp.numCpus = 4;
    wp.ops = 48;
    wp.seed = 7;
    auto fp = [&](unsigned threads, WindowPolicy pol = {}) {
        MachineParams mp = machineParams(Scheme::BaseSleTlr, 4);
        mp.threads = threads;
        mp.batchedGlobals = pol.batched;
        mp.dynamicLookahead = pol.dynamic;
        wp.lockKind = schemeLockKind(Scheme::BaseSleTlr);
        System sys(mp);
        installWorkload(sys, makeRegisteredWorkload("ycsb-a", wp));
        EXPECT_TRUE(sys.run());
        return std::to_string(sys.completionTick()) + "\n" +
               sys.stats().dumpJson();
    };
    std::string base = fp(1);
    EXPECT_EQ(base, fp(2));
    EXPECT_EQ(base, fp(8));
    // Compat window policy: same simulated results on the db workload,
    // thread-count identity within the policy.
    WindowPolicy compat{false, false, 0};
    std::string compatBase = fp(1, compat);
    EXPECT_EQ(compatBase, fp(4, compat));
    EXPECT_EQ(stripPkernel(base), stripPkernel(compatBase));
}

// The acceptance artifact for the timeline subsystem: the same
// --timeline-epoch run at any thread count emits a byte-identical CSV
// (epoch rows AND the alert stream), because the timeline is a pure
// listener on the stitched record stream. Classic mode (threads=0) is
// held to the same bytes — the partitioned schedule replays the same
// record sequence the single queue produces.
TEST(ParallelDeterminism, TimelineCsvBitIdenticalAcrossThreads)
{
    WorkloadParams wp;
    wp.numCpus = 8;
    wp.ops = 64;
    wp.seed = 7;
    auto csv = [&](unsigned threads) {
        MachineParams mp = machineParams(Scheme::BaseSleTlr, 8);
        mp.threads = threads;
        mp.timelineEpoch = 1500;
        wp.lockKind = schemeLockKind(Scheme::BaseSleTlr);
        System sys(mp);
        installWorkload(sys, makeRegisteredWorkload("ycsb-a", wp));
        EXPECT_TRUE(sys.run());
        return sys.timeline()->csv();
    };
    std::string base = csv(1);
    EXPECT_FALSE(base.empty());
    EXPECT_EQ(base, csv(2));
    EXPECT_EQ(base, csv(4));
    EXPECT_EQ(base, csv(8));
    EXPECT_EQ(base, csv(0)); // classic kernel, same record stream
}

// Attaching the timeline must not move a single event: cycles and
// every stats counter stay bit-identical to a timeline-off run, on
// both the classic and the partitioned kernel.
TEST(ParallelDeterminism, TimelineOffOnSameSimulatedResults)
{
    auto fp = [&](unsigned threads, Tick epoch) {
        MachineParams mp = machineParams(Scheme::BaseSleTlr, 4);
        mp.threads = threads;
        mp.timelineEpoch = epoch;
        System sys(mp);
        installWorkload(sys, makeSingleCounter(
                                 microParams(Scheme::BaseSleTlr, 4,
                                             2048)));
        EXPECT_TRUE(sys.run());
        return std::to_string(sys.completionTick()) + "\n" +
               sys.stats().dumpJson();
    };
    EXPECT_EQ(fp(0, 0), fp(0, 1000));
    EXPECT_EQ(fp(4, 0), fp(4, 1000));
}

TEST(ParallelDeterminism, WatchdogBitIdenticalAcrossThreads)
{
    auto fp = [&](unsigned threads) {
        MachineParams mp = machineParams(Scheme::BaseSleTlr, 4);
        mp.threads = threads;
        mp.maxTicks = 3000; // cut the run short
        System sys(mp);
        installWorkload(
            sys, makeSingleCounter(
                     microParams(Scheme::BaseSleTlr, 4, 100000)));
        EXPECT_FALSE(sys.run()); // watchdog, not completion
        return sys.stats().dumpJson();
    };
    EXPECT_EQ(fp(1), fp(4));
}

TEST(EventPool, SmallCapturesStayInline)
{
    EventQueue eq;
    std::uint64_t before = eq.kernelStats().spilledEvents;
    std::uint64_t inlineBefore = eq.kernelStats().inlineEvents;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(i, [&fired] { ++fired; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.kernelStats().spilledEvents, before);
    EXPECT_EQ(eq.kernelStats().inlineEvents, inlineBefore + 100);
}

TEST(EventPool, OversizedCapturesSpillAndStillRun)
{
    struct Big
    {
        char bytes[256];
    };
    EventQueue eq;
    std::uint64_t spillBefore = eq.kernelStats().spilledEvents;
    Big big{};
    big.bytes[0] = 42;
    big.bytes[255] = 7;
    int sum = 0;
    eq.schedule(1, [big, &sum] { sum = big.bytes[0] + big.bytes[255]; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(sum, 49);
    EXPECT_EQ(eq.kernelStats().spilledEvents, spillBefore + 1);
}

TEST(EventPool, SpilledCaptureDestructorRunsOnReset)
{
    struct Tracker
    {
        int *count;
        char pad[200]; // force the spill path
        explicit Tracker(int *c) : count(c), pad{} { ++*count; }
        Tracker(const Tracker &o) : count(o.count), pad{} { ++*count; }
        ~Tracker() { --*count; }
    };
    int live = 0;
    {
        EventQueue eq;
        Tracker t(&live);
        eq.schedule(5, [t] { (void)t; });
        EXPECT_GE(live, 2);
        eq.reset(); // must destroy the pending spilled capture
        EXPECT_EQ(live, 1);
    }
    EXPECT_EQ(live, 0); // stack copy destroyed at scope exit, no leaks
}

TEST(EventPool, WheelHeapBoundaryOrdering)
{
    // Mix of near events (inside the 512-tick wheel window), events at
    // the exact boundary, and far events that start on the heap and
    // migrate into the wheel as time advances.
    EventQueue eq;
    std::vector<Tick> order;
    auto at = [&](Tick t) { eq.schedule(t, [&order, t] { order.push_back(t); }); };
    at(3);
    at(511);           // last wheel slot of the initial window
    at(512);           // first far event
    at(513);
    at(5000);          // deep in the far heap
    at(1024);          // exactly one window ahead
    at(0);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order,
              (std::vector<Tick>{0, 3, 511, 512, 513, 1024, 5000}));
    EXPECT_EQ(eq.now(), Tick{5000});
}

TEST(EventPool, FarEventsCanScheduleNearEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(2000, [&] {
        order.push_back(1);
        eq.scheduleIn(1, [&] { order.push_back(2); });
        eq.scheduleIn(600, [&] { order.push_back(3); }); // far again
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), Tick{2600});
}

TEST(EventPool, ResetClearsExecutedStopAndPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] {
        ++fired;
        eq.requestStop();
    });
    eq.schedule(3, [&] { ++fired; }); // never runs: stop requested
    EXPECT_TRUE(eq.run()); // stop counts as an orderly finish
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.executed(), 2u);

    eq.reset();
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_EQ(eq.now(), Tick{0});
    EXPECT_TRUE(eq.empty());

    // The dropped tick-3 event must not fire after reset, stop state
    // must be cleared, and time restarts from zero.
    int after = 0;
    eq.schedule(4, [&] { ++after; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(after, 1);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.now(), Tick{4});
}

TEST(EventPool, PoolRecyclesNodesAcrossRuns)
{
    // Steady-state scheduling should reuse pooled nodes: chunk count
    // stops growing once the working set fits.
    EventQueue eq;
    std::function<void()> chain;
    int fired = 0;
    chain = [&] {
        if (++fired < 10000)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    std::uint64_t chunks = eq.kernelStats().poolChunks;
    EXPECT_GE(chunks, 1u);
    // One live event at a time -> a single 64-node chunk suffices.
    EXPECT_LE(chunks, 2u);
}

/**
 * @file
 * Determinism and event-pool regression tests for the host-performance
 * kernel: identical configs must produce byte-identical stats dumps,
 * parallel sweeps must equal serial sweeps, and the pooled event
 * representation (inline vs spilled captures, timing wheel vs far
 * heap, reset()) must behave as documented.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "sim/event_queue.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

MicroParams
microParams(Scheme s, int cpus, std::uint64_t ops)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = ops;
    return p;
}

MachineParams
machineParams(Scheme s, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    return mp;
}

// Run one config to completion and return the full stats JSON dump.
std::string
statsJson(Scheme s, int cpus, std::uint64_t ops)
{
    System sys(machineParams(s, cpus));
    installWorkload(sys, makeSingleCounter(microParams(s, cpus, ops)));
    EXPECT_TRUE(sys.run());
    return sys.stats().dumpJson();
}

} // namespace

TEST(Determinism, SameConfigTwiceByteIdenticalStats)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr}) {
        std::string a = statsJson(s, 8, 512);
        std::string b = statsJson(s, 8, 512);
        EXPECT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "scheme " << schemeName(s);
    }
}

TEST(Determinism, SweepSerialEqualsParallel)
{
    auto makeTasks = [] {
        std::vector<SweepTask> tasks;
        for (Scheme s : {Scheme::Base, Scheme::Mcs, Scheme::BaseSleTlr})
            for (int n : {2, 4, 8})
                tasks.push_back(makeSweepTask(
                    std::string(schemeName(s)) + "/p" + std::to_string(n),
                    machineParams(s, n),
                    makeMultipleCounter(microParams(s, n, 512))));
        return tasks;
    };
    auto serial = runSweep(makeTasks(), 1);
    auto parallel = runSweep(makeTasks(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const RunStats &a = serial[i].stats;
        const RunStats &b = parallel[i].stats;
        EXPECT_EQ(a.completed, b.completed) << i;
        EXPECT_EQ(a.valid, b.valid) << i;
        EXPECT_EQ(a.cycles, b.cycles) << i;
        EXPECT_EQ(a.commits, b.commits) << i;
        EXPECT_EQ(a.restarts, b.restarts) << i;
        EXPECT_EQ(a.busTransactions, b.busTransactions) << i;
        EXPECT_EQ(a.l1Misses, b.l1Misses) << i;
        EXPECT_EQ(a.kernelEvents, b.kernelEvents) << i;
    }
}

TEST(Determinism, FullRunStatsJsonStableAcrossRepeats)
{
    // Harness-level: runWorkload twice, compare the one-line summary
    // fields the figures are built from.
    MachineParams mp = machineParams(Scheme::BaseSleTlr, 4);
    Workload wl =
        makeDoublyLinkedList(microParams(Scheme::BaseSleTlr, 4, 256));
    RunStats a = runWorkload(mp, wl);
    RunStats b = runWorkload(mp, wl);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.kernelEvents, b.kernelEvents);
}

TEST(EventPool, SmallCapturesStayInline)
{
    EventQueue eq;
    std::uint64_t before = eq.kernelStats().spilledEvents;
    std::uint64_t inlineBefore = eq.kernelStats().inlineEvents;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(i, [&fired] { ++fired; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.kernelStats().spilledEvents, before);
    EXPECT_EQ(eq.kernelStats().inlineEvents, inlineBefore + 100);
}

TEST(EventPool, OversizedCapturesSpillAndStillRun)
{
    struct Big
    {
        char bytes[256];
    };
    EventQueue eq;
    std::uint64_t spillBefore = eq.kernelStats().spilledEvents;
    Big big{};
    big.bytes[0] = 42;
    big.bytes[255] = 7;
    int sum = 0;
    eq.schedule(1, [big, &sum] { sum = big.bytes[0] + big.bytes[255]; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(sum, 49);
    EXPECT_EQ(eq.kernelStats().spilledEvents, spillBefore + 1);
}

TEST(EventPool, SpilledCaptureDestructorRunsOnReset)
{
    struct Tracker
    {
        int *count;
        char pad[200]; // force the spill path
        explicit Tracker(int *c) : count(c), pad{} { ++*count; }
        Tracker(const Tracker &o) : count(o.count), pad{} { ++*count; }
        ~Tracker() { --*count; }
    };
    int live = 0;
    {
        EventQueue eq;
        Tracker t(&live);
        eq.schedule(5, [t] { (void)t; });
        EXPECT_GE(live, 2);
        eq.reset(); // must destroy the pending spilled capture
        EXPECT_EQ(live, 1);
    }
    EXPECT_EQ(live, 0); // stack copy destroyed at scope exit, no leaks
}

TEST(EventPool, WheelHeapBoundaryOrdering)
{
    // Mix of near events (inside the 512-tick wheel window), events at
    // the exact boundary, and far events that start on the heap and
    // migrate into the wheel as time advances.
    EventQueue eq;
    std::vector<Tick> order;
    auto at = [&](Tick t) { eq.schedule(t, [&order, t] { order.push_back(t); }); };
    at(3);
    at(511);           // last wheel slot of the initial window
    at(512);           // first far event
    at(513);
    at(5000);          // deep in the far heap
    at(1024);          // exactly one window ahead
    at(0);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order,
              (std::vector<Tick>{0, 3, 511, 512, 513, 1024, 5000}));
    EXPECT_EQ(eq.now(), Tick{5000});
}

TEST(EventPool, FarEventsCanScheduleNearEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(2000, [&] {
        order.push_back(1);
        eq.scheduleIn(1, [&] { order.push_back(2); });
        eq.scheduleIn(600, [&] { order.push_back(3); }); // far again
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), Tick{2600});
}

TEST(EventPool, ResetClearsExecutedStopAndPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] {
        ++fired;
        eq.requestStop();
    });
    eq.schedule(3, [&] { ++fired; }); // never runs: stop requested
    EXPECT_TRUE(eq.run()); // stop counts as an orderly finish
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.executed(), 2u);

    eq.reset();
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_EQ(eq.now(), Tick{0});
    EXPECT_TRUE(eq.empty());

    // The dropped tick-3 event must not fire after reset, stop state
    // must be cleared, and time restarts from zero.
    int after = 0;
    eq.schedule(4, [&] { ++after; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(after, 1);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.now(), Tick{4});
}

TEST(EventPool, PoolRecyclesNodesAcrossRuns)
{
    // Steady-state scheduling should reuse pooled nodes: chunk count
    // stops growing once the working set fits.
    EventQueue eq;
    std::function<void()> chain;
    int fired = 0;
    chain = [&] {
        if (++fired < 10000)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    std::uint64_t chunks = eq.kernelStats().poolChunks;
    EXPECT_GE(chunks, 1u);
    // One live event at a time -> a single 64-node chunk suffices.
    EXPECT_LE(chunks, 2u);
}

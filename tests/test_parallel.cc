/**
 * @file
 * Parallel simulation kernel tests (DESIGN.md §13): raw-trace byte
 * identity across worker counts, per-partition RNG stream golden
 * vectors, the capture/stitch trace machinery, jobs/threads core-
 * budget resolution, and invariant checkers riding the stitched
 * stream.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness/scheme.hh"
#include "harness/sweep.hh"
#include "workloads/registry.hh"
#include "harness/system.hh"
#include "sim/parallel_kernel.hh"
#include "sim/rng.hh"
#include "trace/sink.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

/** Records the raw event stream exactly as a trace-file writer would
 *  see it. */
class RecordCollector : public TraceListener
{
  public:
    void onRecord(const TraceRecord &r) override { records.push_back(r); }
    std::vector<TraceRecord> records;
};

MachineParams
machineParams(Scheme s, Protocol proto, int cpus, unsigned threads)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.protocol = proto;
    mp.spec = schemeSpecConfig(s);
    mp.threads = threads;
    mp.trace.checkInvariants = true; // checkers ride the stitched stream
    return mp;
}

std::vector<TraceRecord>
traceRecords(Scheme s, Protocol proto, int cpus, std::uint64_t ops,
             unsigned threads, std::uint64_t *violations_out = nullptr)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = ops;
    System sys(machineParams(s, proto, cpus, threads));
    RecordCollector col;
    sys.addTraceListener(&col);
    installWorkload(sys, makeSingleCounter(p));
    EXPECT_TRUE(sys.run());
    if (violations_out)
        *violations_out = sys.stats().get("trace", "violations");
    return col.records;
}

void
expectSameRecords(const std::vector<TraceRecord> &a,
                  const std::vector<TraceRecord> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(0, std::memcmp(&a[i], &b[i], sizeof(TraceRecord)))
            << what << " diverges at record " << i << " (tick "
            << a[i].tick << " vs " << b[i].tick << ")";
    }
}

} // namespace

// The headline trace contract: every record a trace-file writer sees —
// field for field, including the assigned seq numbers — is identical
// for every worker count. This is what keeps --trace-raw files and
// everything downstream of the sink (checkers, metrics, explain)
// byte-stable under --threads.
TEST(ParallelTrace, RawStreamByteIdenticalAcrossThreads)
{
    for (Protocol proto : {Protocol::Broadcast, Protocol::Directory}) {
        std::uint64_t viol = 0;
        auto base = traceRecords(Scheme::BaseSleTlr, proto, 4, 96, 1,
                                 &viol);
        EXPECT_FALSE(base.empty());
        EXPECT_EQ(viol, 0u);
        for (unsigned t : {2u, 4u, 8u}) {
            auto other =
                traceRecords(Scheme::BaseSleTlr, proto, 4, 96, t, &viol);
            EXPECT_EQ(viol, 0u) << "threads " << t;
            expectSameRecords(base, other,
                              proto == Protocol::Directory ? "directory" :
                                                             "broadcast");
        }
    }
}

TEST(ParallelTrace, StitchedStreamIsTickSortedWithSeqAssigned)
{
    auto recs = traceRecords(Scheme::BaseSleTlr, Protocol::Broadcast, 4,
                             96, 4);
    ASSERT_FALSE(recs.empty());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].seq, i); // replay assigns the global seq
        if (i > 0) {
            EXPECT_LE(recs[i - 1].tick, recs[i].tick)
                << "stitched stream out of tick order at " << i;
        }
    }
}

// Capture-mode unit semantics: buffered records carry no seq; replay
// through emitRecord() assigns the global sequence and fans out; a
// redirected sink buffers into the redirect target.
TEST(ParallelTrace, CaptureAndRedirectUnit)
{
    TraceSink capture;
    capture.enableCapture();
    EXPECT_TRUE(capture.armed());
    capture.emit(10, TraceComp::L1, TraceEvent::LineInval, 0, 0x40);
    ASSERT_EQ(capture.captured().size(), 1u);
    EXPECT_EQ(capture.emitted(), 0u); // buffered, not emitted

    TraceSink serial;
    serial.enableCapture();
    capture.setCaptureRedirect(&serial);
    capture.emit(11, TraceComp::L1, TraceEvent::LineInval, 1, 0x80);
    EXPECT_EQ(capture.captured().size(), 1u); // unchanged
    ASSERT_EQ(serial.captured().size(), 1u);  // diverted
    EXPECT_EQ(serial.captured()[0].tick, Tick{11});
    capture.setCaptureRedirect(nullptr);

    TraceSink real;
    RecordCollector col;
    real.addListener(&col);
    real.emitRecord(capture.captured()[0]);
    real.emitRecord(serial.captured()[0]);
    ASSERT_EQ(col.records.size(), 2u);
    EXPECT_EQ(col.records[0].seq, 0u);
    EXPECT_EQ(col.records[1].seq, 1u);
    EXPECT_EQ(col.records[0].tick, Tick{10});
    EXPECT_EQ(col.records[1].tick, Tick{11});
}

// Satellite (b): per-partition RNG streams are forked from the machine
// seed with a fixed, documented salt. Golden vectors pin the exact
// derivation so it can never drift silently between releases — a
// drift would change any future partition-local randomization and
// silently break cross-version reproducibility.
TEST(ParallelRng, PartitionSeedSaltGolden)
{
    EXPECT_EQ(ParallelKernel::partitionSeedSalt(0), 0x70617274ull);
    EXPECT_EQ(ParallelKernel::partitionSeedSalt(1), 0x70617275ull);
    EXPECT_EQ(ParallelKernel::partitionSeedSalt(7), 0x7061727bull);
}

TEST(ParallelRng, PartitionStreamGoldenVectors)
{
    struct Golden
    {
        std::uint64_t seed;
        int part;
        std::uint64_t next0;
        std::uint64_t next1;
    };
    const Golden golden[] = {
        {12345, 0, 0xa6fa42300001674aull, 0x125eb36e24e970e6ull},
        {12345, 1, 0x77c7731daad0a5f5ull, 0xf8951a00ef6ca1b2ull},
        {12345, 2, 0x0e03cd9804ec41b7ull, 0x6b902c55b22be09cull},
        {99, 0, 0xe1d4e876af68a4a0ull, 0x0d780aee35561db7ull},
        {99, 1, 0xf5564b6000978892ull, 0x38f645f3cd2f4edeull},
        {99, 2, 0x3876ea5aafc8db0bull, 0xfc652e9f1a28bf5full},
    };
    for (const Golden &g : golden) {
        Rng r = Rng(g.seed).fork(ParallelKernel::partitionSeedSalt(g.part));
        EXPECT_EQ(r.next(), g.next0)
            << "seed " << g.seed << " partition " << g.part;
        EXPECT_EQ(r.next(), g.next1)
            << "seed " << g.seed << " partition " << g.part;
    }
}

TEST(ParallelRng, KernelExposesDerivedStreams)
{
    MachineParams mp;
    mp.numCpus = 2;
    mp.threads = 1;
    mp.seed = 12345;
    System sys(mp);
    ASSERT_NE(sys.kernel(), nullptr);
    ASSERT_EQ(sys.kernel()->numPartitions(), 3);
    EXPECT_EQ(sys.kernel()->partitionRng(0).next(),
              0xa6fa42300001674aull);
    EXPECT_EQ(sys.kernel()->partitionRng(2).next(),
              0x0e03cd9804ec41b7ull);
    // Partition salts must not collide with the per-core forks
    // (salt i+1) used for program interleaving.
    for (int p = 0; p < 3; ++p)
        EXPECT_GT(ParallelKernel::partitionSeedSalt(p), 1000u);
}

// Satellite (a): --jobs and --threads share one host core budget.
TEST(ParallelJobs, ResolveJobsBudget)
{
    // An explicit request always wins, whatever the per-sim width.
    EXPECT_EQ(resolveJobs(5, 1), 5u);
    EXPECT_EQ(resolveJobs(5, 8), 5u);
    EXPECT_EQ(resolveJobs(1, 64), 1u);
    // Auto divides the hardware budget by the per-sim worker count,
    // floored at one job.
    unsigned hw = defaultJobs();
    EXPECT_EQ(resolveJobs(0, 0), hw);
    EXPECT_EQ(resolveJobs(0, 1), hw);
    EXPECT_EQ(resolveJobs(0, 2), hw / 2 ? hw / 2 : 1);
    EXPECT_EQ(resolveJobs(0, 100000), 1u);
}

TEST(ParallelKernelMisc, ClassicModeHasNoKernel)
{
    MachineParams mp;
    mp.numCpus = 2;
    System sys(mp);
    EXPECT_EQ(sys.kernel(), nullptr);
}

TEST(ParallelKernelMisc, EventPopulationMatchesClassicCount)
{
    // The partitioned kernel executes the same event population a
    // single queue does (partition events + ordering machine +
    // serialized globals); broadcast single-counter is exactly
    // classic-equal, so the totals line up event for event.
    MicroParams p;
    p.numCpus = 4;
    p.lockKind = schemeLockKind(Scheme::BaseSleTlr);
    p.totalOps = 96;
    auto events = [&](unsigned threads) {
        MachineParams mp;
        mp.numCpus = 4;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        mp.threads = threads;
        System sys(mp);
        installWorkload(sys, makeSingleCounter(p));
        EXPECT_TRUE(sys.run());
        return sys.kernelEventsExecuted();
    };
    std::uint64_t classic = events(0);
    EXPECT_EQ(classic, events(1));
    EXPECT_EQ(classic, events(4));
}

TEST(ParallelKernelMisc, PreemptionRoutedToPartitions)
{
    auto fingerprint = [&](unsigned threads) {
        MicroParams p;
        p.numCpus = 4;
        p.lockKind = schemeLockKind(Scheme::BaseSleTlr);
        p.totalOps = 96;
        MachineParams mp;
        mp.numCpus = 4;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        mp.threads = threads;
        System sys(mp);
        installWorkload(sys, makeSingleCounter(p));
        for (int k = 1; k <= 4; ++k)
            sys.preemptCore(k % 4, static_cast<Tick>(k) * 700, 500);
        EXPECT_TRUE(sys.run());
        return std::to_string(sys.completionTick()) + "\n" +
               sys.stats().dumpJson();
    };
    std::string base = fingerprint(1);
    EXPECT_EQ(base, fingerprint(2));
    EXPECT_EQ(base, fingerprint(8));
}

// Protocol-aware lookahead contract: a partition's promise is always
// its earliest pending event plus the minimum time any send needs to
// become visible elsewhere (minEffect), and draining the partition can
// only move the promise forward — promises are monotonically
// non-decreasing, which is what lets quiescent partitions widen the
// window instead of forcing the worst-case lookahead.
TEST(ParallelKernelMisc, LookaheadPromiseMonotonic)
{
    MachineParams mp;
    mp.numCpus = 2;
    mp.threads = 1;
    System sys(mp);
    ParallelKernel *k = sys.kernel();
    ASSERT_NE(k, nullptr);

    // minEffect is derived from the attached interconnect's timing.
    const Tick expect =
        std::min(mp.net.dataLatency,
                 sys.interconnect().orderingNotice() +
                     sys.interconnect().globalPostLag());
    EXPECT_EQ(k->minEffect(), expect);
    ASSERT_GE(k->minEffect(), Tick{1});

    // An idle partition promises "never": no event, no send.
    EXPECT_EQ(k->partitionPromise(1), ~Tick{0});

    // Promise tracks the earliest pending event + minEffect.
    k->queue(1).schedule(100, [] {});
    EXPECT_EQ(k->partitionPromise(1), Tick{100} + k->minEffect());
    k->queue(1).schedule(40, [] {});
    EXPECT_EQ(k->partitionPromise(1), Tick{40} + k->minEffect());

    // Draining events only moves the promise forward.
    Tick before = k->partitionPromise(1);
    k->queue(1).runBounded(50, 0); // executes the tick-40 event
    EXPECT_GE(k->partitionPromise(1), before);
    EXPECT_EQ(k->partitionPromise(1), Tick{100} + k->minEffect());
    k->queue(1).runBounded(101, 0); // drains the queue entirely
    EXPECT_EQ(k->partitionPromise(1), ~Tick{0});
}

// Partitioned directory banks: with dirBanks > 1, WriteBack entry
// updates run inside the bank owner's partition (pkernel.bankEvents)
// instead of as serialized globals, with bit-identical results across
// worker counts and the same completion tick as classic mode.
TEST(ParallelKernelMisc, DirectoryBanksRoutedToPartitions)
{
    WorkloadParams wp;
    wp.numCpus = 4;
    wp.ops = 96;
    wp.seed = 11;
    wp.lockKind = schemeLockKind(Scheme::BaseSleTlr);
    auto config = [&] {
        MachineParams mp;
        mp.numCpus = 4;
        mp.protocol = Protocol::Directory;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        mp.net.dirBanks = 4;
        // Shrink the L1 so dirty lines get evicted: WriteBacks are the
        // bank-local traffic this test is about.
        mp.l1.sizeBytes = 1024;
        mp.l1.victimEntries = 2;
        return mp;
    };
    std::uint64_t banked = 0, bankEvents = 0;
    auto fingerprint = [&](unsigned threads) {
        MachineParams mp = config();
        mp.threads = threads;
        System sys(mp);
        installWorkload(sys, makeRegisteredWorkload("ycsb-a", wp));
        EXPECT_TRUE(sys.run());
        banked = sys.stats().get("dir", "bankedWriteBacks");
        bankEvents = sys.stats().get("pkernel", "bankEvents");
        return std::to_string(sys.completionTick()) + "\n" +
               sys.stats().dumpJson();
    };

    std::string base = fingerprint(1);
    EXPECT_GT(banked, 0u);           // banking actually engaged
    EXPECT_EQ(bankEvents, banked);   // one partition event per WB
    EXPECT_EQ(base, fingerprint(2));
    EXPECT_EQ(base, fingerprint(8));

    // Classic mode exercises the same banked path through the plain
    // event queue. Classic and partitioned runs interleave same-tick
    // events differently (only thread counts >= 1 are bit-identical),
    // so the populations may differ slightly; the path must engage.
    System classic(config());
    installWorkload(classic, makeRegisteredWorkload("ycsb-a", wp));
    EXPECT_TRUE(classic.run());
    EXPECT_GT(classic.stats().get("dir", "bankedWriteBacks"), 0u);

    // Address-interleaved bank map introspection.
    auto *dir = dynamic_cast<DirectoryInterconnect *>(
        &classic.interconnect());
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->bankOf(0x00), 0);
    EXPECT_EQ(dir->bankOf(0x40), 1);
    EXPECT_EQ(dir->bankOf(0x7f), 1);  // sub-line bits ignored
    EXPECT_EQ(dir->bankOf(0x100), 0); // wraps mod dirBanks
    for (int b = 0; b < 4; ++b)
        EXPECT_EQ(dir->bankOwnerCpu(b), static_cast<CpuId>(b % 4));
}

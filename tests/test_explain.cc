/**
 * @file
 * Unit tests for the causal conflict explainer: trace-filter parsing,
 * the binary raw-trace round trip, wait-for graph construction (edge
 * spans, service causes, cycles, convoys, restart edges), the
 * critical-path tick decomposition with exact synthetic numbers, and a
 * full-system run proving the offline replay (tlrquery's path)
 * reproduces the online report byte for byte.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "explain/explain.hh"
#include "explain/rawtrace.hh"
#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "trace/filter.hh"
#include "trace/lifecycle.hh"
#include "workloads/scenarios.hh"

using namespace tlr;

namespace
{

TraceRecord
rec(Tick tick, TraceComp comp, TraceEvent kind, CpuId cpu, Addr addr,
    std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
    std::uint64_t a3 = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.comp = comp;
    r.kind = kind;
    r.cpu = static_cast<std::int16_t>(cpu);
    r.addr = addr;
    r.a0 = a0;
    r.a1 = a1;
    r.a2 = a2;
    r.a3 = a3;
    return r;
}

/** waiter deferred behind owner on line. */
TraceRecord
defer(Tick tick, CpuId owner, CpuId waiter, Addr line)
{
    return rec(tick, TraceComp::L1, TraceEvent::CohDefer, owner, line,
               waiter, static_cast<std::uint64_t>(ReqType::GetX));
}

/** owner lets waiter go on line. */
TraceRecord
service(Tick tick, CpuId owner, CpuId waiter, Addr line,
        ServiceCause cause = ServiceCause::CommitDrain)
{
    return rec(tick, TraceComp::L1, TraceEvent::CohService, owner, line,
               waiter, static_cast<std::uint64_t>(cause));
}

TraceRecord
elide(Tick tick, CpuId cpu, Addr lock, bool new_instance = true)
{
    return rec(tick, TraceComp::Spec, TraceEvent::TxnElide, cpu, lock,
               0, 0, 0, new_instance ? 1 : 0);
}

TraceRecord
commit(Tick tick, CpuId cpu)
{
    return rec(tick, TraceComp::Spec, TraceEvent::TxnCommit, cpu, 0);
}

} // namespace

// ---------------------------------------------------------------------
// TraceFilter

TEST(TraceFilter, DefaultMatchesEverything)
{
    TraceFilter f;
    EXPECT_TRUE(f.empty());
    EXPECT_TRUE(f.matches(defer(0, 1, 0, 0x40)));
    EXPECT_TRUE(f.matches(commit(999, 3)));
}

TEST(TraceFilter, RepeatedKeysOrDistinctKeysAnd)
{
    TraceFilter f;
    EXPECT_EQ(f.parse("cpu:1,cpu:3,class:Coh,tick:100-200"), "");
    EXPECT_FALSE(f.empty());

    // cpu 1, Coh class, tick in range: passes.
    EXPECT_TRUE(f.matches(defer(150, 1, 0, 0x40)));
    // cpu 3 also passes (cpu terms OR).
    EXPECT_TRUE(f.matches(defer(150, 3, 0, 0x40)));
    // cpu 2 fails the cpu term.
    EXPECT_FALSE(f.matches(defer(150, 2, 0, 0x40)));
    // Txn class fails the class term even on a listed cpu.
    EXPECT_FALSE(f.matches(elide(150, 1, 0x80)));
    // Out-of-range tick fails.
    EXPECT_FALSE(f.matches(defer(99, 1, 0, 0x40)));
    EXPECT_FALSE(f.matches(defer(201, 1, 0, 0x40)));
}

TEST(TraceFilter, KindCompAndAddrAliases)
{
    TraceFilter f;
    EXPECT_EQ(f.parse("kind:defer,kind:service"), "");
    EXPECT_TRUE(f.matches(defer(0, 1, 0, 0x40)));
    EXPECT_TRUE(f.matches(service(0, 1, 0, 0x40)));
    EXPECT_FALSE(f.matches(commit(0, 1)));

    TraceFilter g;
    EXPECT_EQ(g.parse("comp:L1,lock:0x40"), "");
    EXPECT_TRUE(g.matches(defer(0, 1, 0, 0x40)));
    EXPECT_FALSE(g.matches(defer(0, 1, 0, 0x80)));
    // "lock:", "line:" and "addr:" are the same key.
    TraceFilter h;
    EXPECT_EQ(h.parse("line:64"), "");
    EXPECT_TRUE(h.matches(defer(0, 1, 0, 0x40)));
}

TEST(TraceFilter, StackedParsesMerge)
{
    TraceFilter f;
    EXPECT_EQ(f.parse("cpu:0"), "");
    EXPECT_EQ(f.parse("cpu:2"), "");
    EXPECT_TRUE(f.matches(defer(0, 0, 1, 0x40)));
    EXPECT_TRUE(f.matches(defer(0, 2, 1, 0x40)));
    EXPECT_FALSE(f.matches(defer(0, 1, 0, 0x40)));
}

TEST(TraceFilter, RejectsMalformedTerms)
{
    TraceFilter f;
    EXPECT_NE(f.parse("bogus:3"), "");
    EXPECT_NE(f.parse("cpu:abc"), "");
    EXPECT_NE(f.parse("noseparator"), "");
    EXPECT_NE(f.parse("kind:not-an-event"), "");
    EXPECT_NE(f.parse("class:Wat"), "");
    EXPECT_NE(f.parse("tick:500"), "");
    EXPECT_NE(f.parse("tick:9-5"), "");
}

// ---------------------------------------------------------------------
// Raw binary trace file

TEST(RawTrace, HeaderAndRecordsRoundTrip)
{
    const std::string path = "test_rawtrace_roundtrip.bin";
    std::vector<TraceRecord> in;
    for (int i = 0; i < 5; ++i) {
        TraceRecord r = defer(100 + i, i % 3, (i + 1) % 3, 0x40 * i);
        r.seq = static_cast<std::uint64_t>(i);
        in.push_back(r);
    }

    {
        RawTraceWriter w;
        ASSERT_EQ(w.open(path), "");
        for (const TraceRecord &r : in)
            w.onRecord(r);
        w.finish(777);
        EXPECT_EQ(w.written(), 5u);
    }

    RawTraceReader rd;
    ASSERT_EQ(rd.open(path), "");
    EXPECT_EQ(rd.header().version, 1u);
    EXPECT_EQ(rd.header().recordSize, sizeof(TraceRecord));
    EXPECT_EQ(rd.header().recordCount, 5u);
    EXPECT_EQ(rd.header().finalTick, 777u);

    std::vector<TraceRecord> out;
    rd.forEach([&](const TraceRecord &r) { out.push_back(r); });
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(std::memcmp(&in[i], &out[i], sizeof(TraceRecord)), 0)
            << "record " << i;
    std::remove(path.c_str());
}

TEST(RawTrace, WriterAppliesFilter)
{
    const std::string path = "test_rawtrace_filtered.bin";
    RawTraceWriter w;
    ASSERT_EQ(w.open(path), "");
    TraceFilter f;
    ASSERT_EQ(f.parse("cpu:1"), "");
    w.setFilter(f);
    w.onRecord(defer(10, 1, 0, 0x40)); // kept
    w.onRecord(defer(20, 2, 0, 0x40)); // dropped
    w.onRecord(commit(30, 1));         // kept
    w.finish(100);
    EXPECT_EQ(w.written(), 2u);

    RawTraceReader rd;
    ASSERT_EQ(rd.open(path), "");
    std::vector<std::int16_t> cpus;
    rd.forEach([&](const TraceRecord &r) { cpus.push_back(r.cpu); });
    EXPECT_EQ(cpus, (std::vector<std::int16_t>{1, 1}));
    std::remove(path.c_str());
}

TEST(RawTrace, ReaderRejectsGarbage)
{
    RawTraceReader rd;
    EXPECT_NE(rd.open("no_such_trace_file.bin"), "");

    const std::string path = "test_rawtrace_garbage.bin";
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("definitely not a trace header at all", fp);
    std::fclose(fp);
    EXPECT_NE(rd.open(path), "");
    std::remove(path.c_str());
}

TEST(RawTrace, ReplayDrivesListenerFinishWithFinalTick)
{
    // Satellite case: an instance still in flight when the run ends
    // must close at the recorded final tick on offline replay, exactly
    // as the online lifecycle tracker closes it at sink finish.
    const std::string path = "test_rawtrace_replay.bin";
    {
        RawTraceWriter w;
        ASSERT_EQ(w.open(path), "");
        w.onRecord(elide(100, 0, 0x80));
        w.finish(450); // no commit: txn is in flight at sim end
    }
    RawTraceReader rd;
    ASSERT_EQ(rd.open(path), "");
    TxnLifecycle lc;
    rd.replay(lc);
    ASSERT_EQ(lc.spans().size(), 1u);
    EXPECT_EQ(lc.spans()[0].outcome, "unfinished");
    EXPECT_EQ(lc.spans()[0].begin, 100u);
    EXPECT_EQ(lc.spans()[0].end, 450u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ConflictGraphBuilder

TEST(ConflictGraph, DeferServiceMakesOneEdge)
{
    ConflictGraphBuilder g;
    g.onRecord(defer(100, /*owner=*/2, /*waiter=*/1, 0x40));
    g.onRecord(service(150, 2, 1, 0x40, ServiceCause::CommitDrain));
    g.finish(200);

    ASSERT_EQ(g.edges().size(), 1u);
    const DeferEdge &e = g.edges()[0];
    EXPECT_EQ(e.waiter, 1);
    EXPECT_EQ(e.owner, 2);
    EXPECT_EQ(e.line, 0x40u);
    EXPECT_EQ(e.span(), 50u);
    EXPECT_TRUE(e.serviced);
    EXPECT_FALSE(e.relaxed);
    EXPECT_EQ(e.cause, ServiceCause::CommitDrain);

    const auto &lc = g.lines().at(0x40);
    EXPECT_EQ(lc.defers, 1u);
    EXPECT_EQ(lc.waitTicks, 50u);
    EXPECT_EQ(lc.maxQueue, 1u);
}

TEST(ConflictGraph, UnservicedEdgeClosesAtFinish)
{
    ConflictGraphBuilder g;
    g.onRecord(defer(100, 2, 1, 0x40));
    g.finish(300);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_FALSE(g.edges()[0].serviced);
    EXPECT_EQ(g.edges()[0].span(), 200u);
    EXPECT_EQ(g.lines().at(0x40).waitTicks, 200u);
}

TEST(ConflictGraph, RelaxedDeferFlagged)
{
    ConflictGraphBuilder g;
    TraceRecord r = defer(10, 0, 3, 0x80);
    r.kind = TraceEvent::CohRelaxedDefer;
    g.onRecord(r);
    g.finish(20);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_TRUE(g.edges()[0].relaxed);
    EXPECT_EQ(g.lines().at(0x80).relaxedDefers, 1u);
}

TEST(ConflictGraph, DetectsTwoCpuWaitCycle)
{
    ConflictGraphBuilder g;
    // 1 waits on 2, then 2 waits on 1: the second edge closes a cycle.
    g.onRecord(defer(100, 2, 1, 0x40));
    EXPECT_TRUE(g.cycles().empty());
    g.onRecord(defer(120, 1, 2, 0x80));
    ASSERT_EQ(g.cycles().size(), 1u);
    EXPECT_EQ(g.cycles()[0].tick, 120u);
    EXPECT_EQ(g.cycles()[0].cpus, (std::vector<std::int16_t>{2, 1}));
    g.finish(200);
}

TEST(ConflictGraph, DetectsTransitiveCycleAndIgnoresChains)
{
    ConflictGraphBuilder g;
    // 0 → 1 → 2 is a chain, no cycle yet.
    g.onRecord(defer(10, 1, 0, 0x40));
    g.onRecord(defer(20, 2, 1, 0x80));
    EXPECT_TRUE(g.cycles().empty());
    // 2 → 0 closes the 3-cycle.
    g.onRecord(defer(30, 0, 2, 0xc0));
    ASSERT_EQ(g.cycles().size(), 1u);
    EXPECT_EQ(g.cycles()[0].cpus.size(), 3u);
    g.finish(100);
}

TEST(ConflictGraph, ServiceBreaksCycleCandidacy)
{
    ConflictGraphBuilder g;
    g.onRecord(defer(10, 2, 1, 0x40));
    g.onRecord(service(20, 2, 1, 0x40));
    // Edge 1→2 is closed, so 2→1 closes no cycle.
    g.onRecord(defer(30, 1, 2, 0x80));
    EXPECT_TRUE(g.cycles().empty());
    g.finish(100);
}

TEST(ConflictGraph, ConvoyNeedsSimultaneousWaiters)
{
    ConflictGraphBuilder g;
    // Sequential waiters on 0x40: never more than one at a time.
    g.onRecord(defer(10, 0, 1, 0x40));
    g.onRecord(service(20, 0, 1, 0x40));
    g.onRecord(defer(30, 0, 2, 0x40));
    g.onRecord(service(40, 0, 2, 0x40));
    // Simultaneous waiters on 0x80.
    g.onRecord(defer(50, 0, 1, 0x80));
    g.onRecord(defer(55, 0, 2, 0x80));
    g.onRecord(defer(60, 0, 3, 0x80));
    g.finish(100);

    EXPECT_EQ(g.lines().at(0x40).maxQueue, 1u);
    EXPECT_EQ(g.lines().at(0x80).maxQueue, 3u);
    EXPECT_EQ(g.convoyLines(2), (std::vector<Addr>{0x80}));
    EXPECT_EQ(g.convoyLines(4), (std::vector<Addr>{}));
}

TEST(ConflictGraph, RestartEdgeCarriesWinnerFromPackedMeta)
{
    ConflictGraphBuilder g;
    Timestamp winner = Timestamp::make(9, 5); // clock 9, cpu 5
    g.onRecord(rec(40, TraceComp::Spec, TraceEvent::TxnRestart, 3, 0x40,
                   /*reason=*/0, 0, /*ended=*/0, packTsMeta(winner)));
    // No contender noted: winner stays -1.
    g.onRecord(rec(60, TraceComp::Spec, TraceEvent::TxnRestart, 2, 0,
                   /*reason=*/1, 0, 0, packTsMeta(Timestamp{})));
    g.finish(100);

    ASSERT_EQ(g.restartEdges().size(), 2u);
    EXPECT_EQ(g.restartEdges()[0].loser, 3);
    EXPECT_EQ(g.restartEdges()[0].winner, 5);
    EXPECT_EQ(g.restartEdges()[0].line, 0x40u);
    EXPECT_EQ(g.restartEdges()[1].winner, -1);
    EXPECT_EQ(g.lines().at(0x40).restarts, 1u);
}

// ---------------------------------------------------------------------
// CriticalPathAccountant

TEST(CriticalPath, DecomposesExactTicks)
{
    CriticalPathAccountant a;
    // cpu0: [100, 200] with a 20-tick miss and a 40-tick deferral.
    a.onRecord(elide(100, 0, 0x80));
    a.onRecord(rec(110, TraceComp::L1, TraceEvent::CohMiss, 0, 0x1c0,
                   static_cast<std::uint64_t>(ReqType::GetX)));
    a.onRecord(rec(130, TraceComp::L1, TraceEvent::LineInstall, 0,
                   0x1c0));
    a.onRecord(defer(140, /*owner=*/1, /*waiter=*/0, 0x200));
    a.onRecord(service(180, 1, 0, 0x200));
    a.onRecord(commit(200, 0));
    a.finish(300);

    ASSERT_EQ(a.instances().size(), 1u);
    const TxnInstance &t = a.instances()[0];
    EXPECT_EQ(t.serial, 0u);
    EXPECT_EQ(t.cpu, 0);
    EXPECT_EQ(t.lock, 0x80u);
    EXPECT_EQ(t.outcome, "commit");
    EXPECT_EQ(t.total(), 100u);
    EXPECT_EQ(t.missTicks, 20u);
    EXPECT_EQ(t.deferTicks, 40u);
    EXPECT_EQ(t.redoTicks, 0u);
    EXPECT_EQ(t.execTicks, 40u);
    EXPECT_EQ(t.execTicks + t.deferTicks + t.missTicks + t.redoTicks,
              t.total());
    EXPECT_EQ(t.longestDeferSpan, 40u);
    EXPECT_EQ(t.longestDeferOwner, 1);
    EXPECT_EQ(t.longestDeferLine, 0x200u);
    EXPECT_EQ(t.longestDeferTick, 140u);
    EXPECT_EQ(t.name(), "T0@cpu0");
}

TEST(CriticalPath, RestartTurnsPrefixIntoRedo)
{
    CriticalPathAccountant a;
    a.onRecord(elide(0, 0, 0x80));
    a.onRecord(rec(50, TraceComp::Spec, TraceEvent::TxnRestart, 0, 0x40,
                   0, 0, /*ended=*/0, packTsMeta(Timestamp::make(1, 2))));
    a.onRecord(commit(100, 0));
    a.finish(200);

    ASSERT_EQ(a.instances().size(), 1u);
    const TxnInstance &t = a.instances()[0];
    EXPECT_EQ(t.restarts, 1u);
    EXPECT_EQ(t.redoTicks, 50u);
    EXPECT_EQ(t.execTicks, 50u);
    EXPECT_EQ(t.lastRestartWinner, 2);
    EXPECT_EQ(t.delay(), 50u);
}

TEST(CriticalPath, DeferWinsClassificationPriority)
{
    // A deferral overlapping both a miss and the pre-restart window
    // must be charged to defer, not double-counted.
    CriticalPathAccountant a;
    a.onRecord(elide(0, 0, 0x80));
    a.onRecord(rec(10, TraceComp::L1, TraceEvent::CohMiss, 0, 0x1c0,
                   static_cast<std::uint64_t>(ReqType::GetX)));
    a.onRecord(defer(10, 1, 0, 0x1c0));
    a.onRecord(service(40, 1, 0, 0x1c0));
    a.onRecord(rec(40, TraceComp::L1, TraceEvent::LineInstall, 0,
                   0x1c0));
    a.onRecord(rec(60, TraceComp::Spec, TraceEvent::TxnRestart, 0, 0,
                   0, 0, 0, 0));
    a.onRecord(commit(100, 0));
    a.finish(200);

    ASSERT_EQ(a.instances().size(), 1u);
    const TxnInstance &t = a.instances()[0];
    EXPECT_EQ(t.deferTicks, 30u); // [10,40] all defer, not miss
    EXPECT_EQ(t.missTicks, 0u);
    EXPECT_EQ(t.redoTicks, 30u); // [0,10] + [40,60] before restart
    EXPECT_EQ(t.execTicks, 40u); // [60,100]
}

TEST(CriticalPath, FallbackAndUnfinishedOutcomes)
{
    CriticalPathAccountant a;
    a.onRecord(elide(0, 0, 0x80));
    a.onRecord(rec(50, TraceComp::Spec, TraceEvent::TxnRestart, 0, 0,
                   /*reason=*/0, 0, /*ended=*/1, 0));
    a.onRecord(elide(60, 1, 0x80));
    a.finish(200);

    ASSERT_EQ(a.instances().size(), 2u);
    EXPECT_EQ(a.instances()[0].outcome.rfind("fallback:", 0), 0u);
    EXPECT_EQ(a.instances()[0].end, 50u);
    EXPECT_EQ(a.instances()[1].outcome, "unfinished");
    EXPECT_EQ(a.instances()[1].end, 200u);
}

TEST(CriticalPath, InstanceAtFindsHolder)
{
    CriticalPathAccountant a;
    a.onRecord(elide(100, 0, 0x80));
    a.onRecord(commit(200, 0));
    a.onRecord(elide(300, 0, 0x80));
    a.onRecord(commit(400, 0));
    a.finish(500);

    ASSERT_EQ(a.instances().size(), 2u);
    EXPECT_EQ(a.instanceAt(0, 150)->serial, 0u);
    EXPECT_EQ(a.instanceAt(0, 200)->serial, 0u);
    EXPECT_EQ(a.instanceAt(0, 350)->serial, 1u);
    EXPECT_EQ(a.instanceAt(0, 250), nullptr); // between instances
    EXPECT_EQ(a.instanceAt(0, 50), nullptr);  // before the first
    EXPECT_EQ(a.instanceAt(7, 150), nullptr); // unknown cpu
}

// ---------------------------------------------------------------------
// Explainer facade

TEST(Explainer, ChainFollowsLongestDeferToOwnerInstance)
{
    Explainer ex;
    // cpu1 holds [0,100]; cpu0's txn defers behind it [20,80].
    ex.onRecord(elide(0, 1, 0x80));
    ex.onRecord(elide(10, 0, 0x80));
    ex.onRecord(defer(20, 1, 0, 0x40));
    ex.onRecord(service(80, 1, 0, 0x40));
    ex.onRecord(commit(100, 1));
    ex.onRecord(commit(120, 0));
    ex.finish(200);

    const auto &inst = ex.paths().instances();
    ASSERT_EQ(inst.size(), 2u);
    // instances_ is close-ordered: [0]=cpu1's txn, [1]=cpu0's.
    std::vector<ChainLink> chain = ex.chainFor(inst[1]);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].waiter, "T1@cpu0");
    EXPECT_EQ(chain[0].owner, "T0@cpu1");
    EXPECT_EQ(chain[0].ownerCpu, 1);
    EXPECT_EQ(chain[0].line, 0x40u);
    EXPECT_EQ(chain[0].waitTicks, 60u);
    EXPECT_EQ(ex.maxChainDepth(), 1u);
}

TEST(Explainer, TransitiveChainReachesDepthTwo)
{
    Explainer ex;
    // cpu2 holds the lock; cpu1 defers behind cpu2; cpu0 defers
    // behind cpu1 — the classic transitive convoy.
    ex.onRecord(elide(0, 2, 0x80));
    ex.onRecord(elide(5, 1, 0x80));
    ex.onRecord(elide(10, 0, 0x80));
    ex.onRecord(defer(20, 2, 1, 0x40)); // 1 waits on 2
    ex.onRecord(defer(30, 1, 0, 0xc0)); // 0 waits on 1
    ex.onRecord(service(90, 2, 1, 0x40));
    ex.onRecord(commit(100, 2));
    ex.onRecord(service(110, 1, 0, 0xc0));
    ex.onRecord(commit(120, 1));
    ex.onRecord(commit(140, 0));
    ex.finish(200);

    EXPECT_GE(ex.maxChainDepth(), 2u);
    const std::string report = ex.report(ExplainMode::Txn);
    EXPECT_NE(report.find("causal conflict explainer"),
              std::string::npos);
    EXPECT_NE(report.find("chain depth"), std::string::npos);
}

TEST(Explainer, ChainStopsOnCycleInsteadOfLooping)
{
    Explainer ex;
    // Mutual wait: 0 behind 1 and 1 behind 0, overlapping instances.
    ex.onRecord(elide(0, 0, 0x80));
    ex.onRecord(elide(0, 1, 0x80));
    ex.onRecord(defer(10, 1, 0, 0x40));
    ex.onRecord(defer(20, 0, 1, 0xc0));
    ex.onRecord(commit(100, 0));
    ex.onRecord(commit(100, 1));
    ex.finish(100);

    for (const TxnInstance &t : ex.paths().instances()) {
        std::vector<ChainLink> chain = ex.chainFor(t);
        EXPECT_LE(chain.size(), 8u); // bounded, no infinite walk
    }
    EXPECT_EQ(ex.graph().cycles().size(), 1u);
}

TEST(Explainer, RendersAllModesDotAndJson)
{
    Explainer ex;
    ex.onRecord(elide(0, 1, 0x80));
    ex.onRecord(elide(5, 0, 0x80));
    ex.onRecord(defer(10, 1, 0, 0x40));
    ex.onRecord(service(50, 1, 0, 0x40));
    ex.onRecord(commit(60, 1));
    ex.onRecord(commit(80, 0));
    ex.finish(100);

    const std::string txn = ex.report(ExplainMode::Txn);
    EXPECT_NE(txn.find("T1@cpu0"), std::string::npos);
    const std::string lock = ex.report(ExplainMode::Lock);
    EXPECT_NE(lock.find("0x40"), std::string::npos);
    const std::string cpu = ex.report(ExplainMode::Cpu);
    EXPECT_NE(cpu.find("cpu0"), std::string::npos);

    const std::string dot = ex.dot();
    EXPECT_EQ(dot.rfind("digraph", 0), 0u);
    EXPECT_NE(dot.find("->"), std::string::npos);

    const std::string json = ex.json();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"defer_edges\""), std::string::npos);

    const std::vector<FlowArrow> flows = ex.flowArrows();
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0].fromCpu, 1);
    EXPECT_EQ(flows[0].toCpu, 0);
    EXPECT_EQ(flows[0].fromTick, 10u);
    EXPECT_EQ(flows[0].toTick, 50u);
}

// ---------------------------------------------------------------------
// Full system: online explain == offline replay (the tlrquery path)

TEST(ExplainSystem, OfflineReplayReproducesOnlineReport)
{
    const std::string path = "test_explain_system.bin";

    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.explain = true;

    System sys(mp);
    RawTraceWriter writer;
    ASSERT_EQ(writer.open(path), "");
    sys.addTraceListener(&writer);
    installWorkload(sys, makeReverseWriters(4, 256));
    ASSERT_TRUE(sys.run());

    ASSERT_NE(sys.explainer(), nullptr);
    const std::string online = sys.explainer()->report(ExplainMode::Txn);
    EXPECT_NE(online.find("causal conflict explainer"),
              std::string::npos);
    // The conflict-heavy Figures 2/4 workload exhibits transitive
    // blocking: somebody's wait chain is at least two hops deep.
    EXPECT_GE(sys.explainer()->maxChainDepth(), 2u);

    RawTraceReader rd;
    ASSERT_EQ(rd.open(path), "");
    EXPECT_GT(rd.header().recordCount, 0u);
    Explainer offline;
    rd.replay(offline);
    EXPECT_EQ(offline.report(ExplainMode::Txn), online);
    EXPECT_EQ(offline.report(ExplainMode::Lock),
              sys.explainer()->report(ExplainMode::Lock));
    EXPECT_EQ(offline.report(ExplainMode::Cpu),
              sys.explainer()->report(ExplainMode::Cpu));
    EXPECT_EQ(offline.json(), sys.explainer()->json());
    std::remove(path.c_str());
}

TEST(ExplainSystem, ExplainOffAddsNoListeners)
{
    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);

    System sys(mp);
    EXPECT_EQ(sys.explainer(), nullptr);
    installWorkload(sys, makeReverseWriters(4, 16));
    ASSERT_TRUE(sys.run());
    // No explain, no other consumer: the sink never armed.
    EXPECT_EQ(sys.traceSink().emitted(), 0u);
}

/**
 * @file
 * Full-system integration tests: every scheme runs every
 * microbenchmark through the complete stack (cores, SLE/TLR engines,
 * MOESI snooping protocol, interconnect, memory) and the final memory
 * image is validated for correctness.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

MachineParams
makeParams(Scheme scheme, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(scheme);
    mp.maxTicks = 200'000'000ull;
    return mp;
}

struct RunResult
{
    bool completed;
    bool valid;
    Tick cycles;
    std::uint64_t commits;
    std::uint64_t restarts;
    std::uint64_t fallbacks;
};

RunResult
runMicro(Scheme scheme, int cpus,
         Workload (*make)(const MicroParams &), std::uint64_t total_ops)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(scheme);
    p.totalOps = total_ops;
    Workload wl = make(p);

    System sys(makeParams(scheme, cpus));
    installWorkload(sys, wl);
    RunResult r;
    r.completed = sys.run();
    r.valid = wl.validate ? wl.validate(sys) : true;
    r.cycles = sys.completionTick();
    r.commits = sys.stats().sum("spec", "commits");
    r.restarts = sys.stats().sum("spec", "restarts");
    r.fallbacks = sys.stats().sum("spec", "fallbacks");
    return r;
}

} // namespace

//
// Single-processor sanity: every scheme must produce correct data and
// terminate, with no concurrency involved.
//

class SingleCpu : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(SingleCpu, SingleCounterCorrect)
{
    RunResult r = runMicro(GetParam(), 1, makeSingleCounter, 64);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST_P(SingleCpu, DoublyLinkedListCorrect)
{
    RunResult r = runMicro(GetParam(), 1, makeDoublyLinkedList, 32);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SingleCpu,
    ::testing::Values(Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr,
                      Scheme::TlrStrictTs, Scheme::Mcs),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        switch (info.param) {
          case Scheme::Base: return "Base";
          case Scheme::BaseSle: return "Sle";
          case Scheme::BaseSleTlr: return "Tlr";
          case Scheme::TlrStrictTs: return "TlrStrict";
          case Scheme::Mcs: return "Mcs";
        }
        return "Unknown";
    });

//
// Multi-processor correctness across schemes and workloads.
//

class MultiCpu
    : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{
};

TEST_P(MultiCpu, MultipleCounterCorrect)
{
    auto [scheme, cpus] = GetParam();
    RunResult r = runMicro(scheme, cpus, makeMultipleCounter, 256);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST_P(MultiCpu, SingleCounterCorrect)
{
    auto [scheme, cpus] = GetParam();
    RunResult r = runMicro(scheme, cpus, makeSingleCounter, 256);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST_P(MultiCpu, DoublyLinkedListCorrect)
{
    auto [scheme, cpus] = GetParam();
    RunResult r = runMicro(scheme, cpus, makeDoublyLinkedList, 128);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiCpu,
    ::testing::Combine(
        ::testing::Values(Scheme::Base, Scheme::BaseSle,
                          Scheme::BaseSleTlr, Scheme::TlrStrictTs,
                          Scheme::Mcs),
        ::testing::Values(2, 4, 8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>> &info) {
        const char *s = "";
        switch (std::get<0>(info.param)) {
          case Scheme::Base: s = "Base"; break;
          case Scheme::BaseSle: s = "Sle"; break;
          case Scheme::BaseSleTlr: s = "Tlr"; break;
          case Scheme::TlrStrictTs: s = "TlrStrict"; break;
          case Scheme::Mcs: s = "Mcs"; break;
        }
        return std::string(s) + "_" +
               std::to_string(std::get<1>(info.param)) + "cpu";
    });

//
// Mechanism-level expectations.
//

TEST(Mechanism, SleElidesUncontendedLocks)
{
    RunResult r = runMicro(Scheme::BaseSle, 4, makeMultipleCounter, 256);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.valid);
    // Disjoint data: nearly every critical section commits elided.
    EXPECT_GT(r.commits, 200u);
}

TEST(Mechanism, TlrCommitsUnderHighConflict)
{
    RunResult r = runMicro(Scheme::BaseSleTlr, 8, makeSingleCounter, 256);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.valid);
    // TLR must keep executing lock-free even with full data conflicts.
    EXPECT_GT(r.commits, 200u);
}

TEST(Mechanism, BaseNeverSpeculates)
{
    RunResult r = runMicro(Scheme::Base, 4, makeSingleCounter, 128);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.commits, 0u);
    EXPECT_EQ(r.restarts, 0u);
}

TEST(Mechanism, TlrOutperformsBaseUnderContention)
{
    RunResult base = runMicro(Scheme::Base, 8, makeSingleCounter, 512);
    RunResult tlr =
        runMicro(Scheme::BaseSleTlr, 8, makeSingleCounter, 512);
    ASSERT_TRUE(base.completed && base.valid);
    ASSERT_TRUE(tlr.completed && tlr.valid);
    EXPECT_LT(tlr.cycles, base.cycles);
}

/**
 * @file
 * Randomized stress tests ("fuzzing" the protocol): generate random
 * lock-based workloads — random processor counts, lock pools,
 * critical-section shapes, nesting and think times — and require
 * every scheme to terminate with exactly the expected shared-counter
 * totals. Any atomicity, deadlock or livelock bug in the coherence
 * protocol, SLE or TLR machinery shows up as a lost update, a
 * watchdog timeout, or an internal panic.
 */

#include <gtest/gtest.h>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "sim/rng.hh"
#include "sync/layout.hh"
#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

using namespace tlr;

#include "random_workload.hh"

using tlrtest::makeRandomWorkload;

namespace
{

class RandomStress
    : public ::testing::TestWithParam<std::tuple<int, Scheme>>
{
};

} // namespace

TEST_P(RandomStress, TerminatesWithExactCounts)
{
    auto [seed, scheme] = GetParam();
    int cpus = 0;
    Workload wl = makeRandomWorkload(static_cast<std::uint64_t>(seed),
                                     cpus, schemeLockKind(scheme));
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(scheme);
    mp.seed = static_cast<std::uint64_t>(seed) + 5000;
    mp.maxTicks = 300'000'000ull;
    System sys(mp);
    installWorkload(sys, wl);
    ASSERT_TRUE(sys.run()) << "watchdog timeout, seed=" << seed;
    EXPECT_TRUE(wl.validate(sys)) << "lost update, seed=" << seed;
}

namespace
{

std::string
randName(const ::testing::TestParamInfo<std::tuple<int, Scheme>> &info)
{
    const char *s = "";
    switch (std::get<1>(info.param)) {
      case Scheme::Base: s = "Base"; break;
      case Scheme::BaseSle: s = "Sle"; break;
      case Scheme::BaseSleTlr: s = "Tlr"; break;
      case Scheme::TlrStrictTs: s = "Strict"; break;
      case Scheme::Mcs: s = "Mcs"; break;
    }
    return "seed" + std::to_string(std::get<0>(info.param)) + s;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomStress,
    ::testing::Combine(::testing::Range(0, 24),
                       ::testing::Values(Scheme::Base, Scheme::BaseSle,
                                         Scheme::BaseSleTlr,
                                         Scheme::TlrStrictTs,
                                         Scheme::Mcs)),
    randName);

/**
 * @file
 * Directory-protocol tests: the full scheme x workload matrix plus a
 * random-stress subset must produce exact results on the
 * directory-based interconnect too — the paper's claim that TLR "does
 * not require changes to the coherence protocol" and works on
 * directory organizations (Section 3).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "workloads/micro.hh"
#include "workloads/scenarios.hh"
#include "workloads/workload.hh"

#include "random_workload.hh"

using namespace tlr;

namespace
{

MachineParams
dirParams(Scheme s, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.protocol = Protocol::Directory;
    mp.spec = schemeSpecConfig(s);
    mp.maxTicks = 300'000'000ull;
    return mp;
}

struct R
{
    bool completed;
    bool valid;
    Tick cycles;
    std::uint64_t commits;
};

R
runDir(Scheme s, int cpus, Workload (*make)(const MicroParams &),
       std::uint64_t ops)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = ops;
    Workload wl = make(p);
    System sys(dirParams(s, cpus));
    installWorkload(sys, wl);
    R r;
    r.completed = sys.run();
    r.valid = wl.validate(sys);
    r.cycles = sys.completionTick();
    r.commits = sys.stats().sum("spec", "commits");
    return r;
}

} // namespace

class DirGrid : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{
};

TEST_P(DirGrid, SingleCounterCorrect)
{
    auto [s, cpus] = GetParam();
    R r = runDir(s, cpus, makeSingleCounter, 256);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST_P(DirGrid, MultipleCounterCorrect)
{
    auto [s, cpus] = GetParam();
    R r = runDir(s, cpus, makeMultipleCounter, 256);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST_P(DirGrid, DoublyLinkedListCorrect)
{
    auto [s, cpus] = GetParam();
    R r = runDir(s, cpus, makeDoublyLinkedList, 128);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

namespace
{

std::string
dirName(const ::testing::TestParamInfo<std::tuple<Scheme, int>> &info)
{
    const char *s = "";
    switch (std::get<0>(info.param)) {
      case Scheme::Base: s = "Base"; break;
      case Scheme::BaseSle: s = "Sle"; break;
      case Scheme::BaseSleTlr: s = "Tlr"; break;
      case Scheme::TlrStrictTs: s = "Strict"; break;
      case Scheme::Mcs: s = "Mcs"; break;
    }
    return std::string(s) + std::to_string(std::get<1>(info.param)) +
           "cpu";
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Grid, DirGrid,
    ::testing::Combine(::testing::Values(Scheme::Base, Scheme::BaseSle,
                                         Scheme::BaseSleTlr,
                                         Scheme::TlrStrictTs,
                                         Scheme::Mcs),
                       ::testing::Values(2, 4, 8, 16)),
    dirName);

TEST(Directory, TlrStaysLockFreeUnderConflict)
{
    R r = runDir(Scheme::BaseSleTlr, 8, makeSingleCounter, 512);
    ASSERT_TRUE(r.completed && r.valid);
    EXPECT_EQ(r.commits, 512u); // every critical section elided
}

TEST(Directory, ChainsResolveAcrossThreeBlocks)
{
    System sys(dirParams(Scheme::BaseSleTlr, 6));
    Workload wl = makeRotatedBlocks(6, 40);
    installWorkload(sys, wl);
    ASSERT_TRUE(sys.run());
    EXPECT_TRUE(wl.validate(sys));
}

TEST(Directory, TracksOwnerAndSharers)
{
    MachineParams mp = dirParams(Scheme::Base, 2);
    System sys(mp);
    constexpr Addr a = 0x30000;
    {
        ProgramBuilder b;
        b.li(1, a).li(2, 7).st(2, 1).halt();
        sys.setProgram(0, b.build());
    }
    {
        ProgramBuilder b;
        std::string spin = b.uniqueLabel("w");
        b.li(1, a);
        b.label(spin);
        b.ld(2, 1);
        b.beq(2, 0, spin); // wait until cpu0's store is visible
        b.halt();
        sys.setProgram(1, b.build());
    }
    ASSERT_TRUE(sys.run());
    auto &dir = dynamic_cast<DirectoryInterconnect &>(sys.interconnect());
    // cpu0 wrote (owner, downgraded to Owned by cpu1's read); cpu1 is
    // a sharer alongside it.
    EXPECT_EQ(dir.dirOwner(a), 0);
    EXPECT_GE(dir.dirSharers(a), 1u);
    EXPECT_EQ(readCoherent(sys, a), 7u);
}

TEST(Directory, BroadcastAndDirectoryAgreeOnResults)
{
    // Same workload, both protocols: identical final memory contents
    // and commit counts (timing differs).
    for (Protocol proto : {Protocol::Broadcast, Protocol::Directory}) {
        MicroParams p;
        p.numCpus = 8;
        p.totalOps = 256;
        Workload wl = makeDoublyLinkedList(p);
        MachineParams mp;
        mp.numCpus = 8;
        mp.protocol = proto;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        System sys(mp);
        installWorkload(sys, wl);
        ASSERT_TRUE(sys.run());
        EXPECT_TRUE(wl.validate(sys));
    }
}

class DirRandomStress
    : public ::testing::TestWithParam<std::tuple<int, Scheme>>
{
};

TEST_P(DirRandomStress, TerminatesWithExactCounts)
{
    auto [seed, scheme] = GetParam();
    int cpus = 0;
    Workload wl = tlrtest::makeRandomWorkload(
        static_cast<std::uint64_t>(seed), cpus, schemeLockKind(scheme));
    MachineParams mp;
    mp.numCpus = cpus;
    mp.protocol = Protocol::Directory;
    mp.spec = schemeSpecConfig(scheme);
    mp.seed = static_cast<std::uint64_t>(seed) + 7000;
    mp.maxTicks = 300'000'000ull;
    System sys(mp);
    installWorkload(sys, wl);
    ASSERT_TRUE(sys.run()) << "watchdog timeout, seed=" << seed;
    EXPECT_TRUE(wl.validate(sys)) << "lost update, seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirRandomStress,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(Scheme::Base, Scheme::BaseSleTlr,
                                         Scheme::Mcs)),
    [](const ::testing::TestParamInfo<std::tuple<int, Scheme>> &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) + "s" +
               std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

/**
 * @file
 * Unit tests for the structured tracing subsystem: ring-buffer
 * wrap-around, sink gating, the transaction lifecycle tracker and its
 * Chrome-trace export, and — most importantly — injected-violation
 * tests proving each online invariant checker actually fires, plus a
 * clean full-system run with zero violations.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "coherence/spec_hooks.hh"
#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "mem/line.hh"
#include "trace/checkers.hh"
#include "trace/lifecycle.hh"
#include "trace/ring.hh"
#include "trace/sink.hh"
#include "workloads/micro.hh"
#include "workloads/scenarios.hh"

using namespace tlr;

namespace
{

TraceRecord
rec(Tick tick, TraceComp comp, TraceEvent kind, CpuId cpu, Addr addr,
    std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
    std::uint64_t a3 = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.comp = comp;
    r.kind = kind;
    r.cpu = static_cast<std::int16_t>(cpu);
    r.addr = addr;
    r.a0 = a0;
    r.a1 = a1;
    r.a2 = a2;
    r.a3 = a3;
    return r;
}

/** A sink plus registry in keep-going mode, for violation counting. */
struct CheckerFixture
{
    StatSet stats;
    TraceSink sink;
    InvariantRegistry reg;

    explicit CheckerFixture(bool keep_going = true,
                            Tick cycle_stuck_ticks = 1000)
        : reg(stats, &sink, makeParams(keep_going, cycle_stuck_ticks),
              /*defer_untimestamped=*/true, /*yield_timeout=*/100)
    {
        sink.configure(/*ring_capacity=*/32, /*echo_text=*/false);
        sink.addListener(&reg);
    }

    static TraceParams
    makeParams(bool keep_going, Tick cycle_stuck_ticks)
    {
        TraceParams p;
        p.checkInvariants = true;
        p.keepGoingOnViolation = keep_going;
        p.cycleStuckTicks = cycle_stuck_ticks;
        return p;
    }

    std::uint64_t
    count(const char *checker) const
    {
        return stats.get("trace", std::string("violations.") + checker);
    }
};

} // namespace

// ---------------------------------------------------------------------
// TraceRing

TEST(TraceRing, WrapsAndIteratesOldestFirst)
{
    TraceRing ring(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        TraceRecord r;
        r.tick = i;
        ring.push(r);
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.capacity(), 4u);

    std::vector<Tick> ticks;
    ring.forEach([&](const TraceRecord &r) { ticks.push_back(r.tick); });
    EXPECT_EQ(ticks, (std::vector<Tick>{6, 7, 8, 9}));

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, ZeroCapacityDropsEverything)
{
    TraceRing ring(0);
    TraceRecord r;
    ring.push(r);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.capacity(), 0u);
}

// ---------------------------------------------------------------------
// TraceSink

TEST(TraceSink, ArmedOnlyWithConsumers)
{
    TraceSink sink;
    EXPECT_FALSE(sink.armed());
    TraceSink *unwired = nullptr; // component before setTrace()
    EXPECT_FALSE(TLR_TRACE_ARMED(unwired));

    sink.configure(8, false);
    EXPECT_TRUE(sink.armed());
    EXPECT_TRUE(TLR_TRACE_ARMED(&sink));

    sink.configure(0, false);
    EXPECT_FALSE(sink.armed());

    TxnLifecycle lc;
    sink.addListener(&lc);
    EXPECT_TRUE(sink.armed());
}

TEST(TraceSink, StampsMonotonicSequenceNumbers)
{
    TraceSink sink;
    sink.configure(4, false);
    for (int i = 0; i < 3; ++i)
        sink.emit(10, TraceComp::Spec, TraceEvent::TxnCommit, 0, 0);
    EXPECT_EQ(sink.emitted(), 3u);

    std::vector<std::uint64_t> seqs;
    sink.ring().forEach(
        [&](const TraceRecord &r) { seqs.push_back(r.seq); });
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(TraceSink, FormatRecordNamesEvents)
{
    TraceRecord r = rec(42, TraceComp::L1, TraceEvent::LineInstall, 3,
                        0x1c0, static_cast<std::uint64_t>(CohState::Shared));
    std::string s = formatRecord(r);
    EXPECT_NE(s.find("line-install"), std::string::npos);
    EXPECT_NE(s.find("cpu3"), std::string::npos);
}

// ---------------------------------------------------------------------
// TxnLifecycle

TEST(TxnLifecycle, ReconstructsSpansAndOutcomes)
{
    TxnLifecycle lc;
    Timestamp ts = Timestamp::make(7, 0);

    // cpu0: elide, one restart, re-elide (same instance), then commit.
    lc.onRecord(rec(100, TraceComp::Spec, TraceEvent::TxnElide, 0, 0x80,
                    0, ts.clock, packTsMeta(ts), /*new instance=*/1));
    lc.onRecord(rec(150, TraceComp::Spec, TraceEvent::TxnRestart, 0, 0,
                    static_cast<std::uint64_t>(AbortReason::ConflictLost),
                    0, /*instance ended=*/0));
    lc.onRecord(rec(160, TraceComp::Spec, TraceEvent::TxnElide, 0, 0x80,
                    0, ts.clock, packTsMeta(ts), /*new instance=*/0));
    lc.onRecord(rec(200, TraceComp::Spec, TraceEvent::TxnCommit, 0, 0,
                    2, ts.clock));

    // cpu1: elide then a resource abort that falls back to the lock.
    lc.onRecord(rec(120, TraceComp::Spec, TraceEvent::TxnElide, 1, 0x80,
                    0, 0, 0, /*new instance=*/1));
    lc.onRecord(
        rec(180, TraceComp::Spec, TraceEvent::TxnRestart, 1, 0,
            static_cast<std::uint64_t>(AbortReason::ResourceWriteBuffer),
            /*resource=*/1, /*instance ended=*/1));

    // cpu2: still speculating at end of run.
    lc.onRecord(rec(130, TraceComp::Spec, TraceEvent::TxnElide, 2, 0x80,
                    0, 0, 0, /*new instance=*/1));
    lc.finish(300);

    ASSERT_EQ(lc.spans().size(), 3u);
    const auto &spans = lc.spans();

    // Spans close in record order: cpu0's commit, cpu1's fallback,
    // then the unfinished cpu2 span at finish().
    EXPECT_EQ(spans[0].cpu, 0);
    EXPECT_EQ(spans[0].outcome, "commit");
    EXPECT_EQ(spans[0].begin, 100u);
    EXPECT_EQ(spans[0].end, 200u);
    EXPECT_EQ(spans[0].restarts, 1u);
    EXPECT_EQ(spans[0].tsClock, 7u);
    EXPECT_TRUE(spans[0].tsValid);

    EXPECT_EQ(spans[1].cpu, 1);
    EXPECT_EQ(spans[1].outcome.rfind("fallback:", 0), 0u);

    EXPECT_EQ(spans[2].cpu, 2);
    EXPECT_EQ(spans[2].outcome, "unfinished");
    EXPECT_EQ(spans[2].end, 300u);

    // The restart shows up as an instant marker, not a span break.
    ASSERT_EQ(lc.instants().size(), 1u);
    EXPECT_EQ(lc.instants()[0].name, "restart");
}

TEST(TxnLifecycle, ExportsChromeTraceJson)
{
    TxnLifecycle lc;
    lc.onRecord(rec(10, TraceComp::Spec, TraceEvent::TxnElide, 0, 0x80,
                    0, 0, 0, 1));
    lc.onRecord(rec(50, TraceComp::Spec, TraceEvent::TxnCommit, 0, 0));
    lc.onRecord(rec(20, TraceComp::L1, TraceEvent::CohDefer, 1, 0x1c0,
                    /*requester=*/0,
                    static_cast<std::uint64_t>(ReqType::GetX)));
    lc.finish(60);

    std::ostringstream os;
    lc.exportChromeTrace(os);
    const std::string json = os.str();

    // Structural fragments every Chrome-trace consumer needs.
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos); // row names
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos); // spans
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos); // instants
    EXPECT_NE(json.find("\"outcome\":\"commit\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"defer\""), std::string::npos);
    // Balanced braces => structurally plausible JSON.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------------
// Injected violations: each checker must fire on its own bug class.

TEST(InvariantCheckers, SingleOwnerFiresOnTwoWritableCopies)
{
    CheckerFixture f;
    f.sink.emit(10, TraceComp::L1, TraceEvent::LineInstall, 0, 0x1c0,
                static_cast<std::uint64_t>(CohState::Modified));
    EXPECT_EQ(f.reg.violations(), 0u);
    // A second cache installing the same line writable is the bug.
    f.sink.emit(20, TraceComp::L1, TraceEvent::LineInstall, 1, 0x1c0,
                static_cast<std::uint64_t>(CohState::Modified));
    EXPECT_EQ(f.count("single-owner"), 1u);
}

TEST(InvariantCheckers, SingleOwnerFiresOnWritablePlusShared)
{
    CheckerFixture f;
    f.sink.emit(10, TraceComp::L1, TraceEvent::LineInstall, 0, 0x1c0,
                static_cast<std::uint64_t>(CohState::Shared));
    f.sink.emit(20, TraceComp::L1, TraceEvent::LineInstall, 1, 0x1c0,
                static_cast<std::uint64_t>(CohState::Shared));
    EXPECT_EQ(f.reg.violations(), 0u); // two Shared copies are fine
    // cpu1 upgrading without invalidating cpu0's copy is the bug.
    f.sink.emit(30, TraceComp::L1, TraceEvent::LineUpgrade, 1, 0x1c0);
    EXPECT_EQ(f.count("single-owner"), 1u);
}

TEST(InvariantCheckers, SingleOwnerAcceptsLegalHandoff)
{
    CheckerFixture f;
    f.sink.emit(10, TraceComp::L1, TraceEvent::LineInstall, 0, 0x1c0,
                static_cast<std::uint64_t>(CohState::Modified));
    f.sink.emit(20, TraceComp::L1, TraceEvent::LineInval, 0, 0x1c0);
    f.sink.emit(30, TraceComp::L1, TraceEvent::LineInstall, 1, 0x1c0,
                static_cast<std::uint64_t>(CohState::Modified));
    f.sink.emit(40, TraceComp::L1, TraceEvent::LineDowngrade, 1, 0x1c0,
                static_cast<std::uint64_t>(CohState::Owned));
    f.sink.emit(50, TraceComp::L1, TraceEvent::LineInstall, 0, 0x1c0,
                static_cast<std::uint64_t>(CohState::Shared));
    EXPECT_EQ(f.reg.violations(), 0u);
}

TEST(InvariantCheckers, TimestampOrderFiresOnLaterWinner)
{
    CheckerFixture f;
    const Timestamp earlier = Timestamp::make(5, 0);
    const Timestamp later = Timestamp::make(9, 1);

    // Losing to an earlier timestamp is the protocol working.
    f.sink.emit(10, TraceComp::L1, TraceEvent::CohLose, 1, 0x1c0,
                earlier.clock, packTsMeta(earlier), later.clock,
                packTsMeta(later));
    EXPECT_EQ(f.reg.violations(), 0u);

    // Losing to a *later* timestamp violates earliest-wins.
    f.sink.emit(20, TraceComp::L1, TraceEvent::CohLose, 0, 0x1c0,
                later.clock, packTsMeta(later), earlier.clock,
                packTsMeta(earlier));
    EXPECT_EQ(f.count("timestamp-order"), 1u);
}

TEST(InvariantCheckers, TimestampOrderFiresOnUntimestampedWinner)
{
    // With the defer-untimestamped policy, a timestamped transaction
    // must never lose to a request from outside any transaction.
    CheckerFixture f;
    const Timestamp own = Timestamp::make(5, 0);
    const Timestamp invalid; // valid == false
    f.sink.emit(10, TraceComp::L1, TraceEvent::CohLose, 0, 0x1c0,
                invalid.clock, packTsMeta(invalid), own.clock,
                packTsMeta(own));
    EXPECT_EQ(f.count("timestamp-order"), 1u);
}

TEST(InvariantCheckers, DeferralCycleFiresWhenCyclePersists)
{
    CheckerFixture f(/*keep_going=*/true, /*cycle_stuck_ticks=*/1000);
    const auto getx = static_cast<std::uint64_t>(ReqType::GetX);

    // cpu0 waits on cpu1, cpu1 waits on cpu0: a waits-for cycle.
    f.sink.emit(10, TraceComp::L1, TraceEvent::CohDefer, 1, 0x100,
                /*requester=*/0, getx);
    f.sink.emit(20, TraceComp::L1, TraceEvent::CohDefer, 0, 0x140,
                /*requester=*/1, getx);
    EXPECT_EQ(f.reg.violations(), 0u); // transient cycles are legal

    // Another edge change far past the persistence bound: the cycle
    // is still there, so the checker must report a deadlock.
    f.sink.emit(5000, TraceComp::L1, TraceEvent::CohDefer, 2, 0x180,
                /*requester=*/3, getx);
    EXPECT_EQ(f.count("deferral-cycle"), 1u);
}

TEST(InvariantCheckers, DeferralCycleFiresAtFinish)
{
    CheckerFixture f(/*keep_going=*/true, /*cycle_stuck_ticks=*/1000);
    const auto getx = static_cast<std::uint64_t>(ReqType::GetX);
    f.sink.emit(10, TraceComp::L1, TraceEvent::CohDefer, 1, 0x100, 0,
                getx);
    f.sink.emit(20, TraceComp::L1, TraceEvent::CohDefer, 0, 0x140, 1,
                getx);
    f.sink.finish(5000); // run ends with the cycle unbroken
    EXPECT_EQ(f.count("deferral-cycle"), 1u);
}

TEST(InvariantCheckers, DeferralCycleClearedByServiceAndCommit)
{
    CheckerFixture f(/*keep_going=*/true, /*cycle_stuck_ticks=*/1000);
    const auto getx = static_cast<std::uint64_t>(ReqType::GetX);
    f.sink.emit(10, TraceComp::L1, TraceEvent::CohDefer, 1, 0x100, 0,
                getx);
    f.sink.emit(20, TraceComp::L1, TraceEvent::CohDefer, 0, 0x140, 1,
                getx);
    // cpu1 commits: its deferred queue drains, breaking the cycle.
    f.sink.emit(30, TraceComp::L1, TraceEvent::CohDeferDrain, 1, 0, 1);
    f.sink.emit(40, TraceComp::L1, TraceEvent::CohService, 1, 0x100, 0);
    f.sink.finish(50'000);
    EXPECT_EQ(f.reg.violations(), 0u);
}

TEST(InvariantCheckers, AtomicityFiresOnTornReadSet)
{
    CheckerFixture f;
    // cpu0 elides (reads the lock free) and reads word 0x200 = 5.
    f.sink.emit(10, TraceComp::Spec, TraceEvent::TxnElide, 0, 0x80, 0,
                0, 0, 1);
    f.sink.emit(20, TraceComp::L1, TraceEvent::TxnRead, 0, 0x200, 5);
    // cpu1 commits 9 into that word while cpu0 still speculates...
    f.sink.emit(30, TraceComp::L1, TraceEvent::MemWrite, 1, 0x200, 9);
    // ...and cpu0 commits anyway without having been aborted: torn.
    f.sink.emit(40, TraceComp::Spec, TraceEvent::TxnCommitStart, 0, 0);
    EXPECT_EQ(f.count("atomicity"), 1u);
}

TEST(InvariantCheckers, AtomicityCleanCommitAndAbortPaths)
{
    CheckerFixture f;
    // Clean commit: the read word is untouched until after commit.
    f.sink.emit(10, TraceComp::Spec, TraceEvent::TxnElide, 0, 0x80, 0,
                0, 0, 1);
    f.sink.emit(20, TraceComp::L1, TraceEvent::TxnRead, 0, 0x200, 5);
    f.sink.emit(30, TraceComp::Spec, TraceEvent::TxnCommitStart, 0, 0);
    f.sink.emit(31, TraceComp::L1, TraceEvent::TxnWrite, 0, 0x200, 6);
    f.sink.emit(32, TraceComp::Spec, TraceEvent::TxnCommit, 0, 0, 1);
    EXPECT_EQ(f.reg.violations(), 0u);
    EXPECT_TRUE(f.reg.atomicity().hasWord(0x200));
    EXPECT_EQ(f.reg.atomicity().word(0x200), 6u);

    // Aborted speculation discards its read set: the conflicting
    // write must not be reported against a transaction that restarted.
    f.sink.emit(40, TraceComp::Spec, TraceEvent::TxnElide, 1, 0x80, 0,
                0, 0, 1);
    f.sink.emit(50, TraceComp::L1, TraceEvent::TxnRead, 1, 0x200, 6);
    f.sink.emit(
        60, TraceComp::Spec, TraceEvent::TxnRestart, 1, 0,
        static_cast<std::uint64_t>(AbortReason::ConflictLost), 0, 0);
    f.sink.emit(70, TraceComp::L1, TraceEvent::MemWrite, 0, 0x200, 7);
    f.sink.emit(80, TraceComp::Spec, TraceEvent::TxnCommitStart, 1, 0);
    EXPECT_EQ(f.reg.violations(), 0u);
}

TEST(InvariantCheckers, PanicsAtViolatingTickWithoutKeepGoing)
{
    CheckerFixture f(/*keep_going=*/false);
    f.sink.emit(10, TraceComp::L1, TraceEvent::LineInstall, 0, 0x1c0,
                static_cast<std::uint64_t>(CohState::Modified));
    EXPECT_THROW(
        f.sink.emit(20, TraceComp::L1, TraceEvent::LineInstall, 1,
                    0x1c0,
                    static_cast<std::uint64_t>(CohState::Modified)),
        std::logic_error);
    // The violation was still counted before the panic.
    EXPECT_EQ(f.reg.violations(), 1u);
}

// ---------------------------------------------------------------------
// Full-system integration: a conflict-heavy run under full checking.

TEST(InvariantCheckers, CleanRunOnConflictHeavyWorkload)
{
    MicroParams wp;
    wp.numCpus = 4;
    wp.totalOps = 256;

    MachineParams mp;
    mp.numCpus = wp.numCpus;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.trace.ringCapacity = 64;
    mp.trace.checkInvariants = true;

    RunStats r = runWorkload(mp, makeSingleCounter(wp));
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.traceRecords, 0u);
    EXPECT_EQ(r.invariantViolations, 0u);
}

TEST(InvariantCheckers, DisabledTracingEmitsNothing)
{
    MicroParams wp;
    wp.numCpus = 4;
    wp.totalOps = 256;

    MachineParams mp;
    mp.numCpus = wp.numCpus;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);

    RunStats r = runWorkload(mp, makeSingleCounter(wp));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.traceRecords, 0u);
    EXPECT_EQ(r.invariantViolations, 0u);
}

// ---------------------------------------------------------------------
// CohDeferDepth bookkeeping across both drain paths. The deferred
// queue must drain on abort exactly as on commit (paper Section 4:
// a restarting processor cannot sit on deferred requests), and the
// advertised depth must shrink at every drain and end the run at 0.

namespace
{

struct DeferDepthProbe : TraceListener
{
    std::map<std::int16_t, std::uint64_t> depth; ///< latest per cpu
    std::uint64_t commitDrains = 0;
    std::uint64_t abortDrains = 0;
    std::uint64_t growViolations = 0; ///< post-drain depth grew
    /** cpu → depth seen just before its pending drain. */
    std::map<std::int16_t, std::uint64_t> drainPending;

    void
    onRecord(const TraceRecord &r) override
    {
        if (r.kind == TraceEvent::CohDeferDrain) {
            if (r.a1)
                ++commitDrains;
            else
                ++abortDrains;
            drainPending[r.cpu] = depth[r.cpu];
        } else if (r.kind == TraceEvent::CohDeferDepth) {
            auto it = drainPending.find(r.cpu);
            if (it != drainPending.end()) {
                if (r.a0 > it->second)
                    ++growViolations;
                drainPending.erase(it);
            }
            depth[r.cpu] = r.a0;
        }
    }
    void finish(Tick) override {}
};

} // namespace

TEST(DeferDepth, DrainsOnAbortAndReturnsToZero)
{
    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);

    System sys(mp);
    DeferDepthProbe probe;
    sys.addTraceListener(&probe);
    installWorkload(sys, makeReverseWriters(4, 256));
    ASSERT_TRUE(sys.run());

    // The Figures 2/4 conflict pattern aborts transactions that hold
    // deferred requests, so both drain causes must appear.
    EXPECT_GE(probe.abortDrains, 1u);
    EXPECT_GE(probe.commitDrains, 1u);
    // A drain never leaves the queue deeper than it found it.
    EXPECT_EQ(probe.growViolations, 0u);
    // Every controller ends the run with an empty deferral backlog.
    EXPECT_FALSE(probe.depth.empty());
    for (const auto &[cpu, d] : probe.depth)
        EXPECT_EQ(d, 0u) << "cpu" << cpu;
}

// ---------------------------------------------------------------------
// Transactions still in flight when the run is cut off (watchdog)
// must export as spans ending at the final tick, never past it and
// never with end < begin (Perfetto renders those as negative
// durations).

TEST(TxnLifecycle, WatchdogTruncatedRunClosesSpansAtFinalTick)
{
    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.maxTicks = 20'000; // cut the run off mid-flight

    System sys(mp);
    TxnLifecycle lc;
    sys.addTraceListener(&lc);
    installWorkload(sys, makeReverseWriters(4, 1'000'000));
    EXPECT_FALSE(sys.run()); // watchdog fired

    ASSERT_GT(lc.spans().size(), 0u);
    // completionTick() stays 0 on a watchdog abort; the final tick the
    // sink sees is bounded by the watchdog budget itself.
    bool sawUnfinished = false;
    for (const auto &s : lc.spans()) {
        EXPECT_LE(s.begin, s.end);
        EXPECT_LE(s.end, mp.maxTicks);
        if (s.outcome == "unfinished")
            sawUnfinished = true;
    }
    EXPECT_TRUE(sawUnfinished);
}

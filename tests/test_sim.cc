/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering,
 * determinism, RNG reproducibility and the stats registry.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace tlr;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&] { order.push_back(3); }, EventPrio::CoreTick);
    eq.schedule(7, [&] { order.push_back(1); }, EventPrio::Snoop);
    eq.schedule(7, [&] { order.push_back(4); }, EventPrio::CoreTick);
    eq.schedule(7, [&] { order.push_back(2); }, EventPrio::DataResponse);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(3, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 12u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
    });
    eq.run();
}

TEST(EventQueue, MaxTickStopsEarly)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(100, [&] { ran = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.run(200));
    EXPECT_TRUE(ran);
}

TEST(EventQueue, StepAndPending)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(Rng, DeterministicAndForkIndependent)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng root(7);
    Rng c1 = root.fork(1);
    Rng c2 = root.fork(2);
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= c1.next() != c2.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Stats, CounterAndSum)
{
    StatSet s;
    s.counter("core0", "x") += 3;
    s.counter("core1", "x") += 4;
    s.counter("core1", "y") += 9;
    EXPECT_EQ(s.get("core0", "x"), 3u);
    EXPECT_EQ(s.get("core9", "x"), 0u);
    EXPECT_EQ(s.sum("core", "x"), 7u);
    EXPECT_EQ(s.sum("core", "y"), 9u);
    EXPECT_NE(s.dump("core1").find("core1.y = 9"), std::string::npos);
}

/**
 * @file
 * Run-ledger bundle and flight-report tests (src/report/,
 * DESIGN.md §15): manifest round-trip, deterministic ledger
 * sequencing, cross-schema refusal, SVG edge cases (empty, single
 * point, single bucket), zero-epoch timeline rendering, bundles
 * without a raw trace, trend first-regressing-run localization
 * (including the single-entry ledger), the tlrstat --json document,
 * the TLR_REPORT env hook, and HTML byte-determinism across repeated
 * identical runs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "metrics/statdiff.hh"
#include "report/bundle.hh"
#include "report/report.hh"
#include "sim/build_info.hh"
#include "sim/json.hh"
#include "workloads/micro.hh"

using namespace tlr;

namespace
{

/** Fresh scratch directory under TMPDIR; lives until process exit
 *  (the CI workspace is ephemeral, and keeping it aids debugging). */
std::string
scratchDir()
{
    char tmpl[] = "/tmp/tlr_report_test_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : ".";
}

BundleMeta
sampleMeta()
{
    BundleMeta m;
    m.workload = "single-counter";
    m.scheme = "BASE+SLE+TLR";
    m.cpus = 4;
    m.ops = 256;
    m.seed = 7;
    m.theta = 0.6;
    m.keys = 256;
    m.partitions = 4;
    m.wbLines = 64;
    m.victimEntries = 16;
    m.yieldTimeout = 1000;
    m.maxTicks = 1000000;
    m.metrics = true;
    m.completed = true;
    m.valid = true;
    m.cycles = 12345;
    m.threads = 4;
    return m;
}

BundleArtifacts
sampleArtifacts(const std::string &statsDoc)
{
    BundleArtifacts a;
    a.statsJson = statsDoc;
    return a;
}

const char *kMinimalStats =
    "{\"schema_version\": 2, \"meta\": {}, "
    "\"counters\": {\"spec0.commits\": 100, \"spec0.restarts\": 3}}\n";

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, v, err)) << err;
    return v;
}

/** Run a tiny real simulation through the TLR_REPORT env hook,
 *  appending a bundle to @p ledger. */
RunStats
runBundledSim(const std::string &ledger, std::uint64_t ops)
{
    ::setenv("TLR_REPORT", ledger.c_str(), 1);
    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.collectMetrics = true;
    mp.timelineEpoch = 1000;
    MicroParams p;
    p.numCpus = 4;
    p.totalOps = ops;
    RunStats r = runWorkload(mp, makeSingleCounter(p));
    ::unsetenv("TLR_REPORT");
    return r;
}

TEST(Bundle, ManifestRoundTrip)
{
    BundleMeta m = sampleMeta();
    BundleArtifacts a = sampleArtifacts(kMinimalStats);
    a.timelineCsv = "# header\n";
    JsonValue doc = parsed(renderManifest(m, a));

    const JsonValue *schema = doc.find("schema_version");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(static_cast<int>(schema->number),
              reportBundleSchemaVersion);
    EXPECT_EQ(resolvePath(doc, "sim.workload")->string, "single-counter");
    EXPECT_EQ(resolvePath(doc, "sim.scheme")->string, "BASE+SLE+TLR");
    EXPECT_EQ(resolvePath(doc, "sim.cpus")->number, 4);
    EXPECT_EQ(resolvePath(doc, "sim.seed")->number, 7);
    EXPECT_EQ(resolvePath(doc, "result.cycles")->number, 12345);
    EXPECT_TRUE(resolvePath(doc, "result.completed")->boolean);
    // Host-schedule knobs live in their own section, never in sim.
    EXPECT_EQ(resolvePath(doc, "host.threads")->number, 4);
    EXPECT_EQ(resolvePath(doc, "sim.threads"), nullptr);
    // Every schema version the bundle depends on is recorded.
    EXPECT_EQ(resolvePath(doc, "schemas.stats_json")->number,
              statsSchemaVersion);
    EXPECT_EQ(resolvePath(doc, "schemas.timeline")->number,
              timelineSchemaVersion);
    EXPECT_EQ(resolvePath(doc, "schemas.diff_json")->number,
              diffJsonSchemaVersion);
    // Present artifacts are named, absent ones are null.
    EXPECT_EQ(resolvePath(doc, "artifacts.timeline")->string,
              "timeline.csv");
    EXPECT_EQ(resolvePath(doc, "artifacts.trace")->kind,
              JsonValue::Kind::Null);
}

TEST(Bundle, LedgerSequencingAndLoad)
{
    std::string ledger = scratchDir();
    BundleMeta m = sampleMeta();
    BundleArtifacts a = sampleArtifacts(kMinimalStats);
    std::string err;
    for (int i = 0; i < 3; ++i) {
        std::string entry = writeRunBundle(ledger, m, a, err);
        ASSERT_FALSE(entry.empty()) << err;
    }
    std::vector<std::string> entries = listLedger(ledger);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_NE(entries[0].find("0001-single-counter-base-sle-tlr-p4"),
              std::string::npos);
    EXPECT_NE(entries[2].find("0003-"), std::string::npos);

    LoadedBundle b;
    ASSERT_TRUE(loadBundle(entries[1], b, err)) << err;
    EXPECT_EQ(b.name, "0002-single-counter-base-sle-tlr-p4");
    EXPECT_FALSE(b.hasTrace);
    EXPECT_TRUE(b.timelineCsv.empty());
    const JsonValue *counters = b.stats.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("spec0.commits")->number, 100);
}

TEST(Bundle, RefusesForeignSchemaVersion)
{
    std::string ledger = scratchDir();
    BundleMeta m = sampleMeta();
    BundleArtifacts a = sampleArtifacts(kMinimalStats);
    std::string err;
    std::string entry = writeRunBundle(ledger, m, a, err);
    ASSERT_FALSE(entry.empty()) << err;

    // Rewrite the manifest as a future bundle version.
    std::string manifest = renderManifest(m, a);
    size_t pos = manifest.find("\"schema_version\": ");
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, std::string("\"schema_version\": 1").size(),
                     "\"schema_version\": 999");
    FILE *f = std::fopen((entry + "/manifest.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(manifest.c_str(), f);
    std::fclose(f);

    LoadedBundle b;
    EXPECT_FALSE(loadBundle(entry, b, err));
    EXPECT_NE(err.find("schema_version 999"), std::string::npos) << err;
}

TEST(Svg, SparklineEdgeCases)
{
    // Empty series renders a placeholder, not a degenerate <svg>.
    EXPECT_NE(svgSparkline({}, {}).find("no epochs"), std::string::npos);
    // A single point still produces visible geometry.
    std::string one = svgSparkline({5}, {});
    EXPECT_NE(one.find("<polyline"), std::string::npos);
    // Markers at valid indices emit one line each; out-of-range
    // markers are dropped.
    std::string marked =
        svgSparkline({1, 2, 3}, {{1, "convoy"}, {99, "convoy"}});
    size_t first = marked.find("class=\"mk convoy\"");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(marked.find("class=\"mk convoy\"", first + 1),
              std::string::npos);
    // All-zero series stays on the baseline without dividing by zero.
    EXPECT_NE(svgSparkline({0, 0, 0}, {}).find("<polyline"),
              std::string::npos);
}

TEST(Svg, HistogramEdgeCases)
{
    EXPECT_NE(svgHistogramBars({}).find("no samples"), std::string::npos);
    // A single bucket fills (nearly) the full width.
    std::string one = svgHistogramBars({{8, 42}});
    EXPECT_NE(one.find("<rect"), std::string::npos);
    // A non-empty bucket dwarfed by the max still gets >= 1px.
    std::string tiny = svgHistogramBars({{0, 1}, {8, 1000000}});
    EXPECT_EQ(tiny.find("height=\"0\""), std::string::npos);
}

TEST(Report, ZeroEpochTimelineRenders)
{
    LoadedBundle b;
    b.name = "0001-test";
    b.manifest = parsed(
        renderManifest(sampleMeta(), sampleArtifacts(kMinimalStats)));
    b.stats = parsed(
        "{\"schema_version\": 2, \"counters\": {}, "
        "\"timeline\": {\"schema\": 1, \"epoch_len\": 1000, "
        "\"final_tick\": 0, \"epochs\": [], \"alerts\": []}}");
    std::string html = renderFlightReport(b);
    EXPECT_NE(html.find("0 epochs"), std::string::npos);
    EXPECT_NE(html.find("no epochs"), std::string::npos);
    EXPECT_NE(html.find("no detector alerts"), std::string::npos);
}

TEST(Report, FullBundleViaEnvHookAndDeterminism)
{
    std::string ledgerA = scratchDir();
    std::string ledgerB = scratchDir();
    RunStats r1 = runBundledSim(ledgerA, 200);
    RunStats r2 = runBundledSim(ledgerB, 200);
    EXPECT_TRUE(r1.completed && r1.valid);
    EXPECT_EQ(r1.cycles, r2.cycles);

    std::vector<std::string> ea = listLedger(ledgerA);
    std::vector<std::string> eb = listLedger(ledgerB);
    ASSERT_EQ(ea.size(), 1u);
    ASSERT_EQ(eb.size(), 1u);

    LoadedBundle a, b;
    std::string err;
    ASSERT_TRUE(loadBundle(ea[0], a, err)) << err;
    ASSERT_TRUE(loadBundle(eb[0], b, err)) << err;
    EXPECT_FALSE(a.hasTrace); // env hook records no raw trace

    std::string htmlA = renderFlightReport(a);
    std::string htmlB = renderFlightReport(b);
    // Two identical simulations -> byte-identical flight reports.
    EXPECT_EQ(htmlA, htmlB);
    // The substantive sections all rendered.
    EXPECT_NE(htmlA.find("Epoch timeline"), std::string::npos);
    EXPECT_NE(htmlA.find("Latency distributions"), std::string::npos);
    EXPECT_NE(htmlA.find("Hottest locks"), std::string::npos);
    EXPECT_NE(htmlA.find("Interconnect traffic"), std::string::npos);
    // Nothing host-dependent leaked into the page.
    EXPECT_EQ(htmlA.find("git"), std::string::npos);
    EXPECT_EQ(htmlA.find("compiler"), std::string::npos);
}

/** Three-run ledger with a regression injected at the third run. */
std::vector<LoadedBundle>
syntheticLedger()
{
    const char *docs[3] = {
        "{\"schema_version\": 2, \"counters\": {\"a.cycles\": 100, "
        "\"a.steady\": 50, \"b.wall_sec\": 1.0}}",
        "{\"schema_version\": 2, \"counters\": {\"a.cycles\": 105, "
        "\"a.steady\": 50, \"b.wall_sec\": 2.0}}",
        "{\"schema_version\": 2, \"counters\": {\"a.cycles\": 200, "
        "\"a.steady\": 50, \"b.wall_sec\": 9.0}}",
    };
    std::vector<LoadedBundle> runs(3);
    for (int i = 0; i < 3; ++i) {
        runs[i].name = std::string("000") + std::to_string(i + 1) +
                       "-single-counter-tlr-p4";
        runs[i].stats = parsed(docs[i]);
    }
    return runs;
}

TEST(Trend, NamesFirstRegressingRun)
{
    std::vector<LoadedBundle> runs = syntheticLedger();
    TrendReport t = analyzeTrend(runs, 20.0);
    ASSERT_TRUE(t.ok()) << t.error;
    EXPECT_EQ(t.compared, 3u);
    EXPECT_EQ(t.regressed, 1u);

    const TrendRow *cycles = nullptr, *wall = nullptr;
    for (const TrendRow &r : t.rows) {
        if (r.key == "counters.a.cycles")
            cycles = &r;
        if (r.key == "counters.b.wall_sec")
            wall = &r;
    }
    ASSERT_NE(cycles, nullptr);
    // +5% at run 2 is inside the 20% threshold; run 3 is the first
    // regressing run.
    EXPECT_EQ(cycles->firstRegressRun, 2);
    EXPECT_EQ(cycles->firstVal, 200);
    // Host-perf keys are tracked but never flagged as regressions.
    ASSERT_NE(wall, nullptr);
    EXPECT_TRUE(wall->reportOnly);
    EXPECT_EQ(wall->firstRegressRun, -1);

    std::string text = trendSummaryText(t, 20.0);
    EXPECT_NE(text.find("counters.a.cycles first regresses at run "
                        "0003-single-counter-tlr-p4"),
              std::string::npos)
        << text;
    std::string html = renderTrendHtml(t, 20.0);
    EXPECT_NE(html.find("0003-single-counter-tlr-p4"),
              std::string::npos);
}

TEST(Trend, SingleEntryLedgerIsCleanBaseline)
{
    std::vector<LoadedBundle> runs = syntheticLedger();
    runs.resize(1);
    TrendReport t = analyzeTrend(runs, 20.0);
    ASSERT_TRUE(t.ok()) << t.error;
    EXPECT_EQ(t.compared, 3u);
    EXPECT_EQ(t.regressed, 0u);
    EXPECT_TRUE(t.rows.empty()); // nothing changed vs itself
    EXPECT_NE(renderTrendHtml(t, 20.0).find("every metric is identical"),
              std::string::npos);
}

TEST(Trend, RefusesMixedStatsSchemas)
{
    std::vector<LoadedBundle> runs = syntheticLedger();
    runs[2].stats = parsed("{\"schema_version\": 3, \"counters\": {}}");
    TrendReport t = analyzeTrend(runs, 20.0);
    EXPECT_TRUE(t.schemaMismatch);
    EXPECT_NE(t.error.find("schema_version"), std::string::npos);
}

TEST(DiffJson, DocumentShape)
{
    DiffOptions opt;
    opt.thresholdPct = 10.0;
    opt.oldName = "a.json";
    opt.newName = "b.json";
    JsonValue oldDoc = parsed(
        "{\"schema_version\": 2, \"host_threads\": 1, "
        "\"counters\": {\"x.n\": 100, \"gone\": 1}}");
    JsonValue newDoc = parsed(
        "{\"schema_version\": 2, \"host_threads\": 4, "
        "\"counters\": {\"x.n\": 150, \"added\": 1}}");
    DiffReport rep = diffStats(oldDoc, newDoc, opt);
    JsonValue doc = parsed(renderDiffJson(rep, opt));

    EXPECT_EQ(resolvePath(doc, "schema_version")->number,
              diffJsonSchemaVersion);
    EXPECT_FALSE(resolvePath(doc, "refused")->boolean);
    EXPECT_TRUE(resolvePath(doc, "host_threads_differ")->boolean);
    const JsonValue *rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_TRUE(rows->isArray());
    bool sawExceeded = false, sawReportOnly = false;
    for (const JsonValue &r : rows->elements) {
        ASSERT_NE(r.find("report_only"), nullptr);
        if (r.find("key")->string == "counters.x.n")
            sawExceeded = r.find("exceeded")->boolean;
        // host_threads itself is a host-perf key: present, report-only.
        if (r.find("key")->string == "host_threads")
            sawReportOnly = r.find("report_only")->boolean;
    }
    EXPECT_TRUE(sawExceeded);
    EXPECT_TRUE(sawReportOnly);
    EXPECT_EQ(doc.find("only_old")->elements.size(), 1u);
    EXPECT_EQ(doc.find("only_new")->elements.size(), 1u);

    // The refusal document is also well-formed JSON.
    JsonValue newSchema = parsed("{\"schema_version\": 3}");
    DiffReport refused = diffStats(oldDoc, newSchema, opt);
    JsonValue rdoc = parsed(renderDiffJson(refused, opt));
    EXPECT_TRUE(resolvePath(rdoc, "refused")->boolean);
    EXPECT_EQ(resolvePath(rdoc, "refusal")->string, "schema_mismatch");
}

TEST(DiffHtml, RendersChangedRowsAndRefusals)
{
    DiffOptions opt;
    opt.oldName = "a";
    opt.newName = "b";
    JsonValue oldDoc =
        parsed("{\"schema_version\": 2, \"counters\": {\"x.n\": 100}}");
    JsonValue newDoc =
        parsed("{\"schema_version\": 2, \"counters\": {\"x.n\": 150}}");
    DiffReport rep = diffStats(oldDoc, newDoc, opt);
    std::string html = renderDiffHtml(rep, opt);
    EXPECT_NE(html.find("counters.x.n"), std::string::npos);
    EXPECT_NE(html.find("EXCEEDS"), std::string::npos);

    JsonValue legacy = parsed("{\"x\": 1}");
    DiffReport refused = diffStats(oldDoc, legacy, opt);
    std::string rhtml = renderDiffHtml(refused, opt);
    EXPECT_NE(rhtml.find("schema mismatch"), std::string::npos);
}

} // namespace

/**
 * @file
 * Stability under OS de-scheduling (paper Section 4).
 *
 * TLR makes critical sections restartable and non-blocking: if the OS
 * preempts a thread mid-transaction, the speculative updates are
 * discarded and the lock — which was never acquired — stays free, so
 * every other thread keeps making progress. Under BASE, preempting a
 * thread that holds the lock stalls the whole machine for the entire
 * scheduling quantum.
 */

#include <gtest/gtest.h>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

struct Result
{
    bool completed;
    bool valid;
    Tick cycles;
};

Result
runWithPreemptions(Scheme scheme, int cpus, std::uint64_t ops,
                   int preempt_every, Tick duration)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(scheme);
    p.totalOps = ops;
    Workload wl = makeSingleCounter(p);

    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(scheme);
    mp.maxTicks = 500'000'000ull;
    System sys(mp);
    installWorkload(sys, wl);
    // Round-robin preemptions across cores at a fixed period.
    if (preempt_every > 0) {
        for (int k = 1; k <= 200; ++k) {
            sys.preemptCore(k % cpus,
                            static_cast<Tick>(k) *
                                static_cast<Tick>(preempt_every),
                            duration);
        }
    }
    Result r;
    r.completed = sys.run();
    r.valid = wl.validate(sys);
    r.cycles = sys.completionTick();
    return r;
}

} // namespace

TEST(Preemption, CorrectUnderEveryScheme)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr,
                     Scheme::Mcs}) {
        Result r = runWithPreemptions(s, 4, 256, 1500, 3000);
        EXPECT_TRUE(r.completed) << schemeName(s);
        EXPECT_TRUE(r.valid) << schemeName(s);
    }
}

TEST(Preemption, TlrTransactionAbortsAndLockStaysFree)
{
    // With preemptions hitting mid-transaction, the TLR run must show
    // preemption-induced aborts and still commit everything lock-free.
    MicroParams p;
    p.numCpus = 4;
    p.totalOps = 256;
    Workload wl = makeSingleCounter(p);
    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.maxTicks = 500'000'000ull;
    System sys(mp);
    installWorkload(sys, wl);
    for (int k = 1; k <= 100; ++k)
        sys.preemptCore(k % 4, static_cast<Tick>(k) * 700, 2000);
    ASSERT_TRUE(sys.run());
    EXPECT_TRUE(wl.validate(sys));
    EXPECT_GT(sys.stats().sum("spec", "abort.preempted"), 0u);
    EXPECT_GT(sys.stats().sum("core", "preemptions"), 0u);
}

TEST(Preemption, NonBlockingBeatsLockHolderPreemption)
{
    // The paper's stability claim, measured: preempting threads is far
    // cheaper under TLR (the victim aborts; others proceed) than under
    // BASE (the victim may sit on the lock for the whole quantum).
    const Tick quantum = 20000;
    Result base = runWithPreemptions(Scheme::Base, 4, 512, 2500, quantum);
    Result tlr =
        runWithPreemptions(Scheme::BaseSleTlr, 4, 512, 2500, quantum);
    ASSERT_TRUE(base.completed && base.valid);
    ASSERT_TRUE(tlr.completed && tlr.valid);
    EXPECT_LT(tlr.cycles, base.cycles);
}

TEST(Preemption, SuspendedCoreResumesMidInstruction)
{
    // A preemption landing while a core waits on a miss must replay
    // the instruction cleanly after resume.
    MicroParams p;
    p.numCpus = 2;
    p.totalOps = 64;
    Workload wl = makeSingleCounter(p);
    MachineParams mp;
    mp.numCpus = 2;
    mp.spec = schemeSpecConfig(Scheme::Base);
    System sys(mp);
    installWorkload(sys, wl);
    for (Tick t = 50; t < 20000; t += 97)
        sys.preemptCore(static_cast<int>(t / 97) % 2, t, 31);
    ASSERT_TRUE(sys.run());
    EXPECT_TRUE(wl.validate(sys));
}

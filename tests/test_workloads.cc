/**
 * @file
 * Tests for the extended workloads: bank transfers (nested ordered
 * locks, conservation witness), octree inserts (pointer-chasing
 * tree-node locking) and the history counter (a complete
 * serialization witness: every critical section's observation is
 * logged and checked for exactly-once coverage).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "workloads/extra.hh"

using namespace tlr;

namespace
{

RunStats
run(Scheme s, const Workload &wl, int cpus,
    Protocol proto = Protocol::Broadcast)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.protocol = proto;
    mp.spec = schemeSpecConfig(s);
    mp.maxTicks = 500'000'000ull;
    return runWorkload(mp, wl);
}

} // namespace

class BankGrid : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{
};

TEST_P(BankGrid, BalanceConserved)
{
    auto [s, cpus] = GetParam();
    RunStats r =
        run(s, makeBankTransfer(cpus, 16, 48, schemeLockKind(s)), cpus);
    EXPECT_TRUE(r.completed) << schemeName(s);
    EXPECT_TRUE(r.valid) << schemeName(s);
}

INSTANTIATE_TEST_SUITE_P(
    All, BankGrid,
    ::testing::Combine(::testing::Values(Scheme::Base, Scheme::BaseSle,
                                         Scheme::BaseSleTlr,
                                         Scheme::TlrStrictTs,
                                         Scheme::Mcs),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>> &info) {
        return "s" +
               std::to_string(
                   static_cast<int>(std::get<0>(info.param))) +
               "c" + std::to_string(std::get<1>(info.param));
    });

TEST(Bank, NestedElisionCommitsBothLocks)
{
    // Under TLR both nested acquires elide: the transfer is one
    // transaction; elisions ~ 2x commits.
    RunStats r = run(Scheme::BaseSleTlr, makeBankTransfer(4, 8, 64), 4);
    ASSERT_TRUE(r.completed && r.valid);
    EXPECT_GT(r.commits, 0u);
    EXPECT_GE(r.elisions, 2 * r.commits - 8);
}

TEST(Bank, WorksOnDirectoryProtocol)
{
    RunStats r = run(Scheme::BaseSleTlr, makeBankTransfer(8, 12, 48), 8,
                     Protocol::Directory);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST(Octree, CountsConservedUnderAllSchemes)
{
    for (Scheme s :
         {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr}) {
        RunStats r = run(s, makeOctreeInsert(8, 2, 64), 8);
        EXPECT_TRUE(r.completed) << schemeName(s);
        EXPECT_TRUE(r.valid) << schemeName(s);
    }
}

TEST(Octree, TlrOutperformsBaseOnContendedTree)
{
    RunStats base = run(Scheme::Base, makeOctreeInsert(8, 2, 96), 8);
    RunStats tlr = run(Scheme::BaseSleTlr, makeOctreeInsert(8, 2, 96), 8);
    ASSERT_TRUE(base.completed && base.valid);
    ASSERT_TRUE(tlr.completed && tlr.valid);
    EXPECT_LT(tlr.cycles, base.cycles);
}

class HistoryGrid
    : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{
};

TEST_P(HistoryGrid, EveryValueObservedExactlyOnce)
{
    auto [s, cpus] = GetParam();
    RunStats r =
        run(s, makeHistoryCounter(cpus, 64, schemeLockKind(s)), cpus);
    EXPECT_TRUE(r.completed) << schemeName(s);
    EXPECT_TRUE(r.valid) << schemeName(s);
}

INSTANTIATE_TEST_SUITE_P(
    All, HistoryGrid,
    ::testing::Combine(::testing::Values(Scheme::Base, Scheme::BaseSle,
                                         Scheme::BaseSleTlr,
                                         Scheme::TlrStrictTs,
                                         Scheme::Mcs),
                       ::testing::Values(2, 8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>> &info) {
        return "s" +
               std::to_string(
                   static_cast<int>(std::get<0>(info.param))) +
               "c" + std::to_string(std::get<1>(info.param));
    });

TEST(History, TlrSerializationWitnessUnderHeavyConflict)
{
    // 16 processors, all critical sections conflicting: the observed
    // value sequence must still be a perfect serialization.
    RunStats r =
        run(Scheme::BaseSleTlr, makeHistoryCounter(16, 64), 16);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(r.commits, 16u * 64u);
}

/**
 * @file
 * SLE/TLR mechanism tests, including the paper's own scenarios:
 *
 *  - Figure 2: two processors writing A and B in opposite orders
 *    inside the same critical section livelock under restart-only
 *    speculation (SLE with an unbounded retry budget), because each
 *    restarts the other forever.
 *  - Figure 4: TLR resolves exactly that scenario with timestamps:
 *    the earlier-timestamp processor retains ownership and both
 *    complete.
 *  - Figure 6: three processors forming an ownership chain require
 *    marker/probe propagation to avoid deadlock.
 *
 * Plus: elision behavior, resource-constraint fallbacks (write
 * buffer, victim cache), nesting, unbufferable operations, timestamp
 * management and conflicts with un-timestamped requests.
 */

#include <gtest/gtest.h>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "sync/layout.hh"
#include "sync/lock_progs.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

constexpr Reg rLock = 1;
constexpr Reg rA = 2;
constexpr Reg rB = 3;
constexpr Reg rT0 = 4;
constexpr Reg rT1 = 5;
constexpr Reg rV = 6;
constexpr Reg rIter = 7;

MachineParams
params(Scheme s, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    mp.maxTicks = 20'000'000;
    return mp;
}

/**
 * The Figure 2 / Figure 4 workload: every cpu runs `iters` critical
 * sections; inside each CS it increments locations A and B, with odd
 * cpus writing in reverse order.
 */
struct ReverseWriters
{
    Addr lock, a, b;
    std::vector<ProgramPtr> progs;
    std::function<bool(Addr)> classifier;

    ReverseWriters(int cpus, int iters)
    {
        Layout lay;
        lock = lay.allocLock();
        a = lay.allocLine();
        b = lay.allocLine();
        classifier = lay.classifier();
        for (int c = 0; c < cpus; ++c) {
            ProgramBuilder pb;
            pb.li(rLock, static_cast<std::int64_t>(lock));
            pb.li(rA, static_cast<std::int64_t>(c % 2 ? b : a));
            pb.li(rB, static_cast<std::int64_t>(c % 2 ? a : b));
            pb.li(rIter, iters);
            pb.label("loop");
            emitTtsAcquire(pb, rLock, rT0, rT1);
            pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
            pb.ld(rV, rB).addi(rV, rV, 1).st(rV, rB);
            emitTtsRelease(pb, rLock);
            pb.addi(rIter, rIter, -1);
            pb.bne(rIter, 0, "loop");
            pb.halt();
            progs.push_back(pb.build());
        }
    }

    void
    install(System &sys)
    {
        for (size_t c = 0; c < progs.size(); ++c)
            sys.setProgram(static_cast<int>(c), progs[c]);
        sys.setLockClassifier(classifier);
    }
};

} // namespace

TEST(PaperFigure2, RestartOnlySpeculationLivelocks)
{
    // SLE whose retry budget never runs out == pure restart-based
    // speculation with no conflict resolution: the paper's Figure 2
    // livelock. Give it a bounded horizon and require NO completion.
    MachineParams mp = params(Scheme::BaseSle, 2);
    mp.spec.sleMaxRetries = 1'000'000'000;  // never give up...
    mp.spec.specMaxCycles = 1'000'000'000;  // ...and no quantum bound
    mp.maxTicks = 3'000'000;
    // Keep both cpus perfectly symmetric: no random post-release gap.
    System sys(mp);
    ReverseWriters w(2, 50);
    w.install(sys);
    EXPECT_FALSE(sys.run()); // watchdog expires: livelock
    EXPECT_GT(sys.stats().sum("spec", "restarts"), 100u);
    // Essentially no forward progress (a couple of commits may sneak
    // through when bus arbitration briefly breaks the symmetry).
    EXPECT_LT(sys.stats().sum("spec", "commits"), 10u);
}

TEST(PaperFigure4, TlrResolvesReverseOrderConflicts)
{
    System sys(params(Scheme::BaseSleTlr, 2));
    ReverseWriters w(2, 50);
    w.install(sys);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, w.a), 100u);
    EXPECT_EQ(readCoherent(sys, w.b), 100u);
    // Lock-free: every critical section committed via elision.
    EXPECT_EQ(sys.stats().sum("spec", "commits"), 100u);
    // Conflicts occurred and were resolved by deferral/restart.
    EXPECT_GT(sys.stats().sum("l1_", "defers") +
                  sys.stats().sum("spec", "restarts"),
              0u);
}

TEST(PaperFigure4, SleAloneFallsBackToTheLock)
{
    // Default SLE (bounded retries) must complete by acquiring the
    // lock, i.e. with fallbacks, unlike TLR which stays lock-free.
    System sys(params(Scheme::BaseSle, 2));
    ReverseWriters w(2, 50);
    w.install(sys);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, w.a), 100u);
    EXPECT_EQ(readCoherent(sys, w.b), 100u);
    EXPECT_GT(sys.stats().sum("spec", "fallbacks"), 0u);
}

TEST(PaperFigure6, ChainsResolveWithMarkersAndProbes)
{
    // Many cpus, several blocks written in rotated orders: ownership
    // chains with conflicting priorities form; marker/probe machinery
    // must keep the system live and serializable.
    const int cpus = 6;
    const int iters = 40;
    Layout lay;
    Addr lock = lay.allocLock();
    std::array<Addr, 3> blocks{lay.allocLine(), lay.allocLine(),
                               lay.allocLine()};
    System sys(params(Scheme::BaseSleTlr, cpus));
    for (int c = 0; c < cpus; ++c) {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rIter, iters);
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        for (int k = 0; k < 3; ++k) {
            Addr t = blocks[static_cast<size_t>((c + k) % 3)];
            pb.li(rA, static_cast<std::int64_t>(t));
            pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        }
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(c, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    for (Addr t : blocks)
        EXPECT_EQ(readCoherent(sys, t),
                  static_cast<std::uint64_t>(cpus * iters));
    // The scenario must actually exercise the chain machinery.
    EXPECT_GT(sys.stats().get("net", "markerMsgs"), 0u);
}

TEST(SleMechanism, UncontendedCriticalSectionsCommitElided)
{
    MicroParams p;
    p.numCpus = 4;
    p.totalOps = 256;
    Workload wl = makeMultipleCounter(p);
    System sys(params(Scheme::BaseSle, 4));
    installWorkload(sys, wl);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl.validate(sys));
    EXPECT_EQ(sys.stats().sum("spec", "commits"), 256u);
    EXPECT_EQ(sys.stats().sum("spec", "fallbacks"), 0u);
}

TEST(SleMechanism, WriteBufferOverflowFallsBackToLock)
{
    // A critical section writing more unique lines than the write
    // buffer holds cannot be speculated (paper Section 3.3).
    MachineParams mp = params(Scheme::BaseSleTlr, 2);
    mp.spec.writeBufferLines = 4;
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = lay.allocLines(8);
    System sys(mp);
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rIter, 10);
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        for (int k = 0; k < 6; ++k) { // 6 lines > 4-entry buffer
            pb.li(rA, static_cast<std::int64_t>(data + 64u * k));
            pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        }
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(c, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    for (int k = 0; k < 6; ++k)
        EXPECT_EQ(readCoherent(sys, data + 64u * k), 20u);
    EXPECT_GT(sys.stats().sum("spec", "fallbacks"), 0u);
    EXPECT_GT(sys.stats().sum("spec", "abort.write-buffer-full"), 0u);
}

TEST(SleMechanism, VictimCacheOverflowFallsBackToLock)
{
    // Transactional lines evicted by set conflicts spill into the
    // victim cache; exceeding ways + victim entries forces fallback
    // (paper Sections 3.3 and 4).
    MachineParams mp = params(Scheme::BaseSleTlr, 1);
    mp.l1.sizeBytes = 16 * 1024; // 64 sets of 4 ways
    mp.l1.victimEntries = 2;
    System sys(mp);
    const unsigned sets =
        static_cast<unsigned>(mp.l1.sizeBytes / (mp.l1.ways * lineBytes));
    const Addr stride = static_cast<Addr>(sets) * lineBytes;
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = 0x100000;
    ProgramBuilder pb;
    pb.li(rLock, static_cast<std::int64_t>(lock));
    emitTtsAcquire(pb, rLock, rT0, rT1);
    for (unsigned k = 0; k < 8; ++k) { // 8 same-set lines > 4+2
        pb.li(rA, static_cast<std::int64_t>(data + stride * k));
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
    }
    emitTtsRelease(pb, rLock);
    pb.halt();
    sys.setProgram(0, pb.build());
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    for (unsigned k = 0; k < 8; ++k)
        EXPECT_EQ(readCoherent(sys, data + stride * k), 1u);
    EXPECT_GT(sys.stats().sum("spec", "fallbacks"), 0u);
}

TEST(SleMechanism, NestedLocksElideUpToDepth)
{
    // Two nested locks: both elided, one commit for the outer region.
    Layout lay;
    Addr outer = lay.allocLock();
    Addr inner = lay.allocLock();
    Addr data = lay.allocLine();
    System sys(params(Scheme::BaseSleTlr, 2));
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder pb;
        pb.li(rIter, 20);
        pb.label("loop");
        pb.li(rLock, static_cast<std::int64_t>(outer));
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.li(rB, static_cast<std::int64_t>(inner));
        emitTtsAcquire(pb, rB, rT0, rT1);
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        emitTtsRelease(pb, rB);
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(c, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, data), 40u);
    // Elisions counts both locks; commits count outer regions only.
    EXPECT_GE(sys.stats().sum("spec", "elisions"),
              2 * sys.stats().sum("spec", "commits"));
    EXPECT_GT(sys.stats().sum("spec", "commits"), 0u);
}

TEST(SleMechanism, NestingBeyondDepthTreatsInnerLockAsData)
{
    // Depth 1: the inner lock cannot be elided and is written as
    // transactional data (paper Section 4); execution stays correct.
    MachineParams mp = params(Scheme::BaseSleTlr, 2);
    mp.spec.maxElisionDepth = 1;
    Layout lay;
    Addr outer = lay.allocLock();
    Addr inner = lay.allocLock();
    Addr data = lay.allocLine();
    System sys(mp);
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder pb;
        pb.li(rIter, 10);
        pb.label("loop");
        pb.li(rLock, static_cast<std::int64_t>(outer));
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.li(rB, static_cast<std::int64_t>(inner));
        emitTtsAcquire(pb, rB, rT0, rT1);
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        emitTtsRelease(pb, rB);
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(c, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, data), 20u);
}

TEST(SleMechanism, UnbufferableOperationForcesLockAcquisition)
{
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = lay.allocLine();
    System sys(params(Scheme::BaseSleTlr, 2));
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.li(rIter, 10);
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        pb.io(); // cannot be undone: speculation must stop
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(c, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, data), 20u);
    EXPECT_EQ(sys.stats().sum("spec", "commits"), 0u);
    EXPECT_GT(sys.stats().sum("spec", "abort.unbufferable"), 0u);
}

TEST(SleMechanism, QuantumBoundForcesFallbackOnLongRegions)
{
    // A critical section whose compute exceeds the scheduling-quantum
    // bound cannot stay speculative (paper Section 3.3); it must fall
    // back to the lock and still execute correctly.
    MachineParams mp = params(Scheme::BaseSleTlr, 2);
    mp.spec.specMaxCycles = 200;
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = lay.allocLine();
    System sys(mp);
    for (int c = 0; c < 2; ++c) {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.li(rIter, 8);
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        pb.li(rT0, 1000); // far beyond the 200-cycle quantum
        pb.delay(rT0);
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(c, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, data), 16u);
    EXPECT_GT(sys.stats().sum("spec", "abort.quantum-expired"), 0u);
    EXPECT_GT(sys.stats().sum("spec", "fallbacks"), 0u);
}

TEST(TlrMechanism, LogicalClockAdvancesOnCommit)
{
    MicroParams p;
    p.numCpus = 2;
    p.totalOps = 64;
    Workload wl = makeSingleCounter(p);
    System sys(params(Scheme::BaseSleTlr, 2));
    installWorkload(sys, wl);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl.validate(sys));
    // Each cpu committed 32 regions; clocks advance monotonically by
    // at least 1 per commit.
    EXPECT_GE(sys.engine(0).logicalClock(), 32u);
    EXPECT_GE(sys.engine(1).logicalClock(), 32u);
    EXPECT_FALSE(sys.engine(0).timestampHeld());
}

TEST(TlrMechanism, UntimestampedConflictsDeferPolicy)
{
    // cpu0 runs critical sections under TLR; cpu1 hammers the same
    // data with plain stores (a data race, paper Section 2.2). With
    // the defer policy both complete.
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = lay.allocLine();
    System sys(params(Scheme::BaseSleTlr, 2));
    {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.li(rIter, 50);
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.ld(rV, rA, 8).addi(rV, rV, 1).st(rV, rA, 8);
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(0, pb.build());
    }
    {
        ProgramBuilder pb; // racy writer, no lock
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.li(rIter, 50);
        pb.label("loop");
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(1, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, data + 8), 50u);
    EXPECT_EQ(readCoherent(sys, data), 50u);
}

TEST(TlrMechanism, UntimestampedConflictsAbortPolicy)
{
    MachineParams mp = params(Scheme::BaseSleTlr, 2);
    mp.spec.deferUntimestamped = false;
    Layout lay;
    Addr lock = lay.allocLock();
    Addr data = lay.allocLine();
    System sys(mp);
    {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.li(rIter, 30);
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.ld(rV, rA, 8).addi(rV, rV, 1).st(rV, rA, 8);
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(0, pb.build());
    }
    {
        ProgramBuilder pb;
        pb.li(rA, static_cast<std::int64_t>(data));
        pb.li(rIter, 30);
        pb.label("loop");
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        sys.setProgram(1, pb.build());
    }
    sys.setLockClassifier(lay.classifier());
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(readCoherent(sys, data + 8), 30u);
    EXPECT_EQ(readCoherent(sys, data), 30u);
}

TEST(TlrMechanism, SingleCounterIsNearlyRestartFree)
{
    // Paper Section 6.2: with the single-block relaxation, TLR on the
    // single-counter microbenchmark forms an ideal hardware queue and
    // processors almost never restart.
    MicroParams p;
    p.numCpus = 8;
    p.totalOps = 512;
    Workload wl = makeSingleCounter(p);
    System sys(params(Scheme::BaseSleTlr, 8));
    installWorkload(sys, wl);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl.validate(sys));
    EXPECT_LE(sys.stats().sum("spec", "restarts"), 16u);
    EXPECT_GT(sys.stats().sum("l1_", "relaxedDefers"), 0u);
}

TEST(TlrMechanism, StrictTimestampsRestartMore)
{
    MicroParams p;
    p.numCpus = 8;
    p.totalOps = 512;
    auto run = [&](Scheme s) {
        Workload wl = makeSingleCounter(p);
        System sys(params(s, 8));
        installWorkload(sys, wl);
        EXPECT_TRUE(sys.run());
        EXPECT_TRUE(wl.validate(sys));
        return sys.stats().sum("spec", "restarts");
    };
    std::uint64_t relaxed = run(Scheme::BaseSleTlr);
    std::uint64_t strict = run(Scheme::TlrStrictTs);
    EXPECT_GT(strict, relaxed);
}

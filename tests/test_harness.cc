/**
 * @file
 * Unit tests for the harness layer: table rendering, ASCII bars,
 * run-stat collection, scheme configuration and the workload
 * scenarios, plus determinism of whole simulations.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/table.hh"
#include "workloads/micro.hh"
#include "workloads/scenarios.hh"

using namespace tlr;

TEST(Table, AlignsColumnsAndFormatsNumbers)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"a-much-longer-name", "23456"});
    std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Short rows are padded to the header width.
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(static_cast<std::uint64_t>(42)), "42");
}

TEST(Table, MissingCellsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    EXPECT_NE(t.str().find('x'), std::string::npos);
}

TEST(SplitBar, ProportionsAndClamping)
{
    // Full-scale bar, half lock.
    std::string b = splitBar(1.0, 0.5, 1.0, 10);
    EXPECT_EQ(b.size(), 10u);
    EXPECT_EQ(b, "#####.....");
    // Over-scale totals clamp to the width.
    EXPECT_EQ(splitBar(5.0, 0.0, 1.0, 8).size(), 8u);
    // Zero and negative guards.
    EXPECT_EQ(splitBar(0.0, 0.5, 1.0, 8), "");
    EXPECT_EQ(splitBar(1.0, 0.0, 0.0, 4).size(), 4u);
}

TEST(Scheme, NamesAndConfigsAreConsistent)
{
    EXPECT_STREQ(schemeName(Scheme::Base), "BASE");
    EXPECT_STREQ(schemeName(Scheme::BaseSleTlr), "BASE+SLE+TLR");
    EXPECT_FALSE(schemeSpecConfig(Scheme::Base).enableSle);
    EXPECT_TRUE(schemeSpecConfig(Scheme::BaseSle).enableSle);
    EXPECT_FALSE(schemeSpecConfig(Scheme::BaseSle).enableTlr);
    EXPECT_TRUE(schemeSpecConfig(Scheme::BaseSleTlr).enableTlr);
    EXPECT_TRUE(schemeSpecConfig(Scheme::TlrStrictTs).strictTimestamps);
    EXPECT_EQ(schemeLockKind(Scheme::Mcs), LockKind::Mcs);
    EXPECT_EQ(schemeLockKind(Scheme::Base),
              LockKind::TestAndTestAndSet);
}

TEST(Runner, CollectsStatsAndValidates)
{
    MicroParams p;
    p.numCpus = 4;
    p.totalOps = 64;
    RunStats r = runScheme(Scheme::BaseSleTlr, 4, makeSingleCounter(p));
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.commits, 64u);
    EXPECT_GT(r.busTransactions, 0u);
    EXPECT_GT(r.lockCycles + r.dataStallCycles + r.busyCycles, 0u);
    EXPECT_GE(r.lockFraction(4), 0.0);
    EXPECT_LE(r.lockFraction(4), 1.0);
}

TEST(Runner, EnvScaleParsesAndDefaults)
{
    unsetenv("TLR_SCALE");
    EXPECT_EQ(envScale(), 1u);
    setenv("TLR_SCALE", "4", 1);
    EXPECT_EQ(envScale(), 4u);
    setenv("TLR_SCALE", "bogus", 1);
    EXPECT_EQ(envScale(), 1u);
    unsetenv("TLR_SCALE");
}

TEST(Determinism, IdenticalRunsProduceIdenticalCycleCounts)
{
    auto once = [] {
        MicroParams p;
        p.numCpus = 8;
        p.totalOps = 256;
        return runScheme(Scheme::BaseSleTlr, 8, makeSingleCounter(p));
    };
    RunStats a = once();
    RunStats b = once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.busTransactions, b.busTransactions);
}

TEST(Determinism, SeedChangesSchedule)
{
    MicroParams p;
    p.numCpus = 4;
    p.totalOps = 256;
    MachineParams mp;
    mp.numCpus = 4;
    mp.spec = schemeSpecConfig(Scheme::Base);
    RunStats a = runWorkload(mp, makeSingleCounter(p));
    mp.seed = 999;
    RunStats b = runWorkload(mp, makeSingleCounter(p));
    EXPECT_TRUE(a.valid && b.valid);
    EXPECT_NE(a.cycles, b.cycles); // random delays differ with seed
}

TEST(Scenarios, ReverseWritersValidatesCorrectTotals)
{
    RunStats r = runScheme(Scheme::Base, 4, makeReverseWriters(4, 16));
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.valid);
}

TEST(Scenarios, RotatedBlocksAllSchemes)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr, Scheme::Mcs}) {
        // Rotated blocks uses TTS code; MCS scheme still runs it with
        // its spec config (lock kind only affects generated locks).
        RunStats r = runScheme(s, 6, makeRotatedBlocks(6, 24));
        EXPECT_TRUE(r.completed) << schemeName(s);
        EXPECT_TRUE(r.valid) << schemeName(s);
    }
}

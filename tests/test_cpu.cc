/**
 * @file
 * Unit tests for the mini-ISA, the assembler DSL and the core model,
 * using a functional "perfect memory" port (fixed 1-cycle latency).
 */

#include <gtest/gtest.h>

#include <map>

#include "cpu/core.hh"
#include "cpu/program.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tlr;

namespace
{

/** Simple magic memory with load-link tracking, 1-cycle latency. */
class PerfectMem : public MemPort
{
  public:
    PerfectMem(EventQueue &eq, Core &core) : eq_(eq), core_(core) {}

    void
    request(const CoreMemOp &op) override
    {
        MemResponse resp;
        resp.gen = op.gen;
        switch (op.type) {
          case CoreMemOp::Type::Load:
            resp.value = mem_[op.addr];
            break;
          case CoreMemOp::Type::LoadLinked:
            resp.value = mem_[op.addr];
            linkValid_ = true;
            linkAddr_ = op.addr;
            break;
          case CoreMemOp::Type::Store:
            mem_[op.addr] = op.data;
            if (linkValid_ && linkAddr_ == op.addr)
                linkValid_ = false;
            break;
          case CoreMemOp::Type::StoreCond:
            if (linkValid_ && linkAddr_ == op.addr) {
                mem_[op.addr] = op.data;
                linkValid_ = false;
                resp.value = 1;
            } else {
                resp.value = 0;
            }
            break;
          case CoreMemOp::Type::AtomicSwap:
            resp.value = mem_[op.addr];
            mem_[op.addr] = op.data;
            break;
          case CoreMemOp::Type::AtomicCas:
            resp.value = mem_[op.addr];
            if (resp.value == op.expected)
                mem_[op.addr] = op.data;
            break;
          case CoreMemOp::Type::AtomicAdd:
            resp.value = mem_[op.addr];
            mem_[op.addr] = resp.value + op.data;
            break;
        }
        eq_.scheduleIn(1, [this, resp] { core_.memResponse(resp); });
    }

    std::map<Addr, std::uint64_t> mem_;
    bool linkValid_ = false;
    Addr linkAddr_ = 0;

  private:
    EventQueue &eq_;
    Core &core_;
};

struct CoreFixture
{
    EventQueue eq;
    StatSet stats;
    Core core{eq, stats, 0, Rng(1)};
    PerfectMem mem{eq, core};

    void
    runProgram(ProgramPtr p)
    {
        core.setPort(&mem);
        core.setProgram(std::move(p));
        core.start(0);
        ASSERT_TRUE(eq.run(1'000'000));
        ASSERT_TRUE(core.halted());
    }
};

} // namespace

TEST(Program, LabelsResolveAndDisassemble)
{
    ProgramBuilder b;
    b.li(1, 5).label("top").addi(1, 1, -1).bne(1, 0, "top").halt();
    auto p = b.build();
    EXPECT_EQ(p->labelPc("top"), 1);
    EXPECT_EQ(p->size(), 4);
    EXPECT_NE(p->disassembleAll().find("top:"), std::string::npos);
}

TEST(Program, DanglingLabelIsFatal)
{
    ProgramBuilder b;
    b.jmp("nowhere");
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Program, DuplicateLabelIsFatal)
{
    ProgramBuilder b;
    b.label("a");
    EXPECT_THROW(b.label("a"), std::runtime_error);
}

TEST(CoreExec, AluAndBranches)
{
    CoreFixture f;
    ProgramBuilder b;
    // sum = 1 + 2 + ... + 10 computed with a loop
    b.li(1, 10).li(2, 0);
    b.label("loop");
    b.add(2, 2, 1).addi(1, 1, -1).bne(1, 0, "loop");
    b.li(3, 7).slli(4, 3, 2).srli(5, 4, 1);
    b.and_(6, 3, 4).or_(7, 3, 4).xor_(8, 3, 4);
    b.slt(9, 1, 3).seq(10, 1, 1).andi(11, 7, 5);
    b.mul(12, 3, 3).sub(13, 12, 3);
    b.halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(2), 55u);
    EXPECT_EQ(f.core.reg(4), 28u);
    EXPECT_EQ(f.core.reg(5), 14u);
    EXPECT_EQ(f.core.reg(6), 7u & 28u);
    EXPECT_EQ(f.core.reg(7), 7u | 28u);
    EXPECT_EQ(f.core.reg(8), 7u ^ 28u);
    EXPECT_EQ(f.core.reg(9), 1u); // 0 < 7
    EXPECT_EQ(f.core.reg(10), 1u);
    EXPECT_EQ(f.core.reg(12), 49u);
    EXPECT_EQ(f.core.reg(13), 42u);
}

TEST(CoreExec, RegisterZeroIsHardwiredZero)
{
    CoreFixture f;
    ProgramBuilder b;
    b.li(0, 99).mov(1, 0).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(0), 0u);
    EXPECT_EQ(f.core.reg(1), 0u);
}

TEST(CoreExec, LoadsAndStores)
{
    CoreFixture f;
    f.mem.mem_[0x1000] = 77;
    ProgramBuilder b;
    b.li(1, 0x1000);
    b.ld(2, 1);           // r2 = 77
    b.addi(3, 2, 1);
    b.st(3, 1, 8);        // mem[0x1008] = 78
    b.ld(4, 1, 8);
    b.halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(2), 77u);
    EXPECT_EQ(f.core.reg(4), 78u);
    EXPECT_EQ(f.mem.mem_[0x1008], 78u);
}

TEST(CoreExec, LlScSucceedsWhenUndisturbed)
{
    CoreFixture f;
    f.mem.mem_[0x2000] = 5;
    ProgramBuilder b;
    b.li(1, 0x2000).ll(2, 1).addi(3, 2, 1).sc(4, 3, 1).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(4), 1u);
    EXPECT_EQ(f.mem.mem_[0x2000], 6u);
}

TEST(CoreExec, ScFailsWithoutLink)
{
    CoreFixture f;
    ProgramBuilder b;
    b.li(1, 0x2000).li(3, 9).sc(4, 3, 1).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(4), 0u);
    EXPECT_EQ(f.mem.mem_[0x2000], 0u);
}

TEST(CoreExec, AtomicSwapReturnsOldValue)
{
    CoreFixture f;
    f.mem.mem_[0x3000] = 11;
    ProgramBuilder b;
    b.li(1, 0x3000).li(2, 22).amoswap(3, 2, 1).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(3), 11u);
    EXPECT_EQ(f.mem.mem_[0x3000], 22u);
}

TEST(CoreExec, AtomicCasSucceedsOnMatch)
{
    CoreFixture f;
    f.mem.mem_[0x3000] = 7;
    ProgramBuilder b;
    b.li(1, 0x3000).li(3, 7).li(2, 99).amocas(3, 2, 1).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(3), 7u); // old value returned
    EXPECT_EQ(f.mem.mem_[0x3000], 99u);
}

TEST(CoreExec, AtomicCasFailsOnMismatch)
{
    CoreFixture f;
    f.mem.mem_[0x3000] = 8;
    ProgramBuilder b;
    b.li(1, 0x3000).li(3, 7).li(2, 99).amocas(3, 2, 1).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(3), 8u); // old value differs from expected
    EXPECT_EQ(f.mem.mem_[0x3000], 8u);
}

TEST(CoreExec, AtomicAddReturnsOldAndAccumulates)
{
    CoreFixture f;
    f.mem.mem_[0x3000] = 5;
    ProgramBuilder b;
    b.li(1, 0x3000).li(2, 10).amoadd(3, 2, 1).amoadd(4, 2, 1).halt();
    f.runProgram(b.build());
    EXPECT_EQ(f.core.reg(3), 5u);
    EXPECT_EQ(f.core.reg(4), 15u);
    EXPECT_EQ(f.mem.mem_[0x3000], 25u);
}

TEST(CoreExec, DelayAdvancesTime)
{
    CoreFixture f;
    ProgramBuilder b;
    b.li(1, 100).delay(1).halt();
    f.runProgram(b.build());
    EXPECT_GE(f.eq.now(), 100u);
    EXPECT_EQ(f.stats.get("core0", "delayCycles"), 100u);
}

TEST(CoreExec, RndBoundedAndDeterministic)
{
    std::uint64_t first = 0;
    for (int trial = 0; trial < 2; ++trial) {
        CoreFixture f;
        ProgramBuilder b;
        b.li(1, 16).rnd(2, 1).halt();
        f.runProgram(b.build());
        EXPECT_LT(f.core.reg(2), 16u);
        if (trial == 0)
            first = f.core.reg(2);
        else
            EXPECT_EQ(f.core.reg(2), first);
    }
}

TEST(CoreExec, UnalignedAccessPanics)
{
    CoreFixture f;
    ProgramBuilder b;
    b.li(1, 0x1001).ld(2, 1).halt();
    f.core.setPort(&f.mem);
    f.core.setProgram(b.build());
    f.core.start(0);
    EXPECT_THROW(f.eq.run(), std::logic_error);
}

TEST(CoreExec, CheckpointRestoreReexecutes)
{
    CoreFixture f;
    ProgramBuilder b;
    b.li(1, 1).li(2, 42).halt();
    f.core.setPort(&f.mem);
    f.core.setProgram(b.build());
    f.core.start(0);
    // Run to completion, then restore a checkpoint from the start.
    ASSERT_TRUE(f.eq.run());
    Checkpoint cp;
    cp.pc = 0;
    f.core.restoreCheckpoint(cp);
    EXPECT_FALSE(f.core.halted());
    ASSERT_TRUE(f.eq.run());
    EXPECT_TRUE(f.core.halted());
    EXPECT_EQ(f.core.reg(2), 42u);
}

TEST(CoreExec, StallAttributionUsesClassifier)
{
    CoreFixture f;
    f.core.setLockClassifier([](Addr a) { return a == 0x4000; });
    ProgramBuilder b;
    b.li(1, 0x4000).li(2, 0x5000);
    b.ld(3, 1).ld(4, 2).halt();
    f.runProgram(b.build());
    EXPECT_GT(f.stats.get("core0", "lockCycles"), 0u);
    EXPECT_GT(f.stats.get("core0", "dataStallCycles"), 0u);
}

/**
 * @file
 * Application-kernel correctness: every Figure 11 profile runs under
 * BASE, TLR and MCS and must produce the exact expected per-lock
 * counter totals (atomicity/serializability witness), including the
 * coarse-grain mp3d variant and the oversized cholesky critical
 * sections that exercise the resource-fallback path.
 */

#include <gtest/gtest.h>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "workloads/apps.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

AppProfile
scaled(AppProfile p, std::uint64_t iters)
{
    p.itersPerCpu = iters;
    return p;
}

bool
runApp(const AppProfile &p, Scheme s, int cpus, StatSet *out = nullptr)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    mp.maxTicks = 500'000'000ull;
    System sys(mp);
    Workload wl = makeAppKernel(p, cpus, schemeLockKind(s));
    installWorkload(sys, wl);
    bool ok = sys.run() && wl.validate(sys);
    if (out)
        *out = sys.stats();
    return ok;
}

} // namespace

class AppGrid : public ::testing::TestWithParam<std::tuple<int, Scheme>>
{
  protected:
    Scheme scheme() const { return std::get<1>(GetParam()); }
    int profileIdx() const { return std::get<0>(GetParam()); }
};

TEST_P(AppGrid, CountersExact)
{
    AppProfile p = allAppProfiles()[static_cast<size_t>(profileIdx())];
    EXPECT_TRUE(runApp(scaled(p, 16), scheme(), 4)) << p.name;
}

namespace
{

std::string
appGridName(const ::testing::TestParamInfo<std::tuple<int, Scheme>> &info)
{
    static const char *names[] = {"ocean",  "water",    "raytrace",
                                  "radiosity", "barnes", "cholesky",
                                  "mp3d"};
    const char *s = "";
    switch (std::get<1>(info.param)) {
      case Scheme::Base: s = "Base"; break;
      case Scheme::BaseSleTlr: s = "Tlr"; break;
      case Scheme::Mcs: s = "Mcs"; break;
      default: s = "X"; break;
    }
    return std::string(names[std::get<0>(info.param)]) + "_" + s;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    All, AppGrid,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(Scheme::Base, Scheme::BaseSleTlr,
                                         Scheme::Mcs)),
    appGridName);

TEST(Apps, Mp3dCoarseGrainCorrectUnderAllSchemes)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr, Scheme::Mcs})
        EXPECT_TRUE(runApp(scaled(mp3dCoarseProfile(), 24), s, 4));
}

TEST(Apps, CholeskyOversizedSectionsFallBack)
{
    StatSet stats;
    ASSERT_TRUE(
        runApp(scaled(choleskyProfile(), 48), Scheme::BaseSleTlr, 4,
               &stats));
    // The big critical sections overflow the write buffer: fallbacks
    // must occur (paper Section 6.3: ~3.7% of executions), while the
    // common case still commits speculatively.
    EXPECT_GT(stats.sum("spec", "abort.write-buffer-full"), 0u);
    EXPECT_GT(stats.sum("spec", "commits"), 0u);
}

TEST(Apps, RadiosityIsContendedAndTlrStaysLockFree)
{
    StatSet stats;
    ASSERT_TRUE(runApp(scaled(radiosityProfile(), 48),
                       Scheme::BaseSleTlr, 8, &stats));
    // The task-queue lock is hot: conflicts must actually occur...
    EXPECT_GT(stats.sum("l1_", "defers") + stats.sum("spec", "restarts"),
              0u);
    // ...and essentially all critical sections still commit elided.
    EXPECT_GT(stats.sum("spec", "commits"),
              static_cast<std::uint64_t>(8 * 48 - 16));
}

TEST(Apps, Mp3dLocksExceedCacheUnderBase)
{
    StatSet stats;
    ASSERT_TRUE(runApp(scaled(mp3dProfile(), 128), Scheme::Base, 4,
                       &stats));
    // Locks + cells exceed the 128 KB L1: lock accesses miss.
    EXPECT_GT(stats.sum("l1_", "misses"), 500u);
}

TEST(Apps, ProfilesCoverPaperTable1)
{
    auto all = allAppProfiles();
    ASSERT_EQ(all.size(), 7u);
    EXPECT_EQ(all[0].name, "ocean-cont");
    EXPECT_EQ(all[1].name, "water-nsq");
    EXPECT_EQ(all[2].name, "raytrace");
    EXPECT_EQ(all[3].name, "radiosity");
    EXPECT_EQ(all[4].name, "barnes");
    EXPECT_EQ(all[5].name, "cholesky");
    EXPECT_EQ(all[6].name, "mp3d");
}

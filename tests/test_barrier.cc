/**
 * @file
 * Barrier tests: phased execution must observe every prior phase's
 * writes, under every scheme — including the LL/SC barrier whose
 * arrival increment matches SLE's elision idiom and must be rescued
 * by the non-committing-region retry cap (a transaction containing a
 * spin-wait can never commit).
 */

#include <gtest/gtest.h>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "sync/barrier.hh"
#include "sync/layout.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

constexpr Reg rCount = 1;
constexpr Reg rSense = 2;
constexpr Reg rLs = 3;    // local sense
constexpr Reg rT0 = 4;
constexpr Reg rT1 = 5;
constexpr Reg rAddr = 6;
constexpr Reg rVal = 7;
constexpr Reg rSum = 8;

/**
 * Phased workload: in phase k, every cpu increments its slot of a
 * phase-k array; after the barrier it sums the WHOLE phase-k array and
 * accumulates it. If any cpu passes a barrier early, some slot is
 * still 0 and the final per-cpu sum comes out short.
 */
Workload
makePhased(int cpus, int phases, bool use_amo)
{
    Layout lay;
    Addr count = lay.allocLock();
    Addr sense = lay.allocLock();
    std::vector<Addr> phaseArr;
    for (int ph = 0; ph < phases; ++ph)
        phaseArr.push_back(lay.allocLines(static_cast<unsigned>(cpus)));

    Workload wl;
    wl.name = "phased-barrier";
    wl.lockClassifier = lay.classifier();
    for (int c = 0; c < cpus; ++c) {
        ProgramBuilder b;
        b.li(rCount, static_cast<std::int64_t>(count));
        b.li(rSense, static_cast<std::int64_t>(sense));
        b.li(rLs, 0);
        b.li(rSum, 0);
        for (int ph = 0; ph < phases; ++ph) {
            Addr mySlot = phaseArr[static_cast<size_t>(ph)] +
                          static_cast<Addr>(c) * lineBytes;
            b.li(rAddr, static_cast<std::int64_t>(mySlot));
            b.li(rVal, ph + 1);
            b.st(rVal, rAddr);
            if (use_amo)
                emitBarrierAmo(b, rCount, rSense, rLs, cpus, rT0, rT1);
            else
                emitBarrierLlSc(b, rCount, rSense, rLs, cpus, rT0, rT1);
            // Sum the whole phase array: every slot must be visible.
            for (int other = 0; other < cpus; ++other) {
                Addr slot = phaseArr[static_cast<size_t>(ph)] +
                            static_cast<Addr>(other) * lineBytes;
                b.li(rAddr, static_cast<std::int64_t>(slot));
                b.ld(rVal, rAddr);
                b.add(rSum, rSum, rVal);
            }
            // A second barrier keeps phases from overlapping.
            if (use_amo)
                emitBarrierAmo(b, rCount, rSense, rLs, cpus, rT0, rT1);
            else
                emitBarrierLlSc(b, rCount, rSense, rLs, cpus, rT0, rT1);
        }
        // Publish the accumulated sum for validation.
        Addr out = phaseArr[0] + static_cast<Addr>(c) * lineBytes + 8;
        b.li(rAddr, static_cast<std::int64_t>(out));
        b.st(rSum, rAddr);
        b.halt();
        wl.programs.push_back(b.build());
    }

    std::uint64_t expect = 0;
    for (int ph = 0; ph < phases; ++ph)
        expect += static_cast<std::uint64_t>(cpus) *
                  static_cast<std::uint64_t>(ph + 1);
    Addr base = phaseArr[0];
    wl.validate = [base, cpus, expect](System &sys) {
        for (int c = 0; c < cpus; ++c) {
            Addr out = base + static_cast<Addr>(c) * lineBytes + 8;
            if (readCoherent(sys, out) != expect)
                return false;
        }
        return true;
    };
    return wl;
}

bool
runPhased(Scheme s, int cpus, int phases, bool use_amo)
{
    MachineParams mp;
    mp.numCpus = cpus;
    mp.spec = schemeSpecConfig(s);
    mp.maxTicks = 500'000'000ull;
    System sys(mp);
    Workload wl = makePhased(cpus, phases, use_amo);
    installWorkload(sys, wl);
    return sys.run() && wl.validate(sys);
}

} // namespace

TEST(Barrier, AmoBarrierAllSchemes)
{
    for (Scheme s : {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr,
                     Scheme::TlrStrictTs}) {
        EXPECT_TRUE(runPhased(s, 8, 5, true)) << schemeName(s);
    }
}

TEST(Barrier, LlScBarrierBase)
{
    EXPECT_TRUE(runPhased(Scheme::Base, 8, 5, false));
}

TEST(Barrier, LlScBarrierSleFallsBackAndCompletes)
{
    // SLE elides the arrival SC, speculates into the sense spin and
    // keeps conflicting; the retry budget forces real acquisition.
    EXPECT_TRUE(runPhased(Scheme::BaseSle, 4, 4, false));
}

TEST(Barrier, LlScBarrierTlrRescuedByRetryCap)
{
    // Under TLR the wrongly-elided arrival region can never commit
    // (it contains a spin-wait); tlrMaxRetries must rescue it.
    EXPECT_TRUE(runPhased(Scheme::BaseSleTlr, 4, 3, false));
}

TEST(Barrier, ManyPhasesStayInLockstep)
{
    EXPECT_TRUE(runPhased(Scheme::BaseSleTlr, 16, 8, true));
}

/**
 * @file
 * Resource-constraint ablation (paper Sections 3.3 and 4): sweeps the
 * speculative write-buffer size against a cholesky-style workload
 * whose occasional large critical sections exceed small buffers, and
 * the victim-cache size against a same-set transactional footprint.
 *
 * The paper's stability guarantee is conditional on these resources:
 * a transaction whose footprint fits always executes lock-free; one
 * that does not falls back to the lock but stays correct. This bench
 * quantifies that boundary.
 */

#include "bench_common.hh"

#include "workloads/apps.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 8;

RunStats
runWb(unsigned wb_lines)
{
    AppProfile p = choleskyProfile();
    p.itersPerCpu = 48 * envScale();
    MachineParams mp;
    mp.numCpus = kProcs;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.spec.writeBufferLines = wb_lines;
    return runWorkload(
        mp, makeAppKernel(p, kProcs, LockKind::TestAndTestAndSet));
}

const std::vector<unsigned> kWbSizes{4, 8, 16, 32, 64, 128};

void
registerAll()
{
    for (unsigned wb : kWbSizes)
        registerSim("resources/wb" + std::to_string(wb),
                    [wb] { return runWb(wb); });
}

void
printTable()
{
    std::printf("\n=== Resource-constraint ablation: write-buffer size "
                "vs cholesky-style critical sections, %d processors "
                "===\n",
                kProcs);
    Table t({"wb lines", "cycles", "commits", "fallbacks",
             "wb-overflow aborts", "fallback rate", "valid"});
    for (unsigned wb : kWbSizes) {
        const RunStats &r =
            results().at("resources/wb" + std::to_string(wb));
        double total = static_cast<double>(r.commits + r.fallbacks);
        double rate = total > 0
                          ? static_cast<double>(r.fallbacks) / total
                          : 0.0;
        t.addRow({std::to_string(wb), Table::num(r.cycles),
                  Table::num(r.commits), Table::num(r.fallbacks),
                  Table::num(r.writeBufferAborts), Table::num(rate),
                  r.valid ? "yes" : "NO"});
    }
    std::printf("%s", t.str().c_str());
    std::printf("(the paper's Table 2 buffer is 64 lines; cholesky's "
                "big ScatterUpdate-style sections overflow small "
                "buffers and fall back to the lock, Section 6.3 "
                "reports ~3.7%% of executions)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

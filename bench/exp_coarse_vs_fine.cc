/**
 * @file
 * Reproduces the Section 6.3 coarse-grain vs fine-grain experiment:
 * mp3d with one single lock for all cells versus per-cell locks.
 *
 * Paper result: TLR with ONE coarse lock outperforms BASE with
 * fine-grain locks (speedup 2.40) and even TLR with fine-grain locks
 * (speedup 1.70), because the lock footprint shrinks dramatically
 * while TLR still extracts all the concurrency; BASE (and MCS) with
 * the coarse lock collapse under contention.
 */

#include "bench_common.hh"

#include "workloads/apps.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 16;

RunStats
runOne(bool coarse, Scheme s)
{
    AppProfile p = coarse ? mp3dCoarseProfile() : mp3dProfile();
    p.itersPerCpu *= envScale();
    return runScheme(s, kProcs,
                     makeAppKernel(p, kProcs, schemeLockKind(s)));
}

std::string
key(bool coarse, Scheme s)
{
    return std::string("coarse_vs_fine/") + (coarse ? "coarse" : "fine") +
           "/" + schemeName(s);
}

void
registerAll()
{
    for (bool coarse : {false, true})
        for (Scheme s :
             {Scheme::Base, Scheme::BaseSleTlr, Scheme::Mcs})
            registerSim(key(coarse, s),
                        [coarse, s] { return runOne(coarse, s); });
}

void
printTable()
{
    std::printf("\n=== Section 6.3: mp3d coarse-grain vs fine-grain "
                "locks, %d processors ===\n",
                kProcs);
    const RunStats &baseFine = results().at(key(false, Scheme::Base));
    Table t({"locks", "scheme", "cycles", "speedup vs BASE+fine",
             "valid"});
    for (bool coarse : {false, true}) {
        for (Scheme s :
             {Scheme::Base, Scheme::BaseSleTlr, Scheme::Mcs}) {
            const RunStats &r = results().at(key(coarse, s));
            double speedup =
                r.cycles ? static_cast<double>(baseFine.cycles) /
                               static_cast<double>(r.cycles)
                         : 0.0;
            t.addRow({coarse ? "1 (coarse)" : "1024 (fine)",
                      schemeName(s), Table::num(r.cycles),
                      Table::num(speedup), r.valid ? "yes" : "NO"});
        }
    }
    std::printf("%s", t.str().c_str());
    std::printf("(paper: TLR+coarse beats BASE+fine by 2.40x and "
                "TLR+fine by 1.70x; BASE+coarse collapses)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

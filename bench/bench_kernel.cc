/**
 * @file
 * Host-performance benchmark for the simulation kernel — the repo's
 * perf-trajectory artifact (BENCH_kernel.json).
 *
 * Measures, on the host (nothing here is simulated time):
 *   1. raw kernel events/sec with small (16 B) captures — the core
 *      tick path;
 *   2. raw kernel events/sec with DataMsg-sized (~96 B) captures —
 *      the data-network path, still inline in the event node;
 *   3. full-simulation events/sec and sims/sec (single-counter, TLR,
 *      8 cpus);
 *   4. a fig08-style sweep serially and with --jobs=4 via runSweep();
 *   5. kernel allocation counters: pool chunk mallocs and spilled
 *      (heap-allocated) captures — steady state should be zero
 *      spills and a handful of chunks.
 *
 * Usage: bench_kernel [--json=FILE] [--quick]
 * CI runs this and uploads the JSON; compare events/sec across
 * commits to catch host-performance regressions.
 *
 * Parallel-kernel mode (BENCH_parallel.json): --threads=N or
 * --threads-grid=1,2,4,8 measures the partitioned kernel instead —
 * per worker count: events/sec, speedup over the first grid entry and
 * parallel efficiency (speedup / workers). Simulated results are
 * bit-identical across the grid by construction (DESIGN.md §13); only
 * host throughput varies. host_threads records the machine's
 * concurrency so readers can judge whether a speedup was measurable
 * at all.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "sim/build_info.hh"
#include "workloads/micro.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

using namespace tlr;
using Clock = std::chrono::steady_clock;

namespace
{

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

// 1. Pure kernel: N self-rescheduling events with a small capture.
double
kernelSmall(std::uint64_t events)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    auto t0 = Clock::now();
    std::function<void()> chain = [&] {
        if (++fired < events)
            eq.scheduleIn(1 + (fired & 7), chain, EventPrio::CoreTick);
    };
    eq.schedule(0, chain);
    eq.run();
    return static_cast<double>(fired) / secondsSince(t0);
}

// 2. Kernel with a DataMsg-sized (96-byte) capture per event; fits
// the node's inline storage, so still allocation-free.
struct Payload
{
    std::uint64_t words[11];
};

double
kernelLarge(std::uint64_t events, std::uint64_t *spills_out)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    std::uint64_t sink = 0;
    Payload p{};
    auto t0 = Clock::now();
    std::function<void()> chain = [&] {
        ++fired;
        Payload q = p;
        q.words[0] = fired;
        eq.scheduleIn(3, [&eq, &sink, q] { sink += q.words[0]; },
                      EventPrio::DataResponse);
        if (fired < events)
            eq.scheduleIn(2, chain, EventPrio::CoreTick);
    };
    eq.schedule(0, chain);
    eq.run();
    double rate = static_cast<double>(fired * 2) / secondsSince(t0);
    *spills_out = eq.kernelStats().spilledEvents;
    (void)sink;
    return rate;
}

// 3. Full simulation: events/sec and sims/sec over repeated runs.
void
fullSim(int reps, double *events_per_sec, double *sims_per_sec,
        std::uint64_t *events_out, EventQueue::KernelStats *kstats_out)
{
    MicroParams p;
    p.numCpus = 8;
    p.lockKind = schemeLockKind(Scheme::BaseSleTlr);
    p.totalOps = 1024;
    std::uint64_t events = 0;
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
        MachineParams mp;
        mp.numCpus = 8;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        System sys(mp);
        installWorkload(sys, makeSingleCounter(p));
        sys.run();
        events += sys.eventQueue().executed();
        if (i == reps - 1)
            *kstats_out = sys.eventQueue().kernelStats();
    }
    double dt = secondsSince(t0);
    *events_per_sec = static_cast<double>(events) / dt;
    *sims_per_sec = reps / dt;
    *events_out = events;
}

// 4. fig08-style sweep: multiple-counter grid, serial vs jobs=4.
std::vector<SweepTask>
sweepTasks(std::uint64_t ops)
{
    std::vector<SweepTask> tasks;
    for (Scheme s : {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
                     Scheme::BaseSleTlr}) {
        for (int n : {2, 4, 8, 12}) {
            MicroParams p;
            p.numCpus = n;
            p.lockKind = schemeLockKind(s);
            p.totalOps = ops;
            MachineParams mp;
            mp.numCpus = n;
            mp.spec = schemeSpecConfig(s);
            tasks.push_back(makeSweepTask(
                std::string(schemeName(s)) + "/p" + std::to_string(n),
                mp, makeMultipleCounter(p)));
        }
    }
    return tasks;
}

double
sweepWall(const std::vector<SweepTask> &tasks, unsigned jobs)
{
    auto t0 = Clock::now();
    runSweep(tasks, jobs);
    return secondsSince(t0);
}

// Parallel-kernel grid: a full ycsb-a simulation (contended enough to
// keep the serialized phases busy) on the partitioned kernel with a
// given worker count, plus the phase-attribution counters the batched
// scheduling overhaul is judged by. The compat configuration reruns
// the PR-7 schedule: one barrier pair per serialized global, fixed
// worst-case windows, no snoop filter.
struct ParallelPoint
{
    unsigned threads = 1;
    double wallSec = 0;
    double eventsPerSec = 0;
    std::uint64_t cycles = 0; ///< simulated cycles — grid-invariant
    std::uint64_t events = 0; ///< one run's event population
    /** @{ pkernel phase counters from one run (thread-invariant) */
    std::uint64_t windows = 0;
    std::uint64_t barriers = 0;
    std::uint64_t barrierSkips = 0;
    std::uint64_t inlineSegments = 0;
    std::uint64_t serialGlobals = 0;
    std::uint64_t serialOps = 0;
    std::uint64_t orderingEvents = 0;
    std::uint64_t partitionEvents = 0;
    /** @} */
    ParallelKernel::PhaseProfile prof{}; ///< host-ns attribution

    /** Share of the event population executed in serialized phases:
     *  the globals themselves plus every controller operation they
     *  perform while partitions are parked. */
    double serialShare() const
    {
        return events ? static_cast<double>(serialGlobals + serialOps) /
                            static_cast<double>(events)
                      : 0;
    }
    double barriersPerKcycle() const
    {
        return cycles ? 1000.0 * static_cast<double>(barriers) /
                            static_cast<double>(cycles)
                      : 0;
    }
};

ParallelPoint
parallelSim(unsigned threads, int reps, std::uint64_t ops, bool compat)
{
    WorkloadParams wp;
    wp.numCpus = 8;
    wp.ops = ops;
    wp.lockKind = schemeLockKind(Scheme::BaseSleTlr);
    ParallelPoint pt;
    pt.threads = threads;
    std::uint64_t events = 0;
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
        MachineParams mp;
        mp.numCpus = 8;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        mp.threads = threads;
        mp.profilePhases = true;
        if (compat) {
            mp.batchedGlobals = false;
            mp.dynamicLookahead = false;
            mp.net.snoopFilter = false;
        }
        System sys(mp);
        installWorkload(sys, makeRegisteredWorkload("ycsb-a", wp));
        sys.run();
        events += sys.kernelEventsExecuted();
        pt.cycles = sys.completionTick();
        if (i == reps - 1) {
            pt.events = sys.kernelEventsExecuted();
            const StatSet &st = sys.stats();
            pt.windows = st.get("pkernel", "windows");
            pt.barriers = st.get("pkernel", "barriers");
            pt.barrierSkips = st.get("pkernel", "barrierSkips");
            pt.inlineSegments = st.get("pkernel", "inlineSegments");
            pt.serialGlobals = st.get("pkernel", "serialGlobals");
            pt.serialOps = st.get("pkernel", "serialOps");
            pt.orderingEvents = st.get("pkernel", "orderingEvents");
            pt.partitionEvents = st.get("pkernel", "partitionEvents");
            pt.prof = sys.kernel()->phaseProfile();
        }
    }
    pt.wallSec = secondsSince(t0);
    pt.eventsPerSec =
        pt.wallSec > 0 ? static_cast<double>(events) / pt.wallSec : 0;
    return pt;
}

std::vector<unsigned>
parseGrid(const std::string &s)
{
    std::vector<unsigned> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(static_cast<unsigned>(
                std::atoi(s.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
    }
    return out;
}

int
runParallelGrid(const std::vector<unsigned> &grid, bool quick,
                const std::string &jsonFile)
{
    const int reps = quick ? 3 : 10;
    const std::uint64_t ops = quick ? 256 : 1024;
    std::vector<ParallelPoint> pts;
    for (unsigned t : grid) {
        if (t == 0) {
            std::fprintf(stderr, "--threads values must be >= 1\n");
            return 1;
        }
        pts.push_back(parallelSim(t, reps, ops, false));
    }
    for (size_t i = 1; i < pts.size(); ++i) {
        if (pts[i].cycles != pts[0].cycles) {
            std::fprintf(stderr,
                         "BUG: simulated cycles diverged across the "
                         "thread grid (%llu @%u vs %llu @%u)\n",
                         static_cast<unsigned long long>(pts[i].cycles),
                         pts[i].threads,
                         static_cast<unsigned long long>(pts[0].cycles),
                         pts[0].threads);
            return 1;
        }
    }
    // PR-7 compat schedule on the same workload: the baseline the
    // batched/dynamic/filtered overhaul is measured against.
    ParallelPoint compat = parallelSim(grid[0], reps, ops, true);

    const ParallelPoint &pt0 = pts[0];
    double serialReduction =
        pt0.serialShare() > 0 ? compat.serialShare() / pt0.serialShare()
                              : 0;
    // Simulated cycles are policy-invariant, so the count ratio IS the
    // per-kcycle ratio; the floor-1 denominator keeps the fully-
    // eliminated case (new kernel: zero barriers) finite.
    double barrierReduction =
        static_cast<double>(compat.barriers) /
        static_cast<double>(pt0.barriers ? pt0.barriers : 1);
    std::uint64_t profTotal =
        pt0.prof.barrierWaitNs + pt0.prof.serialGlobalNs +
        pt0.prof.orderingNs + pt0.prof.partitionNs + pt0.prof.commitNs;
    auto share = [&](std::uint64_t ns) {
        return profTotal ? static_cast<double>(ns) /
                               static_cast<double>(profTotal)
                         : 0;
    };

    std::string json = "{\n  \"schema_version\": " +
                       std::to_string(statsSchemaVersion) + ",\n";
    char buf[1024];
    for (const ParallelPoint &pt : pts) {
        double speedup =
            pt.wallSec > 0 ? pts[0].wallSec / pt.wallSec : 0;
        std::snprintf(
            buf, sizeof(buf),
            "  \"threads_%u_events_per_sec\": %.0f,\n"
            "  \"threads_%u_wall_sec\": %.3f,\n"
            "  \"threads_%u_speedup\": %.3f,\n"
            "  \"threads_%u_efficiency\": %.3f,\n",
            pt.threads, pt.eventsPerSec, pt.threads, pt.wallSec,
            pt.threads, speedup, pt.threads, speedup / pt.threads);
        json += buf;
        std::printf("threads=%-2u  %.0f events/s  wall %.3fs  "
                    "speedup %.2fx  efficiency %.2f\n",
                    pt.threads, pt.eventsPerSec, pt.wallSec, speedup,
                    speedup / pt.threads);
    }
    std::snprintf(
        buf, sizeof(buf),
        "  \"phase_windows\": %llu,\n"
        "  \"phase_barriers\": %llu,\n"
        "  \"phase_barrier_skips\": %llu,\n"
        "  \"phase_inline_segments\": %llu,\n"
        "  \"phase_serial_globals\": %llu,\n"
        "  \"phase_serial_ops\": %llu,\n"
        "  \"phase_ordering_events\": %llu,\n"
        "  \"phase_partition_events\": %llu,\n"
        "  \"events_per_run\": %llu,\n"
        "  \"serial_share\": %.4f,\n"
        "  \"barriers_per_kcycle\": %.3f,\n",
        static_cast<unsigned long long>(pt0.windows),
        static_cast<unsigned long long>(pt0.barriers),
        static_cast<unsigned long long>(pt0.barrierSkips),
        static_cast<unsigned long long>(pt0.inlineSegments),
        static_cast<unsigned long long>(pt0.serialGlobals),
        static_cast<unsigned long long>(pt0.serialOps),
        static_cast<unsigned long long>(pt0.orderingEvents),
        static_cast<unsigned long long>(pt0.partitionEvents),
        static_cast<unsigned long long>(pt0.events), pt0.serialShare(),
        pt0.barriersPerKcycle());
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"compat_barriers\": %llu,\n"
        "  \"compat_serial_ops\": %llu,\n"
        "  \"compat_serial_share\": %.4f,\n"
        "  \"compat_barriers_per_kcycle\": %.3f,\n"
        "  \"compat_wall_sec\": %.3f,\n"
        "  \"serial_share_reduction\": %.2f,\n"
        "  \"barrier_reduction\": %.2f,\n"
        "  \"time_share_barrier_wait\": %.3f,\n"
        "  \"time_share_serial_global\": %.3f,\n"
        "  \"time_share_ordering\": %.3f,\n"
        "  \"time_share_partition\": %.3f,\n"
        "  \"time_share_commit\": %.3f,\n",
        static_cast<unsigned long long>(compat.barriers),
        static_cast<unsigned long long>(compat.serialOps),
        compat.serialShare(), compat.barriersPerKcycle(),
        compat.wallSec, serialReduction, barrierReduction,
        share(pt0.prof.barrierWaitNs), share(pt0.prof.serialGlobalNs),
        share(pt0.prof.orderingNs), share(pt0.prof.partitionNs),
        share(pt0.prof.commitNs));
    json += buf;
    std::printf(
        "phases: windows=%llu barriers=%llu (skips=%llu inline=%llu)  "
        "serial share %.4f  barriers/kcycle %.3f\n"
        "compat: barriers=%llu  serial share %.4f  barriers/kcycle "
        "%.3f  ->  serial reduction %.2fx, barrier reduction %.2fx\n"
        "time shares: barrier-wait %.3f  serial-global %.3f  "
        "ordering %.3f  partition %.3f  commit %.3f\n",
        static_cast<unsigned long long>(pt0.windows),
        static_cast<unsigned long long>(pt0.barriers),
        static_cast<unsigned long long>(pt0.barrierSkips),
        static_cast<unsigned long long>(pt0.inlineSegments),
        pt0.serialShare(), pt0.barriersPerKcycle(),
        static_cast<unsigned long long>(compat.barriers),
        compat.serialShare(), compat.barriersPerKcycle(),
        serialReduction, barrierReduction, share(pt0.prof.barrierWaitNs),
        share(pt0.prof.serialGlobalNs), share(pt0.prof.orderingNs),
        share(pt0.prof.partitionNs), share(pt0.prof.commitNs));
    std::snprintf(buf, sizeof(buf),
                  "  \"simulated_cycles\": %llu,\n"
                  "  \"host_threads\": %u\n}\n",
                  static_cast<unsigned long long>(pts[0].cycles),
                  defaultJobs());
    json += buf;
    if (!jsonFile.empty()) {
        std::ofstream out(jsonFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonFile.c_str());
            return 1;
        }
        out << json;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonFile;
    std::string threadsGrid;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonFile = argv[i] + 7;
        else if (std::strncmp(argv[i], "--threads-grid=", 15) == 0)
            threadsGrid = argv[i] + 15;
        else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            if (!threadsGrid.empty())
                threadsGrid += ",";
            threadsGrid += argv[i] + 10;
        }
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_kernel [--json=FILE] [--quick] "
                         "[--threads=N ...] [--threads-grid=1,2,4,8]\n");
            return 1;
        }
    }
    if (!threadsGrid.empty())
        return runParallelGrid(parseGrid(threadsGrid), quick, jsonFile);

    const std::uint64_t smallN = quick ? 400'000 : 4'000'000;
    const std::uint64_t largeN = quick ? 100'000 : 1'000'000;
    const int simReps = quick ? 5 : 40;
    const std::uint64_t sweepOps = quick ? 512 : 2048;

    double evSmall = kernelSmall(smallN);
    std::uint64_t largeSpills = 0;
    double evLarge = kernelLarge(largeN, &largeSpills);
    double simEv = 0, simsPs = 0;
    std::uint64_t simEvents = 0;
    EventQueue::KernelStats ks{};
    fullSim(simReps, &simEv, &simsPs, &simEvents, &ks);
    std::vector<SweepTask> tasks = sweepTasks(sweepOps);
    double sweepSerial = sweepWall(tasks, 1);
    double sweepJobs4 = sweepWall(tasks, 4);

    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"schema_version\": %d,\n"
        "  \"kernel_small_events_per_sec\": %.0f,\n"
        "  \"kernel_large_events_per_sec\": %.0f,\n"
        "  \"kernel_large_spilled_captures\": %llu,\n"
        "  \"sim_events_per_sec\": %.0f,\n"
        "  \"sims_per_sec\": %.2f,\n"
        "  \"sim_events_total\": %llu,\n"
        "  \"sim_pool_chunks\": %llu,\n"
        "  \"sim_spilled_captures\": %llu,\n"
        "  \"sim_inline_captures\": %llu,\n"
        "  \"sweep_fig08_serial_sec\": %.3f,\n"
        "  \"sweep_fig08_jobs4_sec\": %.3f,\n"
        "  \"host_threads\": %u\n"
        "}\n",
        statsSchemaVersion, evSmall, evLarge,
        static_cast<unsigned long long>(largeSpills), simEv, simsPs,
        static_cast<unsigned long long>(simEvents),
        static_cast<unsigned long long>(ks.poolChunks),
        static_cast<unsigned long long>(ks.spilledEvents),
        static_cast<unsigned long long>(ks.inlineEvents), sweepSerial,
        sweepJobs4, defaultJobs());
    std::fputs(buf, stdout);
    if (!jsonFile.empty()) {
        std::ofstream out(jsonFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonFile.c_str());
            return 1;
        }
        out << buf;
    }
    return 0;
}

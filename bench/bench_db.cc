/**
 * @file
 * Database workload sweep: theta (Zipfian skew) x mix (YCSB A/B/C,
 * ordered index, partitioned table, tpcc-lite) x scheme (BASE, MCS,
 * SLE, TLR) at 8 processors.
 *
 * Unlike the figure benches this one always attaches the metrics
 * collector: the point is the abort/contention profile — how the
 * restart rate and the hottest lock respond to key skew under each
 * scheme. `--jobs=N` pre-runs the grid on N host threads;
 * `--bench-json=FILE` dumps the per-config digest (cycles, commits,
 * restarts, abort rate, hottest lock) as a versioned JSON document
 * for tooling (tests assert the TLR abort metrics rise with theta).
 *
 * Usage: bench_db [--jobs=N] [--bench-json=FILE] [gbench flags]
 */

#include "bench_common.hh"

#include <cstdio>
#include <fstream>

#include "sim/build_info.hh"
#include "workloads/db/db.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 8;

struct Mix
{
    const char *name;
    Workload (*make)(const DbParams &);
};

const Mix kMixes[] = {
    {"ycsb-a", [](const DbParams &p) { return makeYcsb('a', p); }},
    {"ycsb-b", [](const DbParams &p) { return makeYcsb('b', p); }},
    {"ycsb-c", [](const DbParams &p) { return makeYcsb('c', p); }},
    {"ordered-index", makeOrderedIndex},
    {"partition", makePartitionedTable},
    {"tpcc-lite", makeTpccLite},
};

const double kThetas[] = {0.0, 0.6, 0.99};

std::vector<Scheme>
schemes()
{
    return {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
            Scheme::BaseSleTlr};
}

std::string
thetaTag(double theta)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "t%.2f", theta);
    return buf;
}

std::string
key(const Mix &m, double theta, Scheme s)
{
    return std::string("db/") + m.name + "/" + thetaTag(theta) + "/" +
           schemeName(s);
}

RunStats
runOne(const Mix &m, double theta, Scheme s)
{
    DbParams p;
    p.numCpus = kProcs;
    p.opsPerCpu = 128 * envScale();
    p.theta = theta;
    p.lockKind = schemeLockKind(s);
    MachineParams mp;
    mp.numCpus = kProcs;
    mp.spec = schemeSpecConfig(s);
    mp.collectMetrics = true; // the abort profile is the product here
    mp.explain = envExplain();
    mp.timelineEpoch = envTimelineEpoch();
    return runWorkload(mp, m.make(p));
}

void
registerAll()
{
    for (const Mix &m : kMixes)
        for (double theta : kThetas)
            for (Scheme s : schemes())
                registerSim(key(m, theta, s), [&m, theta, s] {
                    return runOne(m, theta, s);
                });
}

double
abortRate(const RunStats &r)
{
    double attempts =
        static_cast<double>(r.commits) + static_cast<double>(r.restarts);
    return attempts > 0 ? static_cast<double>(r.restarts) / attempts
                        : 0.0;
}

/** Hottest lock of a run: (address, contention); (0,0) if none. */
std::pair<Addr, std::uint64_t>
hottestLock(const RunStats &r)
{
    return r.metrics ? r.metrics->hottestLock()
                     : std::pair<Addr, std::uint64_t>{0, 0};
}

void
printTable()
{
    std::printf("\n=== database workloads: cycles by scheme, abort "
                "profile under TLR (%d processors) ===\n",
                kProcs);
    Table t({"mix", "theta", "base", "mcs", "sle", "tlr", "tlr abort%",
             "tlr hottest lock", "valid"});
    for (const Mix &m : kMixes) {
        for (double theta : kThetas) {
            std::vector<std::string> row{m.name, thetaTag(theta)};
            bool allValid = true;
            for (Scheme s : schemes()) {
                const RunStats &r = results().at(key(m, theta, s));
                row.push_back(Table::num(r.cycles));
                allValid = allValid && r.valid;
            }
            const RunStats &tlrRun =
                results().at(key(m, theta, Scheme::BaseSleTlr));
            char pct[32];
            std::snprintf(pct, sizeof(pct), "%.1f",
                          100.0 * abortRate(tlrRun));
            auto [addr, cont] = hottestLock(tlrRun);
            char hot[48];
            std::snprintf(hot, sizeof(hot), "0x%llx (%llu)",
                          static_cast<unsigned long long>(addr),
                          static_cast<unsigned long long>(cont));
            row.push_back(pct);
            row.push_back(cont ? hot : "-");
            row.push_back(allValid ? "yes" : "NO");
            t.addRow(row);
        }
    }
    std::printf("%s", t.str().c_str());
    std::printf("(every cell runs the workload's data-integrity "
                "validator; abort%% = restarts / (commits + restarts) "
                "under tlr)\n");
}

void
writeBenchJson(const std::string &file)
{
    std::ofstream out(file);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", file.c_str());
        std::exit(1);
    }
    out << "{\n  \"schema_version\": " << metricsSchemaVersion << ",\n";
    out << "  \"meta\": " << buildMetaJson() << ",\n";
    out << "  \"configs\": {\n";
    bool first = true;
    for (const Mix &m : kMixes) {
        for (double theta : kThetas) {
            for (Scheme s : schemes()) {
                const std::string k = key(m, theta, s);
                const RunStats &r = results().at(k);
                auto [addr, cont] = hottestLock(r);
                if (!first)
                    out << ",\n";
                first = false;
                char buf[512];
                std::snprintf(
                    buf, sizeof(buf),
                    "    \"%s\": {\"theta\": %.2f, \"cycles\": %llu, "
                    "\"valid\": %s, \"commits\": %llu, "
                    "\"elisions\": %llu, \"restarts\": %llu, "
                    "\"fallbacks\": %llu, \"defers\": %llu, "
                    "\"abort_rate\": %.6f, \"hottest_lock\": \"0x%llx\", "
                    "\"hottest_lock_contention\": %llu, "
                    "\"bus_transactions\": %llu}",
                    k.c_str(), theta,
                    static_cast<unsigned long long>(r.cycles),
                    r.valid ? "true" : "false",
                    static_cast<unsigned long long>(r.commits),
                    static_cast<unsigned long long>(r.elisions),
                    static_cast<unsigned long long>(r.restarts),
                    static_cast<unsigned long long>(r.fallbacks),
                    static_cast<unsigned long long>(r.defers),
                    abortRate(r),
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(cont),
                    static_cast<unsigned long long>(r.busTransactions));
                out << buf;
            }
        }
    }
    out << "\n  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip --bench-json before the shared driver (google-benchmark
    // rejects flags it does not know).
    std::string jsonFile;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
            jsonFile = argv[i] + 13;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    int rc = benchMain(argc, argv, registerAll, printTable);
    if (rc == 0 && !jsonFile.empty())
        writeBenchJson(jsonFile);
    return rc;
}

/**
 * @file
 * Reproduces the paper's Figure 2 vs Figure 4 demonstration: two
 * processors write locations A and B in opposite orders inside the
 * same critical section.
 *
 *  - Restart-only speculation (SLE with an unbounded retry budget)
 *    livelocks: both processors keep restarting each other and no
 *    critical section ever commits (Figure 2).
 *  - Standard SLE stays correct by giving up and acquiring the lock.
 *  - TLR resolves the conflicts with timestamps and completes
 *    lock-free (Figure 4).
 */

#include "bench_common.hh"

#include "workloads/scenarios.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr std::uint64_t kIters = 200;
constexpr Tick kHorizon = 5'000'000;

RunStats
runVariant(const std::string &name)
{
    MachineParams mp;
    mp.numCpus = 2;
    mp.maxTicks = kHorizon;
    if (name == "restart-only") {
        mp.spec = schemeSpecConfig(Scheme::BaseSle);
        mp.spec.sleMaxRetries = 1'000'000'000; // never give up: Fig. 2
        mp.spec.specMaxCycles = 1'000'000'000; // no quantum escape
    } else if (name == "sle") {
        mp.spec = schemeSpecConfig(Scheme::BaseSle);
    } else {
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    }
    mp.explain = envExplain();
    mp.timelineEpoch = envTimelineEpoch();
    return runWorkload(mp, makeReverseWriters(2, kIters * envScale()));
}

void
registerAll()
{
    for (const char *v : {"restart-only", "sle", "tlr"})
        registerSim(std::string("livelock/") + v,
                    [v] { return runVariant(v); });
}

void
printTable()
{
    std::printf("\n=== Figures 2 and 4: reverse-order writers, 2 "
                "processors, %llu critical sections each ===\n",
                static_cast<unsigned long long>(kIters * envScale()));
    Table t({"variant", "completed", "commits", "restarts", "fallbacks",
             "cycles"});
    for (const char *v : {"restart-only", "sle", "tlr"}) {
        const RunStats &r = results().at(std::string("livelock/") + v);
        t.addRow({v, r.completed ? "yes" : "NO (livelock)",
                  Table::num(r.commits), Table::num(r.restarts),
                  Table::num(r.fallbacks),
                  r.completed ? Table::num(r.cycles) : "-"});
    }
    std::printf("%s", t.str().c_str());
    std::printf("(restart-only speculation must livelock — Figure 2; "
                "TLR completes lock-free — Figure 4; plain SLE "
                "completes by acquiring the lock)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Reproduces the Section 6.3 read-modify-write prediction study: the
 * BASE system with the PC-indexed RMW predictor (used throughout the
 * paper's evaluation) versus a conventional BASE without it.
 *
 * Paper speedups of BASE+predictor over BASE-no-opt: ocean-cont 1.00,
 * water-nsq 1.04, raytrace 1.28, radiosity 1.05, barnes 1.04,
 * cholesky 1.33, mp3d 1.13. The predictor collapses the load +
 * upgrade pair inside critical sections into one exclusive request.
 */

#include "bench_common.hh"

#include "workloads/apps.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 16;

RunStats
runOne(const AppProfile &profile, bool predictor)
{
    AppProfile p = profile;
    p.itersPerCpu *= envScale();
    MachineParams mp;
    mp.numCpus = kProcs;
    mp.spec = schemeSpecConfig(Scheme::Base);
    mp.spec.enableRmwPredictor = predictor;
    return runWorkload(mp, makeAppKernel(p, kProcs,
                                         LockKind::TestAndTestAndSet));
}

std::string
key(const std::string &app, bool predictor)
{
    return "rmw/" + app + (predictor ? "/pred" : "/nopred");
}

void
registerAll()
{
    for (const AppProfile &p : allAppProfiles())
        for (bool pred : {false, true})
            registerSim(key(p.name, pred),
                        [p, pred] { return runOne(p, pred); });
}

void
printTable()
{
    std::printf("\n=== Section 6.3: read-modify-write predictor effect "
                "on BASE, %d processors ===\n",
                kProcs);
    Table t({"app", "BASE-no-opt cycles", "BASE cycles",
             "speedup(pred)", "valid"});
    for (const AppProfile &p : allAppProfiles()) {
        const RunStats &off = results().at(key(p.name, false));
        const RunStats &on = results().at(key(p.name, true));
        double speedup = on.cycles
                             ? static_cast<double>(off.cycles) /
                                   static_cast<double>(on.cycles)
                             : 0.0;
        t.addRow({p.name, Table::num(off.cycles), Table::num(on.cycles),
                  Table::num(speedup),
                  off.valid && on.valid ? "yes" : "NO"});
    }
    std::printf("%s", t.str().c_str());
    std::printf("(paper speedups: ocean 1.00, water 1.04, raytrace "
                "1.28, radiosity 1.05, barnes 1.04, cholesky 1.33, "
                "mp3d 1.13)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

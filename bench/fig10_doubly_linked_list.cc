/**
 * @file
 * Reproduces paper Figure 10: doubly-linked list microbenchmark
 * (fine-grain / dynamic conflicts). One lock protects a head/tail
 * queue; dequeuers touch Head, enqueuers touch Tail, and only empty
 * transitions touch both — concurrency that cannot be expressed with
 * the single lock but that TLR extracts dynamically.
 *
 * Expected shape: BASE and SLE degrade (SLE keeps detecting conflicts
 * and falling back); MCS is scalable with constant overhead; TLR
 * exploits the enqueue/dequeue concurrency and wins.
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

std::uint64_t
totalOps()
{
    return 2048 * envScale();
}

RunStats
runOne(Scheme s, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = totalOps();
    return runScheme(s, cpus, makeDoublyLinkedList(p));
}

void
registerAll()
{
    registerSchemeGrid("fig10/", microSchemes(), procCounts(), runOne);
}

void
printTable()
{
    printSchemeGrid("Figure 10: doubly-linked list "
                    "(fine-grain / dynamic conflicts), " +
                        std::to_string(totalOps()) + " enq+deq pairs",
                    "fig10/", microSchemes(), procCounts(),
                    "(execution cycles; TLR exploits head/tail "
                    "concurrency the lock hides)");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Reproduces paper Figure 10: doubly-linked list microbenchmark
 * (fine-grain / dynamic conflicts). One lock protects a head/tail
 * queue; dequeuers touch Head, enqueuers touch Tail, and only empty
 * transitions touch both — concurrency that cannot be expressed with
 * the single lock but that TLR extracts dynamically.
 *
 * Expected shape: BASE and SLE degrade (SLE keeps detecting conflicts
 * and falling back); MCS is scalable with constant overhead; TLR
 * exploits the enqueue/dequeue concurrency and wins.
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

std::uint64_t
totalOps()
{
    return 2048 * envScale();
}

RunStats
runOne(Scheme s, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = totalOps();
    return runScheme(s, cpus, makeDoublyLinkedList(p));
}

void
registerAll()
{
    for (Scheme s : microSchemes())
        for (int n : procCounts())
            registerSim(std::string("fig10/") + schemeName(s) + "/p" +
                            std::to_string(n),
                        [s, n] { return runOne(s, n); });
}

void
printTable()
{
    std::printf("\n=== Figure 10: doubly-linked list "
                "(fine-grain / dynamic conflicts), %llu enq+deq pairs "
                "===\n",
                static_cast<unsigned long long>(totalOps()));
    std::vector<std::string> head{"procs"};
    for (Scheme s : microSchemes())
        head.push_back(schemeName(s));
    Table t(head);
    for (int n : procCounts()) {
        std::vector<std::string> row{std::to_string(n)};
        for (Scheme s : microSchemes()) {
            const RunStats &r = results().at(
                std::string("fig10/") + schemeName(s) + "/p" +
                std::to_string(n));
            row.push_back(Table::num(r.cycles) +
                          (r.valid ? "" : " INVALID"));
        }
        t.addRow(row);
    }
    std::printf("%s", t.str().c_str());
    std::printf("(execution cycles; TLR exploits head/tail "
                "concurrency the lock hides)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Reproduces paper Figure 9: single-counter microbenchmark
 * (fine-grain / high conflict). One lock, one counter, every
 * processor increments the same cache line.
 *
 * Expected shape: BASE degrades badly; SLE tracks BASE (it detects
 * the conflicts and falls back to the lock); MCS is scalable with a
 * constant overhead; TLR gives ideal queued behavior — flat across
 * processor counts with essentially no restarts; TLR-strict-ts sits
 * between TLR and MCS because protocol-order/timestamp-order
 * mismatches force restarts (paper Section 6.2).
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

std::uint64_t
totalOps()
{
    return 4096 * envScale();
}

std::vector<Scheme>
schemes()
{
    return {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
            Scheme::TlrStrictTs, Scheme::BaseSleTlr};
}

RunStats
runOne(Scheme s, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = totalOps();
    return runScheme(s, cpus, makeSingleCounter(p));
}

void
registerAll()
{
    for (Scheme s : schemes())
        for (int n : procCounts())
            registerSim(std::string("fig09/") + schemeName(s) + "/p" +
                            std::to_string(n),
                        [s, n] { return runOne(s, n); });
}

void
printTable()
{
    std::printf("\n=== Figure 9: single-counter "
                "(fine-grain / high conflict), %llu total ops ===\n",
                static_cast<unsigned long long>(totalOps()));
    std::vector<std::string> head{"procs"};
    for (Scheme s : schemes())
        head.push_back(schemeName(s));
    head.push_back("TLR restarts");
    Table t(head);
    for (int n : procCounts()) {
        std::vector<std::string> row{std::to_string(n)};
        for (Scheme s : schemes()) {
            const RunStats &r = results().at(
                std::string("fig09/") + schemeName(s) + "/p" +
                std::to_string(n));
            row.push_back(Table::num(r.cycles) +
                          (r.valid ? "" : " INVALID"));
        }
        const RunStats &tlr = results().at(
            std::string("fig09/") + schemeName(Scheme::BaseSleTlr) +
            "/p" + std::to_string(n));
        row.push_back(Table::num(tlr.restarts));
        t.addRow(row);
    }
    std::printf("%s", t.str().c_str());
    std::printf("(execution cycles; TLR should be nearly flat with "
                "~zero restarts: ideal hardware queue behavior)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Reproduces paper Figure 9: single-counter microbenchmark
 * (fine-grain / high conflict). One lock, one counter, every
 * processor increments the same cache line.
 *
 * Expected shape: BASE degrades badly; SLE tracks BASE (it detects
 * the conflicts and falls back to the lock); MCS is scalable with a
 * constant overhead; TLR gives ideal queued behavior — flat across
 * processor counts with essentially no restarts; TLR-strict-ts sits
 * between TLR and MCS because protocol-order/timestamp-order
 * mismatches force restarts (paper Section 6.2).
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

std::uint64_t
totalOps()
{
    return 4096 * envScale();
}

std::vector<Scheme>
schemes()
{
    return {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
            Scheme::TlrStrictTs, Scheme::BaseSleTlr};
}

RunStats
runOne(Scheme s, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = totalOps();
    return runScheme(s, cpus, makeSingleCounter(p));
}

void
registerAll()
{
    registerSchemeGrid("fig09/", schemes(), procCounts(), runOne);
}

void
printTable()
{
    GridExtraCol restarts{
        "TLR restarts", [](int n) {
            const RunStats &tlr = results().at(
                gridKey("fig09/", Scheme::BaseSleTlr, n));
            return Table::num(tlr.restarts);
        }};
    printSchemeGrid("Figure 9: single-counter "
                    "(fine-grain / high conflict), " +
                        std::to_string(totalOps()) + " total ops",
                    "fig09/", schemes(), procCounts(),
                    "(execution cycles; TLR should be nearly flat with "
                    "~zero restarts: ideal hardware queue behavior)",
                    {restarts});
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

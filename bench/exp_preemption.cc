/**
 * @file
 * Stability experiment (paper Section 4): behavior under OS
 * de-scheduling. The paper argues locks interact poorly with thread
 * scheduling — if the lock owner is preempted, every thread waiting
 * for that lock stalls for the whole scheduling quantum — while TLR
 * is non-blocking: a preempted transaction aborts, the lock (never
 * acquired) stays free, and the remaining threads keep committing.
 *
 * This bench preempts cores round-robin at a fixed period and sweeps
 * the quantum length. BASE/MCS degrade with the quantum (lock-holder
 * convoying); TLR is nearly insensitive.
 */

#include "bench_common.hh"

#include <algorithm>

#include "harness/system.hh"
#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 8;

const std::vector<Tick> kQuanta{0, 1000, 4000, 16000};

RunStats
runOne(Scheme s, Tick quantum)
{
    MicroParams p;
    p.numCpus = kProcs;
    p.lockKind = schemeLockKind(s);
    p.totalOps = 1024 * envScale();

    MachineParams mp;
    mp.numCpus = kProcs;
    mp.spec = schemeSpecConfig(s);
    mp.maxTicks = 2'000'000'000ull;
    System sys(mp);
    Workload wl = makeSingleCounter(p);
    installWorkload(sys, wl);
    if (quantum > 0) {
        // Bound the suspended fraction (at most half of one core of
        // eight off-cpu at a time) while preemptions keep landing
        // throughout the run.
        Tick period = std::max<Tick>(5000, 2 * quantum);
        for (int k = 1; k <= 400; ++k)
            sys.preemptCore(k % kProcs, static_cast<Tick>(k) * period,
                            quantum);
    }
    RunStats r;
    r.completed = sys.run();
    r.valid = wl.validate ? wl.validate(sys) : true;
    r.cycles = sys.completionTick();
    r.commits = sys.stats().sum("spec", "commits");
    r.restarts = sys.stats().sum("spec", "restarts");
    r.fallbacks = sys.stats().sum("spec", "fallbacks");
    return r;
}

std::string
key(Scheme s, Tick q)
{
    return std::string("preempt/") + schemeName(s) + "/q" +
           std::to_string(q);
}

void
registerAll()
{
    for (Scheme s : {Scheme::Base, Scheme::Mcs, Scheme::BaseSleTlr})
        for (Tick q : kQuanta)
            registerSim(key(s, q), [s, q] { return runOne(s, q); });
}

void
printTable()
{
    std::printf("\n=== Section 4: stability under OS preemption, %d "
                "processors, single-counter ===\n",
                kProcs);
    Table t({"quantum", "BASE", "MCS", "BASE+SLE+TLR",
             "TLR slowdown vs no-preempt"});
    const RunStats &tlr0 =
        results().at(key(Scheme::BaseSleTlr, kQuanta.front()));
    for (Tick q : kQuanta) {
        const RunStats &b = results().at(key(Scheme::Base, q));
        const RunStats &m = results().at(key(Scheme::Mcs, q));
        const RunStats &r = results().at(key(Scheme::BaseSleTlr, q));
        t.addRow({q == 0 ? "none" : std::to_string(q),
                  Table::num(b.cycles) + (b.valid ? "" : " INVALID"),
                  Table::num(m.cycles) + (m.valid ? "" : " INVALID"),
                  Table::num(r.cycles) + (r.valid ? "" : " INVALID"),
                  Table::num(tlr0.cycles
                                 ? static_cast<double>(r.cycles) /
                                       static_cast<double>(tlr0.cycles)
                                 : 0.0)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("(execution cycles; preempting a BASE/MCS lock holder "
                "stalls everyone for the quantum — TLR transactions "
                "abort, leave the lock free and retry: non-blocking "
                "behavior, paper Section 4)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Reproduces paper Figure 8: multiple-counter microbenchmark
 * (coarse-grain locking, no data conflicts). One lock protects n
 * counters; each processor updates only its own counter, total work
 * constant across processor counts.
 *
 * Expected shape: BASE degrades with processor count (lock
 * contention); MCS is scalable but pays a constant software overhead;
 * SLE and TLR behave identically (no conflicts) and scale perfectly.
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

std::uint64_t
totalOps()
{
    return 4096 * envScale();
}

RunStats
runOne(Scheme s, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = totalOps();
    return runScheme(s, cpus, makeMultipleCounter(p));
}

void
registerAll()
{
    for (Scheme s : microSchemes())
        for (int n : procCounts())
            registerSim(std::string("fig08/") + schemeName(s) + "/p" +
                            std::to_string(n),
                        [s, n] { return runOne(s, n); });
}

void
printTable()
{
    std::printf("\n=== Figure 8: multiple-counter "
                "(coarse-grain / no conflicts), %llu total ops ===\n",
                static_cast<unsigned long long>(totalOps()));
    std::vector<std::string> head{"procs"};
    for (Scheme s : microSchemes())
        head.push_back(schemeName(s));
    Table t(head);
    for (int n : procCounts()) {
        std::vector<std::string> row{std::to_string(n)};
        for (Scheme s : microSchemes()) {
            const RunStats &r = results().at(
                std::string("fig08/") + schemeName(s) + "/p" +
                std::to_string(n));
            row.push_back(Table::num(r.cycles) +
                          (r.valid ? "" : " INVALID"));
        }
        t.addRow(row);
    }
    std::printf("%s", t.str().c_str());
    std::printf("(execution cycles; lower is better; total work "
                "constant across processor counts)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Reproduces paper Figure 8: multiple-counter microbenchmark
 * (coarse-grain locking, no data conflicts). One lock protects n
 * counters; each processor updates only its own counter, total work
 * constant across processor counts.
 *
 * Expected shape: BASE degrades with processor count (lock
 * contention); MCS is scalable but pays a constant software overhead;
 * SLE and TLR behave identically (no conflicts) and scale perfectly.
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

std::uint64_t
totalOps()
{
    return 4096 * envScale();
}

RunStats
runOne(Scheme s, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = totalOps();
    return runScheme(s, cpus, makeMultipleCounter(p));
}

void
registerAll()
{
    registerSchemeGrid("fig08/", microSchemes(), procCounts(), runOne);
}

void
printTable()
{
    printSchemeGrid("Figure 8: multiple-counter "
                    "(coarse-grain / no conflicts), " +
                        std::to_string(totalOps()) + " total ops",
                    "fig08/", microSchemes(), procCounts(),
                    "(execution cycles; lower is better; total work "
                    "constant across processor counts)");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

/**
 * @file
 * Protocol-generality experiment (paper Section 3: "We make no
 * assumptions regarding the memory consistency model or coherence
 * protocol. The protocol may be broadcast snooping or directory-based
 * and interconnect may be ordered or un-ordered.")
 *
 * Runs the high-conflict microbenchmarks under TLR on both the
 * Gigaplane-style broadcast interconnect (the paper's platform) and
 * the directory-based one. TLR's lock-free behavior — elision,
 * deferral queues, marker/probe chains — must hold on both; only the
 * absolute timing differs with the organization.
 */

#include "bench_common.hh"

#include "harness/system.hh"
#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

RunStats
runOne(Protocol proto, Scheme s, const char *which, int cpus)
{
    MicroParams p;
    p.numCpus = cpus;
    p.lockKind = schemeLockKind(s);
    p.totalOps = 2048 * envScale();
    MachineParams mp;
    mp.numCpus = cpus;
    mp.protocol = proto;
    mp.spec = schemeSpecConfig(s);
    Workload wl = std::string(which) == "dlist"
                      ? makeDoublyLinkedList(p)
                      : makeSingleCounter(p);
    return runWorkload(mp, wl);
}

std::string
key(Protocol proto, Scheme s, const char *which, int cpus)
{
    return std::string("protocols/") +
           (proto == Protocol::Broadcast ? "bcast" : "dir") + "/" +
           schemeName(s) + "/" + which + "/p" + std::to_string(cpus);
}

const std::vector<int> kProcs{4, 8, 16};

void
registerAll()
{
    for (Protocol proto : {Protocol::Broadcast, Protocol::Directory})
        for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr})
            for (const char *w : {"single-counter", "dlist"})
                for (int n : kProcs)
                    registerSim(key(proto, s, w, n),
                                [proto, s, w, n] {
                                    return runOne(proto, s, w, n);
                                });
}

void
printTable()
{
    std::printf("\n=== Section 3: TLR on broadcast vs directory "
                "coherence ===\n");
    Table t({"workload", "procs", "BASE bcast", "BASE dir", "TLR bcast",
             "TLR dir", "TLR speedup bcast", "TLR speedup dir"});
    for (const char *w : {"single-counter", "dlist"}) {
        for (int n : kProcs) {
            const RunStats &bb = results().at(
                key(Protocol::Broadcast, Scheme::Base, w, n));
            const RunStats &bd = results().at(
                key(Protocol::Directory, Scheme::Base, w, n));
            const RunStats &tb = results().at(
                key(Protocol::Broadcast, Scheme::BaseSleTlr, w, n));
            const RunStats &td = results().at(
                key(Protocol::Directory, Scheme::BaseSleTlr, w, n));
            auto sp = [](const RunStats &base, const RunStats &opt) {
                return opt.cycles ? static_cast<double>(base.cycles) /
                                        static_cast<double>(opt.cycles)
                                  : 0.0;
            };
            t.addRow({w, std::to_string(n), Table::num(bb.cycles),
                      Table::num(bd.cycles), Table::num(tb.cycles),
                      Table::num(td.cycles), Table::num(sp(bb, tb)),
                      Table::num(sp(bd, td))});
        }
    }
    std::printf("%s", t.str().c_str());
    std::printf("(TLR's lock-free win holds on both organizations — "
                "the deferral/marker/probe machinery never touches "
                "protocol state transitions, paper Section 3)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

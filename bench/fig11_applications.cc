/**
 * @file
 * Reproduces paper Figure 11: application performance at 16
 * processors. For every synthetic application kernel the bench runs
 * BASE, BASE+SLE and BASE+SLE+TLR (plus MCS, whose speedups Section
 * 6.3 quotes in text), prints normalized execution time with the
 * lock / non-lock breakdown as stacked ASCII bars, and the TLR and
 * MCS speedups over BASE.
 *
 * Paper reference points (speedup of TLR over BASE): ocean-cont 1.02,
 * water-nsq 1.01, raytrace 1.17, radiosity 1.47, barnes 1.16,
 * cholesky 1.05, mp3d 1.40; MCS beats TLR only on barnes and loses
 * badly on mp3d (frequent uncontended locks).
 */

#include "bench_common.hh"

#include "workloads/apps.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 16;

std::vector<Scheme>
schemes()
{
    return {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr,
            Scheme::Mcs};
}

RunStats
runOne(const AppProfile &profile, Scheme s)
{
    AppProfile p = profile;
    p.itersPerCpu *= envScale();
    return runScheme(s, kProcs, makeAppKernel(p, kProcs,
                                              schemeLockKind(s)));
}

std::string
key(const std::string &app, Scheme s)
{
    return "fig11/" + app + "/" + schemeName(s);
}

void
registerAll()
{
    for (const AppProfile &p : allAppProfiles())
        for (Scheme s : schemes())
            registerSim(key(p.name, s),
                        [p, s] { return runOne(p, s); });
}

void
printTable()
{
    std::printf("\n=== Figure 11: application performance, %d "
                "processors ===\n",
                kProcs);
    Table t({"app", "scheme", "norm.time", "lock-frac",
             "bar [lock='#' rest='.']", "speedup/BASE", "valid"});
    for (const AppProfile &p : allAppProfiles()) {
        const RunStats &base = results().at(key(p.name, Scheme::Base));
        for (Scheme s : schemes()) {
            const RunStats &r = results().at(key(p.name, s));
            double norm = base.cycles
                              ? static_cast<double>(r.cycles) /
                                    static_cast<double>(base.cycles)
                              : 0.0;
            double lockFrac = r.lockFraction(kProcs);
            t.addRow({p.name, schemeName(s), Table::num(norm),
                      Table::num(lockFrac),
                      splitBar(norm, lockFrac, 1.25, 32),
                      Table::num(norm > 0 ? 1.0 / norm : 0.0),
                      r.valid ? "yes" : "NO"});
        }
    }
    std::printf("%s", t.str().c_str());
    std::printf("(normalized to BASE per app; bars: '#' = lock "
                "contribution, '.' = rest; paper TLR speedups: ocean "
                "1.02, water 1.01, raytrace 1.17, radiosity 1.47, "
                "barnes 1.16, cholesky 1.05, mp3d 1.40)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

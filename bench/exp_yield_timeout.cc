/**
 * @file
 * Ablation of this implementation's deadlock-recovery window
 * (DESIGN.md §6, mechanism 6).
 *
 * The paper enforces timestamp order whenever a transaction that
 * holds off a higher-priority contender starts another wait. This
 * implementation instead lets such waits run for `yieldTimeout`
 * cycles before enforcing order: order-consistent hardware queues
 * drain on their own, and only true cycles (which cannot drain) pay
 * the window. yieldTimeout=0 approximates immediate enforcement; the
 * sweep shows the multi-block workloads that motivate the timer and
 * the insensitivity of single-block workloads to it.
 */

#include "bench_common.hh"

#include "workloads/micro.hh"

using namespace tlr;
using namespace tlrbench;

namespace
{

constexpr int kProcs = 8;

const std::vector<Tick> kWindows{1, 100, 400, 1000, 4000};

RunStats
runOne(const char *which, Tick window)
{
    MicroParams p;
    p.numCpus = kProcs;
    p.totalOps = 1024 * envScale();
    MachineParams mp;
    mp.numCpus = kProcs;
    mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
    mp.l1.yieldTimeout = window;
    Workload wl = std::string(which) == "dlist"
                      ? makeDoublyLinkedList(p)
                      : makeSingleCounter(p);
    return runWorkload(mp, wl);
}

std::string
key(const char *which, Tick w)
{
    return std::string("yield/") + which + "/w" + std::to_string(w);
}

void
registerAll()
{
    for (const char *which : {"single-counter", "dlist"})
        for (Tick w : kWindows)
            registerSim(key(which, w),
                        [which, w] { return runOne(which, w); });
}

void
printTable()
{
    std::printf("\n=== Ablation: deadlock-recovery window "
                "(yieldTimeout), %d processors, TLR ===\n",
                kProcs);
    Table t({"window", "single-counter cycles", "restarts",
             "dlist cycles", "restarts", "valid"});
    for (Tick w : kWindows) {
        const RunStats &sc = results().at(key("single-counter", w));
        const RunStats &dl = results().at(key("dlist", w));
        t.addRow({std::to_string(w), Table::num(sc.cycles),
                  Table::num(sc.restarts), Table::num(dl.cycles),
                  Table::num(dl.restarts),
                  sc.valid && dl.valid ? "yes" : "NO"});
    }
    std::printf("%s", t.str().c_str());
    std::printf("(tiny windows approximate immediate wound-wait and "
                "restart heavily even on the single counter, because "
                "chain members briefly count as waiting; from ~400 "
                "cycles the queues drain and only true cycles pay the "
                "window — both workloads settle to a handful of "
                "restarts)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, registerAll, printTable);
}

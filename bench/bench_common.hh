/**
 * @file
 * Shared scaffolding for the figure-reproduction benchmarks: each
 * bench binary registers one google-benchmark per (scheme, x-value)
 * configuration, caches the simulation result, and prints the
 * paper-style table after the benchmark run.
 *
 * All registered simulations also land in a registry so `--jobs=N`
 * can pre-run the whole grid on a host thread pool (harness/sweep.hh)
 * before google-benchmark replays the (now cached) configurations.
 * The result cache is mutex-guarded: concurrent sweep workers insert
 * results, and std::map guarantees the references handed out stay
 * stable.
 */

#ifndef TLR_BENCH_COMMON_HH
#define TLR_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "metrics/collector.hh"

namespace tlrbench
{

using tlr::RunStats;
using tlr::Scheme;

/** Guards results(); hold it for every cache access. */
inline std::mutex &
resultsMutex()
{
    static std::mutex m;
    return m;
}

/** Cache of simulation results keyed by an arbitrary config string.
 *  Access under resultsMutex() while simulations may be running;
 *  table printers run after the sweep and may read freely. */
inline std::map<std::string, RunStats> &
results()
{
    static std::map<std::string, RunStats> r;
    return r;
}

/** Run-once-and-cache wrapper, safe under the parallel sweep. The
 *  simulation itself runs outside the lock; on a duplicate-key race
 *  the first inserted result wins (both are identical anyway — runs
 *  are deterministic functions of the config). */
inline const RunStats &
cachedRun(const std::string &key, const std::function<RunStats()> &fn)
{
    {
        std::lock_guard<std::mutex> g(resultsMutex());
        auto it = results().find(key);
        if (it != results().end())
            return it->second;
    }
    RunStats r = fn();
    std::lock_guard<std::mutex> g(resultsMutex());
    return results().emplace(key, std::move(r)).first->second;
}

/** Every simulation registered by this binary, for --jobs prewarming. */
inline std::vector<std::pair<std::string, std::function<RunStats()>>> &
simRegistry()
{
    static std::vector<std::pair<std::string, std::function<RunStats()>>> r;
    return r;
}

/** Register a benchmark that performs (or reuses) one simulation and
 *  reports the simulated cycle count as a counter. */
inline void
registerSim(const std::string &name, std::function<RunStats()> fn)
{
    simRegistry().emplace_back(name, fn);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [name, fn](benchmark::State &state) {
            for (auto _ : state) {
                const RunStats &r = cachedRun(name, fn);
                benchmark::DoNotOptimize(&r);
            }
            const RunStats &r = results().at(name);
            state.counters["simCycles"] =
                static_cast<double>(r.cycles);
            state.counters["restarts"] =
                static_cast<double>(r.restarts);
            state.counters["valid"] = r.valid ? 1 : 0;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** The four schemes every microbenchmark figure compares. */
inline std::vector<Scheme>
microSchemes()
{
    return {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
            Scheme::BaseSleTlr};
}

/** Processor counts on the x-axis of Figures 8-10. */
inline std::vector<int>
procCounts()
{
    return {2, 4, 6, 8, 10, 12, 14, 16};
}

/** Canonical cache key for a (figure, scheme, cpu-count) cell. */
inline std::string
gridKey(const std::string &prefix, Scheme s, int procs)
{
    return prefix + tlr::schemeName(s) + "/p" + std::to_string(procs);
}

/** Register the full scheme × processor-count grid of one figure. */
inline void
registerSchemeGrid(const std::string &prefix,
                   const std::vector<Scheme> &schemes,
                   const std::vector<int> &procs,
                   const std::function<RunStats(Scheme, int)> &runOne)
{
    for (Scheme s : schemes)
        for (int n : procs)
            registerSim(gridKey(prefix, s, n),
                        [s, n, runOne] { return runOne(s, n); });
}

/** Optional extra per-row column for printSchemeGrid. */
struct GridExtraCol
{
    std::string header;
    std::function<std::string(int procs)> value;
};

/**
 * Print the standard figure table: one row per processor count, one
 * "cycles (INVALID?)" column per scheme, plus any extra columns.
 * Shared by fig08/fig09/fig10 (satellite: the per-figure printers
 * used to copy this loop verbatim).
 */
inline void
printSchemeGrid(const std::string &title, const std::string &prefix,
                const std::vector<Scheme> &schemes,
                const std::vector<int> &procs, const std::string &footer,
                const std::vector<GridExtraCol> &extras = {})
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::vector<std::string> head{"procs"};
    for (Scheme s : schemes)
        head.push_back(tlr::schemeName(s));
    for (const GridExtraCol &c : extras)
        head.push_back(c.header);
    tlr::Table t(head);
    for (int n : procs) {
        std::vector<std::string> row{std::to_string(n)};
        for (Scheme s : schemes) {
            const RunStats &r = results().at(gridKey(prefix, s, n));
            row.push_back(tlr::Table::num(r.cycles) +
                          (r.valid ? "" : " INVALID"));
        }
        for (const GridExtraCol &c : extras)
            row.push_back(c.value(n));
        t.addRow(row);
    }
    std::printf("%s", t.str().c_str());
    if (!footer.empty())
        std::printf("%s\n", footer.c_str());
}

/**
 * One-line latency/contention digest per cached config, printed when
 * the runs carried metrics (TLR_METRICS=1 makes runScheme() attach a
 * MetricsCollector). Silent otherwise, so default bench output is
 * unchanged.
 */
inline void
maybePrintMetricsTable()
{
    bool any = false;
    for (const auto &[key, r] : results())
        if (r.metrics)
            any = true;
    if (!any)
        return;
    std::printf("\n=== metrics digest (TLR_METRICS) ===\n");
    tlr::Table t({"config", "cs p50", "cs p90", "cs p99", "defer p99",
                  "restarts", "abort%", "hottest lock"});
    for (const auto &[key, r] : results()) {
        if (!r.metrics)
            continue;
        const tlr::MetricsSnapshot &m = *r.metrics;
        auto pct = [](const tlr::Histogram &h, double p) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.0f", h.percentile(p));
            return std::string(buf);
        };
        char abt[32];
        std::snprintf(abt, sizeof(abt), "%.1f", 100.0 * m.abortRate());
        const auto [hotAddr, hotCont] = m.hottestLock();
        char hot[48];
        std::snprintf(hot, sizeof(hot), "%#llx (%llu)",
                      static_cast<unsigned long long>(hotAddr),
                      static_cast<unsigned long long>(hotCont));
        t.addRow({key, pct(m.csLatency, 50), pct(m.csLatency, 90),
                  pct(m.csLatency, 99), pct(m.deferWait, 99),
                  tlr::Table::num(r.restarts), abt,
                  hotCont ? hot : "-"});
    }
    std::printf("%s", t.str().c_str());
}

/**
 * Per-config causal-conflict reports, printed when the runs carried
 * the explainer (TLR_EXPLAIN=1 makes runScheme() attach it; bench
 * binaries that build MachineParams by hand set mp.explain =
 * envExplain() themselves). Silent otherwise.
 */
inline void
maybePrintExplainReports()
{
    for (const auto &[key, r] : results()) {
        if (!r.explainReport)
            continue;
        std::printf("\n--- %s (TLR_EXPLAIN) ---\n%s", key.c_str(),
                    r.explainReport->c_str());
    }
}

/**
 * Per-config epoch-timeline digests, printed when the runs carried the
 * timeline (TLR_TIMELINE=N makes runScheme() attach it with N-cycle
 * epochs; bench binaries that build MachineParams by hand set
 * mp.timelineEpoch = envTimelineEpoch() themselves). Silent otherwise.
 */
inline void
maybePrintTimelineReports()
{
    for (const auto &[key, r] : results()) {
        if (!r.timelineReport)
            continue;
        std::printf("\n--- %s (TLR_TIMELINE) ---\n%s", key.c_str(),
                    r.timelineReport->c_str());
    }
}

/**
 * One closing pointer when TLR_REPORT=LEDGER_DIR was set: every
 * simulation this binary ran appended a run bundle to the ledger
 * (runWorkload's env hook), so tell the user where the flight reports
 * come from. Silent otherwise, keeping default bench output unchanged.
 */
inline void
maybePrintReportLedgerNote()
{
    std::string dir = tlr::envReportDir();
    if (dir.empty())
        return;
    std::printf("\nrun bundles appended to %s (TLR_REPORT); render "
                "with: tlrreport %s/<entry> | tlrreport --trend %s\n",
                dir.c_str(), dir.c_str(), dir.c_str());
}

/** Pre-run every registered simulation on @p jobs host threads. */
inline void
prewarmRegistry(unsigned jobs)
{
    std::vector<tlr::SweepTask> tasks;
    tasks.reserve(simRegistry().size());
    for (const auto &[name, fn] : simRegistry()) {
        const std::string &key = name;
        const std::function<RunStats()> &f = fn;
        tasks.push_back(
            {key, [key, f] { return cachedRun(key, f); }});
    }
    tlr::runSweep(tasks, jobs);
}

/**
 * Standard driver: init benchmark lib, register, run, print table.
 *
 * Accepts `--jobs=N` ahead of the google-benchmark flags: N > 1
 * pre-runs the whole simulation grid on N host threads, so the
 * subsequent benchmark pass replays cached results and total
 * wall-clock drops by roughly the core count. N = 0 means hardware
 * concurrency. Default (1) keeps the serial timing behavior.
 */
inline int
benchMain(int argc, char **argv, const std::function<void()> &register_fn,
          const std::function<void()> &print_fn)
{
    unsigned jobs = 1;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            long v = std::atol(argv[i] + 7);
            jobs = v >= 0 ? static_cast<unsigned>(v) : 1;
            continue; // strip: google-benchmark rejects unknown flags
        }
        argv[out++] = argv[i];
    }
    argc = out;
    benchmark::Initialize(&argc, argv);
    register_fn();
    if (jobs != 1)
        prewarmRegistry(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_fn();
    maybePrintMetricsTable();
    maybePrintExplainReports();
    maybePrintTimelineReports();
    maybePrintReportLedgerNote();
    return 0;
}

} // namespace tlrbench

#endif // TLR_BENCH_COMMON_HH

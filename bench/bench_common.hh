/**
 * @file
 * Shared scaffolding for the figure-reproduction benchmarks: each
 * bench binary registers one google-benchmark per (scheme, x-value)
 * configuration, caches the simulation result, and prints the
 * paper-style table after the benchmark run.
 */

#ifndef TLR_BENCH_COMMON_HH
#define TLR_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

namespace tlrbench
{

using tlr::RunStats;
using tlr::Scheme;

/** Cache of simulation results keyed by an arbitrary config string. */
inline std::map<std::string, RunStats> &
results()
{
    static std::map<std::string, RunStats> r;
    return r;
}

/** Run-once-and-cache wrapper. */
inline const RunStats &
cachedRun(const std::string &key, const std::function<RunStats()> &fn)
{
    auto it = results().find(key);
    if (it == results().end())
        it = results().emplace(key, fn()).first;
    return it->second;
}

/** Register a benchmark that performs (or reuses) one simulation and
 *  reports the simulated cycle count as a counter. */
inline void
registerSim(const std::string &name, std::function<RunStats()> fn)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [name, fn](benchmark::State &state) {
            for (auto _ : state) {
                const RunStats &r = cachedRun(name, fn);
                benchmark::DoNotOptimize(&r);
            }
            const RunStats &r = results().at(name);
            state.counters["simCycles"] =
                static_cast<double>(r.cycles);
            state.counters["restarts"] =
                static_cast<double>(r.restarts);
            state.counters["valid"] = r.valid ? 1 : 0;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** The four schemes every microbenchmark figure compares. */
inline std::vector<Scheme>
microSchemes()
{
    return {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
            Scheme::BaseSleTlr};
}

/** Processor counts on the x-axis of Figures 8-10. */
inline std::vector<int>
procCounts()
{
    return {2, 4, 6, 8, 10, 12, 14, 16};
}

/** Standard driver: init benchmark lib, register, run, print table. */
inline int
benchMain(int argc, char **argv, const std::function<void()> &register_fn,
          const std::function<void()> &print_fn)
{
    benchmark::Initialize(&argc, argv);
    register_fn();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_fn();
    return 0;
}

} // namespace tlrbench

#endif // TLR_BENCH_COMMON_HH

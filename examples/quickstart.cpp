/**
 * @file
 * Quickstart: build a 4-processor machine, write a tiny lock-based
 * program in the mini-ISA, and watch TLR execute it lock-free.
 *
 * The program is the classic shared-counter critical section:
 *
 *     acquire(lock);  counter++;  release(lock);
 *
 * written as a test&test&set loop — exactly what SLE/TLR hardware
 * sees. We run it twice, once on the BASE machine and once with
 * BASE+SLE+TLR, and compare cycles, commits, and lock traffic.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "sync/layout.hh"
#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

using namespace tlr;

namespace
{

// Register names for readability.
constexpr Reg rLock = 1;
constexpr Reg rCnt = 2;
constexpr Reg rIter = 3;
constexpr Reg rVal = 4;
constexpr Reg rT0 = 5;
constexpr Reg rT1 = 6;

Workload
makeCounterWorkload(int cpus, int iters)
{
    Layout lay;
    Addr lock = lay.allocLock();   // line-padded lock word
    Addr counter = lay.allocLine();

    Workload wl;
    wl.name = "quickstart-counter";
    wl.lockClassifier = lay.classifier();
    for (int c = 0; c < cpus; ++c) {
        ProgramBuilder b;
        b.li(rLock, static_cast<std::int64_t>(lock));
        b.li(rCnt, static_cast<std::int64_t>(counter));
        b.li(rIter, iters);
        b.label("loop");
        emitTtsAcquire(b, rLock, rT0, rT1); // spin; LL/SC test&set
        b.ld(rVal, rCnt);                   // counter++
        b.addi(rVal, rVal, 1);
        b.st(rVal, rCnt);
        emitTtsRelease(b, rLock);           // plain store of 0
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }
    const std::uint64_t expected =
        static_cast<std::uint64_t>(cpus) * iters;
    wl.validate = [counter, expected](System &sys) {
        return readCoherent(sys, counter) == expected;
    };
    return wl;
}

} // namespace

int
main()
{
    const int cpus = 4;
    const int iters = 200;

    std::printf("Quickstart: %d processors increment one shared "
                "counter %d times each,\nthrough a single "
                "test&test&set lock.\n\n",
                cpus, iters);

    for (Scheme s : {Scheme::Base, Scheme::BaseSle, Scheme::BaseSleTlr}) {
        Workload wl = makeCounterWorkload(cpus, iters);
        RunStats r = runScheme(s, cpus, wl);
        std::printf("%-22s cycles=%-8llu valid=%s commits=%llu "
                    "restarts=%llu fallbacks=%llu lock-stall=%llu\n",
                    schemeName(s),
                    static_cast<unsigned long long>(r.cycles),
                    r.valid ? "yes" : "NO",
                    static_cast<unsigned long long>(r.commits),
                    static_cast<unsigned long long>(r.restarts),
                    static_cast<unsigned long long>(r.fallbacks),
                    static_cast<unsigned long long>(r.lockCycles));
    }

    std::printf("\nWhat to look for:\n"
                " - all three runs compute the same correct result;\n"
                " - BASE spends most of its time stalled on the lock;\n"
                " - TLR commits every critical section as a lock-free\n"
                "   transaction (commits == %d) and the lock stall all\n"
                "   but disappears, despite every section conflicting\n"
                "   on the same counter line.\n",
                cpus * iters);
    return 0;
}

/**
 * @file
 * Stability example (paper Sections 2.1.1, 4 and Figures 2/4):
 * livelock freedom, starvation freedom and graceful resource
 * fallback.
 *
 * Part 1 — conflict resolution: two processors write two locations in
 * opposite orders inside the same critical section. Restart-only
 * speculation (SLE whose retry budget never runs out) livelocks;
 * TLR's timestamps resolve every conflict and both processors finish.
 *
 * Part 2 — fairness: under TLR, the per-processor commit counts are
 * exactly equal and every logical clock advanced — nobody starved,
 * because a restarting processor keeps its timestamp until it wins.
 *
 * Part 3 — resource constraints: a critical section writing more
 * unique lines than the speculative write buffer holds cannot run
 * lock-free; TLR falls back to really acquiring the lock and the
 * result is still correct (the paper's conditional guarantee).
 *
 * Build & run:  ./build/examples/stability
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/system.hh"
#include "workloads/scenarios.hh"

using namespace tlr;

int
main()
{
    // ---- Part 1: Figure 2 vs Figure 4 ------------------------------
    std::printf("Part 1: reverse-order writers (paper Figures 2/4)\n");
    {
        MachineParams mp;
        mp.numCpus = 2;
        mp.spec = schemeSpecConfig(Scheme::BaseSle);
        mp.spec.sleMaxRetries = 1'000'000'000; // restart forever
        mp.maxTicks = 2'000'000;
        RunStats r = runWorkload(mp, makeReverseWriters(2, 100));
        std::printf("  restart-only speculation: completed=%s after "
                    "%llu restarts -> livelock (Figure 2)\n",
                    r.completed ? "yes?!" : "no",
                    static_cast<unsigned long long>(r.restarts));
    }
    {
        RunStats r = runScheme(Scheme::BaseSleTlr, 2,
                               makeReverseWriters(2, 100));
        std::printf("  TLR:                      completed=%s, "
                    "%llu commits, 0 lock acquisitions (Figure 4)\n\n",
                    r.completed && r.valid ? "yes" : "NO",
                    static_cast<unsigned long long>(r.commits));
    }

    // ---- Part 2: starvation freedom --------------------------------
    std::printf("Part 2: fairness across 8 contending processors\n");
    {
        const int cpus = 8;
        MachineParams mp;
        mp.numCpus = cpus;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        System sys(mp);
        Workload wl = makeRotatedBlocks(cpus, 64);
        installWorkload(sys, wl);
        bool done = sys.run();
        std::printf("  completed=%s valid=%s; per-cpu commits:",
                    done ? "yes" : "NO",
                    wl.validate(sys) ? "yes" : "NO");
        for (int c = 0; c < cpus; ++c)
            std::printf(" %llu",
                        static_cast<unsigned long long>(sys.stats().get(
                            "spec" + std::to_string(c), "commits")));
        std::printf("\n  (equal counts: every processor eventually "
                    "wins — timestamps are retained across restarts)\n"
                    "\n");
    }

    // ---- Part 3: resource fallback ---------------------------------
    std::printf("Part 3: conditional guarantee under resource "
                "limits\n");
    for (unsigned wbLines : {2u, 64u}) {
        MachineParams mp;
        mp.numCpus = 4;
        mp.spec = schemeSpecConfig(Scheme::BaseSleTlr);
        mp.spec.writeBufferLines = wbLines;
        // Each critical section of rotated-blocks writes 3 lines.
        RunStats r = runWorkload(mp, makeRotatedBlocks(4, 64));
        std::printf("  write buffer = %2u lines: valid=%s commits=%llu "
                    "lock fallbacks=%llu\n",
                    wbLines, r.valid ? "yes" : "NO",
                    static_cast<unsigned long long>(r.commits),
                    static_cast<unsigned long long>(r.fallbacks));
    }
    std::printf("  (too-small buffer: execution stays correct but "
                "falls back to the lock;\n   the paper's wait-free "
                "guarantee is conditional on transaction footprint)\n");
    return 0;
}

/**
 * @file
 * Scenario example: the paper's doubly-linked list (Section 5.1).
 *
 * A single lock protects a queue with Head and Tail pointers. With a
 * lock, enqueuers and dequeuers serialize even though a non-empty
 * queue could support one of each concurrently — the programmer
 * cannot easily express that concurrency (an enqueuer does not know
 * whether it must also touch Head until it has looked at Tail).
 *
 * TLR extracts the concurrency dynamically: transactions touching
 * only Head run in parallel with transactions touching only Tail,
 * and the rare empty-queue transitions (which touch both) are
 * serialized by timestamp order. This example runs the benchmark on
 * every scheme and reports where the time went.
 *
 * Build & run:  ./build/examples/transactional_queue
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "workloads/micro.hh"

using namespace tlr;

int
main()
{
    const int cpus = 8;
    MicroParams p;
    p.numCpus = cpus;
    p.totalOps = 1024; // enqueue+dequeue pairs, split across cpus

    std::printf("Doubly-linked list, %d processors, one lock, %llu "
                "dequeue+enqueue pairs.\n\n",
                cpus, static_cast<unsigned long long>(p.totalOps));
    std::printf("%-24s %10s %9s %9s %9s %10s\n", "scheme", "cycles",
                "commits", "restarts", "fallbacks", "valid");

    for (Scheme s : {Scheme::Base, Scheme::Mcs, Scheme::BaseSle,
                     Scheme::BaseSleTlr}) {
        p.lockKind = schemeLockKind(s);
        Workload wl = makeDoublyLinkedList(p);
        RunStats r = runScheme(s, cpus, wl);
        std::printf("%-24s %10llu %9llu %9llu %9llu %10s\n",
                    schemeName(s),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.commits),
                    static_cast<unsigned long long>(r.restarts),
                    static_cast<unsigned long long>(r.fallbacks),
                    r.valid ? "yes" : "NO");
    }

    std::printf(
        "\nWhat to look for:\n"
        " - every scheme preserves the list structure (valid=yes);\n"
        " - SLE alone barely helps: it keeps detecting the dynamic\n"
        "   Head/Tail conflicts and falls back to the lock;\n"
        " - TLR commits nearly every operation as a lock-free\n"
        "   transaction and runs fastest: dequeues and enqueues\n"
        "   overlap even though the program uses a single lock.\n");
    return 0;
}

/**
 * @file
 * Programmability example: coarse-grain locking without the penalty
 * (paper Section 6.3, coarse-vs-fine experiment, and the
 * "Programmability" claim of Section 8).
 *
 * The same cell-update workload is run two ways:
 *   - fine-grain: one lock per cell (hard to write, error prone);
 *   - coarse-grain: ONE lock for all cells (trivially correct code).
 *
 * Under BASE, the coarse version collapses: every update serializes.
 * Under TLR, ordering decisions are made on the data actually
 * touched, independent of lock granularity — the coarse version runs
 * as fast as (here: faster than) the fine-grain one, because the
 * single lock line stays cached everywhere while 1024 fine-grain
 * lock lines keep missing.
 *
 * Build & run:  ./build/examples/coarse_locking
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "workloads/apps.hh"

using namespace tlr;

int
main()
{
    const int cpus = 16;
    std::printf("Cell-update kernel, %d processors: fine-grain "
                "(per-cell locks) vs\ncoarse-grain (one lock for "
                "everything).\n\n",
                cpus);
    std::printf("%-14s %-14s %10s %12s %9s\n", "locking", "scheme",
                "cycles", "restarts", "valid");

    for (bool coarse : {false, true}) {
        AppProfile p = coarse ? mp3dCoarseProfile() : mp3dProfile();
        for (Scheme s : {Scheme::Base, Scheme::BaseSleTlr}) {
            Workload wl =
                makeAppKernel(p, cpus, schemeLockKind(s));
            RunStats r = runScheme(s, cpus, wl);
            std::printf("%-14s %-14s %10llu %12llu %9s\n",
                        coarse ? "1 coarse lock" : "per-cell locks",
                        schemeName(s),
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(r.restarts),
                        r.valid ? "yes" : "NO");
        }
    }

    std::printf(
        "\nWhat to look for:\n"
        " - BASE with the coarse lock is an order of magnitude\n"
        "   slower: all processors serialize on one lock;\n"
        " - TLR with the coarse lock is the FASTEST configuration:\n"
        "   the simplest possible code wins, because serialization\n"
        "   happens only on true data conflicts (paper Section 8:\n"
        "   \"coarse granularity locking can be employed without\n"
        "   paying a performance penalty\").\n");
    return 0;
}

/**
 * @file
 * tlrquery — query and explain on-disk binary traces.
 *
 * Reads the versioned raw-trace files tlrsim records with
 * `--trace-raw=FILE` and either prints/aggregates matching records or
 * replays them through the same explain pipeline tlrsim runs online:
 *
 *   tlrquery trace.bin                          # print every record
 *   tlrquery --filter=cpu:3,class:Coh trace.bin # filtered
 *   tlrquery --count=kind trace.bin             # histogram by kind
 *   tlrquery --explain trace.bin                # offline causal report
 *   tlrquery --header trace.bin                 # header only
 *
 * Filters use the exact syntax of tlrsim --trace-filter; the
 * shorthands --cpu/--kind/--class/--lock/--tick merge into the same
 * filter. Output is deterministic: the same file and flags always
 * produce byte-identical output (CI relies on this). Exit status is 0
 * on success, 1 on any usage or file error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "explain/explain.hh"
#include "explain/rawtrace.hh"
#include "sim/build_info.hh"
#include "sim/logging.hh"
#include "timeline/timeline.hh"
#include "trace/filter.hh"
#include "trace/lifecycle.hh"

using namespace tlr;

namespace
{

struct Options
{
    std::string file;
    std::string filterSpec;
    bool header = false;
    std::string countKey;  // cpu | kind | class | lock | comp
    bool count = false;
    bool explainOn = false;
    std::string explainMode; // txn | lock | cpu
    std::string explainDot;
    std::string explainJson;
    std::string out;       // output destination ("" = stdout)
    std::uint64_t limit = 0; // 0 = unlimited
    Tick timelineEpoch = 0;  // --timeline=N offline reconstruction
};

void
usage()
{
    std::printf(
        "tlrquery — query tlrsim --trace-raw binary traces\n\n"
        "  tlrquery [flags] FILE\n\n"
        "  --header            print the file header and exit\n"
        "  --filter=SPEC       cpu:N,comp:C,kind:K,class:G,addr:A,\n"
        "                      tick:LO-HI (repeat keys to OR,\n"
        "                      distinct keys AND; same syntax as\n"
        "                      tlrsim --trace-filter)\n"
        "  --cpu=N --kind=K --class=G --lock=A --tick=LO-HI\n"
        "                      shorthands merged into --filter\n"
        "  --count[=KEY]       aggregate matching records by KEY =\n"
        "                      kind (default) | cpu | class | lock |\n"
        "                      comp\n"
        "  --limit=N           print at most N records\n"
        "  --explain[=MODE]    replay matching records through the\n"
        "                      causal explainer; MODE = txn | lock |\n"
        "                      cpu\n"
        "  --explain-dot=FILE  write the conflict graph as DOT\n"
        "  --explain-json=FILE write the explain document as JSON\n"
        "  --timeline=N        replay the whole file through the epoch\n"
        "                      timeline (N-cycle epochs) and emit the\n"
        "                      CSV — byte-identical to the same run's\n"
        "                      online tlrsim --timeline-epoch=N\n"
        "                      --timeline-out\n"
        "  --out=FILE          write output to FILE instead of stdout\n"
        "  --version           build metadata + schema versions\n");
}

bool
parseFlag(const char *arg, const char *name, std::string &out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

ExplainMode
parseExplainMode(const std::string &m)
{
    if (m.empty() || m == "txn")
        return ExplainMode::Txn;
    if (m == "lock")
        return ExplainMode::Lock;
    if (m == "cpu")
        return ExplainMode::Cpu;
    std::fprintf(stderr, "unknown explain mode '%s' (txn|lock|cpu)\n",
                 m.c_str());
    std::exit(1);
}

std::string
countKeyOf(const TraceRecord &r, const std::string &key)
{
    if (key == "cpu")
        return "cpu" + std::to_string(r.cpu);
    if (key == "class")
        return traceClassName(traceClassOf(r.kind));
    if (key == "lock")
        return strfmt("%#llx", static_cast<unsigned long long>(r.addr));
    if (key == "comp")
        return traceCompName(r.comp);
    return traceEventName(r.kind); // "kind" (default)
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    TraceFilter filter;
    auto addFilterTerm = [&](const std::string &term) {
        std::string err = filter.parse(term);
        if (!err.empty()) {
            std::fprintf(stderr, "bad filter: %s\n", err.c_str());
            std::exit(1);
        }
    };
    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *a = argv[i];
        if (parseFlag(a, "--filter", v)) addFilterTerm(v);
        else if (parseFlag(a, "--cpu", v)) addFilterTerm("cpu:" + v);
        else if (parseFlag(a, "--kind", v)) addFilterTerm("kind:" + v);
        else if (parseFlag(a, "--class", v)) addFilterTerm("class:" + v);
        else if (parseFlag(a, "--lock", v)) addFilterTerm("addr:" + v);
        else if (parseFlag(a, "--addr", v)) addFilterTerm("addr:" + v);
        else if (parseFlag(a, "--tick", v)) addFilterTerm("tick:" + v);
        else if (parseFlag(a, "--count", v)) {
            o.count = true;
            o.countKey = v;
        }
        else if (std::strcmp(a, "--count") == 0) {
            o.count = true;
            o.countKey = "kind";
        }
        else if (parseFlag(a, "--limit", v))
            o.limit = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--explain-dot", v)) {
            o.explainOn = true;
            o.explainDot = v;
        }
        else if (parseFlag(a, "--explain-json", v)) {
            o.explainOn = true;
            o.explainJson = v;
        }
        else if (parseFlag(a, "--explain", v)) {
            o.explainOn = true;
            o.explainMode = v;
        }
        else if (std::strcmp(a, "--explain") == 0) o.explainOn = true;
        else if (parseFlag(a, "--timeline", v))
            o.timelineEpoch = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--out", v)) o.out = v;
        else if (std::strcmp(a, "--header") == 0) o.header = true;
        else if (std::strcmp(a, "--version") == 0) {
            std::printf("%s", versionString("tlrquery").c_str());
            return 0;
        }
        else if (std::strcmp(a, "--help") == 0 ||
                 std::strcmp(a, "-h") == 0) {
            usage();
            return 0;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", a);
            usage();
            return 1;
        } else if (o.file.empty()) {
            o.file = a;
        } else {
            std::fprintf(stderr, "more than one input file\n");
            return 1;
        }
    }
    if (o.file.empty()) {
        std::fprintf(stderr, "no input file\n");
        usage();
        return 1;
    }
    if (o.count && o.explainOn) {
        std::fprintf(stderr, "--count and --explain are exclusive\n");
        return 1;
    }
    if (o.timelineEpoch > 0 && (o.count || o.explainOn)) {
        std::fprintf(stderr,
                     "--timeline is exclusive with --count/--explain\n");
        return 1;
    }
    if (o.timelineEpoch > 0 && !filter.empty()) {
        // A thinned stream would reconstruct a different timeline than
        // the online run saw; refuse rather than silently diverge.
        std::fprintf(stderr,
                     "--timeline replays the full stream (no --filter); "
                     "record the file unfiltered\n");
        return 1;
    }
    if (o.count && o.countKey != "kind" && o.countKey != "cpu" &&
        o.countKey != "class" && o.countKey != "lock" &&
        o.countKey != "comp") {
        std::fprintf(stderr,
                     "unknown count key '%s' "
                     "(kind|cpu|class|lock|comp)\n",
                     o.countKey.c_str());
        return 1;
    }

    RawTraceReader reader;
    std::string err = reader.open(o.file);
    if (!err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }

    std::ofstream outFile;
    std::ostream *os = nullptr;
    std::string buffer;
    auto emit = [&](const std::string &line) { buffer += line; };

    const RawTraceHeader &h = reader.header();
    if (o.header) {
        emit(strfmt("file: %s\n", o.file.c_str()));
        emit(strfmt("version: %u\nrecord_size: %u\nrecords: %llu\n"
                    "final_tick: %llu\n",
                    h.version, h.recordSize,
                    static_cast<unsigned long long>(h.recordCount),
                    static_cast<unsigned long long>(h.finalTick)));
    } else if (o.count) {
        std::map<std::string, std::uint64_t> counts;
        std::uint64_t total = 0;
        reader.forEach([&](const TraceRecord &r) {
            if (!filter.empty() && !filter.matches(r))
                return;
            ++counts[countKeyOf(r, o.countKey)];
            ++total;
        });
        for (const auto &[key, n] : counts)
            emit(strfmt("%12llu  %s\n",
                        static_cast<unsigned long long>(n),
                        key.c_str()));
        emit(strfmt("%12llu  total\n",
                    static_cast<unsigned long long>(total)));
    } else if (o.timelineEpoch > 0) {
        // The exact offline mirror of tlrsim --timeline-epoch: the
        // full record stream plus finish(finalTick), so the CSV is
        // byte-identical to the online --timeline-out file.
        EpochTimeline timeline(o.timelineEpoch);
        reader.replay(timeline);
        emit(timeline.csv());
    } else if (o.explainOn) {
        Explainer explainer;
        reader.forEach([&](const TraceRecord &r) {
            if (!filter.empty() && !filter.matches(r))
                return;
            explainer.onRecord(r);
        });
        explainer.finish(h.finalTick);
        emit(explainer.report(parseExplainMode(o.explainMode)));
        if (!o.explainDot.empty()) {
            std::ofstream dot(o.explainDot);
            if (!dot) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             o.explainDot.c_str());
                return 1;
            }
            dot << explainer.dot();
        }
        if (!o.explainJson.empty()) {
            std::ofstream json(o.explainJson);
            if (!json) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             o.explainJson.c_str());
                return 1;
            }
            json << explainer.json();
        }
    } else {
        std::uint64_t printed = 0;
        reader.forEach([&](const TraceRecord &r) {
            if (!filter.empty() && !filter.matches(r))
                return;
            if (o.limit && printed >= o.limit)
                return;
            emit(formatRecord(r) + "\n");
            ++printed;
        });
    }

    if (!o.out.empty()) {
        outFile.open(o.out, std::ios::binary);
        if (!outFile) {
            std::fprintf(stderr, "cannot write '%s'\n", o.out.c_str());
            return 1;
        }
        os = &outFile;
        *os << buffer;
    } else {
        std::fwrite(buffer.data(), 1, buffer.size(), stdout);
    }
    return 0;
}

/**
 * @file
 * tlrreport — render run-ledger bundles as flight reports.
 *
 * Three modes over the src/report subsystem:
 *
 *   tlrreport BUNDLE_DIR              one run -> self-contained HTML
 *   tlrreport --diff A B              two runs -> comparison page
 *   tlrreport --trend LEDGER_DIR      whole ledger -> trajectory page
 *
 * The HTML goes to --out (default stdout); the human-readable digest
 * always goes to stderr so piping the page never mixes streams. Exit
 * codes follow tlrstat: 0 clean, 1 usage/IO/parse error, 2 schema or
 * epoch-length refusal, 3 threshold exceeded (diff) or at least one
 * regressed metric (trend).
 *
 * Byte-determinism contract: for the same simulation config and seed,
 * the emitted HTML is identical on any host at any --threads value —
 * enforced by ctest fixtures and the CI golden-report compare.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "metrics/statdiff.hh"
#include "report/bundle.hh"
#include "report/report.hh"
#include "sim/build_info.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "tlrreport — flight reports from tlrsim run bundles\n"
        "\n"
        "  tlrreport BUNDLE_DIR [options]      single-run flight report\n"
        "  tlrreport --diff A B [options]      compare two runs (bundle\n"
        "                                      dirs or stats-json files)\n"
        "  tlrreport --trend LEDGER [options]  cross-run trajectory with\n"
        "                                      first-regressing-run per\n"
        "                                      metric\n"
        "\n"
        "  --out=FILE          write the HTML here (default '-', stdout)\n"
        "  --threshold=PCT     regression threshold for --diff/--trend\n"
        "                      (default 20)\n"
        "  --version           print build and schema versions\n"
        "\n"
        "exit codes: 0 clean; 1 usage/IO error; 2 schema refusal;\n"
        "            3 diff threshold exceeded / trend regression\n");
}

bool
isDirectory(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
parseFlag(const char *arg, const char *name, std::string &out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    out = arg + n + 1;
    return true;
}

int
writeOutput(const std::string &outPath, const std::string &html)
{
    if (outPath.empty() || outPath == "-") {
        std::fwrite(html.data(), 1, html.size(), stdout);
        return 0;
    }
    std::ofstream out(outPath, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "tlrreport: cannot write '%s'\n",
                     outPath.c_str());
        return 1;
    }
    out << html;
    out.close();
    if (!out) {
        std::fprintf(stderr, "tlrreport: write failed for '%s'\n",
                     outPath.c_str());
        return 1;
    }
    return 0;
}

/** A --diff operand is either a bundle directory or a bare stats-json
 *  file; load whichever it is into a stats document. */
bool
loadDiffOperand(const std::string &path, tlr::JsonValue &doc,
                std::string &name)
{
    if (isDirectory(path)) {
        tlr::LoadedBundle b;
        std::string err;
        if (!tlr::loadBundle(path, b, err)) {
            std::fprintf(stderr, "tlrreport: %s\n", err.c_str());
            return false;
        }
        doc = std::move(b.stats);
        name = b.name;
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "tlrreport: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!tlr::parseJson(ss.str(), doc, err)) {
        std::fprintf(stderr, "tlrreport: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    name = path;
    return true;
}

int
runReport(const std::string &dir, const std::string &outPath)
{
    tlr::LoadedBundle b;
    std::string err;
    if (!tlr::loadBundle(dir, b, err)) {
        std::fprintf(stderr, "tlrreport: %s\n", err.c_str());
        // A present-but-foreign bundle schema is a refusal, not an
        // IO error; everything else in loadBundle is.
        return err.find("schema_version") != std::string::npos ? 2 : 1;
    }
    int rc = writeOutput(outPath, tlr::renderFlightReport(b));
    if (rc == 0)
        std::fprintf(stderr, "report: rendered bundle %s\n",
                     b.name.c_str());
    return rc;
}

int
runDiff(const std::string &oldPath, const std::string &newPath,
        const std::string &outPath, double thresholdPct)
{
    tlr::DiffOptions opt;
    opt.thresholdPct = thresholdPct;
    tlr::JsonValue oldDoc, newDoc;
    if (!loadDiffOperand(oldPath, oldDoc, opt.oldName) ||
        !loadDiffOperand(newPath, newDoc, opt.newName))
        return 1;
    tlr::DiffReport rep = tlr::diffStats(oldDoc, newDoc, opt);
    int rc = writeOutput(outPath, tlr::renderDiffHtml(rep, opt));
    if (rc != 0)
        return rc;
    // The same text tlrstat prints, so CI logs read identically
    // whichever tool rendered the comparison.
    std::string text = tlr::renderDiff(rep, opt);
    std::fwrite(text.data(), 1, text.size(), stderr);
    if (!rep.ok())
        return rep.error.empty() ? 2 : 1;
    return rep.exceeded ? 3 : 0;
}

int
runTrend(const std::string &ledgerDir, const std::string &outPath,
         double thresholdPct)
{
    if (!isDirectory(ledgerDir)) {
        std::fprintf(stderr, "tlrreport: '%s' is not a directory\n",
                     ledgerDir.c_str());
        return 1;
    }
    std::vector<tlr::LoadedBundle> runs;
    for (const std::string &dir : tlr::listLedger(ledgerDir)) {
        tlr::LoadedBundle b;
        std::string err;
        if (!tlr::loadBundle(dir, b, err)) {
            std::fprintf(stderr, "tlrreport: %s\n", err.c_str());
            return err.find("schema_version") != std::string::npos ? 2
                                                                   : 1;
        }
        runs.push_back(std::move(b));
    }
    tlr::TrendReport t = tlr::analyzeTrend(runs, thresholdPct);
    int rc = writeOutput(outPath, tlr::renderTrendHtml(t, thresholdPct));
    if (rc != 0)
        return rc;
    std::string text = tlr::trendSummaryText(t, thresholdPct);
    std::fwrite(text.data(), 1, text.size(), stderr);
    if (t.schemaMismatch)
        return 2;
    if (!t.error.empty())
        return 1;
    return t.regressed ? 3 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "-";
    std::string threshold;
    bool diffMode = false, trendMode = false;
    std::vector<std::string> operands;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string val;
        if (std::strcmp(arg, "--help") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(arg, "--version") == 0) {
            std::fputs(tlr::versionString("tlrreport").c_str(), stdout);
            return 0;
        } else if (std::strcmp(arg, "--diff") == 0) {
            diffMode = true;
        } else if (std::strcmp(arg, "--trend") == 0) {
            trendMode = true;
        } else if (parseFlag(arg, "--out", val)) {
            outPath = val;
        } else if (parseFlag(arg, "--threshold", val)) {
            threshold = val;
        } else if (arg[0] == '-' && arg[1] == '-') {
            std::fprintf(stderr, "tlrreport: unknown option '%s'\n\n",
                         arg);
            usage();
            return 1;
        } else {
            operands.push_back(arg);
        }
    }

    double thresholdPct = 20.0;
    if (!threshold.empty()) {
        char *end = nullptr;
        thresholdPct = std::strtod(threshold.c_str(), &end);
        if (end == threshold.c_str() || *end || thresholdPct < 0) {
            std::fprintf(stderr,
                         "tlrreport: bad --threshold value '%s'\n",
                         threshold.c_str());
            return 1;
        }
    }

    if (diffMode && trendMode) {
        std::fprintf(stderr,
                     "tlrreport: --diff and --trend are exclusive\n");
        return 1;
    }
    if (diffMode) {
        if (operands.size() != 2) {
            std::fprintf(stderr,
                         "tlrreport: --diff needs exactly two runs\n\n");
            usage();
            return 1;
        }
        return runDiff(operands[0], operands[1], outPath, thresholdPct);
    }
    if (trendMode) {
        if (operands.size() != 1) {
            std::fprintf(
                stderr,
                "tlrreport: --trend needs one ledger directory\n\n");
            usage();
            return 1;
        }
        return runTrend(operands[0], outPath, thresholdPct);
    }
    if (operands.size() != 1) {
        usage();
        return 1;
    }
    return runReport(operands[0], outPath);
}

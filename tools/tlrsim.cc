/**
 * @file
 * tlrsim — command-line driver for the TLR simulator.
 *
 * Runs any built-in workload under any scheme without writing C++:
 *
 *   tlrsim --workload=single-counter --scheme=tlr --cpus=16 --ops=4096
 *   tlrsim --workload=radiosity --scheme=base --stats=spec
 *   tlrsim --workload=dlist --scheme=tlr --trace 2>trace.log
 *
 * `--cpus` and `--scheme` accept comma-separated lists; more than one
 * combination turns the invocation into a sweep executed on `--jobs`
 * host threads (default: hardware concurrency). `--bench-json=FILE`
 * records per-config wall-clock and events/sec either way.
 *
 * Run with --help for the full flag list. Exit status is 0 on a
 * completed, validated run; 2 on validation failure; 3 on watchdog
 * timeout (livelock).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h> // isatty: --progress is a TTY-only status line

#include "explain/explain.hh"
#include "explain/rawtrace.hh"
#include "report/bundle.hh"
#include "harness/runner.hh"
#include "harness/scheme.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "metrics/collector.hh"
#include "sim/build_info.hh"
#include "sim/logging.hh"
#include "trace/lifecycle.hh"
#include "workloads/registry.hh"

using namespace tlr;

namespace
{

struct Options
{
    std::string workload = "single-counter";
    std::string scheme = "tlr";
    std::string protocol = "broadcast";
    std::string cpus = "8";  ///< comma-separated list
    std::uint64_t ops = 1024;
    std::uint64_t seed = 12345;
    double theta = 0.6;      // db family: Zipfian key skew
    unsigned keys = 256;     // db family: key-space size
    unsigned partitions = 4; // db family: partitions / warehouses
    bool trace = false;
    std::string traceOut;    // Chrome-trace JSON destination
    std::string traceRaw;    // binary trace destination (tlrquery)
    std::string traceFilter; // record filter for --trace-raw
    bool explainOn = false;  // causal conflict explainer
    std::string explainMode; // txn (default) | lock | cpu
    std::string explainDot;  // conflict graph DOT destination
    std::string explainJson; // explain JSON destination
    bool checkInvariants = false;
    bool metrics = false;    // latency/contention/traffic profiling
    Tick timelineEpoch = 0;  // epoch-sliced telemetry; 0 = off
    std::string timelineOut; // timeline CSV destination
    bool progress = false;   // per-epoch stderr status line (TTY only)
    std::string statsJson;   // JSON counter dump destination ("-" = stdout)
    std::string benchJson;   // per-config host-perf dump ("-" = stdout)
    std::string reportDir;   // run-ledger directory; "" = no bundle
    unsigned jobs = 0;       // 0 = auto (see resolveJobs)
    unsigned threads = 0;    // intra-sim workers; 0 = classic kernel
    Tick lookahead = 0;      // 0 = derive from the timing model
    int dirBanks = 1;        // directory banks (address-interleaved)
    bool batchedGlobals = true;  // coalesced serialized phases
    bool dynamicLookahead = true; // promise-driven window bounds
    bool snoopFilter = true; // elide snoops to stateless controllers
    size_t ringCapacity = 4096;
    std::string statsPrefix; // empty = no dump; "all" = everything
    Tick maxTicks = 2'000'000'000ull;
    unsigned wbLines = 64;
    unsigned victimEntries = 16;
    Tick yieldTimeout = 1000;
    int preemptEvery = 0;
    Tick preemptQuantum = 10000;
    bool listWorkloads = false;
};

void
usage()
{
    std::printf(
        "tlrsim — Transactional Lock Removal simulator driver\n\n"
        "  --workload=NAME     workload to run (see --list)\n"
        "  --scheme=S[,S...]   base | sle | tlr | tlr-strict | mcs\n"
        "  --protocol=P        broadcast | directory\n"
        "  --cpus=N[,N...]     processor count(s) (default 8); more\n"
        "                      than one (scheme, cpus) combination\n"
        "                      runs as a host-parallel sweep\n"
        "  --jobs=N|auto       host threads for a sweep; auto (the\n"
        "                      default) divides the hardware\n"
        "                      concurrency by --threads so the two\n"
        "                      levels share one core budget\n"
        "  --threads=N|auto    worker threads inside each simulation\n"
        "                      (parallel kernel; DESIGN.md §13).\n"
        "                      Default 0 = classic single-queue\n"
        "                      kernel; any N >= 1 is bit-identical to\n"
        "                      every other N >= 1. auto = hardware\n"
        "                      concurrency, or 0 (classic) on a\n"
        "                      single-core host\n"
        "  --lookahead=N       conservative window override in cycles\n"
        "                      (0 = derive from the timing model;\n"
        "                      smaller = more barriers, same results)\n"
        "  --dir-banks=N       directory banks, address-interleaved\n"
        "                      by line; bank-local work runs in the\n"
        "                      owning partition (default 1)\n"
        "  --no-batched-globals  one barrier pair per serialized\n"
        "                      global (PR-7 compat schedule)\n"
        "  --no-dynamic-lookahead  fixed worst-case windows instead\n"
        "                      of promise-driven bounds\n"
        "  --no-snoop-filter   snoop every controller, even ones\n"
        "                      holding no state for the line\n"
        "  --ops=N             total operations / iterations per cpu\n"
        "  --seed=N            deterministic RNG seed\n"
        "  --theta=X           db workloads: Zipfian key skew in\n"
        "                      [0,1] (0 = uniform, default 0.6)\n"
        "  --keys=N            db workloads: key-space size (256)\n"
        "  --partitions=N      db workloads: partition / warehouse\n"
        "                      count (4)\n"
        "  --wb-lines=N        speculative write-buffer lines (64)\n"
        "  --victim=N          victim-cache entries (16)\n"
        "  --yield-timeout=N   deadlock-recovery window in cycles\n"
        "  --preempt-every=N   preempt a core every N cycles (0 = off)\n"
        "  --preempt-quantum=N suspension length in cycles\n"
        "  --max-ticks=N       watchdog horizon\n"
        "  --stats[=PREFIX]    dump counters (optionally filtered)\n"
        "  --stats-json=FILE   write all counters as JSON ('-' =\n"
        "                      stdout; the human summary then moves to\n"
        "                      stderr. At most one of --stats-json/\n"
        "                      --timeline-out/--bench-json may be '-')\n"
        "  --report-dir=DIR    append a run bundle (manifest, stats\n"
        "                      json, timeline CSV, explain digest, raw\n"
        "                      trace) to the ledger directory DIR;\n"
        "                      render it with tlrreport\n"
        "  --metrics           collect latency histograms, per-lock\n"
        "                      contention and interconnect traffic;\n"
        "                      prints tables, extends --stats-json and\n"
        "                      adds counter tracks to --trace-out\n"
        "  --bench-json=FILE   write per-config wall-clock and\n"
        "                      events/sec as JSON ('-' = stdout)\n"
        "  --trace             emit the event trace on stderr\n"
        "  --trace-out=FILE    write per-transaction lifecycle spans as\n"
        "                      Chrome-trace JSON (Perfetto-loadable);\n"
        "                      with --explain, deferral flow arrows are\n"
        "                      added between cpu rows\n"
        "  --trace-raw=FILE    record the event stream as a versioned\n"
        "                      binary trace (tlrquery input)\n"
        "  --trace-filter=SPEC thin the --trace-raw file to matching\n"
        "                      records, e.g. cpu:3,class:Coh,\n"
        "                      kind:defer,tick:0-5000 (repeated keys\n"
        "                      OR, distinct keys AND). Applies to the\n"
        "                      raw file only: --trace-out, --explain\n"
        "                      and --metrics always see the full\n"
        "                      stream\n"
        "  --explain[=MODE]    causal conflict report on stdout after\n"
        "                      the run; MODE = txn (top-K delayed\n"
        "                      transactions with causal chains,\n"
        "                      default) | lock | cpu\n"
        "  --explain-dot=FILE  write the conflict graph as Graphviz\n"
        "                      DOT (implies --explain)\n"
        "  --explain-json=FILE write instances/edges/cycles as JSON\n"
        "                      (implies --explain)\n"
        "  --timeline-epoch=N  slice the run into N-cycle epochs: per-\n"
        "                      epoch commit/restart/defer deltas plus\n"
        "                      online restart-storm/convoy/starvation/\n"
        "                      throughput-collapse alerts (report on\n"
        "                      stdout, \"timeline\" section in\n"
        "                      --stats-json, counter tracks in\n"
        "                      --trace-out; DESIGN.md §14)\n"
        "  --timeline-out=FILE write the per-epoch rows and alert\n"
        "                      stream as CSV (byte-identical across\n"
        "                      --threads counts and to tlrquery\n"
        "                      --timeline offline reconstruction;\n"
        "                      '-' = stdout)\n"
        "  --progress          one stderr status line refreshed per\n"
        "                      epoch (needs --timeline-epoch);\n"
        "                      auto-disabled when stderr is not a TTY\n"
        "  --trace-ring=N      flight-recorder depth in records (4096)\n"
        "  --check-invariants  run online invariant checkers; panic at\n"
        "                      the first violating tick\n"
        "  --version           build metadata + schema versions\n"
        "  --list              list workloads and exit\n");
}

Scheme
parseScheme(const std::string &s)
{
    if (s == "base")
        return Scheme::Base;
    if (s == "sle")
        return Scheme::BaseSle;
    if (s == "tlr")
        return Scheme::BaseSleTlr;
    if (s == "tlr-strict")
        return Scheme::TlrStrictTs;
    if (s == "mcs")
        return Scheme::Mcs;
    fatal("unknown scheme '%s' (base|sle|tlr|tlr-strict|mcs)",
          s.c_str());
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

Workload
buildWorkload(const Options &o, int cpus, LockKind kind)
{
    WorkloadParams wp;
    wp.numCpus = cpus;
    wp.ops = o.ops;
    wp.seed = o.seed;
    wp.lockKind = kind;
    wp.theta = o.theta;
    wp.keys = o.keys;
    wp.partitions = o.partitions;
    return makeRegisteredWorkload(o.workload, wp);
}

bool
parseFlag(const char *arg, const char *name, std::string &out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

MachineParams
buildMachineParams(const Options &o, Scheme scheme, int cpus)
{
    MachineParams mp;
    mp.numCpus = cpus;
    if (o.protocol == "directory")
        mp.protocol = Protocol::Directory;
    else if (o.protocol != "broadcast")
        fatal("unknown protocol '%s' (broadcast|directory)",
              o.protocol.c_str());
    mp.spec = schemeSpecConfig(scheme);
    mp.spec.writeBufferLines = o.wbLines;
    mp.l1.victimEntries = o.victimEntries;
    mp.l1.yieldTimeout = o.yieldTimeout;
    mp.seed = o.seed;
    mp.maxTicks = o.maxTicks;
    mp.collectMetrics = o.metrics;
    mp.threads = o.threads;
    mp.lookahead = o.lookahead;
    mp.net.dirBanks = o.dirBanks;
    mp.net.snoopFilter = o.snoopFilter;
    mp.batchedGlobals = o.batchedGlobals;
    mp.dynamicLookahead = o.dynamicLookahead;
    mp.timelineEpoch = o.timelineEpoch;
    return mp;
}

void
installPreemptions(System &sys, const Options &o, int cpus)
{
    if (o.preemptEvery <= 0)
        return;
    for (int k = 1;
         static_cast<Tick>(k) * static_cast<Tick>(o.preemptEvery) <
         o.maxTicks && k <= 100000;
         ++k) {
        sys.preemptCore(k % cpus,
                        static_cast<Tick>(k) *
                            static_cast<Tick>(o.preemptEvery),
                        o.preemptQuantum);
    }
}

/** One (scheme, cpus) cell of a sweep, with host-side measurements. */
struct ConfigRow
{
    std::string schemeStr;
    int cpus = 0;
    RunStats stats;
    double wallSec = 0;
};

/** Write a text artifact to a file, or to stdout when the target is
 *  '-' (the human summary has already been routed to stderr then). */
void
writeTextArtifact(const std::string &path, const std::string &text,
                  const char *what)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write %s file '%s'", what, path.c_str());
    out << text;
}

void
writeBenchJson(const Options &o, const std::vector<ConfigRow> &rows)
{
    std::string doc = "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const ConfigRow &r = rows[i];
        double evps = r.wallSec > 0 ?
                          static_cast<double>(r.stats.kernelEvents) /
                              r.wallSec :
                          0;
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"workload\": \"%s\", \"scheme\": \"%s\", "
            "\"cpus\": %d, \"ops\": %llu, \"completed\": %s, "
            "\"valid\": %s, \"cycles\": %llu, \"events\": %llu, "
            "\"wall_sec\": %.6f, \"events_per_sec\": %.0f}%s\n",
            o.workload.c_str(), r.schemeStr.c_str(), r.cpus,
            static_cast<unsigned long long>(o.ops),
            r.stats.completed ? "true" : "false",
            r.stats.valid ? "true" : "false",
            static_cast<unsigned long long>(r.stats.cycles),
            static_cast<unsigned long long>(r.stats.kernelEvents),
            r.wallSec, evps, i + 1 < rows.size() ? "," : "");
        doc += buf;
    }
    doc += "]\n";
    writeTextArtifact(o.benchJson, doc, "bench");
}

ExplainMode
parseExplainMode(const std::string &m)
{
    if (m.empty() || m == "txn")
        return ExplainMode::Txn;
    if (m == "lock")
        return ExplainMode::Lock;
    if (m == "cpu")
        return ExplainMode::Cpu;
    fatal("unknown explain mode '%s' (txn|lock|cpu)", m.c_str());
}

int
runSingle(const Options &o, const std::string &schemeStr, int cpus)
{
    Scheme scheme = parseScheme(schemeStr);
    Trace::enabled = o.trace;
    MachineParams mp = buildMachineParams(o, scheme, cpus);

    // A '-' sink owns stdout; the human-readable summary moves to
    // stderr so the machine document stays clean for pipes. main()
    // already refused more than one stdout sink.
    FILE *rpt = (o.statsJson == "-" || o.timelineOut == "-" ||
                 o.benchJson == "-")
                    ? stderr
                    : stdout;

    const bool wantTrace = o.trace || !o.traceOut.empty() ||
                           o.checkInvariants;
    mp.trace.ringCapacity = wantTrace ? o.ringCapacity : 0;
    mp.trace.echoText = o.trace;
    mp.trace.checkInvariants = o.checkInvariants;
    mp.explain = o.explainOn;

    if (!o.traceFilter.empty() && o.traceRaw.empty())
        fatal("--trace-filter only thins the --trace-raw file; "
              "add --trace-raw=FILE");
    if (!o.timelineOut.empty() && o.timelineEpoch == 0)
        fatal("--timeline-out needs --timeline-epoch=N");
    if (o.progress && o.timelineEpoch == 0)
        fatal("--progress refreshes per epoch; add --timeline-epoch=N");

    System sys(mp);
    // Live status line, refreshed at every epoch boundary. Stderr-only
    // and host-time based, so it can never perturb the simulated run
    // or any compared artifact; silently off when stderr is a pipe so
    // CI logs stay clean.
    bool progressActive = o.progress && sys.timeline() &&
                          isatty(fileno(stderr));
    if (progressActive) {
        auto start = std::chrono::steady_clock::now();
        auto total = std::make_shared<std::uint64_t>(0);
        sys.timeline()->setEpochCallback(
            [start, total](const EpochRow &e, std::uint64_t alerts) {
                *total += e.records;
                double sec = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 start)
                                 .count();
                double evps = sec > 0 ?
                                  static_cast<double>(*total) / sec :
                                  0;
                std::uint64_t tried = e.commits + e.restarts;
                double abortPct = tried > 0 ?
                                      100.0 *
                                          static_cast<double>(
                                              e.restarts) /
                                          static_cast<double>(tried) :
                                      0;
                std::fprintf(stderr,
                             "\r\033[Kepoch %llu @ %llu cycles | "
                             "abort rate %.1f%% | %.2fM rec/s | "
                             "alerts %llu",
                             static_cast<unsigned long long>(e.epoch),
                             static_cast<unsigned long long>(
                                 e.startTick),
                             abortPct, evps / 1e6,
                             static_cast<unsigned long long>(alerts));
                std::fflush(stderr);
            });
    }
    TxnLifecycle lifecycle;
    if (!o.traceOut.empty())
        sys.addTraceListener(&lifecycle);
    RawTraceWriter rawWriter;
    if (!o.traceRaw.empty()) {
        std::string err = rawWriter.open(o.traceRaw);
        if (!err.empty())
            fatal("--trace-raw: %s", err.c_str());
        if (!o.traceFilter.empty()) {
            TraceFilter f;
            err = f.parse(o.traceFilter);
            if (!err.empty())
                fatal("--trace-filter: %s", err.c_str());
            rawWriter.setFilter(f);
        }
        sys.addTraceListener(&rawWriter);
    }
    if (o.metrics && !o.traceOut.empty())
        sys.metrics()->enableCounterTracks();
    Workload wl = buildWorkload(o, cpus, schemeLockKind(scheme));
    installWorkload(sys, wl);
    installPreemptions(sys, o, cpus);

    auto t0 = std::chrono::steady_clock::now();
    bool completed = sys.run();
    double wallSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (progressActive)
        std::fprintf(stderr, "\n");
    bool valid = wl.validate ? wl.validate(sys) : true;
    const StatSet &s = sys.stats();

    std::fprintf(rpt, "workload=%s scheme=%s cpus=%d ops=%llu\n",
                 wl.name.c_str(), schemeName(scheme), cpus,
                 static_cast<unsigned long long>(o.ops));
    std::fprintf(rpt, "completed=%s valid=%s cycles=%llu\n",
                 completed ? "yes" : "NO (watchdog)",
                 valid ? "yes" : "NO",
                 static_cast<unsigned long long>(sys.completionTick()));
    std::fprintf(
        rpt,
        "commits=%llu restarts=%llu fallbacks=%llu defers=%llu "
        "probes=%llu busTxns=%llu\n",
        static_cast<unsigned long long>(s.sum("spec", "commits")),
        static_cast<unsigned long long>(s.sum("spec", "restarts")),
        static_cast<unsigned long long>(s.sum("spec", "fallbacks")),
        static_cast<unsigned long long>(s.sum("l1_", "defers")),
        static_cast<unsigned long long>(s.get("net", "probeMsgs")),
        static_cast<unsigned long long>(s.get("bus", "transactions")));
    if (o.checkInvariants)
        std::fprintf(rpt, "invariantViolations=%llu (traceRecords=%llu)\n",
                     static_cast<unsigned long long>(
                         s.get("trace", "violations")),
                     static_cast<unsigned long long>(
                         sys.traceSink().emitted()));
    if (!o.statsPrefix.empty()) {
        std::fprintf(rpt, "%s",
                     s.dump(o.statsPrefix == "all" ? "" : o.statsPrefix)
                         .c_str());
    }
    if (o.metrics)
        std::fprintf(rpt, "%s",
                     sys.metrics()->snapshot().summary().c_str());
    if (sys.timeline())
        std::fprintf(rpt, "%s", sys.timeline()->report().c_str());
    if (!o.timelineOut.empty())
        writeTextArtifact(o.timelineOut, sys.timeline()->csv(),
                          "timeline");
    if (o.explainOn) {
        std::fprintf(rpt, "%s",
                     sys.explainer()
                         ->report(parseExplainMode(o.explainMode))
                         .c_str());
        if (!o.explainDot.empty()) {
            std::ofstream out(o.explainDot);
            if (!out)
                fatal("cannot write dot file '%s'",
                      o.explainDot.c_str());
            out << sys.explainer()->dot();
        }
        if (!o.explainJson.empty()) {
            std::ofstream out(o.explainJson);
            if (!out)
                fatal("cannot write explain file '%s'",
                      o.explainJson.c_str());
            out << sys.explainer()->json();
        }
    }
    if (!o.traceOut.empty()) {
        std::ofstream out(o.traceOut);
        if (!out)
            fatal("cannot write trace file '%s'", o.traceOut.c_str());
        std::vector<CounterTrack> tracks;
        if (o.metrics)
            tracks = sys.metrics()->counterTracks();
        if (sys.timeline()) {
            std::vector<CounterTrack> tl =
                sys.timeline()->counterTracks();
            tracks.insert(tracks.end(), tl.begin(), tl.end());
        }
        std::vector<FlowArrow> flows;
        if (o.explainOn)
            flows = sys.explainer()->flowArrows();
        lifecycle.exportChromeTrace(out, tracks, flows);
        std::fprintf(stderr,
                     "wrote %zu transaction spans, %zu instants, "
                     "%zu counter tracks, %zu flow arrows to %s\n",
                     lifecycle.spans().size(),
                     lifecycle.instants().size(), tracks.size(),
                     flows.size(), o.traceOut.c_str());
    }
    if (!o.traceRaw.empty())
        std::fprintf(stderr, "wrote %llu raw trace records to %s\n",
                     static_cast<unsigned long long>(
                         rawWriter.written()),
                     o.traceRaw.c_str());
    if (!o.statsJson.empty() || !o.reportDir.empty()) {
        std::string extra;
        if (o.metrics)
            extra = "  \"metrics\": " + sys.metrics()->snapshot().json();
        if (sys.timeline()) {
            if (!extra.empty())
                extra += ",\n";
            extra += "  \"timeline\": " + sys.timeline()->json();
        }
        std::string statsDoc = s.dumpJson(extra);
        if (!o.statsJson.empty())
            writeTextArtifact(o.statsJson, statsDoc, "stats");
        if (!o.reportDir.empty()) {
            BundleMeta bm;
            bm.workload = wl.name;
            bm.scheme = schemeName(scheme);
            bm.protocol = o.protocol;
            bm.cpus = cpus;
            bm.ops = o.ops;
            bm.seed = o.seed;
            bm.theta = o.theta;
            bm.keys = o.keys;
            bm.partitions = o.partitions;
            bm.wbLines = o.wbLines;
            bm.victimEntries = o.victimEntries;
            bm.yieldTimeout = o.yieldTimeout;
            bm.preemptEvery = o.preemptEvery;
            bm.preemptQuantum = o.preemptQuantum;
            bm.maxTicks = o.maxTicks;
            bm.timelineEpoch = o.timelineEpoch;
            bm.metrics = o.metrics;
            bm.explain = o.explainOn;
            bm.checkInvariants = o.checkInvariants;
            bm.completed = completed;
            bm.valid = valid;
            bm.cycles = sys.completionTick();
            bm.invariantViolations = s.get("trace", "violations");
            bm.threads = o.threads;
            bm.jobs = o.jobs;
            bm.lookahead = o.lookahead;
            bm.dirBanks = o.dirBanks;

            BundleArtifacts art;
            art.statsJson = statsDoc;
            if (sys.timeline())
                art.timelineCsv = sys.timeline()->csv();
            if (o.explainOn)
                art.explainText = sys.explainer()->report(
                    parseExplainMode(o.explainMode));
            // The raw writer already finished (header back-patched)
            // when the sink drained at end of run, so the file is
            // complete and safe to copy.
            art.rawTracePath = o.traceRaw;

            std::string err;
            std::string entry = writeRunBundle(o.reportDir, bm, art, err);
            if (entry.empty())
                fatal("--report-dir: %s", err.c_str());
            std::fprintf(stderr, "report: wrote bundle %s\n",
                         entry.c_str());
        }
    }
    if (!o.benchJson.empty()) {
        ConfigRow row;
        row.schemeStr = schemeStr;
        row.cpus = cpus;
        row.stats.completed = completed;
        row.stats.valid = valid;
        row.stats.cycles = sys.completionTick();
        row.stats.kernelEvents = sys.kernelEventsExecuted();
        row.wallSec = wallSec;
        writeBenchJson(o, {row});
    }
    if (!completed)
        return 3;
    return valid ? 0 : 2;
}

int
runSweepMode(const Options &o, const std::vector<std::string> &schemes,
             const std::vector<int> &cpusList)
{
    if (o.trace || !o.traceOut.empty())
        fatal("--trace/--trace-out need a single (scheme, cpus) "
              "config; narrow --scheme/--cpus");
    if (o.explainOn || !o.traceRaw.empty())
        fatal("--explain/--trace-raw need a single (scheme, cpus) "
              "config; narrow --scheme/--cpus");
    if (o.timelineEpoch > 0 || o.progress)
        fatal("--timeline-epoch/--progress need a single (scheme, "
              "cpus) config; narrow --scheme/--cpus");
    if (!o.statsPrefix.empty())
        fatal("--stats needs a single (scheme, cpus) config; narrow "
              "--scheme/--cpus");
    if (!o.statsJson.empty() && !o.metrics)
        fatal("--stats-json in a sweep requires --metrics (writes the "
              "per-scheme merged metrics document); narrow "
              "--scheme/--cpus for a raw counter dump");
    if (!o.reportDir.empty())
        fatal("--report-dir records one run bundle per invocation; "
              "narrow --scheme/--cpus to a single config");

    FILE *rpt = (o.statsJson == "-" || o.benchJson == "-") ? stderr
                                                           : stdout;

    std::vector<SweepTask> tasks;
    std::vector<ConfigRow> rows;
    for (const std::string &ss : schemes) {
        Scheme scheme = parseScheme(ss);
        for (int cpus : cpusList) {
            MachineParams mp = buildMachineParams(o, scheme, cpus);
            Workload wl = buildWorkload(o, cpus,
                                        schemeLockKind(scheme));
            const Options *op = &o;
            tasks.push_back(
                {ss + "/p" + std::to_string(cpus),
                 [mp, wl, op, cpus] {
                     System sys(mp);
                     installWorkload(sys, wl);
                     installPreemptions(sys, *op, cpus);
                     RunStats r;
                     r.completed = sys.run();
                     r.valid = wl.validate ? wl.validate(sys) : true;
                     r.cycles = sys.completionTick();
                     r.kernelEvents = sys.kernelEventsExecuted();
                     r.commits = sys.stats().sum("spec", "commits");
                     r.restarts = sys.stats().sum("spec", "restarts");
                     if (sys.metrics())
                         r.metrics = std::make_shared<MetricsSnapshot>(
                             sys.metrics()->snapshot());
                     return r;
                 }});
            ConfigRow row;
            row.schemeStr = ss;
            row.cpus = cpus;
            rows.push_back(row);
        }
    }

    // --jobs and --threads share one core budget: an unspecified jobs
    // count is divided by the per-simulation worker count.
    unsigned jobs = resolveJobs(o.jobs, o.threads);
    std::fprintf(rpt,
                 "sweep: %zu configs of workload=%s on %u host "
                 "thread(s), %u intra-sim worker(s) each\n",
                 tasks.size(), o.workload.c_str(), jobs,
                 o.threads ? o.threads : 1);
    std::vector<SweepResult> res = runSweep(tasks, jobs);

    Table t({"scheme", "cpus", "completed", "valid", "cycles",
             "commits", "restarts", "wall(s)", "Mev/s"});
    int exitCode = 0;
    for (size_t i = 0; i < res.size(); ++i) {
        rows[i].stats = res[i].stats;
        rows[i].wallSec = res[i].wallSeconds;
        const RunStats &r = res[i].stats;
        char wall[32], mevs[32];
        std::snprintf(wall, sizeof(wall), "%.3f", res[i].wallSeconds);
        std::snprintf(mevs, sizeof(mevs), "%.2f",
                      res[i].wallSeconds > 0 ?
                          static_cast<double>(r.kernelEvents) / 1e6 /
                              res[i].wallSeconds :
                          0);
        t.addRow({rows[i].schemeStr, std::to_string(rows[i].cpus),
                  r.completed ? "yes" : "NO", r.valid ? "yes" : "NO",
                  Table::num(r.cycles), Table::num(r.commits),
                  Table::num(r.restarts), wall, mevs});
        if (!r.completed)
            exitCode = 3;
        else if (!r.valid && exitCode == 0)
            exitCode = 2;
    }
    std::fprintf(rpt, "%s", t.str().c_str());
    if (o.metrics) {
        // Deterministic shard merge: one snapshot per scheme,
        // accumulated in the fixed (scheme, cpus) task order, so the
        // output is independent of host-thread completion order.
        std::vector<std::pair<std::string, MetricsSnapshot>> merged;
        for (size_t i = 0; i < res.size(); ++i) {
            if (!res[i].stats.metrics)
                continue;
            if (merged.empty() || merged.back().first != rows[i].schemeStr)
                merged.emplace_back(rows[i].schemeStr, MetricsSnapshot{});
            merged.back().second.merge(*res[i].stats.metrics);
        }
        for (const auto &[schemeStr, snap] : merged) {
            std::fprintf(rpt,
                         "\n=== scheme %s (all cpu counts merged) ===\n%s",
                         schemeStr.c_str(), snap.summary().c_str());
        }
        if (!o.statsJson.empty()) {
            std::string doc =
                "{\n  \"schema_version\": " +
                std::to_string(metricsSchemaVersion) +
                ",\n  \"meta\": " + buildMetaJson() +
                ",\n  \"schemes\": {\n";
            for (size_t i = 0; i < merged.size(); ++i) {
                doc += "  \"" + merged[i].first +
                       "\": " + merged[i].second.json() +
                       (i + 1 < merged.size() ? "," : "") + "\n";
            }
            doc += "  }\n}\n";
            writeTextArtifact(o.statsJson, doc, "stats");
        }
    }
    if (!o.benchJson.empty())
        writeBenchJson(o, rows);
    return exitCode;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *a = argv[i];
        if (parseFlag(a, "--workload", v)) o.workload = v;
        else if (parseFlag(a, "--scheme", v)) o.scheme = v;
        else if (parseFlag(a, "--protocol", v)) o.protocol = v;
        else if (parseFlag(a, "--cpus", v)) o.cpus = v;
        else if (parseFlag(a, "--jobs", v))
            o.jobs = v == "auto" ?
                         0 :
                         static_cast<unsigned>(std::atoi(v.c_str()));
        else if (parseFlag(a, "--threads", v)) {
            if (v == "auto") {
                // On a single-core host the partitioned kernel would
                // only add barrier overhead; fall back to the classic
                // single-queue kernel and say so.
                unsigned hw = defaultJobs();
                o.threads = hw > 1 ? hw : 0;
                std::fprintf(stderr,
                             "tlrsim: --threads=auto resolved to %u "
                             "(hardware concurrency %u%s)\n",
                             o.threads, hw,
                             hw > 1 ? "" :
                                      "; single core -> classic kernel");
            } else {
                o.threads =
                    static_cast<unsigned>(std::atoi(v.c_str()));
            }
        }
        else if (parseFlag(a, "--lookahead", v))
            o.lookahead = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--dir-banks", v))
            o.dirBanks = std::atoi(v.c_str());
        else if (std::strcmp(a, "--no-batched-globals") == 0)
            o.batchedGlobals = false;
        else if (std::strcmp(a, "--no-dynamic-lookahead") == 0)
            o.dynamicLookahead = false;
        else if (std::strcmp(a, "--no-snoop-filter") == 0)
            o.snoopFilter = false;
        else if (parseFlag(a, "--ops", v))
            o.ops = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--seed", v))
            o.seed = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--theta", v))
            o.theta = std::atof(v.c_str());
        else if (parseFlag(a, "--keys", v))
            o.keys = static_cast<unsigned>(std::atoi(v.c_str()));
        else if (parseFlag(a, "--partitions", v))
            o.partitions = static_cast<unsigned>(std::atoi(v.c_str()));
        else if (parseFlag(a, "--wb-lines", v))
            o.wbLines = static_cast<unsigned>(std::atoi(v.c_str()));
        else if (parseFlag(a, "--victim", v))
            o.victimEntries = static_cast<unsigned>(std::atoi(v.c_str()));
        else if (parseFlag(a, "--yield-timeout", v))
            o.yieldTimeout = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--preempt-every", v))
            o.preemptEvery = std::atoi(v.c_str());
        else if (parseFlag(a, "--preempt-quantum", v))
            o.preemptQuantum = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--max-ticks", v))
            o.maxTicks = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--stats", v)) o.statsPrefix = v;
        else if (std::strcmp(a, "--stats") == 0) o.statsPrefix = "all";
        else if (parseFlag(a, "--stats-json", v)) o.statsJson = v;
        else if (parseFlag(a, "--bench-json", v)) o.benchJson = v;
        else if (parseFlag(a, "--report-dir", v)) o.reportDir = v;
        else if (parseFlag(a, "--trace-out", v)) o.traceOut = v;
        else if (parseFlag(a, "--trace-raw", v)) o.traceRaw = v;
        else if (parseFlag(a, "--trace-filter", v)) o.traceFilter = v;
        else if (parseFlag(a, "--explain-dot", v)) {
            o.explainOn = true;
            o.explainDot = v;
        }
        else if (parseFlag(a, "--explain-json", v)) {
            o.explainOn = true;
            o.explainJson = v;
        }
        else if (parseFlag(a, "--explain", v)) {
            o.explainOn = true;
            o.explainMode = v;
        }
        else if (std::strcmp(a, "--explain") == 0) o.explainOn = true;
        else if (parseFlag(a, "--trace-ring", v))
            o.ringCapacity =
                static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 0));
        else if (std::strcmp(a, "--check-invariants") == 0)
            o.checkInvariants = true;
        else if (std::strcmp(a, "--metrics") == 0) o.metrics = true;
        else if (parseFlag(a, "--timeline-epoch", v))
            o.timelineEpoch = std::strtoull(v.c_str(), nullptr, 0);
        else if (parseFlag(a, "--timeline-out", v)) o.timelineOut = v;
        else if (std::strcmp(a, "--progress") == 0) o.progress = true;
        else if (std::strcmp(a, "--version") == 0) {
            std::printf("%s", versionString("tlrsim").c_str());
            return 0;
        }
        else if (std::strcmp(a, "--trace") == 0) o.trace = true;
        else if (std::strcmp(a, "--list") == 0) o.listWorkloads = true;
        else if (std::strcmp(a, "--help") == 0 ||
                 std::strcmp(a, "-h") == 0) {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", a);
            usage();
            return 1;
        }
    }
    if (o.listWorkloads) {
        std::printf("%s", workloadListText().c_str());
        return 0;
    }

    // stdout can carry exactly one machine document; two '-' sinks
    // would interleave into an unparseable stream.
    {
        int stdoutSinks = (o.statsJson == "-") + (o.timelineOut == "-") +
                          (o.benchJson == "-");
        if (stdoutSinks > 1) {
            std::fprintf(stderr,
                         "tlrsim: at most one of --stats-json/"
                         "--timeline-out/--bench-json may write to "
                         "stdout ('-'); got %d\n",
                         stdoutSinks);
            return 1;
        }
    }

    std::vector<std::string> schemes = splitList(o.scheme);
    std::vector<int> cpusList;
    for (const std::string &c : splitList(o.cpus))
        cpusList.push_back(std::atoi(c.c_str()));

    // fatal() throws after printing its message; a CLI should turn
    // that into a clean non-zero exit, not an abort.
    try {
        if (schemes.empty() || cpusList.empty())
            fatal("--scheme/--cpus must name at least one value");
        if (schemes.size() * cpusList.size() == 1)
            return runSingle(o, schemes[0], cpusList[0]);
        return runSweepMode(o, schemes, cpusList);
    } catch (const std::exception &) {
        return 1;
    }
}

/**
 * @file
 * tlrstat — diff two simulator stats dumps.
 *
 * Compares two --stats-json (or BENCH_*.json) files, reporting every
 * numeric key whose value changed and flagging relative deltas above a
 * threshold. Exit status makes it usable as a CI perf gate:
 *
 *   0  compared cleanly, no threshold violations
 *   1  usage / IO / parse error
 *   2  schema_version or timeline epoch_len mismatch (refuses to diff)
 *   3  at least one delta exceeded the threshold
 *
 * Usage: tlrstat [options] OLD.json NEW.json
 *   --threshold=PCT[%]   flag |delta| above PCT percent (default 20)
 *   --old-prefix=PATH    dotted path to the comparison root in OLD
 *   --new-prefix=PATH    dotted path to the comparison root in NEW
 *                        (--old-prefix also sets --new-prefix unless
 *                        the latter is given explicitly)
 *   --json               machine-readable diff document on stdout
 *                        (versioned: diffJsonSchemaVersion; one row
 *                        object per compared key incl. report-only
 *                        rows) instead of the human table; exit codes
 *                        are identical either way
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/statdiff.hh"
#include "sim/build_info.hh"
#include "sim/json.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tlrstat [--threshold=PCT[%%]] [--old-prefix=PATH]\n"
        "               [--new-prefix=PATH] [--json] OLD.json NEW.json\n");
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
parseDoc(const std::string &path, tlr::JsonValue &out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "tlrstat: cannot read %s\n", path.c_str());
        return false;
    }
    std::string err;
    if (!tlr::parseJson(text, out, err)) {
        std::fprintf(stderr, "tlrstat: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    tlr::DiffOptions opt;
    bool newPrefixSet = false;
    bool jsonOut = false;
    std::string oldPath, newPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--threshold=", 0) == 0) {
            std::string v = arg.substr(12);
            if (!v.empty() && v.back() == '%')
                v.pop_back();
            char *end = nullptr;
            double pct = std::strtod(v.c_str(), &end);
            if (v.empty() || *end != '\0' || pct < 0) {
                std::fprintf(stderr, "tlrstat: bad threshold: %s\n",
                             arg.c_str());
                return 1;
            }
            opt.thresholdPct = pct;
        } else if (arg.rfind("--old-prefix=", 0) == 0) {
            opt.oldPrefix = arg.substr(13);
            if (!newPrefixSet)
                opt.newPrefix = opt.oldPrefix;
        } else if (arg.rfind("--new-prefix=", 0) == 0) {
            opt.newPrefix = arg.substr(13);
            newPrefixSet = true;
        } else if (arg == "--json") {
            jsonOut = true;
        } else if (arg == "--version") {
            std::printf("%s", tlr::versionString("tlrstat").c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "tlrstat: unknown option: %s\n",
                         arg.c_str());
            usage();
            return 1;
        } else if (oldPath.empty()) {
            oldPath = arg;
        } else if (newPath.empty()) {
            newPath = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (oldPath.empty() || newPath.empty()) {
        usage();
        return 1;
    }

    tlr::JsonValue oldDoc, newDoc;
    if (!parseDoc(oldPath, oldDoc) || !parseDoc(newPath, newDoc))
        return 1;

    opt.oldName = oldPath;
    opt.newName = newPath;
    tlr::DiffReport rep = tlr::diffStats(oldDoc, newDoc, opt);
    std::fputs(jsonOut ? tlr::renderDiffJson(rep, opt).c_str()
                       : tlr::renderDiff(rep, opt).c_str(),
               stdout);
    if (rep.schemaMismatch || rep.timelineEpochMismatch)
        return 2;
    if (!rep.error.empty())
        return 1;
    return rep.exceeded > 0 ? 3 : 0;
}

/**
 * @file
 * Binary on-disk trace format (tlrsim --trace-raw, tlrquery input).
 *
 * Layout: a 32-byte versioned header followed by recordCount
 * TraceRecords written verbatim (64 bytes each, host endianness).
 * recordCount and finalTick are back-patched when the run finishes, so
 * a truncated file (crash mid-run) is detectable: its header count
 * stays 0 while the file holds records.
 *
 *   offset  size  field
 *        0     8  magic "TLRTRACE"
 *        8     4  version (currently 1)
 *       12     4  recordSize (sizeof(TraceRecord) == 64)
 *       16     8  recordCount
 *       24     8  finalTick (tick passed to TraceSink::finish)
 *
 * The writer is a TraceListener, so recording obeys the same
 * zero-overhead-off contract as every other trace consumer; an
 * optional TraceFilter thins the stream before it hits the disk.
 * The reader replays records through any TraceListener (explain
 * pipeline, lifecycle tracker) to reproduce online analyses offline.
 */

#ifndef TLR_EXPLAIN_RAWTRACE_HH
#define TLR_EXPLAIN_RAWTRACE_HH

#include <cstdio>
#include <functional>
#include <string>

#include "sim/build_info.hh"
#include "trace/filter.hh"
#include "trace/sink.hh"

namespace tlr
{

struct RawTraceHeader
{
    char magic[8] = {'T', 'L', 'R', 'T', 'R', 'A', 'C', 'E'};
    std::uint32_t version = rawTraceFormatVersion;
    std::uint32_t recordSize = sizeof(TraceRecord);
    std::uint64_t recordCount = 0;
    std::uint64_t finalTick = 0;
};

static_assert(sizeof(RawTraceHeader) == 32, "header layout is the ABI");

class RawTraceWriter : public TraceListener
{
  public:
    RawTraceWriter() = default;
    ~RawTraceWriter() override { close(); }
    RawTraceWriter(const RawTraceWriter &) = delete;
    RawTraceWriter &operator=(const RawTraceWriter &) = delete;

    /** @return empty string on success, else an error description. */
    std::string open(const std::string &path);

    /** Record only events matching @p f (copied; empty = everything). */
    void setFilter(const TraceFilter &f) { filter_ = f; }

    void onRecord(const TraceRecord &r) override;
    /** Back-patches the header and closes the file. */
    void finish(Tick now) override;
    void close();

    std::uint64_t written() const { return header_.recordCount; }

  private:
    std::FILE *file_ = nullptr;
    RawTraceHeader header_;
    TraceFilter filter_;
};

class RawTraceReader
{
  public:
    ~RawTraceReader() { close(); }

    /** @return empty string on success, else an error description
     *         (missing file, bad magic, version/record-size skew). */
    std::string open(const std::string &path);
    void close();

    const RawTraceHeader &header() const { return header_; }

    /** Stream every record through @p fn in file order. */
    void forEach(const std::function<void(const TraceRecord &)> &fn);

    /** Feed the whole file to a listener, then its finish() with the
     *  recorded finalTick — the offline mirror of a live run. */
    void
    replay(TraceListener &l)
    {
        forEach([&](const TraceRecord &r) { l.onRecord(r); });
        l.finish(header_.finalTick);
    }

  private:
    std::FILE *file_ = nullptr;
    RawTraceHeader header_;
};

} // namespace tlr

#endif // TLR_EXPLAIN_RAWTRACE_HH

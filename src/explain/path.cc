#include "explain/path.hh"

#include <algorithm>

#include "coherence/l1_controller.hh"

namespace tlr
{

namespace
{

/** True when [a,b) lies inside any interval of @p iv. The segment is
 *  guaranteed homogeneous: every interval endpoint is a boundary. */
bool
covered(const std::vector<std::pair<Tick, Tick>> &iv, Tick a, Tick b)
{
    for (const auto &[s, e] : iv) {
        if (s <= a && b <= e)
            return true;
    }
    return false;
}

} // namespace

void
CriticalPathAccountant::classify(OpenInstance &o)
{
    TxnInstance &t = o.inst;
    const Tick begin = t.begin, end = t.end;
    if (end <= begin)
        return;

    std::vector<std::pair<Tick, Tick>> defer, miss;
    auto clip = [&](const std::vector<Interval> &src,
                    std::vector<std::pair<Tick, Tick>> &dst) {
        for (const Interval &i : src) {
            Tick s = std::max(i.start, begin);
            Tick e = std::min(i.end, end);
            if (s < e)
                dst.emplace_back(s, e);
        }
    };
    clip(o.defer, defer);
    clip(o.miss, miss);

    std::vector<Tick> bounds{begin, end};
    for (const auto &[s, e] : defer) {
        bounds.push_back(s);
        bounds.push_back(e);
    }
    for (const auto &[s, e] : miss) {
        bounds.push_back(s);
        bounds.push_back(e);
    }
    const Tick lastRestart =
        std::min(std::max(o.lastRestartTick, begin), end);
    if (t.restarts > 0)
        bounds.push_back(lastRestart);
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
        const Tick a = bounds[i], b = bounds[i + 1];
        if (covered(defer, a, b))
            t.deferTicks += b - a;
        else if (covered(miss, a, b))
            t.missTicks += b - a;
        else if (t.restarts > 0 && b <= lastRestart)
            t.redoTicks += b - a;
        else
            t.execTicks += b - a;
    }

    // Longest single deferral → the causal-chain hop for this txn.
    for (const auto &[iv, who] : o.deferDetail) {
        Tick s = std::max(iv.start, begin);
        Tick e = std::min(iv.end, end);
        if (s >= e)
            continue;
        if (e - s > t.longestDeferSpan) {
            t.longestDeferSpan = e - s;
            t.longestDeferOwner = who.first;
            t.longestDeferLine = who.second;
            t.longestDeferTick = s;
        }
    }
}

void
CriticalPathAccountant::closeInstance(std::int16_t cpu, Tick end,
                                      std::string outcome)
{
    auto it = open_.find(cpu);
    if (it == open_.end())
        return;
    OpenInstance &o = it->second;

    // Attribute still-open wait intervals up to the close tick.
    for (auto dit = deferOpen_.begin(); dit != deferOpen_.end();) {
        if (dit->first.first == cpu) {
            o.defer.push_back({dit->second.first, end});
            o.deferDetail.push_back(
                {{dit->second.first, end},
                 {dit->second.second, dit->first.second}});
            dit = deferOpen_.erase(dit);
        } else {
            ++dit;
        }
    }
    for (auto mit = missOpen_.begin(); mit != missOpen_.end();) {
        if (mit->first.first == cpu) {
            o.miss.push_back({mit->second, end});
            mit = missOpen_.erase(mit);
        } else {
            ++mit;
        }
    }

    o.inst.end = end;
    o.inst.outcome = std::move(outcome);
    classify(o);
    byCpu_[cpu].push_back(instances_.size());
    instances_.push_back(o.inst);
    open_.erase(it);
}

void
CriticalPathAccountant::onRecord(const TraceRecord &r)
{
    switch (r.kind) {
      case TraceEvent::TxnElide: {
        if (r.a3 == 0)
            return; // re-elision inside an open instance
        closeInstance(r.cpu, r.tick, "unfinished");
        OpenInstance o;
        o.inst.serial = nextSerial_++;
        o.inst.cpu = r.cpu;
        o.inst.lock = r.addr;
        o.inst.begin = r.tick;
        open_[r.cpu] = std::move(o);
        return;
      }
      case TraceEvent::TxnRestart: {
        auto it = open_.find(r.cpu);
        if (it != open_.end()) {
            ++it->second.inst.restarts;
            it->second.lastRestartTick = r.tick;
            Timestamp winner = unpackTs(0, r.a3);
            it->second.inst.lastRestartWinner =
                winner.valid ? winner.cpu : std::int16_t{-1};
        }
        if (r.a2 != 0) {
            closeInstance(
                r.cpu, r.tick,
                std::string("fallback:") +
                    abortReasonName(static_cast<AbortReason>(r.a0)));
        }
        return;
      }
      case TraceEvent::TxnCommit:
        closeInstance(r.cpu, r.tick, "commit");
        return;
      case TraceEvent::TxnQuantumEnd:
        closeInstance(r.cpu, r.tick, "quantum-end");
        return;
      case TraceEvent::CohDefer:
      case TraceEvent::CohRelaxedDefer: {
        auto waiter = static_cast<std::int16_t>(r.a0);
        deferOpen_[{waiter, r.addr}] = {r.tick, r.cpu};
        return;
      }
      case TraceEvent::CohService: {
        auto waiter = static_cast<std::int16_t>(r.a0);
        auto dit = deferOpen_.find({waiter, r.addr});
        if (dit == deferOpen_.end())
            return;
        auto oit = open_.find(waiter);
        if (oit != open_.end()) {
            oit->second.defer.push_back({dit->second.first, r.tick});
            oit->second.deferDetail.push_back(
                {{dit->second.first, r.tick},
                 {dit->second.second, r.addr}});
        }
        deferOpen_.erase(dit);
        return;
      }
      case TraceEvent::CohMiss:
        missOpen_[{r.cpu, r.addr}] = r.tick;
        return;
      case TraceEvent::LineInstall: {
        auto mit = missOpen_.find({r.cpu, r.addr});
        if (mit == missOpen_.end())
            return;
        auto oit = open_.find(r.cpu);
        if (oit != open_.end())
            oit->second.miss.push_back({mit->second, r.tick});
        missOpen_.erase(mit);
        return;
      }
      default:
        return;
    }
}

void
CriticalPathAccountant::finish(Tick now)
{
    while (!open_.empty())
        closeInstance(open_.begin()->first, now, "unfinished");
}

const TxnInstance *
CriticalPathAccountant::instanceAt(std::int16_t cpu, Tick tick) const
{
    auto it = byCpu_.find(cpu);
    if (it == byCpu_.end())
        return nullptr;
    const std::vector<size_t> &idx = it->second;
    // Last instance with begin <= tick (instances on one cpu are
    // chronological and non-overlapping).
    auto pos = std::upper_bound(
        idx.begin(), idx.end(), tick, [this](Tick t, size_t i) {
            return t < instances_[i].begin;
        });
    if (pos == idx.begin())
        return nullptr;
    const TxnInstance &cand = instances_[*(pos - 1)];
    return (tick <= cand.end) ? &cand : nullptr;
}

} // namespace tlr

#include "explain/graph.hh"

#include <algorithm>
#include <functional>

namespace tlr
{

void
ConflictGraphBuilder::addDefer(const TraceRecord &r, bool relaxed)
{
    auto waiter = static_cast<std::int16_t>(r.a0);
    std::pair<Addr, std::int16_t> key{r.addr, waiter};
    auto it = pending_.find(key);
    if (it != pending_.end()) {
        // The same waiter re-deferred on the same line without an
        // intervening service record: close the stale edge here so
        // spans never overlap.
        edges_[it->second].end = r.tick;
        pending_.erase(it);
    }
    DeferEdge e;
    e.waiter = waiter;
    e.owner = r.cpu;
    e.line = r.addr;
    e.start = r.tick;
    e.end = r.tick;
    e.relaxed = relaxed;
    e.waiterTs = unpackTs(r.a2, r.a3);
    pending_[key] = edges_.size();
    edges_.push_back(e);

    LineContention &lc = lines_[r.addr];
    ++lc.defers;
    if (relaxed)
        ++lc.relaxedDefers;
    unsigned queue = 0;
    for (const auto &[k, unused] : pending_) {
        (void)unused;
        if (k.first == r.addr)
            ++queue;
    }
    lc.maxQueue = std::max(lc.maxQueue, queue);

    detectCycleFrom(waiter, r.cpu, r.tick);
}

void
ConflictGraphBuilder::detectCycleFrom(std::int16_t waiter,
                                      std::int16_t owner, Tick tick)
{
    // The new edge waiter → owner closes a cycle iff owner already
    // waits (transitively) on waiter through pending edges. Walk the
    // live wait-for graph; cpu counts are tiny, so a simple DFS over
    // the pending map suffices.
    std::vector<std::int16_t> path{waiter, owner};
    std::vector<std::int16_t> stack{owner};
    std::vector<bool> seen(1024, false);
    auto mark = [&](std::int16_t c) {
        size_t i = static_cast<size_t>(c) & 1023;
        bool was = seen[i];
        seen[i] = true;
        return was;
    };
    mark(waiter);
    mark(owner);
    // DFS keeping one concrete path (first-found, deterministic via
    // the ordered pending_ map).
    std::function<bool(std::int16_t)> walk = [&](std::int16_t from) {
        for (const auto &[key, idx] : pending_) {
            const DeferEdge &e = edges_[idx];
            if (e.waiter != from)
                continue;
            if (e.owner == waiter)
                return true;
            if (mark(e.owner))
                continue;
            path.push_back(e.owner);
            if (walk(e.owner))
                return true;
            path.pop_back();
        }
        return false;
    };
    if (walk(owner))
        cycles_.push_back({path, tick});
}

void
ConflictGraphBuilder::onRecord(const TraceRecord &r)
{
    switch (r.kind) {
      case TraceEvent::CohDefer:
        addDefer(r, false);
        return;
      case TraceEvent::CohRelaxedDefer:
        addDefer(r, true);
        return;
      case TraceEvent::CohService: {
        auto waiter = static_cast<std::int16_t>(r.a0);
        auto it = pending_.find({r.addr, waiter});
        if (it == pending_.end())
            return; // chain service with no prior defer record
        DeferEdge &e = edges_[it->second];
        e.end = r.tick;
        e.serviced = true;
        e.cause = static_cast<ServiceCause>(r.a1);
        lines_[r.addr].waitTicks += e.span();
        pending_.erase(it);
        return;
      }
      case TraceEvent::TxnRestart: {
        RestartEdge e;
        e.loser = r.cpu;
        Timestamp winner = unpackTs(0, r.a3);
        e.winner = winner.valid ? winner.cpu : std::int16_t{-1};
        e.line = r.addr;
        e.tick = r.tick;
        e.reason = r.a0;
        restarts_.push_back(e);
        if (r.addr != 0)
            ++lines_[r.addr].restarts;
        return;
      }
      default:
        return;
    }
}

void
ConflictGraphBuilder::finish(Tick now)
{
    for (const auto &[key, idx] : pending_) {
        (void)key;
        DeferEdge &e = edges_[idx];
        e.end = now;
        lines_[e.line].waitTicks += e.span();
    }
    pending_.clear();
}

std::vector<Addr>
ConflictGraphBuilder::convoyLines(unsigned minQueue) const
{
    std::vector<Addr> out;
    for (const auto &[addr, lc] : lines_) {
        if (lc.maxQueue >= minQueue)
            out.push_back(addr);
    }
    return out;
}

} // namespace tlr

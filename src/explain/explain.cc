#include "explain/explain.hh"

#include <algorithm>
#include <map>
#include <set>

#include "sim/logging.hh"

namespace tlr
{

namespace
{

constexpr unsigned maxChainHops = 8;

std::string
fmtU(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

std::vector<ChainLink>
Explainer::chainFor(const TxnInstance &t) const
{
    std::vector<ChainLink> out;
    std::set<std::pair<std::int16_t, std::uint64_t>> visited;
    const TxnInstance *cur = &t;
    while (cur && out.size() < maxChainHops) {
        if (!visited.insert({cur->cpu, cur->serial}).second)
            break; // wait cycle: stop rather than loop forever
        if (cur->longestDeferSpan == 0 || cur->longestDeferOwner < 0)
            break;
        const TxnInstance *owner = path_.instanceAt(
            cur->longestDeferOwner, cur->longestDeferTick);
        ChainLink link;
        link.waiter = cur->name();
        link.owner = owner ? owner->name()
                           : "cpu" + std::to_string(cur->longestDeferOwner);
        link.ownerCpu = cur->longestDeferOwner;
        link.line = cur->longestDeferLine;
        link.waitTicks = cur->longestDeferSpan;
        out.push_back(link);
        cur = owner;
    }
    return out;
}

unsigned
Explainer::maxChainDepth() const
{
    unsigned best = 0;
    for (const TxnInstance &t : path_.instances())
        best = std::max(best,
                        static_cast<unsigned>(chainFor(t).size()));
    return best;
}

std::vector<const TxnInstance *>
Explainer::ranked() const
{
    std::vector<const TxnInstance *> v;
    for (const TxnInstance &t : path_.instances())
        v.push_back(&t);
    std::sort(v.begin(), v.end(),
              [](const TxnInstance *a, const TxnInstance *b) {
                  if (a->delay() != b->delay())
                      return a->delay() > b->delay();
                  return a->serial < b->serial;
              });
    return v;
}

std::string
Explainer::report(ExplainMode mode) const
{
    std::string s = "=== causal conflict explainer ===\n";
    std::uint64_t commits = 0, fallbacks = 0, restarts = 0;
    for (const TxnInstance &t : path_.instances()) {
        restarts += t.restarts;
        if (t.outcome == "commit")
            ++commits;
        else if (t.outcome.rfind("fallback:", 0) == 0)
            ++fallbacks;
    }
    std::uint64_t serviced = 0;
    for (const DeferEdge &e : graph_.edges())
        serviced += e.serviced ? 1 : 0;
    s += strfmt("instances=%zu commits=%llu fallbacks=%llu "
                "restarts=%llu\n",
                path_.instances().size(),
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(fallbacks),
                static_cast<unsigned long long>(restarts));
    s += strfmt("defer-edges=%zu (serviced=%llu) restart-edges=%zu "
                "wait-cycles=%zu convoy-lines=%zu\n",
                graph_.edges().size(),
                static_cast<unsigned long long>(serviced),
                graph_.restartEdges().size(), graph_.cycles().size(),
                graph_.convoyLines().size());
    s += strfmt("max causal chain depth: %u\n", maxChainDepth());

    if (mode == ExplainMode::Lock) {
        s += "\nper-lock/line contention (by total wait):\n";
        std::vector<std::pair<Addr, LineContention>> rows(
            graph_.lines().begin(), graph_.lines().end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second.waitTicks != b.second.waitTicks)
                          return a.second.waitTicks > b.second.waitTicks;
                      return a.first < b.first;
                  });
        unsigned n = 0;
        for (const auto &[addr, lc] : rows) {
            if (++n > topK_)
                break;
            s += strfmt("  line %#llx: defers=%llu (relaxed=%llu) "
                        "restarts=%llu wait=%llu ticks max-queue=%u\n",
                        static_cast<unsigned long long>(addr),
                        static_cast<unsigned long long>(lc.defers),
                        static_cast<unsigned long long>(
                            lc.relaxedDefers),
                        static_cast<unsigned long long>(lc.restarts),
                        static_cast<unsigned long long>(lc.waitTicks),
                        lc.maxQueue);
        }
        return s;
    }

    if (mode == ExplainMode::Cpu) {
        s += "\nper-cpu critical-path decomposition:\n";
        std::map<std::int16_t, TxnInstance> agg;
        std::map<std::int16_t, unsigned> count;
        for (const TxnInstance &t : path_.instances()) {
            TxnInstance &a = agg[t.cpu];
            a.execTicks += t.execTicks;
            a.deferTicks += t.deferTicks;
            a.missTicks += t.missTicks;
            a.redoTicks += t.redoTicks;
            a.restarts += t.restarts;
            ++count[t.cpu];
        }
        for (const auto &[cpu, a] : agg) {
            s += strfmt("  cpu%-2d: txns=%u exec=%llu defer=%llu "
                        "miss=%llu redo=%llu restarts=%u\n",
                        cpu, count[cpu],
                        static_cast<unsigned long long>(a.execTicks),
                        static_cast<unsigned long long>(a.deferTicks),
                        static_cast<unsigned long long>(a.missTicks),
                        static_cast<unsigned long long>(a.redoTicks),
                        a.restarts);
        }
        return s;
    }

    s += strfmt("\ntop %u delayed transactions:\n", topK_);
    std::vector<const TxnInstance *> v = ranked();
    unsigned n = 0;
    for (const TxnInstance *t : v) {
        if (t->delay() == 0)
            break;
        if (++n > topK_)
            break;
        s += strfmt("#%u %s lock=%#llx: total %llu ticks | exec %llu "
                    "defer %llu miss %llu redo %llu | restarts %u | %s\n",
                    n, t->name().c_str(),
                    static_cast<unsigned long long>(t->lock),
                    static_cast<unsigned long long>(t->total()),
                    static_cast<unsigned long long>(t->execTicks),
                    static_cast<unsigned long long>(t->deferTicks),
                    static_cast<unsigned long long>(t->missTicks),
                    static_cast<unsigned long long>(t->redoTicks),
                    t->restarts, t->outcome.c_str());
        if (t->restarts > 0 && t->lastRestartWinner >= 0) {
            s += strfmt("   restarted %ux, last lost to cpu%d\n",
                        t->restarts, t->lastRestartWinner);
        }
        std::vector<ChainLink> chain = chainFor(*t);
        std::string indent = "   ";
        for (const ChainLink &l : chain) {
            s += strfmt("%s%s waited %llu ticks for line %#llx held "
                        "by %s\n",
                        indent.c_str(), l.waiter.c_str(),
                        static_cast<unsigned long long>(l.waitTicks),
                        static_cast<unsigned long long>(l.line),
                        l.owner.c_str());
            indent += "  ";
        }
        if (chain.size() >= 2)
            s += strfmt("   chain depth %zu\n", chain.size());
    }
    if (n == 0)
        s += "  (no delayed transactions)\n";
    return s;
}

std::string
Explainer::dot() const
{
    // Aggregate defer edges between transaction instances (or bare
    // cpus when a side was outside any transaction).
    std::map<std::pair<std::string, std::string>,
             std::pair<Tick, std::uint64_t>>
        agg; // (waiter, owner) -> (ticks, count)
    for (const DeferEdge &e : graph_.edges()) {
        const TxnInstance *w = path_.instanceAt(e.waiter, e.start);
        const TxnInstance *o = path_.instanceAt(e.owner, e.start);
        std::string wn =
            w ? w->name() : "cpu" + std::to_string(e.waiter);
        std::string on =
            o ? o->name() : "cpu" + std::to_string(e.owner);
        auto &slot = agg[{wn, on}];
        slot.first += e.span();
        slot.second += 1;
    }
    std::string s = "digraph conflicts {\n"
                    "  // waiter -> owner; label: deferrals, wait\n"
                    "  rankdir=LR;\n  node [shape=box];\n";
    for (const auto &[key, val] : agg) {
        s += strfmt("  \"%s\" -> \"%s\" [label=\"%llux, %llut\"];\n",
                    key.first.c_str(), key.second.c_str(),
                    static_cast<unsigned long long>(val.second),
                    static_cast<unsigned long long>(val.first));
    }
    s += "}\n";
    return s;
}

std::string
Explainer::json() const
{
    std::string s = "{\n";
    s += strfmt("  \"final_tick\": %llu,\n",
                static_cast<unsigned long long>(finalTick_));
    s += strfmt("  \"max_chain_depth\": %u,\n", maxChainDepth());

    s += "  \"instances\": [\n";
    const auto &inst = path_.instances();
    for (size_t i = 0; i < inst.size(); ++i) {
        const TxnInstance &t = inst[i];
        s += strfmt("    {\"name\": \"%s\", \"cpu\": %d, \"lock\": "
                    "%llu, \"begin\": %llu, \"end\": %llu, \"exec\": "
                    "%llu, \"defer\": %llu, \"miss\": %llu, \"redo\": "
                    "%llu, \"restarts\": %u, \"outcome\": \"%s\"}%s\n",
                    t.name().c_str(), t.cpu,
                    static_cast<unsigned long long>(t.lock),
                    static_cast<unsigned long long>(t.begin),
                    static_cast<unsigned long long>(t.end),
                    static_cast<unsigned long long>(t.execTicks),
                    static_cast<unsigned long long>(t.deferTicks),
                    static_cast<unsigned long long>(t.missTicks),
                    static_cast<unsigned long long>(t.redoTicks),
                    t.restarts, t.outcome.c_str(),
                    i + 1 < inst.size() ? "," : "");
    }
    s += "  ],\n";

    s += "  \"defer_edges\": [\n";
    const auto &edges = graph_.edges();
    for (size_t i = 0; i < edges.size(); ++i) {
        const DeferEdge &e = edges[i];
        s += strfmt("    {\"waiter\": %d, \"owner\": %d, \"line\": "
                    "%llu, \"start\": %llu, \"end\": %llu, "
                    "\"serviced\": %s, \"relaxed\": %s, \"cause\": "
                    "\"%s\"}%s\n",
                    e.waiter, e.owner,
                    static_cast<unsigned long long>(e.line),
                    static_cast<unsigned long long>(e.start),
                    static_cast<unsigned long long>(e.end),
                    e.serviced ? "true" : "false",
                    e.relaxed ? "true" : "false",
                    e.serviced ? serviceCauseName(e.cause) : "none",
                    i + 1 < edges.size() ? "," : "");
    }
    s += "  ],\n";

    s += "  \"restart_edges\": [\n";
    const auto &re = graph_.restartEdges();
    for (size_t i = 0; i < re.size(); ++i) {
        s += strfmt("    {\"loser\": %d, \"winner\": %d, \"line\": "
                    "%llu, \"tick\": %llu}%s\n",
                    re[i].loser, re[i].winner,
                    static_cast<unsigned long long>(re[i].line),
                    static_cast<unsigned long long>(re[i].tick),
                    i + 1 < re.size() ? "," : "");
    }
    s += "  ],\n";

    s += "  \"cycles\": [\n";
    const auto &cy = graph_.cycles();
    for (size_t i = 0; i < cy.size(); ++i) {
        s += "    {\"tick\": " + fmtU(cy[i].tick) + ", \"cpus\": [";
        for (size_t j = 0; j < cy[i].cpus.size(); ++j)
            s += (j ? ", " : "") + std::to_string(cy[i].cpus[j]);
        s += "]}";
        s += (i + 1 < cy.size() ? ",\n" : "\n");
    }
    s += "  ]\n}\n";
    return s;
}

std::vector<FlowArrow>
Explainer::flowArrows(size_t maxArrows) const
{
    // Longest serviced deferrals first; cap deterministically (ties
    // break on start tick, then waiter id).
    std::vector<const DeferEdge *> v;
    for (const DeferEdge &e : graph_.edges()) {
        if (e.serviced && e.span() > 0)
            v.push_back(&e);
    }
    std::sort(v.begin(), v.end(),
              [](const DeferEdge *a, const DeferEdge *b) {
                  if (a->span() != b->span())
                      return a->span() > b->span();
                  if (a->start != b->start)
                      return a->start < b->start;
                  return a->waiter < b->waiter;
              });
    if (v.size() > maxArrows)
        v.resize(maxArrows);
    std::vector<FlowArrow> out;
    for (const DeferEdge *e : v) {
        FlowArrow f;
        f.fromCpu = e->owner;
        f.fromTick = e->start;
        f.toCpu = e->waiter;
        f.toTick = e->end;
        f.name = strfmt("defer line=%#llx",
                        static_cast<unsigned long long>(e->line));
        out.push_back(f);
    }
    return out;
}

} // namespace tlr

#include "explain/rawtrace.hh"

#include <cstring>

namespace tlr
{

std::string
RawTraceWriter::open(const std::string &path)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        return "cannot open '" + path + "' for writing";
    header_ = RawTraceHeader{};
    if (std::fwrite(&header_, sizeof(header_), 1, file_) != 1) {
        close();
        return "cannot write header to '" + path + "'";
    }
    return "";
}

void
RawTraceWriter::onRecord(const TraceRecord &r)
{
    if (!file_)
        return;
    if (!filter_.empty() && !filter_.matches(r))
        return;
    if (std::fwrite(&r, sizeof(r), 1, file_) == 1)
        ++header_.recordCount;
}

void
RawTraceWriter::finish(Tick now)
{
    if (!file_)
        return;
    header_.finalTick = now;
    std::fseek(file_, 0, SEEK_SET);
    std::fwrite(&header_, sizeof(header_), 1, file_);
    std::fflush(file_);
    // Leave the file open so a second finish() (defensive) still has
    // somewhere to patch; close() runs from the destructor.
}

void
RawTraceWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

std::string
RawTraceReader::open(const std::string &path)
{
    close();
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return "cannot open '" + path + "'";
    if (std::fread(&header_, sizeof(header_), 1, file_) != 1) {
        close();
        return "'" + path + "' is too short for a trace header";
    }
    static const char magic[8] = {'T', 'L', 'R', 'T', 'R', 'A', 'C', 'E'};
    if (std::memcmp(header_.magic, magic, sizeof(magic)) != 0) {
        close();
        return "'" + path + "' is not a TLR raw trace (bad magic)";
    }
    if (header_.version != 1) {
        close();
        return "'" + path + "' has unsupported trace version " +
               std::to_string(header_.version);
    }
    if (header_.recordSize != sizeof(TraceRecord)) {
        close();
        return "'" + path + "' was written with record size " +
               std::to_string(header_.recordSize) + ", expected " +
               std::to_string(sizeof(TraceRecord));
    }
    return "";
}

void
RawTraceReader::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
RawTraceReader::forEach(const std::function<void(const TraceRecord &)> &fn)
{
    if (!file_)
        return;
    std::fseek(file_, sizeof(RawTraceHeader), SEEK_SET);
    TraceRecord r;
    std::uint64_t n = 0;
    while (n < header_.recordCount &&
           std::fread(&r, sizeof(r), 1, file_) == 1) {
        fn(r);
        ++n;
    }
}

} // namespace tlr

/**
 * @file
 * Per-transaction critical-path accountant.
 *
 * Reconstructs every critical-section instance from the trace stream
 * (like the lifecycle tracker) and decomposes its wall-clock ticks
 * into four exclusive buckets, classified with the priority
 * defer-wait > coherence-miss > restart-redo > exec:
 *
 *   - defer : ticks this cpu's own request sat deferred behind a
 *             transactional owner (paper Section 3.1)
 *   - miss  : ticks waiting for line data outside any deferral
 *   - redo  : remaining ticks before the last restart — work that was
 *             thrown away and re-executed
 *   - exec  : everything else (useful forward progress)
 *
 * Instances get a global serial number in elision order, so reports
 * can name them ("T17@cpu3") consistently across online and offline
 * analysis. Closed instances are kept per cpu in chronological order
 * for causal-chain resolution: given (cpu, tick), instanceAt() finds
 * the transaction that held the resource at that moment.
 */

#ifndef TLR_EXPLAIN_PATH_HH
#define TLR_EXPLAIN_PATH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/sink.hh"

namespace tlr
{

/** One closed critical-section instance with its tick decomposition. */
struct TxnInstance
{
    std::uint64_t serial = 0; ///< global elision-order id
    std::int16_t cpu = -1;
    Addr lock = 0;
    Tick begin = 0;
    Tick end = 0;
    unsigned restarts = 0;
    std::string outcome; ///< "commit" | "fallback:..." | "quantum-end"
                         ///< | "unfinished"

    /** @{ tick decomposition (sums to end - begin) */
    Tick execTicks = 0;
    Tick deferTicks = 0;
    Tick missTicks = 0;
    Tick redoTicks = 0;
    /** @} */

    /** Longest single deferral suffered, for causal-chain walking. */
    Tick longestDeferSpan = 0;
    std::int16_t longestDeferOwner = -1;
    Addr longestDeferLine = 0;
    Tick longestDeferTick = 0; ///< tick that deferral started

    /** Winner cpu of the last conflict-caused restart, -1 if none. */
    std::int16_t lastRestartWinner = -1;

    Tick total() const { return end > begin ? end - begin : 0; }
    Tick delay() const { return deferTicks + missTicks + redoTicks; }
    std::string
    name() const
    {
        // Built with append, not operator+: gcc 12's -Wrestrict
        // false-positives on chained const char* + std::string&&.
        std::string s = "T";
        s += std::to_string(serial);
        s += "@cpu";
        s += std::to_string(cpu);
        return s;
    }
};

class CriticalPathAccountant : public TraceListener
{
  public:
    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

    /** All closed instances, global serial order. */
    const std::vector<TxnInstance> &instances() const
    {
        return instances_;
    }

    /** The instance live on @p cpu at @p tick, or null. */
    const TxnInstance *instanceAt(std::int16_t cpu, Tick tick) const;

  private:
    struct Interval
    {
        Tick start = 0;
        Tick end = 0;
    };

    struct OpenInstance
    {
        TxnInstance inst;
        std::vector<Interval> defer;
        std::vector<Interval> miss;
        Tick lastRestartTick = 0;
        /** Longest defer interval tracking. */
        std::vector<std::pair<Interval, std::pair<std::int16_t, Addr>>>
            deferDetail; ///< interval → (owner, line)
    };

    void closeInstance(std::int16_t cpu, Tick end, std::string outcome);
    static void classify(OpenInstance &o);

    std::map<std::int16_t, OpenInstance> open_;
    /** (cpu) → open defer interval start/owner keyed by line. */
    std::map<std::pair<std::int16_t, Addr>,
             std::pair<Tick, std::int16_t>>
        deferOpen_;
    /** (cpu, line) → miss start tick. */
    std::map<std::pair<std::int16_t, Addr>, Tick> missOpen_;

    std::vector<TxnInstance> instances_;
    /** Per-cpu indices into instances_, chronological. */
    std::map<std::int16_t, std::vector<size_t>> byCpu_;
    std::uint64_t nextSerial_ = 0;
};

} // namespace tlr

#endif // TLR_EXPLAIN_PATH_HH

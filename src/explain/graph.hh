/**
 * @file
 * Online wait-for/defer graph builder.
 *
 * Consumes the structured trace stream and materializes the paper's
 * implicit conflict structure: every deferral (paper Section 3.1)
 * becomes an edge  waiter-cpu → owner-cpu  carrying the contended
 * line, the waiter's timestamp and the tick span from deferral to
 * service; every conflict-caused restart becomes a loser → winner
 * edge. On top of the live edge set the builder detects the two
 * pathologies the relaxed-timestamp path (Section 3.2) is supposed to
 * avoid: wait cycles (A defers behind B while B defers behind A,
 * possibly through intermediaries) and convoys (many simultaneous
 * waiters parked on one line).
 */

#ifndef TLR_EXPLAIN_GRAPH_HH
#define TLR_EXPLAIN_GRAPH_HH

#include <cstdint>
#include <map>
#include <vector>

#include "trace/sink.hh"

namespace tlr
{

/** One deferral: @c waiter parked behind @c owner on @c line. */
struct DeferEdge
{
    std::int16_t waiter = -1;
    std::int16_t owner = -1;
    Addr line = 0;
    Tick start = 0;    ///< tick the request was deferred
    Tick end = 0;      ///< service tick, or stream end if never
    bool serviced = false;
    bool relaxed = false; ///< via the Section 3.2 relaxation
    ServiceCause cause = ServiceCause::Chain;
    Timestamp waiterTs;

    Tick span() const { return end > start ? end - start : 0; }
};

/** One conflict loss: @c loser restarted because of @c winner. */
struct RestartEdge
{
    std::int16_t loser = -1;
    std::int16_t winner = -1; ///< -1 when the trace had no contender
    Addr line = 0;
    Tick tick = 0;
    std::uint64_t reason = 0; ///< AbortReason
};

/** A wait cycle observed among concurrently-pending deferrals. */
struct CycleHit
{
    std::vector<std::int16_t> cpus; ///< cycle path, waiter order
    Tick tick = 0;                  ///< tick the closing edge appeared
};

/** Per-line contention aggregate. */
struct LineContention
{
    std::uint64_t defers = 0;
    std::uint64_t relaxedDefers = 0;
    std::uint64_t restarts = 0;
    Tick waitTicks = 0;       ///< sum of completed defer spans
    unsigned maxQueue = 0;    ///< max simultaneous waiters (convoy)
};

class ConflictGraphBuilder : public TraceListener
{
  public:
    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

    const std::vector<DeferEdge> &edges() const { return edges_; }
    const std::vector<RestartEdge> &restartEdges() const
    {
        return restarts_;
    }
    const std::vector<CycleHit> &cycles() const { return cycles_; }
    const std::map<Addr, LineContention> &lines() const { return lines_; }

    /** Lines whose waiter queue ever held @p minQueue+ cpus at once. */
    std::vector<Addr> convoyLines(unsigned minQueue = 2) const;

  private:
    void addDefer(const TraceRecord &r, bool relaxed);
    void detectCycleFrom(std::int16_t waiter, std::int16_t owner,
                         Tick tick);

    std::vector<DeferEdge> edges_;
    std::vector<RestartEdge> restarts_;
    std::vector<CycleHit> cycles_;
    std::map<Addr, LineContention> lines_;
    /** (line, waiter) → index of the open edge in edges_. */
    std::map<std::pair<Addr, std::int16_t>, size_t> pending_;
};

} // namespace tlr

#endif // TLR_EXPLAIN_GRAPH_HH

/**
 * @file
 * Causal conflict explainer: the facade over the wait-for graph and
 * the critical-path accountant.
 *
 * One TraceListener that feeds both analyses, then renders:
 *
 *   - report(mode)   human-readable text (tlrsim --explain[=mode]):
 *                    top-K most-delayed transactions with their causal
 *                    chains, per-lock contention, or per-cpu time
 *                    decomposition
 *   - dot()          the aggregated conflict graph in Graphviz DOT
 *   - json()         everything machine-readable
 *   - flowArrows()   deferral arrows for the Perfetto export
 *
 * A causal chain follows each transaction's longest deferral to the
 * owner transaction live at that tick, then that owner's own longest
 * deferral, and so on — "T17@cpu3 waited on T9@cpu1, which itself
 * waited on T2@cpu0". Chain depth ≥ 2 is the signature of transitive
 * blocking (the structure behind convoys and the paper's Figure 6
 * deadlock scenario).
 *
 * Zero-overhead-off: like the metrics collector, the explainer only
 * exists when MachineParams::explain is set; nothing is armed
 * otherwise and simulated cycles are untouched either way.
 */

#ifndef TLR_EXPLAIN_EXPLAIN_HH
#define TLR_EXPLAIN_EXPLAIN_HH

#include <string>
#include <vector>

#include "explain/graph.hh"
#include "explain/path.hh"
#include "trace/lifecycle.hh"

namespace tlr
{

enum class ExplainMode
{
    Txn,  ///< top-K delayed transactions with causal chains (default)
    Lock, ///< per-line contention ranking
    Cpu,  ///< per-cpu time decomposition
};

/** One hop of a causal chain: @c waiter waited on @c owner. */
struct ChainLink
{
    std::string waiter; ///< "T17@cpu3"
    std::string owner;  ///< "T9@cpu1" (or "cpu1" outside any txn)
    std::int16_t ownerCpu = -1;
    Addr line = 0;
    Tick waitTicks = 0;
};

class Explainer : public TraceListener
{
  public:
    explicit Explainer(unsigned topK = 10) : topK_(topK) {}

    void
    onRecord(const TraceRecord &r) override
    {
        graph_.onRecord(r);
        path_.onRecord(r);
    }

    void
    finish(Tick now) override
    {
        graph_.finish(now);
        path_.finish(now);
        finalTick_ = now;
    }

    std::string report(ExplainMode mode = ExplainMode::Txn) const;
    std::string dot() const;
    std::string json() const;
    std::vector<FlowArrow> flowArrows(size_t maxArrows = 256) const;

    /** Causal chain for @p t (first link = t's own wait). */
    std::vector<ChainLink> chainFor(const TxnInstance &t) const;
    /** Deepest chain over all closed instances. */
    unsigned maxChainDepth() const;

    const ConflictGraphBuilder &graph() const { return graph_; }
    const CriticalPathAccountant &paths() const { return path_; }

  private:
    std::vector<const TxnInstance *> ranked() const;

    ConflictGraphBuilder graph_;
    CriticalPathAccountant path_;
    unsigned topK_;
    Tick finalTick_ = 0;
};

} // namespace tlr

#endif // TLR_EXPLAIN_EXPLAIN_HH

#include "cpu/isa.hh"

#include "sim/logging.hh"

namespace tlr
{

namespace
{

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Li: return "li";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Addi: return "addi";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Slt: return "slt";
      case Opcode::Seq: return "seq";
      case Opcode::Andi: return "andi";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Ll: return "ll";
      case Opcode::Sc: return "sc";
      case Opcode::Amoswap: return "amoswap";
      case Opcode::Amocas: return "amocas";
      case Opcode::Amoadd: return "amoadd";
      case Opcode::Rnd: return "rnd";
      case Opcode::Delay: return "delay";
      case Opcode::Io: return "io";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    return "???";
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    return strfmt("%-5s rd=r%d rs1=r%d rs2=r%d imm=%lld", mnemonic(inst.op),
                  inst.rd, inst.rs1, inst.rs2,
                  static_cast<long long>(inst.imm));
}

} // namespace tlr

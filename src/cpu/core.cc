#include "cpu/core.hh"

#include "sim/logging.hh"

namespace tlr
{

Core::Core(EventQueue &eq, StatSet &stats, CpuId id, Rng rng)
    : eq_(eq), stats_(stats), id_(id), rng_(rng),
      instRetired_(stats.counter("core" + std::to_string(id), "instRetired")),
      busyCycles_(stats.counter("core" + std::to_string(id), "busyCycles")),
      delayCycles_(stats.counter("core" + std::to_string(id), "delayCycles")),
      lockCycles_(stats.counter("core" + std::to_string(id), "lockCycles")),
      dataStallCycles_(
          stats.counter("core" + std::to_string(id), "dataStallCycles")),
      haltTick_(stats.counter("core" + std::to_string(id), "haltTick"))
{
}

void
Core::start(Tick when)
{
    if (!prog_ || !port_)
        fatal("core %d started without program or port", id_);
    state_ = State::Running;
    Tick at = when < eq_.now() ? eq_.now() : when;
    scheduleTick(at - eq_.now());
}

void
Core::scheduleTick(Tick delta)
{
    const std::uint64_t myGen = gen_;
    eq_.scheduleIn(delta,
                   [this, myGen] {
                       if (myGen == gen_ && state_ == State::Running)
                           tick();
                   },
                   EventPrio::CoreTick);
}

void
Core::tick()
{
    if (pc_ < 0 || pc_ >= prog_->size())
        panic("core %d pc %d out of range", id_, pc_);
    execute(prog_->at(pc_));
}

void
Core::execute(const Instruction &inst)
{
    auto rv = [this](Reg r) { return r == 0 ? 0 : regs_[r]; };
    auto wr = [this](Reg r, std::uint64_t v) {
        if (r != 0)
            regs_[r] = v;
    };

    ++instRetired_;

    if (inst.isMem()) {
        issueMem(inst);
        return;
    }

    ++busyCycles_;
    Tick extra = 0;
    int next = pc_ + 1;

    switch (inst.op) {
      case Opcode::Li: wr(inst.rd, static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::Mov: wr(inst.rd, rv(inst.rs1)); break;
      case Opcode::Add: wr(inst.rd, rv(inst.rs1) + rv(inst.rs2)); break;
      case Opcode::Sub: wr(inst.rd, rv(inst.rs1) - rv(inst.rs2)); break;
      case Opcode::Mul: wr(inst.rd, rv(inst.rs1) * rv(inst.rs2)); break;
      case Opcode::And: wr(inst.rd, rv(inst.rs1) & rv(inst.rs2)); break;
      case Opcode::Or: wr(inst.rd, rv(inst.rs1) | rv(inst.rs2)); break;
      case Opcode::Xor: wr(inst.rd, rv(inst.rs1) ^ rv(inst.rs2)); break;
      case Opcode::Addi:
        wr(inst.rd, rv(inst.rs1) + static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::Slli: wr(inst.rd, rv(inst.rs1) << inst.imm); break;
      case Opcode::Srli: wr(inst.rd, rv(inst.rs1) >> inst.imm); break;
      case Opcode::Andi:
        wr(inst.rd, rv(inst.rs1) & static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::Slt:
        wr(inst.rd, static_cast<std::int64_t>(rv(inst.rs1)) <
                            static_cast<std::int64_t>(rv(inst.rs2))
                        ? 1
                        : 0);
        break;
      case Opcode::Seq:
        wr(inst.rd, rv(inst.rs1) == rv(inst.rs2) ? 1 : 0);
        break;
      case Opcode::Beq:
        if (rv(inst.rs1) == rv(inst.rs2))
            next = static_cast<int>(inst.imm);
        break;
      case Opcode::Bne:
        if (rv(inst.rs1) != rv(inst.rs2))
            next = static_cast<int>(inst.imm);
        break;
      case Opcode::Blt:
        if (static_cast<std::int64_t>(rv(inst.rs1)) <
            static_cast<std::int64_t>(rv(inst.rs2)))
            next = static_cast<int>(inst.imm);
        break;
      case Opcode::Bge:
        if (static_cast<std::int64_t>(rv(inst.rs1)) >=
            static_cast<std::int64_t>(rv(inst.rs2)))
            next = static_cast<int>(inst.imm);
        break;
      case Opcode::Jmp: next = static_cast<int>(inst.imm); break;
      case Opcode::Rnd: wr(inst.rd, rng_.below(rv(inst.rs1))); break;
      case Opcode::Delay:
        extra = rv(inst.rs1);
        delayCycles_ += extra;
        break;
      case Opcode::Io: {
        const std::uint64_t genBefore = gen_;
        port_->io(id_);
        // The speculation engine may have squashed and restarted us
        // (unbufferable op inside a region): the checkpoint restore
        // bumped gen_ and rescheduled execution, so this instruction
        // must not commit its fall-through.
        if (gen_ != genBefore)
            return;
        break;
      }
      case Opcode::Nop: break;
      case Opcode::Halt:
        state_ = State::Halted;
        haltTick_ = eq_.now();
        if (onHalt_)
            onHalt_(id_);
        return;
      default:
        panic("core %d: unhandled opcode in %s", id_,
              disassemble(inst).c_str());
    }

    pc_ = next;
    scheduleTick(1 + extra);
}

void
Core::issueMem(const Instruction &inst)
{
    auto rv = [this](Reg r) { return r == 0 ? 0 : regs_[r]; };
    Addr addr = rv(inst.rs1) + static_cast<std::uint64_t>(inst.imm);
    if (addr & 7)
        panic("core %d: unaligned access %#llx at pc %d", id_,
              static_cast<unsigned long long>(addr), pc_);

    CoreMemOp op;
    switch (inst.op) {
      case Opcode::Ld: op.type = CoreMemOp::Type::Load; break;
      case Opcode::Ll: op.type = CoreMemOp::Type::LoadLinked; break;
      case Opcode::St: op.type = CoreMemOp::Type::Store; break;
      case Opcode::Sc: op.type = CoreMemOp::Type::StoreCond; break;
      case Opcode::Amoswap:
        op.type = CoreMemOp::Type::AtomicSwap;
        break;
      case Opcode::Amocas:
        op.type = CoreMemOp::Type::AtomicCas;
        op.expected = rv(inst.rd);
        break;
      case Opcode::Amoadd:
        op.type = CoreMemOp::Type::AtomicAdd;
        break;
      default: panic("not a memory opcode");
    }
    op.addr = addr;
    op.data = rv(inst.rs2);
    op.pc = pc_;
    op.gen = gen_;

    DTRACE(eq_.now(), "Core", "cpu%d pc=%d %s addr=%#llx data=%llu", id_,
           pc_, disassemble(inst).c_str(),
           static_cast<unsigned long long>(addr),
           static_cast<unsigned long long>(op.data));
    state_ = State::WaitMem;
    waitStart_ = eq_.now();
    waitAddr_ = addr;
    pendingRd_ = inst.rd;
    pendingIsSc_ = inst.op == Opcode::Sc || inst.isAtomic();
    pendingIsLoad_ = inst.isLoad();

    port_->request(op);
}

void
Core::memResponse(const MemResponse &resp)
{
    if (resp.gen != gen_ || state_ != State::WaitMem)
        return; // stale: this wait was squashed by a restart
    DTRACE(eq_.now(), "Core", "cpu%d pc=%d resp value=%llu", id_, pc_,
           static_cast<unsigned long long>(resp.value));
    accountStall(eq_.now() - waitStart_, waitAddr_);
    if (pendingIsLoad_ || pendingIsSc_)
        setReg(pendingRd_, resp.value);
    state_ = State::Running;
    ++pc_;
    if (pendingSuspend_ > 0) {
        Tick d = pendingSuspend_;
        pendingSuspend_ = 0;
        suspend(d);
        return;
    }
    scheduleTick(1);
}

void
Core::accountStall(Tick cycles, Addr addr)
{
    if (cycles == 0)
        cycles = 1;
    if (isLockAddr_ && isLockAddr_(addr))
        lockCycles_ += cycles;
    else
        dataStallCycles_ += cycles;
}

void
Core::suspend(Tick duration)
{
    if (state_ == State::Halted)
        return;
    if (state_ == State::WaitMem) {
        // The in-flight operation may already have taken effect at
        // the memory system (a store or SC is not replayable), so the
        // preemption takes effect at the instruction boundary.
        pendingSuspend_ = duration;
        return;
    }
    ++gen_; // squash in-flight waits and pending ticks
    state_ = State::Idle;
    if (!preemptions_)
        preemptions_ =
            &stats_.counter("core" + std::to_string(id_), "preemptions");
    ++*preemptions_;
    eq_.scheduleIn(duration, [this, myGen = gen_] {
        if (myGen != gen_ || state_ != State::Idle)
            return;
        state_ = State::Running;
        scheduleTick(1);
    });
}

Checkpoint
Core::takeCheckpoint() const
{
    Checkpoint cp;
    cp.regs = regs_;
    cp.pc = pc_;
    return cp;
}

void
Core::restoreCheckpoint(const Checkpoint &cp)
{
    regs_ = cp.regs;
    pc_ = cp.pc;
    ++gen_; // squash in-flight waits and stale tick events
    state_ = State::Running;
    scheduleTick(1);
}

} // namespace tlr

/**
 * @file
 * In-order blocking core model.
 *
 * Executes one instruction per cycle; memory operations block until
 * the memory port responds. The core supports register checkpointing
 * and restart, which the SLE/TLR engine uses for misspeculation
 * recovery. Stall cycles are attributed to "lock" or "data" buckets
 * using a harness-installed address classifier, reproducing the
 * paper's Figure 11 execution-time breakdown.
 */

#ifndef TLR_CPU_CORE_HH
#define TLR_CPU_CORE_HH

#include <array>
#include <functional>

#include "cpu/mem_port.hh"
#include "cpu/program.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tlr
{

/** Architectural state snapshot used for misspeculation recovery. */
struct Checkpoint
{
    std::array<std::uint64_t, numRegs> regs{};
    int pc = 0;
};

class Core
{
  public:
    Core(EventQueue &eq, StatSet &stats, CpuId id, Rng rng);

    void setProgram(ProgramPtr prog) { prog_ = std::move(prog); }
    void setPort(MemPort *port) { port_ = port; }
    /** Classifier for stall attribution: true => lock address. */
    void setLockClassifier(std::function<bool(Addr)> f)
    {
        isLockAddr_ = std::move(f);
    }
    /** Invoked once when the program executes Halt. */
    void setHaltHook(std::function<void(CpuId)> f)
    {
        onHalt_ = std::move(f);
    }

    CpuId id() const { return id_; }
    bool halted() const { return state_ == State::Halted; }

    /** Schedule the first fetch. */
    void start(Tick when = 0);

    /** Memory port response entry point (possibly stale). */
    void memResponse(const MemResponse &resp);

    /** Simulate OS de-scheduling: stop executing for @p duration
     *  cycles, then resume at the current instruction (any in-flight
     *  memory wait is squashed and the instruction re-executes).
     *  Callers must notify the speculation engine first so an active
     *  transaction aborts (SpecEngine::descheduled). */
    void suspend(Tick duration);

    /** @{ Checkpoint support for the speculation engine. */
    Checkpoint takeCheckpoint() const;
    /** Restore state and resume execution next cycle. Any in-flight
     *  memory wait is squashed (its response will be stale). */
    void restoreCheckpoint(const Checkpoint &cp);
    std::uint64_t currentGen() const { return gen_; }
    /** @} */

    /** Register read (test support). */
    std::uint64_t reg(Reg r) const { return regs_[r]; }
    void setReg(Reg r, std::uint64_t v) { if (r) regs_[r] = v; }
    int pc() const { return pc_; }

    Rng &rng() { return rng_; }

  private:
    enum class State { Idle, Running, WaitMem, Halted };

    void tick();
    void scheduleTick(Tick delta);
    void execute(const Instruction &inst);
    void issueMem(const Instruction &inst);
    void accountStall(Tick cycles, Addr addr);

    EventQueue &eq_;
    StatSet &stats_;
    const CpuId id_;
    Rng rng_;

    ProgramPtr prog_;
    MemPort *port_ = nullptr;
    std::function<bool(Addr)> isLockAddr_;
    std::function<void(CpuId)> onHalt_;

    std::array<std::uint64_t, numRegs> regs_{};
    int pc_ = 0;
    State state_ = State::Idle;

    /** Wait-generation: bumped on every restart/squash so in-flight
     *  responses from a squashed wait are discarded. */
    std::uint64_t gen_ = 0;

    /** Lazily resolved preemption counter (stable StatSet reference;
     *  avoids a string-keyed lookup per preemption). */
    std::uint64_t *preemptions_ = nullptr;
    /** Deferred suspension: a preemption that lands while a
     *  non-replayable memory operation is in flight takes effect at
     *  its completion (instruction boundary). */
    Tick pendingSuspend_ = 0;
    bool tickScheduled_ = false;
    Tick waitStart_ = 0;
    Addr waitAddr_ = 0;
    int pendingRd_ = 0;
    bool pendingIsSc_ = false;
    bool pendingIsLoad_ = false;

    /** Stats (references into the StatSet). */
    std::uint64_t &instRetired_;
    std::uint64_t &busyCycles_;
    std::uint64_t &delayCycles_;
    std::uint64_t &lockCycles_;
    std::uint64_t &dataStallCycles_;
    std::uint64_t &haltTick_;
};

} // namespace tlr

#endif // TLR_CPU_CORE_HH

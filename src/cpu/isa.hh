/**
 * @file
 * The mini RISC instruction set executed by simulated cores.
 *
 * Workloads (including the lock acquire/release code itself) are
 * written in this ISA, so the SLE/TLR hardware observes genuine
 * dynamic store streams — exactly the interface the paper's hardware
 * sees. 32 general registers, r0 hardwired to zero, 64-bit words.
 */

#ifndef TLR_CPU_ISA_HH
#define TLR_CPU_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tlr
{

/** Register index. r0 always reads as zero; writes to it are ignored. */
using Reg = int;
constexpr int numRegs = 32;

enum class Opcode : std::uint8_t
{
    // ALU: rd <- rs1 op rs2 (or imm for the I-forms)
    Li,       ///< rd <- imm
    Mov,      ///< rd <- rs1
    Add, Sub, Mul, And, Or, Xor,
    Addi,     ///< rd <- rs1 + imm
    Slli,     ///< rd <- rs1 << imm
    Srli,     ///< rd <- rs1 >> imm
    Slt,      ///< rd <- (rs1 < rs2) signed
    Seq,      ///< rd <- (rs1 == rs2)
    Andi,     ///< rd <- rs1 & imm

    // Control: target held in imm (resolved instruction index)
    Beq,      ///< if rs1 == rs2 goto imm
    Bne,      ///< if rs1 != rs2 goto imm
    Blt,      ///< if rs1 <  rs2 goto imm (signed)
    Bge,      ///< if rs1 >= rs2 goto imm (signed)
    Jmp,      ///< goto imm

    // Memory: address is rs1 + imm, 8-byte aligned
    Ld,       ///< rd <- mem[rs1 + imm]
    St,       ///< mem[rs1 + imm] <- rs2
    Ll,       ///< load-linked:  rd <- mem[rs1 + imm], set link
    Sc,       ///< store-conditional: mem[rs1+imm] <- rs2; rd <- success
    Amoswap,  ///< atomic: rd <- mem[rs1+imm]; mem[rs1+imm] <- rs2
    Amocas,   ///< atomic: if mem == rd then mem <- rs2; rd <- old mem
    Amoadd,   ///< atomic: rd <- mem[rs1+imm]; mem[rs1+imm] <- rd + rs2

    // Miscellaneous
    Rnd,      ///< rd <- uniform[0, rs1] from the per-thread RNG
    Delay,    ///< stall rs1 cycles (models local compute / backoff)
    Io,       ///< unbufferable operation: forces SLE/TLR fallback
    Nop,
    Halt,     ///< thread complete
};

struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    std::int64_t imm = 0;

    bool
    isAtomic() const
    {
        return op == Opcode::Amoswap || op == Opcode::Amocas ||
               op == Opcode::Amoadd;
    }
    bool
    isMem() const
    {
        return op == Opcode::Ld || op == Opcode::St || op == Opcode::Ll ||
               op == Opcode::Sc || isAtomic();
    }
    bool isStore() const { return op == Opcode::St || op == Opcode::Sc; }
    bool isLoad() const { return op == Opcode::Ld || op == Opcode::Ll; }
};

/** Human-readable rendering for traces and error messages. */
std::string disassemble(const Instruction &inst);

} // namespace tlr

#endif // TLR_CPU_ISA_HH

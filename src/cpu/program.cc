#include "cpu/program.hh"

#include <sstream>

#include "sim/logging.hh"

namespace tlr
{

int
Program::labelPc(const std::string &label) const
{
    auto it = labels_.find(label);
    if (it == labels_.end())
        fatal("unknown label '%s'", label.c_str());
    return it->second;
}

std::string
Program::disassembleAll() const
{
    std::ostringstream os;
    std::map<int, std::string> byPc;
    for (const auto &[name, pc] : labels_)
        byPc[pc] += name + ": ";
    for (int pc = 0; pc < size(); ++pc) {
        auto it = byPc.find(pc);
        if (it != byPc.end())
            os << it->second << "\n";
        os << "  " << pc << ": " << disassemble(code_[pc]) << "\n";
    }
    return os.str();
}

ProgramBuilder &
ProgramBuilder::emit(Instruction inst)
{
    code_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, Reg rs1, Reg rs2,
                           const std::string &target)
{
    fixups_.emplace_back(here(), target);
    return emit({op, 0, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("duplicate label '%s'", name.c_str());
    labels_[name] = here();
    return *this;
}

ProgramBuilder &
ProgramBuilder::li(Reg rd, std::int64_t imm)
{
    return emit({Opcode::Li, rd, 0, 0, imm});
}

ProgramBuilder &
ProgramBuilder::mov(Reg rd, Reg rs1)
{
    return emit({Opcode::Mov, rd, rs1, 0, 0});
}

ProgramBuilder &
ProgramBuilder::add(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Add, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::sub(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Sub, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::mul(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Mul, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::and_(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::And, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::or_(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Or, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::xor_(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Xor, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::addi(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Addi, rd, rs1, 0, imm});
}

ProgramBuilder &
ProgramBuilder::slli(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Slli, rd, rs1, 0, imm});
}

ProgramBuilder &
ProgramBuilder::srli(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Srli, rd, rs1, 0, imm});
}

ProgramBuilder &
ProgramBuilder::andi(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Andi, rd, rs1, 0, imm});
}

ProgramBuilder &
ProgramBuilder::slt(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Slt, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::seq(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Opcode::Seq, rd, rs1, rs2, 0});
}

ProgramBuilder &
ProgramBuilder::beq(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Opcode::Beq, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bne(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Opcode::Bne, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::blt(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Opcode::Blt, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bge(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Opcode::Bge, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &target)
{
    return emitBranch(Opcode::Jmp, 0, 0, target);
}

ProgramBuilder &
ProgramBuilder::ld(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Ld, rd, rs1, 0, imm});
}

ProgramBuilder &
ProgramBuilder::st(Reg rs2, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::St, 0, rs1, rs2, imm});
}

ProgramBuilder &
ProgramBuilder::ll(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Ll, rd, rs1, 0, imm});
}

ProgramBuilder &
ProgramBuilder::sc(Reg rd, Reg rs2, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Sc, rd, rs1, rs2, imm});
}

ProgramBuilder &
ProgramBuilder::amoswap(Reg rd, Reg rs2, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Amoswap, rd, rs1, rs2, imm});
}

ProgramBuilder &
ProgramBuilder::amocas(Reg rd, Reg rs2, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Amocas, rd, rs1, rs2, imm});
}

ProgramBuilder &
ProgramBuilder::amoadd(Reg rd, Reg rs2, Reg rs1, std::int64_t imm)
{
    return emit({Opcode::Amoadd, rd, rs1, rs2, imm});
}

ProgramBuilder &
ProgramBuilder::rnd(Reg rd, Reg bound)
{
    return emit({Opcode::Rnd, rd, bound, 0, 0});
}

ProgramBuilder &
ProgramBuilder::delay(Reg cycles)
{
    return emit({Opcode::Delay, 0, cycles, 0, 0});
}

ProgramBuilder &
ProgramBuilder::delayImm(std::int64_t cycles, Reg scratch)
{
    li(scratch, cycles);
    return delay(scratch);
}

ProgramBuilder &
ProgramBuilder::io()
{
    return emit({Opcode::Io, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({Opcode::Nop, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({Opcode::Halt, 0, 0, 0, 0});
}

std::string
ProgramBuilder::uniqueLabel(const std::string &stem)
{
    return stem + "$" + std::to_string(uniqueCounter_++);
}

ProgramPtr
ProgramBuilder::build()
{
    for (const auto &[pc, target] : fixups_) {
        auto it = labels_.find(target);
        if (it == labels_.end())
            fatal("branch at %d to undefined label '%s'", pc,
                  target.c_str());
        code_[pc].imm = it->second;
    }
    fixups_.clear();
    return std::make_shared<const Program>(code_, labels_);
}

} // namespace tlr

/**
 * @file
 * Core-side memory interface.
 *
 * The core issues one CoreMemOp at a time and blocks until the port
 * calls back. Requests carry a generation number so a response that
 * arrives after a misspeculation restart is recognized as stale and
 * dropped by the core.
 */

#ifndef TLR_CPU_MEM_PORT_HH
#define TLR_CPU_MEM_PORT_HH

#include <cstdint>

#include "sim/types.hh"

namespace tlr
{

struct CoreMemOp
{
    enum class Type
    {
        Load,
        Store,
        LoadLinked,
        StoreCond,
        AtomicSwap, ///< rd <- old; mem <- data
        AtomicCas,  ///< rd <- old; mem <- data iff old == expected
        AtomicAdd,  ///< rd <- old; mem <- old + data
    };

    Type type = Type::Load;
    Addr addr = 0;
    std::uint64_t data = 0;     ///< store payload / atomic new value
    std::uint64_t expected = 0; ///< AtomicCas comparison value
    int pc = 0;               ///< issuing instruction index (predictors)
    std::uint64_t gen = 0;    ///< core wait-generation (stale filtering)

    bool
    isWrite() const
    {
        return type == Type::Store || type == Type::StoreCond ||
               type == Type::AtomicSwap || type == Type::AtomicCas ||
               type == Type::AtomicAdd;
    }
};

struct MemResponse
{
    std::uint64_t value = 0;  ///< load result / SC success flag
    std::uint64_t gen = 0;    ///< echoes CoreMemOp::gen
};

/** Anything a core can issue memory operations to. */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    /** Begin a memory operation; completion arrives via the core's
     *  memResponse(). At most one operation outstanding per core. */
    virtual void request(const CoreMemOp &op) = 0;

    /** Unbufferable (I/O-like) operation executed by @p cpu. The
     *  speculation engine overrides this to force a fallback, since
     *  such operations cannot be undone (paper Fig. 3, step 3). */
    virtual void io(CpuId cpu) { (void)cpu; }
};

} // namespace tlr

#endif // TLR_CPU_MEM_PORT_HH

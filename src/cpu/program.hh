/**
 * @file
 * Programs and the assembler DSL used to build them from C++.
 *
 * A Program is an immutable instruction vector plus label metadata.
 * ProgramBuilder provides mnemonic methods with forward-reference
 * label resolution so workload generators read like assembly listings.
 */

#ifndef TLR_CPU_PROGRAM_HH
#define TLR_CPU_PROGRAM_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/isa.hh"

namespace tlr
{

class Program
{
  public:
    Program(std::vector<Instruction> code,
            std::map<std::string, int> labels)
        : code_(std::move(code)), labels_(std::move(labels))
    {}

    const Instruction &at(int pc) const { return code_[pc]; }
    int size() const { return static_cast<int>(code_.size()); }
    /** Instruction index of @p label; fatal if unknown. */
    int labelPc(const std::string &label) const;
    std::string disassembleAll() const;

  private:
    std::vector<Instruction> code_;
    std::map<std::string, int> labels_;
};

using ProgramPtr = std::shared_ptr<const Program>;

/**
 * Fluent assembler. Branch targets may name labels defined later;
 * build() resolves them and fails fast on dangling references.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder &label(const std::string &name);

    ProgramBuilder &li(Reg rd, std::int64_t imm);
    ProgramBuilder &mov(Reg rd, Reg rs1);
    ProgramBuilder &add(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &sub(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &mul(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &and_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &or_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &xor_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &addi(Reg rd, Reg rs1, std::int64_t imm);
    ProgramBuilder &slli(Reg rd, Reg rs1, std::int64_t imm);
    ProgramBuilder &srli(Reg rd, Reg rs1, std::int64_t imm);
    ProgramBuilder &andi(Reg rd, Reg rs1, std::int64_t imm);
    ProgramBuilder &slt(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &seq(Reg rd, Reg rs1, Reg rs2);

    ProgramBuilder &beq(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bne(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &blt(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bge(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &jmp(const std::string &target);

    ProgramBuilder &ld(Reg rd, Reg rs1, std::int64_t imm = 0);
    ProgramBuilder &st(Reg rs2, Reg rs1, std::int64_t imm = 0);
    ProgramBuilder &ll(Reg rd, Reg rs1, std::int64_t imm = 0);
    ProgramBuilder &sc(Reg rd, Reg rs2, Reg rs1, std::int64_t imm = 0);
    /** Atomic swap: rd <- old mem value; mem <- rs2. */
    ProgramBuilder &amoswap(Reg rd, Reg rs2, Reg rs1,
                            std::int64_t imm = 0);
    /** Atomic compare-and-swap: expected in rd (replaced by the old
     *  memory value); mem <- rs2 iff old == expected. */
    ProgramBuilder &amocas(Reg rd, Reg rs2, Reg rs1,
                           std::int64_t imm = 0);
    /** Atomic fetch-and-add: rd <- old mem value; mem <- old + rs2. */
    ProgramBuilder &amoadd(Reg rd, Reg rs2, Reg rs1,
                           std::int64_t imm = 0);

    ProgramBuilder &rnd(Reg rd, Reg bound);
    ProgramBuilder &delay(Reg cycles);
    ProgramBuilder &delayImm(std::int64_t cycles, Reg scratch);
    ProgramBuilder &io();
    ProgramBuilder &nop();
    ProgramBuilder &halt();

    /** Unique label name for generated control flow. */
    std::string uniqueLabel(const std::string &stem);

    int here() const { return static_cast<int>(code_.size()); }

    ProgramPtr build();

  private:
    ProgramBuilder &emit(Instruction inst);
    ProgramBuilder &emitBranch(Opcode op, Reg rs1, Reg rs2,
                               const std::string &target);

    std::vector<Instruction> code_;
    std::map<std::string, int> labels_;
    std::vector<std::pair<int, std::string>> fixups_;
    int uniqueCounter_ = 0;
};

} // namespace tlr

#endif // TLR_CPU_PROGRAM_HH

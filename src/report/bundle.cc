#include "report/bundle.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "sim/build_info.hh"
#include "sim/logging.hh"

namespace tlr
{

namespace
{

bool
isDir(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/** mkdir -p: create every missing component of @p path. */
bool
makeDirs(const std::string &path, std::string &err)
{
    std::string cur;
    size_t pos = 0;
    while (pos <= path.size()) {
        size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        cur = path.substr(0, slash);
        pos = slash + 1;
        if (cur.empty() || cur == ".")
            continue;
        if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) {
            err = "cannot create directory '" + cur +
                  "': " + std::strerror(errno);
            return false;
        }
    }
    if (!isDir(path)) {
        err = "'" + path + "' exists but is not a directory";
        return false;
    }
    return true;
}

bool
writeFile(const std::string &path, const std::string &text,
          std::string &err)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        err = "cannot write '" + path + "'";
        return false;
    }
    out << text;
    out.close();
    if (!out) {
        err = "write failed for '" + path + "'";
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Sanitize a config string into a directory-name-safe slug. */
std::string
slugify(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '-') {
            out += c;
        } else if (c >= 'A' && c <= 'Z') {
            out += static_cast<char>(c - 'A' + 'a');
        } else {
            out += '-';
        }
    }
    return out;
}

} // namespace

std::string
renderManifest(const BundleMeta &meta, const BundleArtifacts &art)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema_version\": " << reportBundleSchemaVersion << ",\n";
    os << "  \"schemas\": {\"bundle\": " << reportBundleSchemaVersion
       << ", \"stats_json\": " << statsSchemaVersion
       << ", \"metrics\": " << metricsSchemaVersion
       << ", \"raw_trace\": " << rawTraceFormatVersion
       << ", \"timeline\": " << timelineSchemaVersion
       << ", \"diff_json\": " << diffJsonSchemaVersion << "},\n";
    os << "  \"build\": " << buildMetaJson() << ",\n";
    os << strfmt("  \"host\": {\"threads\": %u, \"jobs\": %u, "
                 "\"lookahead\": %llu, \"dir_banks\": %d},\n",
                 meta.threads, meta.jobs,
                 static_cast<unsigned long long>(meta.lookahead),
                 meta.dirBanks);
    os << "  \"sim\": {\n";
    os << "    \"workload\": " << jsonStr(meta.workload) << ",\n";
    os << "    \"scheme\": " << jsonStr(meta.scheme) << ",\n";
    os << "    \"protocol\": " << jsonStr(meta.protocol) << ",\n";
    os << strfmt("    \"cpus\": %d, \"ops\": %llu, \"seed\": %llu,\n",
                 meta.cpus, static_cast<unsigned long long>(meta.ops),
                 static_cast<unsigned long long>(meta.seed));
    os << strfmt("    \"theta\": %.6g, \"keys\": %u, "
                 "\"partitions\": %u,\n",
                 meta.theta, meta.keys, meta.partitions);
    os << strfmt("    \"wb_lines\": %u, \"victim_entries\": %u, "
                 "\"yield_timeout\": %llu,\n",
                 meta.wbLines, meta.victimEntries,
                 static_cast<unsigned long long>(meta.yieldTimeout));
    os << strfmt("    \"preempt_every\": %d, \"preempt_quantum\": %llu, "
                 "\"max_ticks\": %llu,\n",
                 meta.preemptEvery,
                 static_cast<unsigned long long>(meta.preemptQuantum),
                 static_cast<unsigned long long>(meta.maxTicks));
    os << strfmt("    \"timeline_epoch\": %llu, \"metrics\": %s, "
                 "\"explain\": %s, \"check_invariants\": %s\n",
                 static_cast<unsigned long long>(meta.timelineEpoch),
                 meta.metrics ? "true" : "false",
                 meta.explain ? "true" : "false",
                 meta.checkInvariants ? "true" : "false");
    os << "  },\n";
    os << strfmt("  \"result\": {\"completed\": %s, \"valid\": %s, "
                 "\"cycles\": %llu, \"invariant_violations\": %llu},\n",
                 meta.completed ? "true" : "false",
                 meta.valid ? "true" : "false",
                 static_cast<unsigned long long>(meta.cycles),
                 static_cast<unsigned long long>(
                     meta.invariantViolations));
    os << "  \"artifacts\": {\"stats\": \"stats.json\""
       << ", \"timeline\": "
       << (art.timelineCsv.empty() ? "null" : "\"timeline.csv\"")
       << ", \"explain\": "
       << (art.explainText.empty() ? "null" : "\"explain.txt\"")
       << ", \"trace\": "
       << (art.rawTracePath.empty() ? "null" : "\"trace.bin\"")
       << "}\n";
    os << "}\n";
    return os.str();
}

std::string
writeRunBundle(const std::string &ledgerDir, const BundleMeta &meta,
               const BundleArtifacts &art, std::string &err)
{
    if (!makeDirs(ledgerDir, err))
        return "";

    // Next sequence number: max numeric prefix of existing entries
    // plus one. Deterministic and timestamp-free, so identical
    // command sequences produce identical ledgers.
    unsigned seq = 0;
    for (const std::string &entry : listLedger(ledgerDir)) {
        size_t slash = entry.find_last_of('/');
        std::string base = slash == std::string::npos
                               ? entry
                               : entry.substr(slash + 1);
        unsigned n = 0;
        size_t i = 0;
        while (i < base.size() && base[i] >= '0' && base[i] <= '9') {
            n = n * 10 + static_cast<unsigned>(base[i] - '0');
            ++i;
        }
        if (i > 0 && n > seq)
            seq = n;
    }
    ++seq;

    std::string slug = slugify(meta.workload) + "-" +
                       slugify(meta.scheme) + "-p" +
                       std::to_string(meta.cpus);
    std::string entryDir =
        ledgerDir + "/" + strfmt("%04u-", seq) + slug;
    if (!makeDirs(entryDir, err))
        return "";

    if (!writeFile(entryDir + "/manifest.json",
                   renderManifest(meta, art), err))
        return "";
    if (!writeFile(entryDir + "/stats.json", art.statsJson, err))
        return "";
    if (!art.timelineCsv.empty() &&
        !writeFile(entryDir + "/timeline.csv", art.timelineCsv, err))
        return "";
    if (!art.explainText.empty() &&
        !writeFile(entryDir + "/explain.txt", art.explainText, err))
        return "";
    if (!art.rawTracePath.empty()) {
        std::string bytes;
        if (!readFile(art.rawTracePath, bytes)) {
            err = "cannot read raw trace '" + art.rawTracePath + "'";
            return "";
        }
        if (!writeFile(entryDir + "/trace.bin", bytes, err))
            return "";
    }
    return entryDir;
}

bool
loadBundle(const std::string &dir, LoadedBundle &out, std::string &err)
{
    out = LoadedBundle{};
    out.dir = dir;
    size_t slash = dir.find_last_of('/');
    // Trailing slashes would make the basename empty; trim them.
    std::string trimmed = dir;
    while (!trimmed.empty() && trimmed.back() == '/')
        trimmed.pop_back();
    slash = trimmed.find_last_of('/');
    out.name = slash == std::string::npos ? trimmed
                                          : trimmed.substr(slash + 1);

    std::string text;
    if (!readFile(dir + "/manifest.json", text)) {
        err = "'" + dir + "' is not a run bundle (no manifest.json)";
        return false;
    }
    if (!parseJson(text, out.manifest, err)) {
        err = dir + "/manifest.json: " + err;
        return false;
    }
    const JsonValue *schema = out.manifest.find("schema_version");
    long v = schema && schema->isNumber()
                 ? static_cast<long>(schema->number)
                 : -1;
    if (v != reportBundleSchemaVersion) {
        err = strfmt("%s: bundle schema_version %ld, this tool "
                     "understands v%d (refusing to read across bundle "
                     "schema versions)",
                     dir.c_str(), v, reportBundleSchemaVersion);
        return false;
    }

    if (!readFile(dir + "/stats.json", text)) {
        err = "'" + dir + "' has no stats.json";
        return false;
    }
    if (!parseJson(text, out.stats, err)) {
        err = dir + "/stats.json: " + err;
        return false;
    }

    readFile(dir + "/timeline.csv", out.timelineCsv);
    readFile(dir + "/explain.txt", out.explainText);
    out.hasTrace = fileExists(dir + "/trace.bin");
    return true;
}

std::vector<std::string>
listLedger(const std::string &ledgerDir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(ledgerDir.c_str());
    if (!d)
        return out;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        std::string path = ledgerDir + "/" + name;
        if (isDir(path) && fileExists(path + "/manifest.json"))
            out.push_back(path);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace tlr

/**
 * @file
 * Run-ledger bundles: one self-describing directory per simulation run
 * (DESIGN.md §15).
 *
 * The paper's evaluation is a story told across many runs, but every
 * telemetry subsystem (trace, metrics, explain, timeline) emits an
 * isolated per-run artifact that a human must join by hand. A *run
 * bundle* packages everything one run produced — a versioned manifest
 * with the full resolved configuration, the stats-json dump (counters
 * plus the metrics and timeline sections), the timeline CSV, the
 * explain digest and optionally the raw binary trace — into one entry
 * of a *ledger* directory:
 *
 *   LEDGER/
 *     0001-single-counter-tlr-p4/
 *       manifest.json     versioned: config, result, build, schemas
 *       stats.json        the --stats-json document
 *       timeline.csv      when --timeline-epoch was on
 *       explain.txt       when --explain was on
 *       trace.bin         when --trace-raw was recorded
 *     0002-single-counter-tlr-p4/
 *       ...
 *
 * Entry names are `<seq>-<workload>-<scheme>-p<cpus>`: the sequence
 * number (max existing + 1) gives a stable run order without wall-
 * clock timestamps, so ledgers are reproducible and `tlrreport
 * --trend` can name *which run* a metric first regressed in — the
 * run-granularity analogue of tlrstat's first-diverging-epoch
 * localization.
 *
 * The manifest separates `sim` fields (deterministic inputs/outputs of
 * the simulation) from `host` fields (--threads, --jobs, lookahead —
 * schedule knobs that must not affect results) and `build` metadata.
 * tools/tlrreport renders only the sim/result/schemas sections, which
 * is what makes the flight report byte-identical across hosts and
 * thread counts by construction.
 */

#ifndef TLR_REPORT_BUNDLE_HH
#define TLR_REPORT_BUNDLE_HH

#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/types.hh"

namespace tlr
{

/** Everything the manifest records about one run. */
struct BundleMeta
{
    /** @{ sim: deterministic configuration (rendered by tlrreport). */
    std::string workload;
    std::string scheme;   ///< schemeName() or tlrsim flag spelling
    std::string protocol = "broadcast";
    int cpus = 0;
    std::uint64_t ops = 0;
    std::uint64_t seed = 0;
    double theta = 0;
    unsigned keys = 0;
    unsigned partitions = 0;
    unsigned wbLines = 0;
    unsigned victimEntries = 0;
    Tick yieldTimeout = 0;
    int preemptEvery = 0;
    Tick preemptQuantum = 0;
    Tick maxTicks = 0;
    Tick timelineEpoch = 0;
    bool metrics = false;
    bool explain = false;
    bool checkInvariants = false;
    /** @} */

    /** @{ result: deterministic outcome (rendered by tlrreport). */
    bool completed = false;
    bool valid = false;
    Tick cycles = 0;
    std::uint64_t invariantViolations = 0;
    /** @} */

    /** @{ host: schedule knobs that never change simulated results
     *  (NOT rendered by tlrreport — byte-determinism contract). */
    unsigned threads = 0;
    unsigned jobs = 0;
    Tick lookahead = 0;
    int dirBanks = 1;
    /** @} */
};

/** The artifact payloads of one bundle entry. Empty string = absent
 *  (recorded as null in the manifest's artifact map). */
struct BundleArtifacts
{
    std::string statsJson;    ///< required: the --stats-json document
    std::string timelineCsv;  ///< EpochTimeline::csv() when enabled
    std::string explainText;  ///< Explainer::report() when enabled
    std::string rawTracePath; ///< copy bytes from this --trace-raw file
};

/** Render the versioned manifest document (exposed for tests). */
std::string renderManifest(const BundleMeta &meta,
                           const BundleArtifacts &art);

/** Create LEDGER/<seq>-<slug>/ (making the ledger directory if
 *  needed), write the manifest and every present artifact.
 *  @return the entry directory path; empty with @p err set on any
 *          filesystem failure. */
std::string writeRunBundle(const std::string &ledgerDir,
                           const BundleMeta &meta,
                           const BundleArtifacts &art, std::string &err);

/** One bundle read back from disk (tlrreport input). */
struct LoadedBundle
{
    std::string dir;         ///< entry directory path
    std::string name;        ///< entry directory basename
    JsonValue manifest;
    JsonValue stats;         ///< parsed stats.json
    std::string timelineCsv; ///< "" when absent
    std::string explainText; ///< "" when absent
    bool hasTrace = false;   ///< trace.bin present on disk
};

/** Load manifest + artifacts of one entry directory. @return false
 *  with @p err set when the manifest or stats document is missing,
 *  unparseable, or carries a different bundle schema version. */
bool loadBundle(const std::string &dir, LoadedBundle &out,
                std::string &err);

/** Bundle entry directories under @p ledgerDir, sorted by name (the
 *  sequence prefix makes that run order). Non-bundle entries (no
 *  manifest.json) are skipped. */
std::vector<std::string> listLedger(const std::string &ledgerDir);

} // namespace tlr

#endif // TLR_REPORT_BUNDLE_HH

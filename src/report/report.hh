/**
 * @file
 * Flight-report rendering: one self-contained, byte-deterministic
 * HTML page per run bundle, plus cross-run diff and trend pages
 * (DESIGN.md §15).
 *
 * The renderer is a pure function of the bundle's *sim-deterministic*
 * content: the manifest's sim/result/schemas sections, the stats-json
 * counters, and the metrics/timeline sections. It never renders build
 * metadata, host info, thread counts or wall-clock anything, and every
 * SVG coordinate is computed in integer math — so the same simulation
 * produces the same report bytes on any host at any --threads count,
 * which is what makes reports golden-testable (tools/CMakeLists.txt
 * fixtures, CI golden-report compare).
 *
 * Three pages:
 *
 *   renderFlightReport  one run: config + result banner, epoch-
 *                       timeline sparklines with detector-alert
 *                       markers and causal wait chains, latency
 *                       histograms with p50/p99, hottest locks,
 *                       per-class and per-link interconnect bytes,
 *                       parallel-kernel phase attribution, invariant/
 *                       validator status
 *   renderDiffHtml      two runs through src/metrics/statdiff: every
 *                       changed key, threshold violations highlighted,
 *                       host-perf keys dimmed, first-diverging-epoch
 *                       notes
 *   renderTrendHtml     a whole ledger: per-metric series across runs,
 *                       naming the first run whose value deviates from
 *                       the run-1 baseline beyond the threshold — the
 *                       run-granularity analogue of tlrstat's first-
 *                       diverging-epoch localization
 */

#ifndef TLR_REPORT_REPORT_HH
#define TLR_REPORT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/statdiff.hh"
#include "report/bundle.hh"

namespace tlr
{

/** One metric's trajectory across a ledger. */
struct TrendRow
{
    std::string key;         ///< dotted stats path
    std::vector<double> series; ///< one value per run, run order
    double baseline = 0;     ///< value in the first run
    double final_ = 0;       ///< value in the last run
    double finalRelPct = 0;  ///< final vs baseline
    /** First run index whose |value vs baseline| exceeds the
     *  threshold; -1 = never (the metric drifted but stayed inside
     *  the threshold, or is report-only). */
    int firstRegressRun = -1;
    double firstVal = 0;     ///< value at that run
    double firstRelPct = 0;  ///< its deviation vs baseline
    bool reportOnly = false; ///< host-perf key: shown, never gated
};

struct TrendReport
{
    std::string error;   ///< non-empty on structural failure
    bool schemaMismatch = false; ///< stats schemas differ across runs
    std::vector<std::string> runNames; ///< bundle entry names, run order
    std::vector<TrendRow> rows;        ///< keys that changed at all
    size_t compared = 0;  ///< keys present in every run
    size_t regressed = 0; ///< rows with firstRegressRun >= 0

    bool ok() const { return error.empty() && !schemaMismatch; }
};

/** Walk a ledger's bundles (run order) and localize, per metric, the
 *  first run that deviates from the run-1 baseline by more than
 *  @p thresholdPct percent. Per-epoch timeline keys are excluded
 *  (tlrstat already localizes those *within* a run); host-performance
 *  keys are tracked but report-only. */
TrendReport analyzeTrend(const std::vector<LoadedBundle> &runs,
                         double thresholdPct);

/** The single-run flight report page. */
std::string renderFlightReport(const LoadedBundle &b);

/** The A-vs-B comparison page (same DiffReport tlrstat renders). */
std::string renderDiffHtml(const DiffReport &rep,
                           const DiffOptions &opt);

/** The cross-run trajectory page. */
std::string renderTrendHtml(const TrendReport &t, double thresholdPct);

/** Plain-text trend digest for stderr/CI logs: one "first regresses
 *  at run NAME" line per regressed metric plus a summary line. */
std::string trendSummaryText(const TrendReport &t, double thresholdPct);

/** @{ SVG primitives, exposed for tests (tests/test_report.cc pins
 *  the empty, single-point and single-bucket cases). All coordinates
 *  are integer math — byte-deterministic across hosts. */

/** Polyline sparkline of @p vals with vertical marker lines at
 *  @p markers = (index, css-class) positions. Empty input renders a
 *  placeholder, not an empty <svg>. */
std::string
svgSparkline(const std::vector<std::uint64_t> &vals,
             const std::vector<std::pair<size_t, std::string>> &markers,
             int w = 360, int h = 48);

/** Bar chart of sparse histogram @p buckets = (bucket floor, count)
 *  pairs (Histogram::json "buckets" layout). Empty input renders a
 *  placeholder. */
std::string svgHistogramBars(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &buckets,
    int w = 360, int h = 64);
/** @} */

} // namespace tlr

#endif // TLR_REPORT_REPORT_HH

/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the whole machine. Components
 * schedule one-shot callbacks at absolute ticks. Ordering is fully
 * deterministic: events at the same tick fire in (priority, insertion
 * sequence) order, so simulations are exactly reproducible.
 */

#ifndef TLR_SIM_EVENT_QUEUE_HH
#define TLR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tlr
{

/** Standard event priorities; lower value fires first within a tick. */
enum class EventPrio : int
{
    BusArbitration = 0,   ///< bus grants before snoops land
    Snoop = 1,            ///< ordered address transactions
    DataResponse = 2,     ///< data network deliveries
    CoreTick = 3,         ///< processor pipeline steps
    Default = 4,
    Stats = 5,
};

/**
 * The global discrete-event queue.
 *
 * Events are one-shot std::function callbacks. Cancellation is not
 * supported; components that might become stale check their own state
 * when the callback fires (the usual "squash by generation" idiom).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p cb at absolute tick @p when (must be >= now()). */
    void schedule(Tick when, Callback cb,
                  EventPrio prio = EventPrio::Default);

    /** Schedule @p cb @p delta ticks in the future. */
    void
    scheduleIn(Tick delta, Callback cb, EventPrio prio = EventPrio::Default)
    {
        schedule(_now + delta, std::move(cb), prio);
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run until the queue drains, a stop is requested, or @p maxTick
     * is reached.
     * @return true if the queue drained naturally (or stop was
     *         requested), false if maxTick cut the run short.
     */
    bool run(Tick maxTick = ~Tick{0});

    /** Execute exactly one event, if any. @return false when empty. */
    bool step();

    /** Request run() to return after the current event completes. */
    void requestStop() { stopRequested_ = true; }

    /** Reset time and drop all pending events (test support). */
    void reset();

  private:
    struct Item
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap_;
    Tick _now = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;
};

} // namespace tlr

#endif // TLR_SIM_EVENT_QUEUE_HH

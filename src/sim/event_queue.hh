/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the whole machine. Components
 * schedule one-shot callbacks at absolute ticks. Ordering is fully
 * deterministic: events at the same tick fire in (priority, insertion
 * sequence) order, so simulations are exactly reproducible.
 *
 * Hot-path design (DESIGN.md §8): events live in pooled, fixed-size
 * nodes with inline small-buffer storage for the callable — the
 * capture sizes used by the core, speculation engine, L1 controllers,
 * interconnect and directory all fit inline, so steady-state
 * scheduling performs no heap allocation. Dispatch is a timing wheel
 * over the near future (latencies in the simulated machine are a few
 * tens of cycles) backed by a binary heap for far-out events
 * (yield timeouts, preemptions, watchdogs).
 */

#ifndef TLR_SIM_EVENT_QUEUE_HH
#define TLR_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tlr
{

/** Standard event priorities; lower value fires first within a tick. */
enum class EventPrio : int
{
    BusArbitration = 0,   ///< bus grants before snoops land
    Snoop = 1,            ///< ordered address transactions
    DataResponse = 2,     ///< data network deliveries
    CoreTick = 3,         ///< processor pipeline steps
    Default = 4,
    Stats = 5,
};

/**
 * The global discrete-event queue.
 *
 * Events are one-shot callables. Cancellation is not supported;
 * components that might become stale check their own state when the
 * callback fires (the usual "squash by generation" idiom).
 */
class EventQueue
{
  public:
    /** Compatibility alias; any callable (lambda included) schedules
     *  directly without wrapping into a std::function. */
    using Callback = std::function<void()>;

    /** Inline capture capacity per event node. Sized for the largest
     *  common capture (Interconnect::sendData's [this, to, DataMsg] at
     *  ~104 bytes with a 64-byte line payload). Larger captures spill
     *  to the heap and are counted in kernelStats(). */
    static constexpr std::size_t inlineCaptureBytes = 112;

    /** Near-future horizon of the timing wheel, in ticks. */
    static constexpr std::size_t wheelSlots = 512;

    /** Host-side kernel counters (bench_kernel; not simulated state). */
    struct KernelStats
    {
        std::uint64_t inlineEvents = 0;  ///< captures stored in-node
        std::uint64_t spilledEvents = 0; ///< captures heap-allocated
        std::uint64_t poolChunks = 0;    ///< node-chunk allocations
        std::uint64_t wheelEvents = 0;   ///< scheduled into the wheel
        std::uint64_t farEvents = 0;     ///< scheduled into the heap
    };

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule callable @p f at absolute tick @p when (>= now()). */
    template <typename F>
    void
    schedule(Tick when, F &&f, EventPrio prio = EventPrio::Default)
    {
        EventNode *n = makeNode(when, prio);
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(n->storage)) Fn(std::forward<F>(f));
            n->invoke = [](EventNode &e) {
                (*std::launder(reinterpret_cast<Fn *>(e.storage)))();
            };
            if constexpr (std::is_trivially_destructible_v<Fn>) {
                n->destroy = nullptr;
            } else {
                n->destroy = [](EventNode &e) {
                    std::launder(reinterpret_cast<Fn *>(e.storage))->~Fn();
                };
            }
            ++kstats_.inlineEvents;
        } else {
            // Capture too large for the node: spill to the heap and
            // keep only the pointer inline.
            Fn *p = new Fn(std::forward<F>(f));
            ::new (static_cast<void *>(n->storage)) (Fn *)(p);
            n->invoke = [](EventNode &e) {
                (**std::launder(reinterpret_cast<Fn **>(e.storage)))();
            };
            n->destroy = [](EventNode &e) {
                delete *std::launder(reinterpret_cast<Fn **>(e.storage));
            };
            ++kstats_.spilledEvents;
        }
        insert(n);
    }

    /** Schedule @p f @p delta ticks in the future. */
    template <typename F>
    void
    scheduleIn(Tick delta, F &&f, EventPrio prio = EventPrio::Default)
    {
        schedule(_now + delta, std::forward<F>(f), prio);
    }

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    size_t pending() const { return size_; }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run until the queue drains, a stop is requested, or @p maxTick
     * is reached.
     * @return true if the queue drained naturally (or stop was
     *         requested), false if maxTick cut the run short.
     */
    bool run(Tick maxTick = ~Tick{0});

    /** Execute exactly one event, if any. @return false when empty. */
    bool step();

    /**
     * Peek at the earliest pending event without executing it.
     * @return false when the queue is empty; otherwise fills
     *         @p when / @p prio with the head event's coordinates.
     * Used by the parallel kernel to compute the global horizon.
     */
    bool peekNext(Tick &when, int &prio);

    /** Tick of the earliest pending event, or ~Tick{0} when empty. */
    Tick
    nextTick()
    {
        Tick when;
        int prio;
        return peekNext(when, prio) ? when : ~Tick{0};
    }

    /**
     * Bounded-window execution for the parallel kernel: run events
     * strictly below the (bound_tick, bound_prio) point, i.e. every
     * event with when < bound_tick, plus events at bound_tick whose
     * priority is < bound_prio. Events at or past the bound stay
     * queued. Deterministic: order is identical to run()'s.
     */
    void runBounded(Tick bound_tick, int bound_prio);

    /**
     * Count pending events strictly below the (bound_tick, bound_prio)
     * point, stopping early once @p cap is reached. The parallel
     * kernel sizes segments with this: a segment whose total pending
     * work is tiny runs inline on the coordinator instead of paying a
     * worker barrier. Pure inspection — never advances the window.
     */
    std::size_t countBelow(Tick bound_tick, int bound_prio,
                           std::size_t cap) const;

    /**
     * Advance now() to @p tick without executing anything (no-op if
     * time is already there). The parallel kernel uses this before a
     * serialized cross-partition event executes, so callbacks that
     * schedule relative to now() see the right time. Pre-condition:
     * no pending event lies below (tick, EventPrio::Snoop) — the
     * kernel's window bound guarantees it.
     */
    void advanceNow(Tick tick)
    {
        if (tick > _now)
            _now = tick;
    }

    /** Request run() to return after the current event completes. */
    void requestStop() { stopRequested_ = true; }

    /** Reset time, drop all pending events, and return every node to
     *  the pool; executed()/stop state start clean (test support). */
    void reset();

    /** Host-performance counters since construction (reset() keeps
     *  them: they describe the process, not one simulation). */
    const KernelStats &kernelStats() const { return kstats_; }

  private:
    static constexpr int numPrios = 6;
    static_assert(static_cast<int>(EventPrio::Stats) == numPrios - 1,
                  "EventPrio values must stay dense: the wheel keeps "
                  "one FIFO list per priority");
    static_assert((wheelSlots & (wheelSlots - 1)) == 0,
                  "wheelSlots must be a power of two");

    /** Pooled event node. `storage` inlines the callable (or, when
     *  spilled, a single pointer to it). Nodes never move once
     *  allocated, so captures need no move-after-construct. */
    struct EventNode
    {
        EventNode *next = nullptr;       ///< intrusive FIFO link
        Tick when = 0;
        std::uint64_t seq = 0;
        void (*invoke)(EventNode &) = nullptr;
        void (*destroy)(EventNode &) = nullptr; ///< null = trivial
        std::uint8_t prio = 0;
        alignas(std::max_align_t) unsigned char storage[inlineCaptureBytes];
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCaptureBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_move_constructible_v<Fn>;
    }

    /** One wheel slot: per-priority FIFO lists. While a tick is inside
     *  the wheel window, a slot holds events of exactly one tick, so a
     *  list is already in (prio, seq) execution order. */
    struct Bucket
    {
        EventNode *head[numPrios];
        EventNode *tail[numPrios];
        unsigned occ; ///< bitmask of non-empty priority lists
    };

    /** Heap order for far-out events: earliest (when, prio, seq) at
     *  the front of farHeap_. */
    struct FarLater
    {
        bool
        operator()(const EventNode *a, const EventNode *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->prio != b->prio)
                return a->prio > b->prio;
            return a->seq > b->seq;
        }
    };

    EventNode *makeNode(Tick when, EventPrio prio);
    void recycle(EventNode *n);
    void insert(EventNode *n);
    void pushWheel(EventNode *n);
    void pushFar(EventNode *n);
    void migrateFar();
    void rebase(Tick newBase);
    EventNode *findEarliest();
    void popFound();
    void fire(EventNode *n);

    std::vector<Bucket> wheel_;           ///< wheelSlots buckets
    std::uint64_t slotOcc_[wheelSlots / 64] = {}; ///< non-empty slots
    std::vector<EventNode *> farHeap_;    ///< beyond the wheel window
    Tick windowBase_ = 0; ///< wheel covers [windowBase_, +wheelSlots)
    std::size_t wheelCount_ = 0;
    std::size_t size_ = 0;

    /** Slot/prio of the node findEarliest() returned, for popFound(). */
    std::size_t foundSlot_ = 0;
    int foundPrio_ = 0;

    std::vector<std::unique_ptr<EventNode[]>> chunks_; ///< node pool
    EventNode *freeList_ = nullptr;
    static constexpr std::size_t chunkNodes = 64;

    Tick _now = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;
    KernelStats kstats_;
};

} // namespace tlr

#endif // TLR_SIM_EVENT_QUEUE_HH

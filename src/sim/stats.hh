/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters under "group.name" keys. The
 * harness dumps or queries them after a run. Counters are plain u64s
 * behind stable references, so the hot path is a single increment.
 */

#ifndef TLR_SIM_STATS_HH
#define TLR_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace tlr
{

class StatSet
{
  public:
    /** Get (creating if needed) the counter named "group.name". */
    std::uint64_t &counter(const std::string &group, const std::string &name);

    /** Read a counter; 0 if it was never registered. */
    std::uint64_t get(const std::string &group, const std::string &name) const;

    /** Sum of one stat name across all groups matching @p groupPrefix. */
    std::uint64_t sum(const std::string &groupPrefix,
                      const std::string &name) const;

    /** All counters, sorted by key, for dumping. */
    const std::map<std::string, std::uint64_t> &all() const { return vals_; }

    /** Render "key = value" lines, optionally filtered by prefix. */
    std::string dump(const std::string &prefix = "") const;

    /** Render the counters as a versioned JSON document:
     *  {"schema_version": N, "meta": {...}, "counters": {flat}}.
     *  The "counters" subobject is the flat sorted key map (tlrsim
     *  --stats-json; machine-readable run comparison — tlrstat).
     *  @p extra_sections, when non-empty, is spliced verbatim as
     *  additional top-level members (already-rendered JSON of the form
     *  `"key": {...}`); the metrics layer adds its section this way. */
    std::string dumpJson(const std::string &extra_sections = "") const;

    /** Accumulate every counter of @p other into this set (parallel
     *  kernel: per-partition shards merged after the run; merging is
     *  exact because counters are plain sums). */
    void
    mergeFrom(const StatSet &other)
    {
        for (const auto &kv : other.all())
            vals_[kv.first] += kv.second;
    }

    void clear() { vals_.clear(); }

  private:
    std::map<std::string, std::uint64_t> vals_;
};

} // namespace tlr

#endif // TLR_SIM_STATS_HH

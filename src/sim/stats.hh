/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters under "group.name" keys. The
 * harness dumps or queries them after a run. Counters are plain u64s
 * behind stable references, so the hot path is a single increment.
 */

#ifndef TLR_SIM_STATS_HH
#define TLR_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace tlr
{

class StatSet
{
  public:
    /** Get (creating if needed) the counter named "group.name". */
    std::uint64_t &counter(const std::string &group, const std::string &name);

    /** Read a counter; 0 if it was never registered. */
    std::uint64_t get(const std::string &group, const std::string &name) const;

    /** Sum of one stat name across all groups matching @p groupPrefix. */
    std::uint64_t sum(const std::string &groupPrefix,
                      const std::string &name) const;

    /** All counters, sorted by key, for dumping. */
    const std::map<std::string, std::uint64_t> &all() const { return vals_; }

    /** Render "key = value" lines, optionally filtered by prefix. */
    std::string dump(const std::string &prefix = "") const;

    /** Render every counter as one flat JSON object, sorted by key
     *  (tlrsim --stats-json; machine-readable run comparison). */
    std::string dumpJson() const;

    void clear() { vals_.clear(); }

  private:
    std::map<std::string, std::uint64_t> vals_;
};

} // namespace tlr

#endif // TLR_SIM_STATS_HH

#include "sim/build_info.hh"

// The build system injects TLR_GIT_SHA / TLR_BUILD_FLAGS /
// TLR_BUILD_TYPE for this translation unit only (src/CMakeLists.txt);
// fall back gracefully when compiled outside CMake.
#ifndef TLR_GIT_SHA
#define TLR_GIT_SHA "unknown"
#endif
#ifndef TLR_BUILD_FLAGS
#define TLR_BUILD_FLAGS ""
#endif
#ifndef TLR_BUILD_TYPE
#define TLR_BUILD_TYPE "unknown"
#endif

namespace tlr
{

const char *
buildCompiler()
{
#if defined(__clang__)
    return "clang " __VERSION__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

const char *
buildFlags()
{
    return TLR_BUILD_FLAGS;
}

const char *
buildGitSha()
{
    return TLR_GIT_SHA;
}

const char *
buildType()
{
    return TLR_BUILD_TYPE;
}

namespace
{

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out += '\\';
        out += *s;
    }
    return out;
}

} // namespace

std::string
buildMetaJson()
{
    return "{\"compiler\": \"" + jsonEscape(buildCompiler()) +
           "\", \"flags\": \"" + jsonEscape(buildFlags()) +
           "\", \"git_sha\": \"" + jsonEscape(buildGitSha()) +
           "\", \"build_type\": \"" + jsonEscape(buildType()) + "\"}";
}

std::string
versionString(const char *tool)
{
    std::string out;
    out += tool;
    out += " (tlr simulator)\n";
    out += "  git:      ";
    out += buildGitSha();
    out += "\n  build:    ";
    out += buildType();
    out += "\n  compiler: ";
    out += buildCompiler();
    out += "\n  schemas:  stats-json v" +
           std::to_string(statsSchemaVersion) + ", metrics v" +
           std::to_string(metricsSchemaVersion) + ", raw-trace v" +
           std::to_string(rawTraceFormatVersion) + ", timeline v" +
           std::to_string(timelineSchemaVersion) + ", bundle v" +
           std::to_string(reportBundleSchemaVersion) + ", diff-json v" +
           std::to_string(diffJsonSchemaVersion) + "\n";
    return out;
}

} // namespace tlr

#include "sim/logging.hh"

#include <cstdarg>
#include <stdexcept>

namespace tlr
{

bool Trace::enabled = false;

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets death/property tests observe
    // invariant violations; main() converts uncaught throws to abort.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
Trace::print(long long tick, const char *component, const std::string &msg)
{
    std::fprintf(stderr, "%10lld: %-10s: %s\n", tick, component, msg.c_str());
}

} // namespace tlr

/**
 * @file
 * Error reporting and optional debug tracing.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user/configuration errors,
 * warn()/inform() for advisories. Debug tracing is compiled in but
 * gated at run time by Trace::enabled, so hot paths stay cheap.
 */

#ifndef TLR_SIM_LOGGING_HH
#define TLR_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tlr
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Run-time switchable trace stream, used by DTRACE below. */
struct Trace
{
    /** Master enable; off by default so benches run at full speed. */
    static bool enabled;
    /** Emit one trace line, prefixed with the current tick if >= 0. */
    static void print(long long tick, const char *component,
                      const std::string &msg);
};

} // namespace tlr

#define panic(...) \
    ::tlr::panicImpl(__FILE__, __LINE__, ::tlr::strfmt(__VA_ARGS__))
#define fatal(...) \
    ::tlr::fatalImpl(__FILE__, __LINE__, ::tlr::strfmt(__VA_ARGS__))
#define warn(...) ::tlr::warnImpl(::tlr::strfmt(__VA_ARGS__))
#define inform(...) ::tlr::informImpl(::tlr::strfmt(__VA_ARGS__))

/** Trace macro: DTRACE(tick, "Bus", "order %d", x). Cheap when off. */
#define DTRACE(tick, comp, ...)                                          \
    do {                                                                 \
        if (::tlr::Trace::enabled)                                       \
            ::tlr::Trace::print(static_cast<long long>(tick), comp,      \
                                ::tlr::strfmt(__VA_ARGS__));             \
    } while (0)

#endif // TLR_SIM_LOGGING_HH

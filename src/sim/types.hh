/**
 * @file
 * Fundamental simulator types shared by every module.
 */

#ifndef TLR_SIM_TYPES_HH
#define TLR_SIM_TYPES_HH

#include <cstdint>

namespace tlr
{

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Processor (and L1 controller) identifier. */
using CpuId = int;

/** Sentinel for "no cpu". */
constexpr CpuId invalidCpu = -1;

/** Cache line geometry. All caches in the system share one line size. */
constexpr unsigned lineShift = 6;
constexpr unsigned lineBytes = 1u << lineShift;        // 64 bytes
constexpr unsigned wordsPerLine = lineBytes / 8;       // 8 x u64 words

/** Round an address down to its containing line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Word index of an address within its line. Addresses are 8-byte
 *  aligned; the core asserts this at access time. */
constexpr unsigned
wordIndex(Addr a)
{
    return static_cast<unsigned>((a >> 3) & (wordsPerLine - 1));
}

} // namespace tlr

#endif // TLR_SIM_TYPES_HH

#include "sim/json.hh"

#include <cctype>
#include <cstdlib>

#include "sim/logging.hh"

namespace tlr
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : s_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        err_ = strfmt("json error at offset %zu: %s", pos_, what.c_str());
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        char c = s_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return parseLiteral(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key string");
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.elements.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                break;
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                // Keep it simple: the repo never emits \u escapes, so
                // pass the sequence through verbatim.
                out += "\\u";
                for (int i = 0; i < 4 && pos_ < s_.size(); ++i)
                    out += s_[pos_++];
                break;
              }
              default:
                return fail("bad string escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        pos_ += static_cast<size_t>(end - start);
        return true;
    }

    bool
    parseLiteral(JsonValue &out)
    {
        if (s_.compare(pos_, 4, "true") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        if (s_.compare(pos_, 4, "null") == 0) {
            out.kind = JsonValue::Kind::Null;
            pos_ += 4;
            return true;
        }
        return fail("unexpected token");
    }

    const std::string &s_;
    std::string &err_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    Parser p(text, err);
    return p.parse(out);
}

} // namespace tlr

/**
 * @file
 * Parallel discrete-event simulation kernel (DESIGN.md §13).
 *
 * Partitions one simulated machine into logical processes — one per
 * CPU (core + speculation engine + L1 controller) plus a fabric
 * partition (memory controller) — each owning a private pooled
 * timing-wheel EventQueue, a StatSet shard, a capture-mode TraceSink
 * and an independently seeded Rng stream. Worker threads advance the
 * partitions through conservative bounded windows derived from the
 * minimum cross-partition message latency (lookahead); everything a
 * partition does inside a window is local by construction.
 *
 * Cross-partition traffic never touches a foreign queue directly:
 *
 *  - point-to-point messages (data/marker/probe, latency >= lookahead)
 *    are staged in per-partition outboxes and committed at window
 *    barriers in deterministic (tick, source partition, seq) order;
 *  - address-network submits are staged the same way and replayed
 *    into the interconnect's private *ordering* EventQueue, which the
 *    coordinator advances between windows (the interconnect tells the
 *    kernel how far is safe via Interconnect::orderingNotice());
 *  - snoop deliveries / directory processing, which touch many
 *    partitions at once, come back from the ordering machine as
 *    *globals* (ParallelRouter::postGlobal) and run serialized on the
 *    coordinator at exact (tick, Snoop-priority) split points inside
 *    the window.
 *
 * The result is bit-identical to itself for every worker count: the
 * window/barrier/commit schedule depends only on the configuration,
 * never on thread interleaving. tests/test_determinism.cc and
 * tests/test_parallel.cc pin cycles, stats JSON and raw-trace bytes
 * across --threads=1/2/4/8 for the full scheme x workload matrix.
 */

#ifndef TLR_SIM_PARALLEL_KERNEL_HH
#define TLR_SIM_PARALLEL_KERNEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "coherence/interconnect.hh"
#include "coherence/messages.hh"
#include "mem/backing_store.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/sink.hh"

namespace tlr
{

class ParallelKernel;

/**
 * Per-partition fabric endpoint. Components constructed on a
 * partition (L1 controllers, the memory controller) send through
 * their FabricPort instead of calling the interconnect directly; the
 * port counts and traces the send locally (shard / capture sink) and
 * stages the message for barrier-ordered delivery.
 */
class FabricPort
{
  public:
    FabricPort(ParallelKernel &kernel, int partition, EventQueue &eq,
               StatSet &shard, TraceSink &sink, Tick data_latency,
               BackingStore &store);

    /** Address-network submit; ordered at the next window barrier. */
    void submit(const BusRequest &req);

    /** @{ Point-to-point sends; mirror Interconnect::send*. */
    void sendData(CpuId to, const DataMsg &msg);
    void sendMarker(CpuId to, const MarkerMsg &msg);
    void sendProbe(CpuId to, const ProbeMsg &msg);
    /** @} */

    /** Functional writeback; mirrors MemoryController::writeBack. */
    void writeBack(Addr line_addr, const LineData &data);

  private:
    ParallelKernel &kernel_;
    const int part_;
    EventQueue &eq_;
    TraceSink *trace_;
    const Tick dataLatency_;
    BackingStore &store_;
    std::uint64_t &dataMsgs_;
    std::uint64_t &markerMsgs_;
    std::uint64_t &probeMsgs_;
    std::uint64_t &writeBacks_;
};

class ParallelKernel : public ParallelRouter
{
  public:
    struct Config
    {
        int numCpus = 0;
        unsigned threads = 1;  ///< worker count (capped at partitions)
        Tick lookahead = 1;    ///< compat window size, >= 1
        Tick maxTicks = ~Tick{0};
        std::uint64_t seed = 0;
        Tick dataLatency = 20; ///< for FabricPort staging
        /** Coalesce same-split-point globals into one coordinator
         *  drain, skip barriers for provably empty segments, and run
         *  single-active-partition segments inline. Off = one barrier
         *  pair per global (PR 7 schedule). */
        bool batchedGlobals = true;
        /** Batched mode only: a segment whose total pending event
         *  count below the bound is at most this runs inline on the
         *  coordinator (index order — the threads=1 schedule) instead
         *  of paying a worker barrier. Split segments average ~a dozen
         *  events, so waking the pool for them is pure overhead. The
         *  decision reads only queue state, keeping pkernel counters
         *  thread-invariant. 0 disables multi-partition inlining. */
        std::size_t inlineEventLimit = 32;
        /** Derive each window from partition promises (next local
         *  event + min outbound latency) and the ordering horizon
         *  instead of the static worst-case lookahead. Off = fixed
         *  `lookahead` windows (PR 7 schedule). */
        bool dynamicLookahead = true;
        /** Explicit user cap on the dynamic window (t + cap); ~0 =
         *  uncapped. Only set when --lookahead asks for windows
         *  *smaller* than the derived promise allows. */
        Tick lookaheadCap = ~Tick{0};
        /** Record host-time phase attribution (chrono calls per
         *  phase; bench-only, not part of simulated state). */
        bool profilePhases = false;
    };

    /** Host-time attribution of the coordinator's run() loop, in
     *  nanoseconds (collected only when Config::profilePhases). The
     *  shares answer "where does the wall clock go": spinning at
     *  barriers, running serialized globals, replaying the ordering
     *  machine, executing the coordinator's own partitions, or
     *  committing outboxes / stitching trace. */
    struct PhaseProfile
    {
        std::uint64_t barrierWaitNs = 0; ///< coordinator waits on pool
        std::uint64_t serialGlobalNs = 0; ///< serialized global bodies
        std::uint64_t orderingNs = 0;     ///< advanceOrdering replay
        std::uint64_t partitionNs = 0;    ///< coordinator partitions
        std::uint64_t commitNs = 0;       ///< outbox commit + stitch
    };

    /** @param real_sink the System's sink; stitched records replay
     *  into it at window barriers. */
    ParallelKernel(const Config &cfg, BackingStore &store,
                   TraceSink &real_sink);
    ~ParallelKernel() override;

    int numPartitions() const { return static_cast<int>(parts_.size()); }

    /** Partition 0 is the fabric (memory controller); partition i+1
     *  owns CPU i's core, engine and L1. */
    EventQueue &queue(int p) { return parts_.at(p)->eq; }
    StatSet &shard(int p) { return parts_.at(p)->stats; }
    TraceSink &sink(int p) { return parts_.at(p)->sink; }
    FabricPort &port(int p) { return *parts_.at(p)->port; }
    Rng &partitionRng(int p) { return parts_.at(p)->rng; }

    /** Salt a partition's Rng stream is forked with from the machine
     *  seed; pinned by a golden-vector test so the derivation never
     *  drifts silently. */
    static std::uint64_t
    partitionSeedSalt(int p)
    {
        return 0x70617274ull + static_cast<std::uint64_t>(p);
    }

    /** The ordering machine's queue (arbitration / directory pump
     *  events); the interconnect is constructed on it. */
    EventQueue &orderingQueue() { return ordering_; }

    void setInterconnect(Interconnect *net);

    /** Register delivery targets, in CpuId order (same set the
     *  interconnect snoops). */
    void addSnooper(Snooper *s);

    /** Arm every partition's capture sink (call before run() when the
     *  real sink is armed; otherwise tracing stays zero-overhead). */
    void enableCapture();

    /** @{ FabricPort staging entry points (worker context). */
    void stageSubmit(int src, const BusRequest &req, Tick submit_tick);
    void stageData(int src, CpuId to, const DataMsg &msg, Tick when);
    void stageMarker(int src, CpuId to, const MarkerMsg &msg, Tick when);
    void stageProbe(int src, CpuId to, const ProbeMsg &msg, Tick when);
    /** @} */

    /** @{ ParallelRouter (called by the interconnect). */
    void postGlobal(Tick when, std::function<void()> fn) override;
    void postPartition(int cpu, Tick when,
                       std::function<void()> fn) override;
    TraceSink *partitionSink(int cpu) override
    {
        return &parts_.at(static_cast<std::size_t>(cpu) + 1)->sink;
    }
    Tick currentTick() const override { return curTick_; }
    /** @} */

    /**
     * Null-message-style promise for partition @p p: the earliest
     * tick at which anything it does next could become visible to
     * another partition (next local event tick + minimum outbound
     * effect latency). Monotonically non-decreasing between windows —
     * partitions only consume events, never schedule below their own
     * frontier — which is what lets quiescent partitions widen the
     * window instead of forcing worst-case 1-lookahead steps.
     */
    Tick partitionPromise(int p);

    /** Minimum ticks between a partition-local event and its earliest
     *  cross-partition effect under the current interconnect. */
    Tick minEffect() const { return minEffect_; }

    /** Host-time phase attribution (all zero unless
     *  Config::profilePhases). */
    const PhaseProfile &phaseProfile() const { return prof_; }

    /**
     * Drive the machine to completion.
     * @return true if every queue drained, false if maxTicks cut the
     *         run short (watchdog; livelock experiments).
     */
    bool run();

    /** Tick of the last executed event, across all partitions, the
     *  ordering machine and serialized globals. */
    Tick simNow() const { return simMax_; }

    /** Total events executed (partitions + ordering + globals); the
     *  same population a single-queue run counts in executed(). */
    std::uint64_t eventsExecuted() const;

    /** Fold every partition shard into @p dst (exact: counters are
     *  plain sums). */
    void mergeStatsInto(StatSet &dst) const;

  private:
    struct Staged
    {
        enum class Kind : std::uint8_t { Submit, Data, Marker, Probe };
        Kind kind = Kind::Submit;
        Tick when = 0;    ///< submit tick / delivery tick
        int src = 0;      ///< staging partition
        std::uint64_t seq = 0; ///< per-source monotone sequence
        CpuId to = invalidCpu;
        BusRequest req{};
        DataMsg data{};
        MarkerMsg marker{};
        ProbeMsg probe{};
    };

    struct Global
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::function<void()> fn;
    };

    struct Partition
    {
        EventQueue eq;
        StatSet stats;
        TraceSink sink;
        Rng rng;
        std::unique_ptr<FabricPort> port;
        std::vector<Staged> outbox;
        std::uint64_t srcSeq = 0;
        std::exception_ptr error;
    };

    /** Redirect every partition sink's capture buffer to the shared
     *  serial sink (on) or back to itself (off). Serialized phases —
     *  ordering replays and globals — emit through whichever
     *  component is acting, so only a shared buffer preserves their
     *  exact emission order; it sorts before partition records at
     *  equal ticks because those run after the serialized point. */
    void setSerialCapture(bool on);

    void startWorkers();
    void stopWorkers();
    void workerMain(unsigned w);
    void runPartitionsFor(unsigned w);
    /** Run every partition up to (bound_tick, bound_prio) and join.
     *  With Config::batchedGlobals the coordinator first peeks every
     *  partition queue (workers are parked, so this is race-free):
     *  zero partitions with work below the bound skips the barrier
     *  entirely, exactly one drains inline on the coordinator without
     *  waking the pool. The decision depends only on deterministic
     *  queue state — never on workers_ — so the pkernel counters stay
     *  bit-identical across thread counts. */
    void runSegment(Tick bound_tick, int bound_prio);
    /** The unconditional all-partitions dispatch runSegment falls
     *  back to (and the only path when batching is off). */
    void runSegmentBarrier(Tick bound_tick, int bound_prio);
    void rethrowWorkerError();
    /** Compute the window bound for the next window given the
     *  earliest pending tick @p t. */
    Tick windowBound(Tick t, Tick max_bound);

    /** Apply staged submits interleaved with ordering-machine events
     *  up to (excluding) @p bound, in deterministic order. */
    void advanceOrdering(Tick bound);
    /** Earliest pending tick across partitions, globals and the
     *  ordering machine; ~Tick{0} when everything drained. */
    Tick nextPendingTick();
    /** Execute one bounded window [frontier, w). */
    void executeWindow(Tick w);
    /** Move outboxes into the commit lists; schedule deliveries. */
    void commitOutboxes();
    /** Stitch partition capture buffers into tick order and replay
     *  them through the real sink. */
    void flushTrace();

    Config cfg_;
    BackingStore &store_;
    TraceSink &realSink_;
    Interconnect *net_ = nullptr;
    EventQueue ordering_;
    std::vector<std::unique_ptr<Partition>> parts_;
    std::vector<Snooper *> snoopers_;

    std::vector<Staged> stagedSubmits_; ///< pending, (when, src, seq)
    std::vector<Staged> sendScratch_;
    std::vector<Global> globals_;
    std::uint64_t nextGlobalSeq_ = 0;
    std::uint64_t globalsRun_ = 0;
    bool captureArmed_ = false;
    TraceSink serialSink_; ///< serialized-phase capture buffer

    Tick curTick_ = 0;  ///< serialized-context time (globals/barriers)
    Tick simMax_ = 0;
    Tick frontier_ = 0;   ///< end of the last committed window
    Tick minEffect_ = 1;  ///< see minEffect()

    /** @{ phase-attribution event counters ("pkernel" stats group).
     *  All maintained on the coordinator, merged in mergeStatsInto;
     *  deterministic functions of the configuration, so they are part
     *  of the thread-count bit-identity contract. */
    std::uint64_t windows_ = 0;        ///< bounded windows executed
    std::uint64_t barriers_ = 0;       ///< full segment dispatches
    std::uint64_t barrierSkips_ = 0;   ///< provably-empty segments
    std::uint64_t inlineSegments_ = 0; ///< single-partition drains
    std::uint64_t bankEvents_ = 0;     ///< postPartition routings
    /** @} */
    PhaseProfile prof_;

    /** @{ worker pool: generation-counter barrier. The coordinator
     *  doubles as worker 0; worker threads cover partitions
     *  p % workers == w. Segment bounds are plain fields published by
     *  the gen_ release-increment and read after the acquire-load. */
    unsigned workers_ = 1;
    Tick segBoundTick_ = 0;
    int segBoundPrio_ = 0;
    std::atomic<std::uint64_t> gen_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<bool> quit_{false};
    std::atomic<bool> errFlag_{false};
    std::vector<std::thread> pool_;
    /** @} */
};

} // namespace tlr

#endif // TLR_SIM_PARALLEL_KERNEL_HH

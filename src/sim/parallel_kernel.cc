#include "sim/parallel_kernel.hh"

#include <algorithm>
#include <chrono>
#include <tuple>

#include "sim/logging.hh"

namespace tlr
{

namespace
{

constexpr Tick kNoTick = ~Tick{0};

Tick
satAdd(Tick a, Tick b)
{
    Tick s = a + b;
    return s < a ? kNoTick : s;
}

/** Adds the scope's host duration to a PhaseProfile bucket; inert
 *  (no clock call) unless profiling is on. */
class ScopedNs
{
  public:
    ScopedNs(std::uint64_t &dst, bool on) : dst_(on ? &dst : nullptr)
    {
        if (dst_)
            t0_ = std::chrono::steady_clock::now();
    }
    ~ScopedNs()
    {
        if (dst_) {
            *dst_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0_)
                    .count());
        }
    }

  private:
    std::uint64_t *dst_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace

//
// ---- FabricPort ---------------------------------------------------------
//

FabricPort::FabricPort(ParallelKernel &kernel, int partition, EventQueue &eq,
                       StatSet &shard, TraceSink &sink, Tick data_latency,
                       BackingStore &store)
    : kernel_(kernel), part_(partition), eq_(eq), trace_(&sink),
      dataLatency_(data_latency), store_(store),
      dataMsgs_(shard.counter("net", "dataMsgs")),
      markerMsgs_(shard.counter("net", "markerMsgs")),
      probeMsgs_(shard.counter("net", "probeMsgs")),
      writeBacks_(shard.counter("mem", "writeBacks"))
{
}

void
FabricPort::submit(const BusRequest &req)
{
    kernel_.stageSubmit(part_, req, eq_.now());
}

void
FabricPort::sendData(CpuId to, const DataMsg &msg)
{
    ++dataMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohData,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to),
                     static_cast<std::uint64_t>(msg.grant));
    kernel_.stageData(part_, to, msg, eq_.now() + dataLatency_);
}

void
FabricPort::sendMarker(CpuId to, const MarkerMsg &msg)
{
    ++markerMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohMarker,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to));
    kernel_.stageMarker(part_, to, msg, eq_.now() + dataLatency_);
}

void
FabricPort::sendProbe(CpuId to, const ProbeMsg &msg)
{
    ++probeMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohProbe,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to), msg.ts.clock,
                     packTsMeta(msg.ts));
    kernel_.stageProbe(part_, to, msg, eq_.now() + dataLatency_);
}

void
FabricPort::writeBack(Addr line_addr, const LineData &data)
{
    ++writeBacks_;
    store_.writeLine(line_addr, data);
}

//
// ---- ParallelKernel -----------------------------------------------------
//

ParallelKernel::ParallelKernel(const Config &cfg, BackingStore &store,
                               TraceSink &real_sink)
    : cfg_(cfg), store_(store), realSink_(real_sink)
{
    if (cfg_.numCpus < 1)
        fatal("parallel kernel needs at least one cpu");
    if (cfg_.lookahead < 1)
        cfg_.lookahead = 1;
    if (cfg_.dataLatency < cfg_.lookahead)
        fatal("parallel kernel lookahead %llu exceeds data latency %llu",
              static_cast<unsigned long long>(cfg_.lookahead),
              static_cast<unsigned long long>(cfg_.dataLatency));
    const int numParts = cfg_.numCpus + 1;
    Rng root(cfg_.seed);
    parts_.reserve(static_cast<std::size_t>(numParts));
    for (int p = 0; p < numParts; ++p) {
        auto part = std::make_unique<Partition>();
        part->rng = root.fork(partitionSeedSalt(p));
        part->port = std::make_unique<FabricPort>(
            *this, p, part->eq, part->stats, part->sink, cfg_.dataLatency,
            store_);
        parts_.push_back(std::move(part));
    }
    workers_ = cfg_.threads ? cfg_.threads : 1;
    if (workers_ > static_cast<unsigned>(numParts))
        workers_ = static_cast<unsigned>(numParts);
}

ParallelKernel::~ParallelKernel()
{
    stopWorkers();
}

void
ParallelKernel::setInterconnect(Interconnect *net)
{
    net_ = net;
    // Minimum ticks between a partition-local event and its earliest
    // possible effect on another partition: either a data-network
    // delivery (dataLatency) or an address-network submit ordered and
    // delivered back (orderingNotice + globalPostLag). Floor of 1
    // keeps windows strictly advancing.
    if (net_) {
        minEffect_ = std::min(
            cfg_.dataLatency,
            satAdd(net_->orderingNotice(), net_->globalPostLag()));
        if (minEffect_ < 1)
            minEffect_ = 1;
    }
}

Tick
ParallelKernel::partitionPromise(int p)
{
    return satAdd(parts_.at(static_cast<std::size_t>(p))->eq.nextTick(),
                  minEffect_);
}

void
ParallelKernel::addSnooper(Snooper *s)
{
    if (s->id() != static_cast<CpuId>(snoopers_.size()))
        fatal("kernel snoopers must be added in CpuId order");
    snoopers_.push_back(s);
}

void
ParallelKernel::enableCapture()
{
    for (auto &p : parts_)
        p->sink.enableCapture();
    serialSink_.enableCapture();
    captureArmed_ = true;
}

void
ParallelKernel::setSerialCapture(bool on)
{
    if (!captureArmed_)
        return;
    for (auto &p : parts_)
        p->sink.setCaptureRedirect(on ? &serialSink_ : nullptr);
}

void
ParallelKernel::stageSubmit(int src, const BusRequest &req, Tick submit_tick)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Submit;
    s.when = submit_tick;
    s.src = src;
    s.seq = p.srcSeq++;
    s.req = req;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::stageData(int src, CpuId to, const DataMsg &msg, Tick when)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Data;
    s.when = when;
    s.src = src;
    s.seq = p.srcSeq++;
    s.to = to;
    s.data = msg;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::stageMarker(int src, CpuId to, const MarkerMsg &msg,
                            Tick when)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Marker;
    s.when = when;
    s.src = src;
    s.seq = p.srcSeq++;
    s.to = to;
    s.marker = msg;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::stageProbe(int src, CpuId to, const ProbeMsg &msg, Tick when)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Probe;
    s.when = when;
    s.src = src;
    s.seq = p.srcSeq++;
    s.to = to;
    s.probe = msg;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::postGlobal(Tick when, std::function<void()> fn)
{
    globals_.push_back(Global{when, nextGlobalSeq_++, std::move(fn)});
}

void
ParallelKernel::postPartition(int cpu, Tick when, std::function<void()> fn)
{
    // Bank-sharded interconnect work lands in its owning CPU's
    // partition as an ordinary partition event. Callers run in
    // serialized contexts (ordering machine / globals), so the
    // destination queue is quiescent; the delivery tick must not lie
    // behind the committed frontier.
    if (when < frontier_)
        panic("postPartition tick %llu behind frontier %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(frontier_));
    ++bankEvents_;
    parts_.at(static_cast<std::size_t>(cpu) + 1)
        ->eq.schedule(when, std::move(fn), EventPrio::DataResponse);
}

void
ParallelKernel::startWorkers()
{
    if (workers_ <= 1 || !pool_.empty())
        return;
    quit_.store(false, std::memory_order_relaxed);
    pool_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        pool_.emplace_back([this, w] { workerMain(w); });
}

void
ParallelKernel::stopWorkers()
{
    if (pool_.empty())
        return;
    quit_.store(true, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    for (std::thread &t : pool_)
        t.join();
    pool_.clear();
}

void
ParallelKernel::workerMain(unsigned w)
{
    std::uint64_t seen = 0;
    for (;;) {
        while (gen_.load(std::memory_order_acquire) == seen)
            std::this_thread::yield();
        ++seen;
        if (quit_.load(std::memory_order_relaxed))
            return;
        runPartitionsFor(w);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ParallelKernel::runPartitionsFor(unsigned w)
{
    for (std::size_t p = w; p < parts_.size(); p += workers_) {
        Partition &part = *parts_[p];
        if (part.error)
            continue;
        try {
            part.eq.runBounded(segBoundTick_, segBoundPrio_);
        } catch (...) {
            part.error = std::current_exception();
            errFlag_.store(true, std::memory_order_release);
        }
    }
}

void
ParallelKernel::runSegment(Tick bound_tick, int bound_prio)
{
    if (cfg_.batchedGlobals) {
        // Workers are parked between segments, so the coordinator may
        // peek every partition queue. Count partitions with work
        // strictly below the bound, and bound the total event count
        // (capped scan — we only care whether it is tiny); the
        // decision must depend only on queue state (never workers_)
        // so the pkernel counters are identical for every thread
        // count.
        const std::size_t limit = cfg_.inlineEventLimit;
        int count = 0;
        std::size_t pendingSum = 0;
        for (std::size_t p = 0; p < parts_.size(); ++p) {
            Tick t;
            int prio;
            if (parts_[p]->eq.peekNext(t, prio) &&
                (t < bound_tick ||
                 (t == bound_tick && prio < bound_prio))) {
                ++count;
                pendingSum += parts_[p]->eq.pending();
            }
        }
        if (count == 0) {
            ++barrierSkips_;
            return;
        }
        // pending() over-counts (it includes events at or past the
        // bound), so a sum within the limit proves the segment is
        // small without walking any queue; only the straddling case
        // pays for the exact capped scan.
        std::size_t below = pendingSum;
        if (count > 1 && pendingSum > limit) {
            below = 0;
            for (std::size_t p = 0;
                 p < parts_.size() && below <= limit; ++p)
                below += parts_[p]->eq.countBelow(
                    bound_tick, bound_prio, limit + 1 - below);
        }
        // One active partition, or so little total work that a worker
        // wake-up costs more than the events themselves: run the
        // segment inline in partition-index order. Partitions are
        // mutually independent below the bound (the conservative-
        // window guarantee), so any order — including this serial one,
        // which is exactly the threads=1 schedule — produces identical
        // state and per-partition trace buffers.
        if (count == 1 || below <= limit) {
            ++inlineSegments_;
            ScopedNs t(prof_.partitionNs, cfg_.profilePhases);
            for (auto &pp : parts_) {
                if (pp->error)
                    continue;
                try {
                    pp->eq.runBounded(bound_tick, bound_prio);
                } catch (...) {
                    pp->error = std::current_exception();
                    errFlag_.store(true, std::memory_order_release);
                }
            }
            if (errFlag_.load(std::memory_order_relaxed))
                rethrowWorkerError();
            return;
        }
    }
    runSegmentBarrier(bound_tick, bound_prio);
}

void
ParallelKernel::runSegmentBarrier(Tick bound_tick, int bound_prio)
{
    ++barriers_;
    segBoundTick_ = bound_tick;
    segBoundPrio_ = bound_prio;
    if (workers_ > 1) {
        done_.store(0, std::memory_order_relaxed);
        gen_.fetch_add(1, std::memory_order_release);
    }
    {
        ScopedNs t(prof_.partitionNs, cfg_.profilePhases);
        runPartitionsFor(0);
    }
    if (workers_ > 1) {
        ScopedNs t(prof_.barrierWaitNs, cfg_.profilePhases);
        while (done_.load(std::memory_order_acquire) < workers_ - 1)
            std::this_thread::yield();
    }
    if (errFlag_.load(std::memory_order_relaxed))
        rethrowWorkerError();
}

void
ParallelKernel::rethrowWorkerError()
{
    stopWorkers();
    for (auto &p : parts_) {
        if (p->error) {
            std::exception_ptr e = p->error;
            p->error = nullptr;
            std::rethrow_exception(e);
        }
    }
}

void
ParallelKernel::advanceOrdering(Tick bound)
{
    // Merge staged submits (all below the frontier) with the ordering
    // machine's own events: an event at tick q runs before a submit
    // whose issue tick is >= q, matching single-queue priority order
    // (arbitration/arrival events outrank core-context submits within
    // a tick).
    setSerialCapture(true);
    std::size_t si = 0;
    for (;;) {
        Tick q;
        int qp;
        const bool has = ordering_.peekNext(q, qp);
        if (si < stagedSubmits_.size()) {
            const Staged &s = stagedSubmits_[si];
            if (!has || q > s.when) {
                curTick_ = s.when;
                net_->submitArrive(s.req, s.when);
                ++si;
                continue;
            }
        }
        if (!has || q >= bound)
            break;
        curTick_ = q;
        ordering_.step();
        if (ordering_.now() > simMax_)
            simMax_ = ordering_.now();
    }
    setSerialCapture(false);
    if (si != stagedSubmits_.size())
        panic("staged submit at tick %llu not applied (bound %llu)",
              static_cast<unsigned long long>(stagedSubmits_[si].when),
              static_cast<unsigned long long>(bound));
    stagedSubmits_.clear();
}

Tick
ParallelKernel::nextPendingTick()
{
    Tick t = kNoTick;
    for (auto &p : parts_)
        t = std::min(t, p->eq.nextTick());
    for (const Global &g : globals_)
        t = std::min(t, g.when);
    Tick q;
    int qp;
    if (ordering_.peekNext(q, qp))
        t = std::min(t, q);
    return t;
}

void
ParallelKernel::executeWindow(Tick w)
{
    // Globals split the window into segments: every partition runs up
    // to the exact (tick, Snoop) point of the next serialized event,
    // which then executes alone on the coordinator — the same
    // interleaving a single queue produces with snoop deliveries at
    // EventPrio::Snoop.
    std::sort(globals_.begin(), globals_.end(),
              [](const Global &a, const Global &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.seq < b.seq;
              });
    std::size_t gi = 0;
    while (gi < globals_.size() && globals_[gi].when < w) {
        const Tick gt = globals_[gi].when;
        runSegment(gt, static_cast<int>(EventPrio::Snoop));
        for (auto &p : parts_)
            p->eq.advanceNow(gt);
        curTick_ = gt;
        setSerialCapture(true);
        {
            ScopedNs t(prof_.serialGlobalNs, cfg_.profilePhases);
            // Batched mode drains every global sharing this
            // (tick, Snoop) split point under the one segment; the
            // partitions are already bounded at exactly this point,
            // so running them back to back is the single-queue order.
            // Globals never post further globals (only ordering
            // events do), so the batch is stable while it drains.
            do {
                globals_[gi].fn();
                ++globalsRun_;
                ++gi;
            } while (cfg_.batchedGlobals && gi < globals_.size() &&
                     globals_[gi].when == gt);
        }
        setSerialCapture(false);
        if (gt > simMax_)
            simMax_ = gt;
    }
    globals_.erase(globals_.begin(),
                   globals_.begin() + static_cast<std::ptrdiff_t>(gi));
    runSegment(w, 0);
    for (auto &p : parts_)
        if (p->eq.executed() && p->eq.now() > simMax_)
            simMax_ = p->eq.now();
}

void
ParallelKernel::commitOutboxes()
{
    sendScratch_.clear();
    for (auto &pp : parts_) {
        for (Staged &s : pp->outbox) {
            if (s.kind == Staged::Kind::Submit)
                stagedSubmits_.push_back(std::move(s));
            else
                sendScratch_.push_back(std::move(s));
        }
        pp->outbox.clear();
    }
    auto lt = [](const Staged &a, const Staged &b) {
        return std::make_tuple(a.when, a.src, a.seq) <
               std::make_tuple(b.when, b.src, b.seq);
    };
    std::sort(stagedSubmits_.begin(), stagedSubmits_.end(), lt);
    std::sort(sendScratch_.begin(), sendScratch_.end(), lt);
    // Deliveries land dataLatency past the producing event, and the
    // window bound never exceeds (earliest pending event + minEffect)
    // with minEffect <= dataLatency, so destination queues have not
    // run past these ticks; batches across barriers have ascending
    // tick ranges, so insertion order (hence seq order within a tick)
    // is independent of the window policy and worker count.
    for (const Staged &s : sendScratch_) {
        Snooper *sn = snoopers_.at(static_cast<std::size_t>(s.to));
        EventQueue &dq = parts_.at(static_cast<std::size_t>(s.to) + 1)->eq;
        switch (s.kind) {
          case Staged::Kind::Data: {
            DataMsg m = s.data;
            dq.schedule(s.when, [sn, m] { sn->dataResponse(m); },
                        EventPrio::DataResponse);
            break;
          }
          case Staged::Kind::Marker: {
            MarkerMsg m = s.marker;
            dq.schedule(s.when, [sn, m] { sn->marker(m); },
                        EventPrio::DataResponse);
            break;
          }
          case Staged::Kind::Probe: {
            ProbeMsg m = s.probe;
            dq.schedule(s.when, [sn, m] { sn->probe(m); },
                        EventPrio::DataResponse);
            break;
          }
          case Staged::Kind::Submit:
            break;
        }
    }
}

void
ParallelKernel::flushTrace()
{
    if (!captureArmed_)
        return;
    struct Key
    {
        Tick tick;
        int part; ///< -1 = serial buffer; sorts before partitions
        std::size_t idx;
    };
    std::size_t total = serialSink_.captured().size();
    for (auto &p : parts_)
        total += p->sink.captured().size();
    if (total == 0)
        return;
    std::vector<Key> keys;
    keys.reserve(total);
    {
        const auto &buf = serialSink_.captured();
        for (std::size_t i = 0; i < buf.size(); ++i)
            keys.push_back(Key{buf[i].tick, -1, i});
    }
    for (int p = 0; p < numPartitions(); ++p) {
        const auto &buf = parts_[static_cast<std::size_t>(p)]->sink
                              .captured();
        for (std::size_t i = 0; i < buf.size(); ++i)
            keys.push_back(Key{buf[i].tick, p, i});
    }
    // (tick, buffer, emission index) order. Everything buffered
    // predates the current frontier, so later flushes only ever
    // append later ticks and the stitched stream is globally
    // tick-sorted. Within a tick the serialized-phase records come
    // first — partition events at that tick ran after the serialized
    // split point — in their exact emission order; partition records
    // follow in (partition, emission) order.
    std::sort(keys.begin(), keys.end(), [](const Key &a, const Key &b) {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.part != b.part)
            return a.part < b.part;
        return a.idx < b.idx;
    });
    for (const Key &k : keys) {
        const TraceRecord &r =
            k.part < 0 ?
                serialSink_.captured()[k.idx] :
                parts_[static_cast<std::size_t>(k.part)]->sink
                    .captured()[k.idx];
        realSink_.emitRecord(r);
    }
    serialSink_.captured().clear();
    for (auto &p : parts_)
        p->sink.captured().clear();
}

Tick
ParallelKernel::windowBound(Tick t, Tick max_bound)
{
    if (!cfg_.dynamicLookahead) {
        // Compat (PR 7) schedule: fixed worst-case windows, clamped
        // at pending ordering events when they can post globals at
        // (or near) their own tick — the directory pump; the
        // broadcast bus posts snoopLatency out, which always covers
        // the lookahead, so its windows stay full-size.
        Tick w = std::min(satAdd(t, cfg_.lookahead), max_bound);
        if (net_->globalPostLag() < cfg_.lookahead) {
            Tick q;
            int qp;
            if (ordering_.peekNext(q, qp) && q < w)
                w = q;
        }
        return w;
    }
    // Protocol-aware dynamic window. Each partition promises it
    // cannot affect another before (next local event + minEffect);
    // pending globals act at their own tick, so they join the
    // minimum directly. The ordering machine additionally bounds the
    // window at (its next event + globalPostLag): anything it does
    // lands at least postLag out as a global. The window may run to
    // the smallest of those horizons — typically several times the
    // static worst-case lookahead once most partitions are quiescent
    // (spinning cores with empty queues promise infinity).
    Tick min_pend = kNoTick;
    for (auto &p : parts_)
        min_pend = std::min(min_pend, p->eq.nextTick());
    for (const Global &g : globals_)
        min_pend = std::min(min_pend, g.when);
    Tick w = satAdd(min_pend, minEffect_);
    Tick q;
    int qp;
    if (ordering_.peekNext(q, qp))
        w = std::min(w, satAdd(q, net_->globalPostLag()));
    w = std::min(w, max_bound);
    // An explicit --lookahead below the derived promise is honored as
    // a cap (stress configs deliberately force small windows).
    if (cfg_.lookaheadCap != kNoTick)
        w = std::min(w, satAdd(t, cfg_.lookaheadCap));
    return w;
}

bool
ParallelKernel::run()
{
    if (!net_)
        fatal("parallel kernel started without an interconnect");
    setInterconnect(net_); // recompute minEffect_ against final net
    startWorkers();
    struct StopGuard
    {
        ParallelKernel *k;
        ~StopGuard() { k->stopWorkers(); }
    } stop{this};

    const Tick maxT = cfg_.maxTicks;
    const Tick maxBound = satAdd(maxT, 1);
    const Tick notice = net_->orderingNotice();
    frontier_ = 0;
    for (;;) {
        {
            ScopedNs t(prof_.orderingNs, cfg_.profilePhases);
            advanceOrdering(std::min(satAdd(frontier_, notice),
                                     maxBound));
        }
        {
            ScopedNs t(prof_.commitNs, cfg_.profilePhases);
            flushTrace();
        }
        Tick t = nextPendingTick();
        if (t == kNoTick)
            return true;
        if (t > maxT)
            return false;
        Tick w = windowBound(t, maxBound);
        executeWindow(w);
        {
            ScopedNs ts(prof_.commitNs, cfg_.profilePhases);
            commitOutboxes();
        }
        frontier_ = w;
        ++windows_;
    }
}

std::uint64_t
ParallelKernel::eventsExecuted() const
{
    std::uint64_t total = ordering_.executed() + globalsRun_;
    for (const auto &p : parts_)
        total += p->eq.executed();
    return total;
}

void
ParallelKernel::mergeStatsInto(StatSet &dst) const
{
    for (const auto &p : parts_)
        dst.mergeFrom(p->stats);
    // Phase attribution: how the executed event population splits
    // across the kernel's execution modes, plus the window/barrier
    // schedule itself. Deterministic functions of the configuration —
    // these merge into stats-json and must stay bit-identical across
    // worker counts (pinned by tests/test_determinism.cc).
    std::uint64_t part_events = 0;
    for (const auto &p : parts_)
        part_events += p->eq.executed();
    dst.counter("pkernel", "windows") += windows_;
    dst.counter("pkernel", "barriers") += barriers_;
    dst.counter("pkernel", "barrierSkips") += barrierSkips_;
    dst.counter("pkernel", "inlineSegments") += inlineSegments_;
    dst.counter("pkernel", "serialGlobals") += globalsRun_;
    dst.counter("pkernel", "orderingEvents") += ordering_.executed();
    dst.counter("pkernel", "partitionEvents") += part_events;
    dst.counter("pkernel", "bankEvents") += bankEvents_;
}

} // namespace tlr

#include "sim/parallel_kernel.hh"

#include <algorithm>
#include <tuple>

#include "sim/logging.hh"

namespace tlr
{

namespace
{

constexpr Tick kNoTick = ~Tick{0};

Tick
satAdd(Tick a, Tick b)
{
    Tick s = a + b;
    return s < a ? kNoTick : s;
}

} // namespace

//
// ---- FabricPort ---------------------------------------------------------
//

FabricPort::FabricPort(ParallelKernel &kernel, int partition, EventQueue &eq,
                       StatSet &shard, TraceSink &sink, Tick data_latency,
                       BackingStore &store)
    : kernel_(kernel), part_(partition), eq_(eq), trace_(&sink),
      dataLatency_(data_latency), store_(store),
      dataMsgs_(shard.counter("net", "dataMsgs")),
      markerMsgs_(shard.counter("net", "markerMsgs")),
      probeMsgs_(shard.counter("net", "probeMsgs")),
      writeBacks_(shard.counter("mem", "writeBacks"))
{
}

void
FabricPort::submit(const BusRequest &req)
{
    kernel_.stageSubmit(part_, req, eq_.now());
}

void
FabricPort::sendData(CpuId to, const DataMsg &msg)
{
    ++dataMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohData,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to),
                     static_cast<std::uint64_t>(msg.grant));
    kernel_.stageData(part_, to, msg, eq_.now() + dataLatency_);
}

void
FabricPort::sendMarker(CpuId to, const MarkerMsg &msg)
{
    ++markerMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohMarker,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to));
    kernel_.stageMarker(part_, to, msg, eq_.now() + dataLatency_);
}

void
FabricPort::sendProbe(CpuId to, const ProbeMsg &msg)
{
    ++probeMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohProbe,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to), msg.ts.clock,
                     packTsMeta(msg.ts));
    kernel_.stageProbe(part_, to, msg, eq_.now() + dataLatency_);
}

void
FabricPort::writeBack(Addr line_addr, const LineData &data)
{
    ++writeBacks_;
    store_.writeLine(line_addr, data);
}

//
// ---- ParallelKernel -----------------------------------------------------
//

ParallelKernel::ParallelKernel(const Config &cfg, BackingStore &store,
                               TraceSink &real_sink)
    : cfg_(cfg), store_(store), realSink_(real_sink)
{
    if (cfg_.numCpus < 1)
        fatal("parallel kernel needs at least one cpu");
    if (cfg_.lookahead < 1)
        cfg_.lookahead = 1;
    if (cfg_.dataLatency < cfg_.lookahead)
        fatal("parallel kernel lookahead %llu exceeds data latency %llu",
              static_cast<unsigned long long>(cfg_.lookahead),
              static_cast<unsigned long long>(cfg_.dataLatency));
    const int numParts = cfg_.numCpus + 1;
    Rng root(cfg_.seed);
    parts_.reserve(static_cast<std::size_t>(numParts));
    for (int p = 0; p < numParts; ++p) {
        auto part = std::make_unique<Partition>();
        part->rng = root.fork(partitionSeedSalt(p));
        part->port = std::make_unique<FabricPort>(
            *this, p, part->eq, part->stats, part->sink, cfg_.dataLatency,
            store_);
        parts_.push_back(std::move(part));
    }
    workers_ = cfg_.threads ? cfg_.threads : 1;
    if (workers_ > static_cast<unsigned>(numParts))
        workers_ = static_cast<unsigned>(numParts);
}

ParallelKernel::~ParallelKernel()
{
    stopWorkers();
}

void
ParallelKernel::addSnooper(Snooper *s)
{
    if (s->id() != static_cast<CpuId>(snoopers_.size()))
        fatal("kernel snoopers must be added in CpuId order");
    snoopers_.push_back(s);
}

void
ParallelKernel::enableCapture()
{
    for (auto &p : parts_)
        p->sink.enableCapture();
    serialSink_.enableCapture();
    captureArmed_ = true;
}

void
ParallelKernel::setSerialCapture(bool on)
{
    if (!captureArmed_)
        return;
    for (auto &p : parts_)
        p->sink.setCaptureRedirect(on ? &serialSink_ : nullptr);
}

void
ParallelKernel::stageSubmit(int src, const BusRequest &req, Tick submit_tick)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Submit;
    s.when = submit_tick;
    s.src = src;
    s.seq = p.srcSeq++;
    s.req = req;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::stageData(int src, CpuId to, const DataMsg &msg, Tick when)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Data;
    s.when = when;
    s.src = src;
    s.seq = p.srcSeq++;
    s.to = to;
    s.data = msg;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::stageMarker(int src, CpuId to, const MarkerMsg &msg,
                            Tick when)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Marker;
    s.when = when;
    s.src = src;
    s.seq = p.srcSeq++;
    s.to = to;
    s.marker = msg;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::stageProbe(int src, CpuId to, const ProbeMsg &msg, Tick when)
{
    Partition &p = *parts_.at(static_cast<std::size_t>(src));
    Staged s;
    s.kind = Staged::Kind::Probe;
    s.when = when;
    s.src = src;
    s.seq = p.srcSeq++;
    s.to = to;
    s.probe = msg;
    p.outbox.push_back(std::move(s));
}

void
ParallelKernel::postGlobal(Tick when, std::function<void()> fn)
{
    globals_.push_back(Global{when, nextGlobalSeq_++, std::move(fn)});
}

void
ParallelKernel::startWorkers()
{
    if (workers_ <= 1 || !pool_.empty())
        return;
    quit_.store(false, std::memory_order_relaxed);
    pool_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        pool_.emplace_back([this, w] { workerMain(w); });
}

void
ParallelKernel::stopWorkers()
{
    if (pool_.empty())
        return;
    quit_.store(true, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    for (std::thread &t : pool_)
        t.join();
    pool_.clear();
}

void
ParallelKernel::workerMain(unsigned w)
{
    std::uint64_t seen = 0;
    for (;;) {
        while (gen_.load(std::memory_order_acquire) == seen)
            std::this_thread::yield();
        ++seen;
        if (quit_.load(std::memory_order_relaxed))
            return;
        runPartitionsFor(w);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ParallelKernel::runPartitionsFor(unsigned w)
{
    for (std::size_t p = w; p < parts_.size(); p += workers_) {
        Partition &part = *parts_[p];
        if (part.error)
            continue;
        try {
            part.eq.runBounded(segBoundTick_, segBoundPrio_);
        } catch (...) {
            part.error = std::current_exception();
            errFlag_.store(true, std::memory_order_release);
        }
    }
}

void
ParallelKernel::runSegment(Tick bound_tick, int bound_prio)
{
    segBoundTick_ = bound_tick;
    segBoundPrio_ = bound_prio;
    if (workers_ > 1) {
        done_.store(0, std::memory_order_relaxed);
        gen_.fetch_add(1, std::memory_order_release);
    }
    runPartitionsFor(0);
    if (workers_ > 1) {
        while (done_.load(std::memory_order_acquire) < workers_ - 1)
            std::this_thread::yield();
    }
    if (errFlag_.load(std::memory_order_relaxed))
        rethrowWorkerError();
}

void
ParallelKernel::rethrowWorkerError()
{
    stopWorkers();
    for (auto &p : parts_) {
        if (p->error) {
            std::exception_ptr e = p->error;
            p->error = nullptr;
            std::rethrow_exception(e);
        }
    }
}

void
ParallelKernel::advanceOrdering(Tick bound)
{
    // Merge staged submits (all below the frontier) with the ordering
    // machine's own events: an event at tick q runs before a submit
    // whose issue tick is >= q, matching single-queue priority order
    // (arbitration/arrival events outrank core-context submits within
    // a tick).
    setSerialCapture(true);
    std::size_t si = 0;
    for (;;) {
        Tick q;
        int qp;
        const bool has = ordering_.peekNext(q, qp);
        if (si < stagedSubmits_.size()) {
            const Staged &s = stagedSubmits_[si];
            if (!has || q > s.when) {
                curTick_ = s.when;
                net_->submitArrive(s.req, s.when);
                ++si;
                continue;
            }
        }
        if (!has || q >= bound)
            break;
        curTick_ = q;
        ordering_.step();
        if (ordering_.now() > simMax_)
            simMax_ = ordering_.now();
    }
    setSerialCapture(false);
    if (si != stagedSubmits_.size())
        panic("staged submit at tick %llu not applied (bound %llu)",
              static_cast<unsigned long long>(stagedSubmits_[si].when),
              static_cast<unsigned long long>(bound));
    stagedSubmits_.clear();
}

Tick
ParallelKernel::nextPendingTick()
{
    Tick t = kNoTick;
    for (auto &p : parts_)
        t = std::min(t, p->eq.nextTick());
    for (const Global &g : globals_)
        t = std::min(t, g.when);
    Tick q;
    int qp;
    if (ordering_.peekNext(q, qp))
        t = std::min(t, q);
    return t;
}

void
ParallelKernel::executeWindow(Tick w)
{
    // Globals split the window into segments: every partition runs up
    // to the exact (tick, Snoop) point of the next serialized event,
    // which then executes alone on the coordinator — the same
    // interleaving a single queue produces with snoop deliveries at
    // EventPrio::Snoop.
    std::sort(globals_.begin(), globals_.end(),
              [](const Global &a, const Global &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.seq < b.seq;
              });
    std::size_t gi = 0;
    for (; gi < globals_.size() && globals_[gi].when < w; ++gi) {
        Global &g = globals_[gi];
        runSegment(g.when, static_cast<int>(EventPrio::Snoop));
        for (auto &p : parts_)
            p->eq.advanceNow(g.when);
        curTick_ = g.when;
        setSerialCapture(true);
        g.fn();
        setSerialCapture(false);
        ++globalsRun_;
        if (g.when > simMax_)
            simMax_ = g.when;
    }
    globals_.erase(globals_.begin(),
                   globals_.begin() + static_cast<std::ptrdiff_t>(gi));
    runSegment(w, 0);
    for (auto &p : parts_)
        if (p->eq.executed() && p->eq.now() > simMax_)
            simMax_ = p->eq.now();
}

void
ParallelKernel::commitOutboxes()
{
    sendScratch_.clear();
    for (auto &pp : parts_) {
        for (Staged &s : pp->outbox) {
            if (s.kind == Staged::Kind::Submit)
                stagedSubmits_.push_back(std::move(s));
            else
                sendScratch_.push_back(std::move(s));
        }
        pp->outbox.clear();
    }
    auto lt = [](const Staged &a, const Staged &b) {
        return std::make_tuple(a.when, a.src, a.seq) <
               std::make_tuple(b.when, b.src, b.seq);
    };
    std::sort(stagedSubmits_.begin(), stagedSubmits_.end(), lt);
    std::sort(sendScratch_.begin(), sendScratch_.end(), lt);
    // Deliveries land at least one lookahead past the window that
    // produced them, so destination queues have not run past these
    // ticks; batches across barriers have ascending tick ranges, so
    // insertion order (hence seq order within a tick) is independent
    // of the lookahead and worker count.
    for (const Staged &s : sendScratch_) {
        Snooper *sn = snoopers_.at(static_cast<std::size_t>(s.to));
        EventQueue &dq = parts_.at(static_cast<std::size_t>(s.to) + 1)->eq;
        switch (s.kind) {
          case Staged::Kind::Data: {
            DataMsg m = s.data;
            dq.schedule(s.when, [sn, m] { sn->dataResponse(m); },
                        EventPrio::DataResponse);
            break;
          }
          case Staged::Kind::Marker: {
            MarkerMsg m = s.marker;
            dq.schedule(s.when, [sn, m] { sn->marker(m); },
                        EventPrio::DataResponse);
            break;
          }
          case Staged::Kind::Probe: {
            ProbeMsg m = s.probe;
            dq.schedule(s.when, [sn, m] { sn->probe(m); },
                        EventPrio::DataResponse);
            break;
          }
          case Staged::Kind::Submit:
            break;
        }
    }
}

void
ParallelKernel::flushTrace()
{
    if (!captureArmed_)
        return;
    struct Key
    {
        Tick tick;
        int part; ///< -1 = serial buffer; sorts before partitions
        std::size_t idx;
    };
    std::size_t total = serialSink_.captured().size();
    for (auto &p : parts_)
        total += p->sink.captured().size();
    if (total == 0)
        return;
    std::vector<Key> keys;
    keys.reserve(total);
    {
        const auto &buf = serialSink_.captured();
        for (std::size_t i = 0; i < buf.size(); ++i)
            keys.push_back(Key{buf[i].tick, -1, i});
    }
    for (int p = 0; p < numPartitions(); ++p) {
        const auto &buf = parts_[static_cast<std::size_t>(p)]->sink
                              .captured();
        for (std::size_t i = 0; i < buf.size(); ++i)
            keys.push_back(Key{buf[i].tick, p, i});
    }
    // (tick, buffer, emission index) order. Everything buffered
    // predates the current frontier, so later flushes only ever
    // append later ticks and the stitched stream is globally
    // tick-sorted. Within a tick the serialized-phase records come
    // first — partition events at that tick ran after the serialized
    // split point — in their exact emission order; partition records
    // follow in (partition, emission) order.
    std::sort(keys.begin(), keys.end(), [](const Key &a, const Key &b) {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.part != b.part)
            return a.part < b.part;
        return a.idx < b.idx;
    });
    for (const Key &k : keys) {
        const TraceRecord &r =
            k.part < 0 ?
                serialSink_.captured()[k.idx] :
                parts_[static_cast<std::size_t>(k.part)]->sink
                    .captured()[k.idx];
        realSink_.emitRecord(r);
    }
    serialSink_.captured().clear();
    for (auto &p : parts_)
        p->sink.captured().clear();
}

bool
ParallelKernel::run()
{
    if (!net_)
        fatal("parallel kernel started without an interconnect");
    startWorkers();
    struct StopGuard
    {
        ParallelKernel *k;
        ~StopGuard() { k->stopWorkers(); }
    } stop{this};

    const Tick maxT = cfg_.maxTicks;
    const Tick maxBound = satAdd(maxT, 1);
    const Tick notice = net_->orderingNotice();
    // When ordering events post globals at (or near) their own tick —
    // the directory pump — a window may not run past a pending
    // ordering event; the broadcast bus posts snoopLatency out, which
    // always covers the lookahead, so its windows stay full-size.
    const bool boundAtOrdering = net_->globalPostLag() < cfg_.lookahead;
    Tick frontier = 0;
    for (;;) {
        advanceOrdering(std::min(satAdd(frontier, notice), maxBound));
        flushTrace();
        Tick t = nextPendingTick();
        if (t == kNoTick)
            return true;
        if (t > maxT)
            return false;
        Tick w = std::min(satAdd(t, cfg_.lookahead), maxBound);
        if (boundAtOrdering) {
            Tick q;
            int qp;
            if (ordering_.peekNext(q, qp) && q < w)
                w = q;
        }
        executeWindow(w);
        commitOutboxes();
        frontier = w;
    }
}

std::uint64_t
ParallelKernel::eventsExecuted() const
{
    std::uint64_t total = ordering_.executed() + globalsRun_;
    for (const auto &p : parts_)
        total += p->eq.executed();
    return total;
}

void
ParallelKernel::mergeStatsInto(StatSet &dst) const
{
    for (const auto &p : parts_)
        dst.mergeFrom(p->stats);
}

} // namespace tlr

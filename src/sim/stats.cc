#include "sim/stats.hh"

#include <sstream>

#include "sim/build_info.hh"

namespace tlr
{

std::uint64_t &
StatSet::counter(const std::string &group, const std::string &name)
{
    return vals_[group + "." + name];
}

std::uint64_t
StatSet::get(const std::string &group, const std::string &name) const
{
    auto it = vals_.find(group + "." + name);
    return it == vals_.end() ? 0 : it->second;
}

std::uint64_t
StatSet::sum(const std::string &groupPrefix, const std::string &name) const
{
    std::uint64_t total = 0;
    const std::string suffix = "." + name;
    for (const auto &[key, val] : vals_) {
        if (key.rfind(groupPrefix, 0) == 0 && key.size() > suffix.size() &&
            key.compare(key.size() - suffix.size(), suffix.size(), suffix)
                == 0) {
            total += val;
        }
    }
    return total;
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[key, val] : vals_)
        if (prefix.empty() || key.rfind(prefix, 0) == 0)
            os << key << " = " << val << "\n";
    return os.str();
}

std::string
StatSet::dumpJson(const std::string &extra_sections) const
{
    // Keys are "group.name" identifiers (no quotes/backslashes), so
    // plain quoting is sufficient.
    std::ostringstream os;
    os << "{\n";
    // Counter-only dumps keep the v2 layout; embedding extra sections
    // (the metrics object) switches the document to the v3 schema.
    os << "  \"schema_version\": "
       << (extra_sections.empty() ? statsSchemaVersion
                                  : metricsSchemaVersion)
       << ",\n";
    os << "  \"meta\": " << buildMetaJson() << ",\n";
    os << "  \"counters\": {\n";
    bool first = true;
    for (const auto &[key, val] : vals_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "    \"" << key << "\": " << val;
    }
    os << "\n  }";
    if (!extra_sections.empty())
        os << ",\n" << extra_sections;
    os << "\n}\n";
    return os.str();
}

} // namespace tlr

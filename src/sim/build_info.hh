/**
 * @file
 * Build/host metadata and the stats JSON schema version.
 *
 * Every versioned JSON dump (tlrsim --stats-json, bench_kernel --json,
 * BENCH_kernel.json) carries a `schema_version` plus a `meta` object
 * identifying the compiler, build flags and git revision that produced
 * it, so tools/tlrstat can refuse to diff documents whose layouts
 * disagree and so perf numbers are traceable to a build.
 */

#ifndef TLR_SIM_BUILD_INFO_HH
#define TLR_SIM_BUILD_INFO_HH

#include <string>

namespace tlr
{

/** Version of the dumped stats/metrics JSON layout. v1 was the flat
 *  "group.name": value object; v2 wraps those counters under
 *  "counters" and adds meta + optional metrics sections. Bump on any
 *  shape change — tlrstat exits 2 on a version mismatch. */
inline constexpr int statsSchemaVersion = 2;

/** Version of dumps that embed a "metrics" section (tlrsim with
 *  TLR_METRICS, bench_db --bench-json). v3 = v2 plus the per-workload
 *  abort digest ("aborts": abort_rate + hottest lock) inside the
 *  metrics object. Counter-only dumps keep statsSchemaVersion, so
 *  metrics-off output is bit-identical across this bump. */
inline constexpr int metricsSchemaVersion = 3;

/** Version of the binary trace file layout (--trace-raw). Mirrored by
 *  RawTraceHeader::version; kept here so `--version` can print every
 *  schema in one place. */
inline constexpr int rawTraceFormatVersion = 1;

/** Version of the epoch-timeline layout: the "timeline" stats-json
 *  section, the --timeline-out CSV and the TimelineAlert record shape
 *  (src/timeline/). Bump on any shape or detector-semantics change. */
inline constexpr int timelineSchemaVersion = 1;

/** Version of the run-ledger bundle layout (src/report/): the
 *  manifest.json shape, the entry directory naming scheme and the set
 *  of artifact files a bundle may carry. tlrreport refuses bundles
 *  from a different bundle schema. Bump on any layout change. */
inline constexpr int reportBundleSchemaVersion = 1;

/** Version of the tlrstat --json diff document (one row object per
 *  DiffRow; src/metrics/statdiff). Bump on any shape change. */
inline constexpr int diffJsonSchemaVersion = 1;

const char *buildCompiler(); ///< e.g. "gcc 13.2.0"
const char *buildFlags();    ///< CMAKE_CXX_FLAGS the library was built with
const char *buildGitSha();   ///< short HEAD sha at configure time
const char *buildType();     ///< CMAKE_BUILD_TYPE

/** The complete "meta" JSON object (one line, no trailing newline). */
std::string buildMetaJson();

/** The `--version` text shared by tlrsim/tlrquery/tlrstat: tool name,
 *  build metadata, and every schema version in one place. */
std::string versionString(const char *tool);

} // namespace tlr

#endif // TLR_SIM_BUILD_INFO_HH

#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace tlr
{

void
EventQueue::schedule(Tick when, Callback cb, EventPrio prio)
{
    if (when < _now)
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    heap_.push(Item{when, static_cast<int>(prio), seq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never compare the moved item.
    Item item = std::move(const_cast<Item &>(heap_.top()));
    heap_.pop();
    _now = item.when;
    ++executed_;
    item.cb();
    return true;
}

bool
EventQueue::run(Tick maxTick)
{
    stopRequested_ = false;
    while (!heap_.empty()) {
        if (heap_.top().when > maxTick)
            return false;
        step();
        if (stopRequested_)
            return true;
    }
    return true;
}

void
EventQueue::reset()
{
    heap_ = {};
    _now = 0;
    seq_ = 0;
    executed_ = 0;
    stopRequested_ = false;
}

} // namespace tlr

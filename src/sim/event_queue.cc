#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace tlr
{

EventQueue::EventQueue() : wheel_(wheelSlots)
{
    for (Bucket &b : wheel_) {
        std::fill(std::begin(b.head), std::end(b.head), nullptr);
        std::fill(std::begin(b.tail), std::end(b.tail), nullptr);
        b.occ = 0;
    }
    farHeap_.reserve(64);
}

EventQueue::~EventQueue()
{
    reset(); // destroys any pending captures
}

EventQueue::EventNode *
EventQueue::makeNode(Tick when, EventPrio prio)
{
    if (when < _now)
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    if (!freeList_) {
        chunks_.push_back(std::make_unique<EventNode[]>(chunkNodes));
        ++kstats_.poolChunks;
        EventNode *chunk = chunks_.back().get();
        for (std::size_t i = 0; i < chunkNodes; ++i) {
            chunk[i].next = freeList_;
            freeList_ = &chunk[i];
        }
    }
    EventNode *n = freeList_;
    freeList_ = n->next;
    n->next = nullptr;
    n->when = when;
    n->seq = seq_++;
    n->prio = static_cast<std::uint8_t>(prio);
    return n;
}

void
EventQueue::recycle(EventNode *n)
{
    n->invoke = nullptr;
    n->destroy = nullptr;
    n->next = freeList_;
    freeList_ = n;
}

void
EventQueue::insert(EventNode *n)
{
    // The wheel window never starts after the earliest pending event;
    // scheduling below the base (possible only after run(maxTick)
    // returned early and left the window parked at a future tick)
    // slides the window back first.
    if (n->when < windowBase_)
        rebase(n->when);
    if (n->when - windowBase_ < wheelSlots)
        pushWheel(n);
    else
        pushFar(n);
    ++size_;
}

void
EventQueue::pushWheel(EventNode *n)
{
    const std::size_t slot = static_cast<std::size_t>(n->when) &
                             (wheelSlots - 1);
    Bucket &b = wheel_[slot];
    const int p = n->prio;
    n->next = nullptr;
    if (b.tail[p])
        b.tail[p]->next = n;
    else
        b.head[p] = n;
    b.tail[p] = n;
    b.occ |= 1u << p;
    slotOcc_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    ++wheelCount_;
    ++kstats_.wheelEvents;
}

void
EventQueue::pushFar(EventNode *n)
{
    farHeap_.push_back(n);
    std::push_heap(farHeap_.begin(), farHeap_.end(), FarLater{});
    ++kstats_.farEvents;
}

/** Move far-heap events that fall inside the current window into the
 *  wheel. Heap pop order is (when, prio, seq), so same-(tick, prio)
 *  events append in seq order. */
void
EventQueue::migrateFar()
{
    while (!farHeap_.empty() &&
           farHeap_.front()->when - windowBase_ < wheelSlots) {
        std::pop_heap(farHeap_.begin(), farHeap_.end(), FarLater{});
        EventNode *n = farHeap_.back();
        farHeap_.pop_back();
        pushWheel(n);
    }
}

/** Re-anchor the wheel window at @p newBase, redistributing every
 *  queued event. Only taken on the rare schedule-below-base path. */
void
EventQueue::rebase(Tick newBase)
{
    std::vector<EventNode *> pending;
    pending.reserve(wheelCount_);
    for (std::size_t slot = 0; slot < wheelSlots; ++slot) {
        Bucket &b = wheel_[slot];
        for (int p = 0; p < numPrios; ++p) {
            for (EventNode *n = b.head[p]; n;) {
                EventNode *next = n->next;
                n->next = nullptr;
                pending.push_back(n);
                n = next;
            }
            b.head[p] = b.tail[p] = nullptr;
        }
        b.occ = 0;
    }
    std::fill(std::begin(slotOcc_), std::end(slotOcc_), 0);
    wheelCount_ = 0;
    windowBase_ = newBase;
    // Reinsert in (when, prio, seq) order so FIFO lists stay sorted.
    std::sort(pending.begin(), pending.end(),
              [](const EventNode *a, const EventNode *b) {
                  return FarLater{}(b, a);
              });
    for (EventNode *n : pending) {
        if (n->when - windowBase_ < wheelSlots)
            pushWheel(n);
        else
            pushFar(n);
    }
}

/**
 * Locate (but do not unlink) the earliest pending event in
 * (when, prio, seq) order; advances the wheel window as a side
 * effect. Returns nullptr when the queue is empty.
 */
EventQueue::EventNode *
EventQueue::findEarliest()
{
    if (size_ == 0)
        return nullptr;
    for (;;) {
        migrateFar();
        if (wheelCount_ == 0) {
            // Everything pending is beyond the window: jump to it.
            windowBase_ = farHeap_.front()->when;
            continue;
        }
        // Scan the occupancy bitmap from the window base forward; the
        // first set slot is the earliest tick, because all wheel
        // events lie within one window span.
        const std::size_t start = static_cast<std::size_t>(windowBase_) &
                                  (wheelSlots - 1);
        std::size_t slot = wheelSlots; // sentinel
        for (std::size_t scanned = 0; scanned < wheelSlots;) {
            const std::size_t pos = (start + scanned) & (wheelSlots - 1);
            std::uint64_t word = slotOcc_[pos / 64] >> (pos % 64);
            const std::size_t wordRemain = 64 - pos % 64;
            if (word) {
                const std::size_t off =
                    static_cast<std::size_t>(std::countr_zero(word));
                if (off < wordRemain &&
                    scanned + off < wheelSlots) {
                    slot = (pos + off) & (wheelSlots - 1);
                    break;
                }
            }
            scanned += wordRemain;
        }
        if (slot == wheelSlots)
            panic("event wheel count=%zu but occupancy bitmap empty",
                  wheelCount_);
        // Advance the window to the found tick (keeps future scans
        // short; every pending event is at or after it).
        const std::size_t delta =
            (slot + wheelSlots -
             (static_cast<std::size_t>(windowBase_) & (wheelSlots - 1))) &
            (wheelSlots - 1);
        windowBase_ += delta;
        Bucket &b = wheel_[slot];
        const int p = std::countr_zero(b.occ);
        foundSlot_ = slot;
        foundPrio_ = p;
        return b.head[p];
    }
}

/** Unlink the node findEarliest() just returned. */
void
EventQueue::popFound()
{
    Bucket &b = wheel_[foundSlot_];
    const int p = foundPrio_;
    EventNode *n = b.head[p];
    b.head[p] = n->next;
    if (!b.head[p]) {
        b.tail[p] = nullptr;
        b.occ &= ~(1u << p);
        if (!b.occ)
            slotOcc_[foundSlot_ / 64] &=
                ~(std::uint64_t{1} << (foundSlot_ % 64));
    }
    n->next = nullptr;
    --wheelCount_;
    --size_;
}

void
EventQueue::fire(EventNode *n)
{
    _now = n->when;
    ++executed_;
    // Destroy the capture and recycle the node even if the callback
    // throws (panic() throws so tests can observe it).
    struct Guard
    {
        EventQueue *q;
        EventNode *n;
        ~Guard()
        {
            if (n->destroy)
                n->destroy(*n);
            q->recycle(n);
        }
    } guard{this, n};
    n->invoke(*n);
}

bool
EventQueue::step()
{
    EventNode *n = findEarliest();
    if (!n)
        return false;
    popFound();
    fire(n);
    return true;
}

bool
EventQueue::peekNext(Tick &when, int &prio)
{
    EventNode *n = findEarliest();
    if (!n)
        return false;
    when = n->when;
    prio = n->prio;
    return true;
}

void
EventQueue::runBounded(Tick bound_tick, int bound_prio)
{
    for (;;) {
        EventNode *n = findEarliest();
        if (!n)
            return;
        if (n->when > bound_tick ||
            (n->when == bound_tick && n->prio >= bound_prio))
            return;
        popFound();
        fire(n);
    }
}

std::size_t
EventQueue::countBelow(Tick bound_tick, int bound_prio,
                       std::size_t cap) const
{
    // Callers peek (or drain) first, so windowBase_ sits at the
    // earliest pending tick and every event below a near bound is
    // already in the wheel; while a tick is inside the window its
    // slot holds events of exactly that tick, so only the slots
    // covering [windowBase_, bound_tick] need visiting — for the
    // parallel kernel's segment bounds that is a couple of dozen
    // slots, not the whole wheel.
    std::size_t n = 0;
    Tick wtop = windowBase_ + wheelSlots - 1;
    if (wtop < windowBase_) // window parked near the Tick ceiling
        wtop = ~Tick{0};
    const Tick last = std::min(bound_tick, wtop);
    for (Tick t = windowBase_; t <= last; ++t) {
        const std::size_t slot = static_cast<std::size_t>(t) &
                                 (wheelSlots - 1);
        if (!(slotOcc_[slot / 64] >> (slot % 64) & 1))
            continue;
        const Bucket &b = wheel_[slot];
        for (int p = 0; p < numPrios; ++p) {
            if (!(b.occ & (1u << p)))
                continue;
            if (t == bound_tick && p >= bound_prio)
                break;
            for (const EventNode *e = b.head[p]; e; e = e->next)
                if (++n >= cap)
                    return n;
        }
    }
    if (bound_tick >= windowBase_ + wheelSlots)
        for (const EventNode *e : farHeap_)
            if ((e->when < bound_tick ||
                 (e->when == bound_tick && e->prio < bound_prio)) &&
                ++n >= cap)
                return n;
    return n;
}

bool
EventQueue::run(Tick maxTick)
{
    stopRequested_ = false;
    for (;;) {
        EventNode *n = findEarliest();
        if (!n)
            return true;
        if (n->when > maxTick)
            return false;
        popFound();
        fire(n);
        if (stopRequested_)
            return true;
    }
}

void
EventQueue::reset()
{
    for (std::size_t slot = 0; slot < wheelSlots; ++slot) {
        Bucket &b = wheel_[slot];
        for (int p = 0; p < numPrios; ++p) {
            for (EventNode *n = b.head[p]; n;) {
                EventNode *next = n->next;
                if (n->destroy)
                    n->destroy(*n);
                recycle(n);
                n = next;
            }
            b.head[p] = b.tail[p] = nullptr;
        }
        b.occ = 0;
    }
    std::fill(std::begin(slotOcc_), std::end(slotOcc_), 0);
    for (EventNode *n : farHeap_) {
        if (n->destroy)
            n->destroy(*n);
        recycle(n);
    }
    farHeap_.clear();
    wheelCount_ = 0;
    size_ = 0;
    windowBase_ = 0;
    _now = 0;
    seq_ = 0;
    executed_ = 0;
    stopRequested_ = false;
}

} // namespace tlr

/**
 * @file
 * Minimal JSON reader.
 *
 * tools/tlrstat must parse the simulator's own JSON dumps without any
 * external dependency, so this is a small recursive-descent parser
 * covering the full JSON grammar the repo emits: objects (member order
 * preserved), arrays, numbers (held as double — exact for the < 2^53
 * counter values we dump), strings with the common escapes, booleans
 * and null. It is a reader for trusted tool input, not a hardened
 * general-purpose parser.
 */

#ifndef TLR_SIM_JSON_HH
#define TLR_SIM_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace tlr
{

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> members; ///< objects
    std::vector<JsonValue> elements;                        ///< arrays

    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse @p text into @p out. On failure returns false and describes
 *  the first error (with byte offset) in @p err. */
bool parseJson(const std::string &text, JsonValue &out, std::string &err);

} // namespace tlr

#endif // TLR_SIM_JSON_HH

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Each simulated thread owns an Rng seeded from (globalSeed, cpuId) so
 * runs are reproducible and independent of host library differences.
 * The generator is SplitMix64/xorshift-based: fast and well mixed.
 */

#ifndef TLR_SIM_RNG_HH
#define TLR_SIM_RNG_HH

#include <cstdint>

namespace tlr
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Derive a child generator (e.g., per-cpu from a global seed). */
    Rng
    fork(std::uint64_t salt) const
    {
        Rng child(mix(state_ ^ (salt * 0xbf58476d1ce4e5b9ull)));
        return child;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        return mix(state_);
    }

    /** Uniform value in [0, bound). bound == 0 yields 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

  private:
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_;
};

} // namespace tlr

#endif // TLR_SIM_RNG_HH

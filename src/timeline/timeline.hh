/**
 * @file
 * Epoch-sliced telemetry: time-resolved counters and online pathology
 * detection (DESIGN.md §14).
 *
 * Every metric the simulator records elsewhere is an end-of-run
 * aggregate, but the paper's interesting behaviors — restart storms
 * (Figure 2), convoy formation, starvation onset — are transient: they
 * appear and dissolve within a run and average away in whole-run
 * means. The EpochTimeline consumes the structured trace stream and
 * slices it into fixed-length epochs of `--timeline-epoch=N` simulated
 * cycles, each epoch carrying the deltas of the event counts the
 * StatSet accumulates over the whole run (commits, restarts,
 * fallbacks, deferrals, services, ordered requests) plus key
 * distribution figures (completed defer-wait spans, deferral-queue
 * depth, the per-line waiter-queue high-water mark).
 *
 * On top of the epoch stream four online detectors flag phase changes
 * as TimelineAlert records, each carrying the epoch, the hottest line
 * and a causal chain derived from the live wait-for state (the same
 * edges src/explain/ builds):
 *
 *   restart-storm       restart count spikes vs the trailing-window
 *                       mean (edge-triggered at storm onset)
 *   convoy              one line's simultaneous-waiter queue reaches
 *                       convoyMinQueue (per line, re-armed when the
 *                       queue drains below the threshold)
 *   starvation          an open deferral's age crosses a threshold
 *                       derived from the p99 of completed waits
 *   throughput-collapse commit rate drops below 1/collapseFactor of
 *                       the trailing mean while conflicts continue
 *
 * Thread-count invariance: the timeline is a pure TraceListener on the
 * real sink. The parallel kernel delivers partition capture buffers
 * stitched into (tick, partition, index) order at window barriers and
 * replays them through the real sink (DESIGN.md §13), so the record
 * stream — hence every epoch row and alert — is bit-identical for any
 * --threads >= 1. Offline reconstruction holds for the same reason:
 * replaying a --trace-raw file through a fresh EpochTimeline feeds it
 * the exact online stream, so csv() matches byte-for-byte.
 *
 * Zero-overhead-off: the timeline only exists when
 * MachineParams::timelineEpoch > 0; otherwise nothing is attached, the
 * sink stays disarmed and simulated cycles are untouched either way.
 */

#ifndef TLR_TIMELINE_TIMELINE_HH
#define TLR_TIMELINE_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "metrics/histogram.hh"
#include "trace/lifecycle.hh"
#include "trace/sink.hh"

namespace tlr
{

/** Deltas of one epoch [epoch*len, (epoch+1)*len). All integer, so
 *  CSV/JSON rendering is exact and byte-stable. */
struct EpochRow
{
    std::uint64_t epoch = 0;
    Tick startTick = 0;
    std::uint64_t records = 0;     ///< trace records in the epoch
    std::uint64_t commits = 0;     ///< TxnCommit
    std::uint64_t restarts = 0;    ///< TxnRestart
    std::uint64_t fallbacks = 0;   ///< TxnRestart with instance end
    std::uint64_t elisions = 0;    ///< new elided instances
    std::uint64_t quantumEnds = 0; ///< TxnQuantumEnd
    std::uint64_t defers = 0;      ///< CohDefer + CohRelaxedDefer
    std::uint64_t services = 0;    ///< CohService
    std::uint64_t orders = 0;      ///< CohOrder (throughput proxy)
    std::uint64_t deferWaitSum = 0;   ///< waits completed this epoch
    std::uint64_t deferWaitCount = 0;
    std::uint64_t deferWaitMax = 0;
    std::uint64_t maxDeferDepth = 0;  ///< max CohDeferDepth backlog
    std::uint64_t maxQueue = 0;    ///< max simultaneous waiters, any line
    Addr hotLine = 0;              ///< most defers+restarts this epoch
    std::uint64_t hotScore = 0;    ///< its defers+restarts count
};

/** One detector firing. Versioned via timelineSchemaVersion
 *  (sim/build_info.hh): any layout change bumps that constant. */
struct TimelineAlert
{
    std::string kind; ///< restart-storm | convoy | starvation |
                      ///< throughput-collapse
    std::uint64_t epoch = 0;
    Addr line = 0;    ///< hottest line / lock the alert is about
    std::uint64_t value = 0;     ///< the measurement that fired
    std::uint64_t threshold = 0; ///< the bound it crossed
    std::string chain; ///< causal wait chain at fire time ("" = none)
};

class EpochTimeline : public TraceListener
{
  public:
    /** @{ detector constants (referenced by DESIGN.md §14 and the
     *  tests; integer math so the decisions are exact). */
    static constexpr unsigned trailingWindow = 8;  ///< epochs of history
    static constexpr std::uint64_t stormFactor = 4;
    static constexpr std::uint64_t stormMinRestarts = 16;
    static constexpr std::uint64_t convoyMinQueue = 3;
    static constexpr std::uint64_t collapseFactor = 4;
    static constexpr std::uint64_t collapseMinCommits = 8;
    static constexpr double starvationPercentile = 99.0;
    static constexpr std::uint64_t starvationFactor = 8;
    static constexpr unsigned maxChainHops = 8;
    /** @} */

    explicit EpochTimeline(Tick epoch_len);

    Tick epochLen() const { return len_; }

    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

    const std::vector<EpochRow> &epochs() const { return rows_; }
    const std::vector<TimelineAlert> &alerts() const { return alerts_; }
    Tick finalTick() const { return finalTick_; }

    /** Called after each epoch closes, with the closed row and the
     *  number of alerts so far (tlrsim --progress). Never called from
     *  finish(), so a progress line cannot trail the final report. */
    void setEpochCallback(
        std::function<void(const EpochRow &, std::uint64_t)> cb)
    {
        onEpoch_ = std::move(cb);
    }

    /** The canonical timeline artifact: a '#'-headed CSV of every
     *  epoch row followed by the alert stream. Byte-identical across
     *  --threads counts and online/offline reconstruction (the
     *  acceptance artifact for both). */
    std::string csv() const;

    /** The versioned "timeline" JSON section value spliced into
     *  --stats-json dumps (StatSet::dumpJson extra_sections). */
    std::string json() const;

    /** Human-readable digest: epoch grid summary plus one line per
     *  alert (tlrsim stdout, bench TLR_TIMELINE reports). */
    std::string report() const;

    /** Per-epoch commit/restart/defer rates as Perfetto counter
     *  tracks, sampled at each epoch start tick (--trace-out). */
    std::vector<CounterTrack> counterTracks() const;

  private:
    struct OpenDefer
    {
        std::int16_t owner = -1;
        Tick start = 0;
    };

    void closeEpoch();
    void runDetectors(const EpochRow &row, Tick boundary);
    void fire(const std::string &kind, Addr line, std::uint64_t value,
              std::uint64_t threshold, Tick boundary);
    /** Longest-waiting open deferral chain starting at @p line:
     *  "cpu3 waits on cpu1 (line 0x80, 120t) -> cpu1 waits on ...". */
    std::string chainFrom(Addr line, Tick at) const;
    std::uint64_t trailingSum(const std::vector<std::uint64_t> &hist) const;
    std::uint64_t trailingCount() const;

    Tick len_;
    std::uint64_t cur_ = 0; ///< index of the accumulating epoch
    EpochRow acc_;          ///< the accumulating epoch row
    Tick finalTick_ = 0;
    bool finished_ = false;

    std::vector<EpochRow> rows_;
    std::vector<TimelineAlert> alerts_;

    /** (line, waiter) -> deferring owner + first defer tick. */
    std::map<std::pair<Addr, std::int16_t>, OpenDefer> open_;
    /** Live simultaneous-waiter count per line. */
    std::map<Addr, std::uint64_t> queue_;
    /** Per-line high-water mark of queue_ within the current epoch. */
    std::map<Addr, std::uint64_t> epochQueueMax_;
    /** Per-line defers+restarts within the current epoch. */
    std::map<Addr, std::uint64_t> epochScore_;
    /** Cumulative completed-wait distribution (starvation threshold). */
    Histogram waitHist_;

    /** Trailing per-epoch history, most recent last (detectors). */
    std::vector<std::uint64_t> histRestarts_;
    std::vector<std::uint64_t> histCommits_;

    /** Edge-trigger state. */
    bool stormActive_ = false;
    bool collapseActive_ = false;
    std::set<Addr> convoyActive_;
    std::set<std::pair<Addr, std::int16_t>> starvedAlerted_;

    std::function<void(const EpochRow &, std::uint64_t)> onEpoch_;
};

} // namespace tlr

#endif // TLR_TIMELINE_TIMELINE_HH

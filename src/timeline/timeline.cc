#include "timeline/timeline.hh"

#include <algorithm>
#include <sstream>

#include "sim/build_info.hh"
#include "sim/logging.hh"
#include "trace/events.hh"

namespace tlr
{

EpochTimeline::EpochTimeline(Tick epoch_len) : len_(epoch_len)
{
    if (len_ == 0)
        panic("EpochTimeline requires a positive epoch length");
    acc_.epoch = 0;
    acc_.startTick = 0;
}

void
EpochTimeline::onRecord(const TraceRecord &r)
{
    if (finished_)
        return;
    // The sink delivers records in nondecreasing tick order (classic
    // mode executes events in tick order; the parallel kernel stitches
    // capture buffers into tick order before replay), so epoch
    // boundaries are crossings, never back-fills.
    while (r.tick >= static_cast<Tick>(cur_ + 1) * len_)
        closeEpoch();

    ++acc_.records;
    switch (r.kind) {
      case TraceEvent::TxnElide:
        if (r.a3 != 0)
            ++acc_.elisions;
        return;
      case TraceEvent::TxnCommit:
        ++acc_.commits;
        return;
      case TraceEvent::TxnRestart:
        ++acc_.restarts;
        if (r.a2 != 0)
            ++acc_.fallbacks;
        if (r.addr != 0)
            ++epochScore_[r.addr];
        return;
      case TraceEvent::TxnQuantumEnd:
        ++acc_.quantumEnds;
        return;
      case TraceEvent::CohDefer:
      case TraceEvent::CohRelaxedDefer: {
        ++acc_.defers;
        ++epochScore_[r.addr];
        auto key = std::make_pair(
            r.addr, static_cast<std::int16_t>(r.a0));
        // Keep the earliest deferral: a re-queued request waits from
        // its first parking, and the waiter is already counted in the
        // line's queue.
        if (open_.emplace(key, OpenDefer{r.cpu, r.tick}).second) {
            std::uint64_t q = ++queue_[r.addr];
            std::uint64_t &hi = epochQueueMax_[r.addr];
            hi = std::max(hi, q);
        }
        return;
      }
      case TraceEvent::CohService: {
        ++acc_.services;
        auto key = std::make_pair(
            r.addr, static_cast<std::int16_t>(r.a0));
        auto it = open_.find(key);
        if (it != open_.end()) {
            std::uint64_t span = r.tick - it->second.start;
            acc_.deferWaitSum += span;
            ++acc_.deferWaitCount;
            acc_.deferWaitMax = std::max(acc_.deferWaitMax, span);
            waitHist_.record(span);
            open_.erase(it);
            auto q = queue_.find(r.addr);
            if (q != queue_.end() && q->second > 0 && --q->second == 0)
                queue_.erase(q);
        }
        return;
      }
      case TraceEvent::CohDeferDepth:
        acc_.maxDeferDepth = std::max(acc_.maxDeferDepth, r.a0);
        return;
      case TraceEvent::CohOrder:
        ++acc_.orders;
        return;
      default:
        return;
    }
}

void
EpochTimeline::finish(Tick now)
{
    if (finished_)
        return;
    // finished_ goes up first so the epoch callback (a live progress
    // line) stays quiet while the final rows are closed.
    finished_ = true;
    finalTick_ = now;
    while (now >= static_cast<Tick>(cur_ + 1) * len_)
        closeEpoch();
    closeEpoch(); // the partial final epoch containing `now`
}

std::uint64_t
EpochTimeline::trailingSum(const std::vector<std::uint64_t> &hist) const
{
    std::uint64_t s = 0;
    for (std::uint64_t v : hist)
        s += v;
    return s;
}

std::uint64_t
EpochTimeline::trailingCount() const
{
    return histRestarts_.size();
}

void
EpochTimeline::closeEpoch()
{
    Tick boundary = static_cast<Tick>(cur_ + 1) * len_;
    // Hottest line of the epoch: most defers + conflict restarts, ties
    // to the lowest address (map order makes the scan deterministic).
    for (const auto &[line, score] : epochScore_) {
        if (score > acc_.hotScore) {
            acc_.hotScore = score;
            acc_.hotLine = line;
        }
    }
    for (const auto &[line, hi] : epochQueueMax_)
        acc_.maxQueue = std::max(acc_.maxQueue, hi);

    runDetectors(acc_, boundary);
    rows_.push_back(acc_);

    histRestarts_.push_back(acc_.restarts);
    histCommits_.push_back(acc_.commits);
    if (histRestarts_.size() > trailingWindow) {
        histRestarts_.erase(histRestarts_.begin());
        histCommits_.erase(histCommits_.begin());
    }
    if (onEpoch_ && !finished_)
        onEpoch_(rows_.back(), alerts_.size());

    ++cur_;
    acc_ = EpochRow{};
    acc_.epoch = cur_;
    acc_.startTick = boundary;
    epochScore_.clear();
    // Waiters still parked carry their queue into the next epoch: a
    // convoy that persists keeps its high-water mark without needing
    // fresh deferrals.
    epochQueueMax_.clear();
    for (const auto &[line, q] : queue_)
        epochQueueMax_[line] = q;
}

void
EpochTimeline::runDetectors(const EpochRow &row, Tick boundary)
{
    // Trailing histories exclude the row being closed (they are
    // appended after detection), so each detector compares the new
    // epoch against up to trailingWindow previous ones.

    // 1. Restart storm: restarts spike to stormFactor x the trailing
    //    mean (an empty history counts as mean 0, so a storm that
    //    starts at epoch 0 — the Figure 2 livelock — still fires).
    {
        std::uint64_t sum = trailingSum(histRestarts_);
        std::uint64_t n = std::max<std::uint64_t>(trailingCount(), 1);
        bool storm = row.restarts >= stormMinRestarts &&
                     row.restarts * n > stormFactor * sum;
        if (storm && !stormActive_) {
            std::uint64_t thr = std::max(stormMinRestarts,
                                         stormFactor * sum / n);
            fire("restart-storm", row.hotLine, row.restarts, thr,
                 boundary);
        }
        stormActive_ = storm;
    }

    // 2. Convoy onset: a line's simultaneous-waiter queue reached
    //    convoyMinQueue this epoch. Per line, edge-triggered: the line
    //    re-arms once its queue high-water mark drops back below the
    //    threshold.
    for (const auto &[line, hi] : epochQueueMax_) {
        if (hi >= convoyMinQueue) {
            if (convoyActive_.insert(line).second)
                fire("convoy", line, hi, convoyMinQueue, boundary);
        } else {
            convoyActive_.erase(line);
        }
    }
    for (auto it = convoyActive_.begin(); it != convoyActive_.end();) {
        if (!epochQueueMax_.count(*it))
            it = convoyActive_.erase(it);
        else
            ++it;
    }

    // 3. Starvation: an open deferral's age crosses a threshold
    //    derived from the completed-wait distribution (starvationFactor
    //    x p99), floored at four epochs so sparse histograms cannot
    //    trip it on ordinary waits. One alert per (line, waiter).
    {
        double p99 = waitHist_.percentile(starvationPercentile);
        std::uint64_t thr = std::max<std::uint64_t>(
            4 * len_,
            starvationFactor * static_cast<std::uint64_t>(p99));
        for (const auto &[key, od] : open_) {
            std::uint64_t age = boundary - od.start;
            if (age > thr && starvedAlerted_.insert(key).second)
                fire("starvation", key.first, age, thr, boundary);
        }
    }

    // 4. Throughput collapse: commits drop below 1/collapseFactor of
    //    the trailing mean while conflicts (restarts or deferrals)
    //    continue — progress stopped, activity did not.
    {
        std::uint64_t sum = trailingSum(histCommits_);
        std::uint64_t n = trailingCount();
        bool collapse = n > 0 && sum >= collapseMinCommits &&
                        row.commits * collapseFactor * n < sum &&
                        (row.restarts + row.defers) > 0;
        if (collapse && !collapseActive_)
            fire("throughput-collapse", row.hotLine, row.commits,
                 sum / (n * collapseFactor), boundary);
        collapseActive_ = collapse;
    }
}

void
EpochTimeline::fire(const std::string &kind, Addr line,
                    std::uint64_t value, std::uint64_t threshold,
                    Tick boundary)
{
    TimelineAlert a;
    a.kind = kind;
    a.epoch = cur_;
    a.line = line;
    a.value = value;
    a.threshold = threshold;
    a.chain = chainFrom(line, boundary);
    alerts_.push_back(std::move(a));
}

std::string
EpochTimeline::chainFrom(Addr line, Tick at) const
{
    // Follow the longest-pending deferral on `line`, then the owner's
    // own longest deferral, and so on — the same walk the explainer's
    // causal chains perform, but over the live edge set at fire time.
    std::string out;
    std::set<std::int16_t> visited;
    Addr curLine = line;
    std::int16_t waiter = -1;
    for (unsigned hop = 0; hop < maxChainHops; ++hop) {
        const OpenDefer *best = nullptr;
        std::pair<Addr, std::int16_t> bestKey{0, -1};
        for (const auto &[key, od] : open_) {
            if (hop == 0 ? key.first != curLine : key.second != waiter)
                continue;
            if (!best || od.start < best->start) {
                best = &od;
                bestKey = key;
            }
        }
        if (!best)
            break;
        if (!visited.insert(bestKey.second).second)
            break; // wait cycle: stop rather than loop
        if (!out.empty())
            out += " -> ";
        out += strfmt("cpu%d waits on cpu%d (line %#llx, %llut)",
                      bestKey.second, best->owner,
                      static_cast<unsigned long long>(bestKey.first),
                      static_cast<unsigned long long>(at - best->start));
        waiter = best->owner;
        curLine = 0;
    }
    return out;
}

std::string
EpochTimeline::csv() const
{
    std::string out;
    out += strfmt("# tlr-timeline schema=%d epoch_len=%llu "
                  "final_tick=%llu epochs=%zu alerts=%zu\n",
                  timelineSchemaVersion,
                  static_cast<unsigned long long>(len_),
                  static_cast<unsigned long long>(finalTick_),
                  rows_.size(), alerts_.size());
    out += "epoch,start_tick,records,commits,restarts,fallbacks,"
           "elisions,quantum_ends,defers,services,orders,"
           "defer_wait_sum,defer_wait_count,defer_wait_max,"
           "max_defer_depth,max_queue,hot_line,hot_score\n";
    for (const EpochRow &e : rows_) {
        out += strfmt(
            "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%llu,%llu,%llu,%#llx,%llu\n",
            static_cast<unsigned long long>(e.epoch),
            static_cast<unsigned long long>(e.startTick),
            static_cast<unsigned long long>(e.records),
            static_cast<unsigned long long>(e.commits),
            static_cast<unsigned long long>(e.restarts),
            static_cast<unsigned long long>(e.fallbacks),
            static_cast<unsigned long long>(e.elisions),
            static_cast<unsigned long long>(e.quantumEnds),
            static_cast<unsigned long long>(e.defers),
            static_cast<unsigned long long>(e.services),
            static_cast<unsigned long long>(e.orders),
            static_cast<unsigned long long>(e.deferWaitSum),
            static_cast<unsigned long long>(e.deferWaitCount),
            static_cast<unsigned long long>(e.deferWaitMax),
            static_cast<unsigned long long>(e.maxDeferDepth),
            static_cast<unsigned long long>(e.maxQueue),
            static_cast<unsigned long long>(e.hotLine),
            static_cast<unsigned long long>(e.hotScore));
    }
    for (const TimelineAlert &a : alerts_) {
        out += strfmt("alert,%s,%llu,%#llx,%llu,%llu,\"%s\"\n",
                      a.kind.c_str(),
                      static_cast<unsigned long long>(a.epoch),
                      static_cast<unsigned long long>(a.line),
                      static_cast<unsigned long long>(a.value),
                      static_cast<unsigned long long>(a.threshold),
                      a.chain.c_str());
    }
    return out;
}

std::string
EpochTimeline::json() const
{
    std::ostringstream os;
    os << "{\n";
    os << "    \"schema\": " << timelineSchemaVersion << ",\n";
    os << "    \"epoch_len\": " << len_ << ",\n";
    os << "    \"final_tick\": " << finalTick_ << ",\n";
    os << "    \"epochs\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
        const EpochRow &e = rows_[i];
        os << (i == 0 ? "\n" : ",\n");
        os << strfmt(
            "      {\"epoch\": %llu, \"start_tick\": %llu, "
            "\"records\": %llu, \"commits\": %llu, \"restarts\": %llu, "
            "\"fallbacks\": %llu, \"elisions\": %llu, "
            "\"quantum_ends\": %llu, \"defers\": %llu, "
            "\"services\": %llu, \"orders\": %llu, "
            "\"defer_wait_sum\": %llu, \"defer_wait_count\": %llu, "
            "\"defer_wait_max\": %llu, \"max_defer_depth\": %llu, "
            "\"max_queue\": %llu, \"hot_line\": %llu, "
            "\"hot_score\": %llu}",
            static_cast<unsigned long long>(e.epoch),
            static_cast<unsigned long long>(e.startTick),
            static_cast<unsigned long long>(e.records),
            static_cast<unsigned long long>(e.commits),
            static_cast<unsigned long long>(e.restarts),
            static_cast<unsigned long long>(e.fallbacks),
            static_cast<unsigned long long>(e.elisions),
            static_cast<unsigned long long>(e.quantumEnds),
            static_cast<unsigned long long>(e.defers),
            static_cast<unsigned long long>(e.services),
            static_cast<unsigned long long>(e.orders),
            static_cast<unsigned long long>(e.deferWaitSum),
            static_cast<unsigned long long>(e.deferWaitCount),
            static_cast<unsigned long long>(e.deferWaitMax),
            static_cast<unsigned long long>(e.maxDeferDepth),
            static_cast<unsigned long long>(e.maxQueue),
            static_cast<unsigned long long>(e.hotLine),
            static_cast<unsigned long long>(e.hotScore));
    }
    os << (rows_.empty() ? "],\n" : "\n    ],\n");
    os << "    \"alerts\": [";
    for (size_t i = 0; i < alerts_.size(); ++i) {
        const TimelineAlert &a = alerts_[i];
        os << (i == 0 ? "\n" : ",\n");
        os << strfmt("      {\"kind\": \"%s\", \"epoch\": %llu, "
                     "\"line\": %llu, \"value\": %llu, "
                     "\"threshold\": %llu, \"chain\": \"%s\"}",
                     a.kind.c_str(),
                     static_cast<unsigned long long>(a.epoch),
                     static_cast<unsigned long long>(a.line),
                     static_cast<unsigned long long>(a.value),
                     static_cast<unsigned long long>(a.threshold),
                     a.chain.c_str());
    }
    os << (alerts_.empty() ? "]\n  }" : "\n    ]\n  }");
    return os.str();
}

std::string
EpochTimeline::report() const
{
    std::string out;
    out += strfmt("-- timeline (epoch = %llu cycles, %zu epochs, "
                  "%zu alerts) --\n",
                  static_cast<unsigned long long>(len_), rows_.size(),
                  alerts_.size());
    const EpochRow *busiest = nullptr;
    for (const EpochRow &e : rows_)
        if (!busiest || e.records > busiest->records)
            busiest = &e;
    if (busiest && busiest->records > 0) {
        out += strfmt("  busiest epoch %llu: %llu commits, "
                      "%llu restarts, %llu defers (hot line %#llx)\n",
                      static_cast<unsigned long long>(busiest->epoch),
                      static_cast<unsigned long long>(busiest->commits),
                      static_cast<unsigned long long>(busiest->restarts),
                      static_cast<unsigned long long>(busiest->defers),
                      static_cast<unsigned long long>(busiest->hotLine));
    }
    if (alerts_.empty()) {
        out += "  (no alerts)\n";
        return out;
    }
    for (const TimelineAlert &a : alerts_) {
        out += strfmt("  [epoch %llu] %s: %llu vs threshold %llu on "
                      "line %#llx\n",
                      static_cast<unsigned long long>(a.epoch),
                      a.kind.c_str(),
                      static_cast<unsigned long long>(a.value),
                      static_cast<unsigned long long>(a.threshold),
                      static_cast<unsigned long long>(a.line));
        if (!a.chain.empty())
            out += strfmt("      chain: %s\n", a.chain.c_str());
    }
    return out;
}

std::vector<CounterTrack>
EpochTimeline::counterTracks() const
{
    std::vector<CounterTrack> tracks(3);
    tracks[0].name = "epoch commits";
    tracks[1].name = "epoch restarts";
    tracks[2].name = "epoch defers";
    for (const EpochRow &e : rows_) {
        tracks[0].samples.emplace_back(e.startTick, e.commits);
        tracks[1].samples.emplace_back(e.startTick, e.restarts);
        tracks[2].samples.emplace_back(e.startTick, e.defers);
    }
    return tracks;
}

} // namespace tlr

#include "workloads/apps.hh"

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"

namespace tlr
{

namespace
{

// Register conventions for generated application kernels.
constexpr Reg rIter = 1;
constexpr Reg rLock = 2;    // address of the selected lock
constexpr Reg rQn = 3;      // this thread's MCS qnode for that lock
constexpr Reg rData = 4;    // base of the selected lock's data region
constexpr Reg rVal = 5;
constexpr Reg rT0 = 6;
constexpr Reg rT1 = 7;
constexpr Reg rT2 = 8;
constexpr Reg rSel = 9;     // selected lock index
constexpr Reg rN = 10;      // numLocks (constant)
constexpr Reg rPriv = 11;   // private data base
constexpr Reg rDel = 12;
constexpr Reg rBigCnt = 14;  // countdown to the next oversized CS

/**
 * Emit code computing rSel (lock index) per the selection policy and
 * setting rLock/rQn/rData from it. Lock i lives at lockBase + i*64;
 * its data region at dataBase + i*regionBytes; cpu-private qnodes at
 * qnodeBase + i*64 (MCS only).
 */
void
emitSelectLock(ProgramBuilder &b, const AppProfile &p, int cpu,
               Addr lock_base, Addr data_base, Addr qnode_base,
               unsigned region_lines, LockKind kind)
{
    const unsigned dataRegions =
        p.dataRegions ? p.dataRegions : p.numLocks;
    switch (p.select) {
      case LockSelect::Fixed0:
        b.li(rSel, 0);
        break;
      case LockSelect::OwnIndex:
        b.li(rSel, cpu % static_cast<int>(p.numLocks));
        break;
      case LockSelect::Random:
        b.rnd(rSel, rN);
        break;
      case LockSelect::RootBiased:
        // rnd(rnd(N)+1): strongly biased toward low indices, like the
        // upper levels of barnes' octree.
        b.rnd(rT0, rN);
        b.addi(rT0, rT0, 1);
        b.rnd(rSel, rT0);
        break;
      case LockSelect::HotOrRandom: {
        const std::string hot = b.uniqueLabel("hot");
        const std::string done = b.uniqueLabel("seldone");
        b.li(rT0, p.hotOneInN);
        b.rnd(rT1, rT0);          // hot with probability 1/hotOneInN
        b.beq(rT1, 0, hot);
        b.rnd(rSel, rN);          // uniform
        b.jmp(done);
        b.label(hot);
        b.li(rSel, 0);            // the hot work-list lock
        b.label(done);
        break;
      }
    }
    // rLock = lock_base + rSel * 64
    b.slli(rT0, rSel, lineShift);
    b.li(rLock, static_cast<std::int64_t>(lock_base));
    b.add(rLock, rLock, rT0);
    if (kind == LockKind::Mcs) {
        // rQn = qnode_base + rSel * 64 (one node per lock per thread);
        // must use the lock index, before any data-region reselect.
        b.slli(rT0, rSel, lineShift);
        b.li(rQn, static_cast<std::int64_t>(qnode_base));
        b.add(rQn, rQn, rT0);
    }
    if (dataRegions != p.numLocks) {
        // Decoupled data: a coarse lock protecting many independent
        // cells. Pick the region uniformly.
        b.li(rT1, dataRegions);
        b.rnd(rSel, rT1);
    }
    // rData = data_base + rSel * regionBytes
    b.slli(rT0, rSel, lineShift);
    if (region_lines > 1) {
        b.li(rT1, region_lines);
        b.mul(rT0, rT0, rT1);
    }
    b.li(rData, static_cast<std::int64_t>(data_base));
    b.add(rData, rData, rT0);
}

/** Emit the critical-section body: counter increment plus the
 *  profile's read/write line touches and compute. */
void
emitCsBody(ProgramBuilder &b, unsigned read_lines, unsigned write_lines,
           unsigned cs_compute, unsigned region_lines)
{
    // Serializability witness: counter increment in word 0.
    b.ld(rVal, rData);
    b.addi(rVal, rVal, 1);
    b.st(rVal, rData);
    // Additional reads and read-modify-writes over the protected
    // region. Updates read the line first, which is what the paper's
    // read-modify-write predictor targets (Section 3.1.2).
    unsigned line = 1;
    for (unsigned i = 0; i < read_lines; ++i, ++line) {
        std::int64_t off =
            static_cast<std::int64_t>((line % region_lines) * lineBytes);
        b.ld(rT2, rData, off);
        b.add(rVal, rVal, rT2);
    }
    for (unsigned i = 0; i < write_lines; ++i, ++line) {
        std::int64_t off =
            static_cast<std::int64_t>((line % region_lines) * lineBytes);
        b.ld(rT2, rData, off);
        b.add(rT2, rT2, rVal);
        b.st(rT2, rData, off);
    }
    if (cs_compute > 0) {
        b.li(rDel, cs_compute);
        b.delay(rDel);
    }
}

} // namespace

Workload
makeAppKernel(const AppProfile &p, int num_cpus, LockKind kind)
{
    // Region: enough lines for the largest CS this profile emits.
    unsigned maxLine = 1 + p.csReadLines +
                       std::max(p.csWriteLines, p.bigCsWriteLines);
    unsigned regionLines = maxLine + 1;

    const unsigned dataRegions =
        p.dataRegions ? p.dataRegions : p.numLocks;
    Layout lay;
    Addr lockBase = lay.allocLines(p.numLocks);
    for (unsigned i = 0; i < p.numLocks; ++i)
        lay.registerSyncAddr(lockBase + static_cast<Addr>(i) * lineBytes);
    Addr dataBase = lay.allocLines(dataRegions * regionLines);
    // Private per-cpu data for the outside-CS phase.
    std::vector<Addr> priv;
    for (int c = 0; c < num_cpus; ++c)
        priv.push_back(lay.allocLines(std::max(p.outsideTouches, 1u)));
    // MCS queue nodes: one per (cpu, lock).
    std::vector<Addr> qnodeBase;
    if (kind == LockKind::Mcs) {
        for (int c = 0; c < num_cpus; ++c) {
            Addr base = lay.allocLines(p.numLocks);
            for (unsigned i = 0; i < p.numLocks; ++i)
                lay.registerSyncAddr(base + static_cast<Addr>(i) *
                                                lineBytes);
            qnodeBase.push_back(base);
        }
    }

    Workload wl;
    wl.name = p.name;
    wl.lockClassifier = lay.classifier();

    for (int cpu = 0; cpu < num_cpus; ++cpu) {
        ProgramBuilder b;
        b.li(rIter, static_cast<std::int64_t>(p.itersPerCpu));
        b.li(rN, p.numLocks);
        b.li(rPriv, static_cast<std::int64_t>(priv[static_cast<size_t>(
                        cpu)]));
        if (p.bigCsEveryN > 0)
            b.li(rBigCnt, p.bigCsEveryN);

        b.label("loop");
        emitSelectLock(b, p, cpu, lockBase, dataBase,
                       kind == LockKind::Mcs
                           ? qnodeBase[static_cast<size_t>(cpu)]
                           : 0,
                       regionLines, kind);

        emitAcquire(b, kind, rLock, rQn, rT0, rT1, rT2);
        if (p.bigCsEveryN > 0) {
            const std::string small = b.uniqueLabel("small");
            const std::string csdone = b.uniqueLabel("csdone");
            b.addi(rBigCnt, rBigCnt, -1);
            b.bne(rBigCnt, 0, small);
            b.li(rBigCnt, p.bigCsEveryN);
            emitCsBody(b, p.csReadLines, p.bigCsWriteLines, p.csCompute,
                       regionLines);
            b.jmp(csdone);
            b.label(small);
            emitCsBody(b, p.csReadLines, p.csWriteLines, p.csCompute,
                       regionLines);
            b.label(csdone);
        } else {
            emitCsBody(b, p.csReadLines, p.csWriteLines, p.csCompute,
                       regionLines);
        }
        emitRelease(b, kind, rLock, rQn, rT0, rT1);

        // Outside phase: private work plus think time.
        for (unsigned t = 0; t < p.outsideTouches; ++t) {
            std::int64_t off = static_cast<std::int64_t>(t * lineBytes);
            b.ld(rT0, rPriv, off);
            b.addi(rT0, rT0, 1);
            b.st(rT0, rPriv, off);
        }
        if (p.outsideCompute > 0) {
            b.li(rDel, p.outsideCompute);
            b.delay(rDel);
        }
        if (p.outsideRandom > 0) {
            b.li(rDel, p.outsideRandom);
            b.rnd(rT0, rDel);
            b.delay(rT0);
        }

        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }

    // Validation: the per-lock counters must sum to the total number
    // of critical sections executed (atomicity witness).
    const std::uint64_t expected =
        p.itersPerCpu * static_cast<std::uint64_t>(num_cpus);
    wl.validate = [dataBase, dataRegions, regionLines,
                   expected](System &sys) {
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < dataRegions; ++i)
            sum += readCoherent(
                sys, dataBase + static_cast<Addr>(i) * regionLines *
                                    lineBytes);
        return sum == expected;
    };
    return wl;
}

//
// Paper-calibrated profiles. itersPerCpu values are scaled-down but
// keep the relative critical-section frequencies of the applications.
//

AppProfile
barnesProfile()
{
    AppProfile p;
    p.name = "barnes";
    p.numLocks = 32;               // octree node locks
    p.select = LockSelect::RootBiased;
    p.csReadLines = 1;
    p.csWriteLines = 1;            // cell updates: real data conflicts
    p.csCompute = 40;              // longer sections: restarts hurt
    p.outsideCompute = 150;        // body integration between inserts
    p.outsideRandom = 100;
    p.outsideTouches = 3;
    p.itersPerCpu = 96;
    return p;
}

AppProfile
choleskyProfile()
{
    AppProfile p;
    p.name = "cholesky";
    p.numLocks = 32;               // column locks
    p.select = LockSelect::Random;
    p.csReadLines = 2;
    p.csWriteLines = 6;            // typical column update
    p.bigCsWriteLines = 80;        // ScatterUpdate-style giant CS:
    p.bigCsEveryN = 24;            //  overflows the 64-line write buffer
    p.csCompute = 30;
    p.outsideCompute = 350;
    p.outsideRandom = 150;
    p.outsideTouches = 4;
    p.itersPerCpu = 48;
    return p;
}

AppProfile
mp3dProfile()
{
    AppProfile p;
    p.name = "mp3d";
    p.numLocks = 1024;             // per-cell locks; locks + cells
    p.select = LockSelect::Random; //  exceed the 128 KB L1
    p.csReadLines = 0;
    p.csWriteLines = 0;            // the cell update is the counter rmw
    p.csCompute = 0;
    p.outsideCompute = 8;          // very frequent synchronization
    p.outsideRandom = 8;
    p.outsideTouches = 1;
    p.itersPerCpu = 192;
    return p;
}

AppProfile
radiosityProfile()
{
    AppProfile p;
    p.name = "radiosity";
    p.numLocks = 8;                // task queue + buffer locks
    p.select = LockSelect::HotOrRandom;
    p.hotOneInN = 2;               // the task-queue lock stays hot
    p.csReadLines = 0;             // dequeue touches the queue head
    p.csWriteLines = 1;            //  plus the task descriptor: short,
    p.csCompute = 10;              //  nearly single-block sections
    p.outsideCompute = 700;        // computing the radiosity exchange
    p.outsideRandom = 300;
    p.outsideTouches = 2;
    p.itersPerCpu = 128;
    return p;
}

AppProfile
waterNsqProfile()
{
    AppProfile p;
    p.name = "water-nsq";
    p.numLocks = 256;              // per-molecule locks, uncontended
    p.select = LockSelect::Random;
    p.csReadLines = 2;             // force updates: data misses that
    p.csWriteLines = 2;            //  hide under the lock access
    p.csCompute = 10;
    p.outsideCompute = 120;
    p.outsideRandom = 60;
    p.outsideTouches = 2;
    p.itersPerCpu = 128;
    return p;
}

AppProfile
oceanContProfile()
{
    AppProfile p;
    p.name = "ocean-cont";
    p.numLocks = 4;                // global counter locks
    p.select = LockSelect::Random;
    p.csReadLines = 0;
    p.csWriteLines = 0;            // counter update only
    p.csCompute = 0;
    p.outsideCompute = 2000;       // grid relaxation dominates
    p.outsideRandom = 300;
    p.outsideTouches = 8;
    p.itersPerCpu = 32;
    return p;
}

AppProfile
raytraceProfile()
{
    AppProfile p;
    p.name = "raytrace";
    p.numLocks = 16;               // work list + counters
    p.select = LockSelect::HotOrRandom;
    p.hotOneInN = 4;               // work-list grabs are a quarter
    p.csReadLines = 1;
    p.csWriteLines = 1;
    p.csCompute = 5;
    p.outsideCompute = 500;        // ray shading between grabs
    p.outsideRandom = 250;
    p.outsideTouches = 4;
    p.itersPerCpu = 96;
    return p;
}

AppProfile
mp3dCoarseProfile()
{
    AppProfile p = mp3dProfile();
    p.name = "mp3d-coarse";
    // One lock protecting all 4096 independent cells (Section 6.3
    // experiment): terrible for BASE/MCS (total serialization), great
    // for TLR (the single lock line stays cached Shared everywhere
    // and the cell updates rarely conflict).
    p.dataRegions = p.numLocks;
    p.numLocks = 1;
    p.select = LockSelect::Fixed0;
    return p;
}

std::vector<AppProfile>
allAppProfiles()
{
    return {oceanContProfile(), waterNsqProfile(), raytraceProfile(),
            radiosityProfile(), barnesProfile(),   choleskyProfile(),
            mp3dProfile()};
}

} // namespace tlr

#include "workloads/scenarios.hh"

#include "harness/system.hh"
#include "sync/layout.hh"
#include "sync/lock_progs.hh"

namespace tlr
{

namespace
{

constexpr Reg rLock = 1;
constexpr Reg rA = 2;
constexpr Reg rB = 3;
constexpr Reg rT0 = 4;
constexpr Reg rT1 = 5;
constexpr Reg rV = 6;
constexpr Reg rIter = 7;

} // namespace

Workload
makeReverseWriters(int num_cpus, std::uint64_t iters_per_cpu)
{
    Layout lay;
    Addr lock = lay.allocLock();
    Addr a = lay.allocLine();
    Addr b = lay.allocLine();

    Workload wl;
    wl.name = "reverse-writers";
    wl.lockClassifier = lay.classifier();
    for (int c = 0; c < num_cpus; ++c) {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rA, static_cast<std::int64_t>(c % 2 ? b : a));
        pb.li(rB, static_cast<std::int64_t>(c % 2 ? a : b));
        pb.li(rIter, static_cast<std::int64_t>(iters_per_cpu));
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        pb.ld(rV, rB).addi(rV, rV, 1).st(rV, rB);
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        wl.programs.push_back(pb.build());
    }
    const std::uint64_t expected =
        iters_per_cpu * static_cast<std::uint64_t>(num_cpus);
    wl.validate = [a, b, expected](System &sys) {
        return readCoherent(sys, a) == expected &&
               readCoherent(sys, b) == expected;
    };
    return wl;
}

Workload
makeRotatedBlocks(int num_cpus, std::uint64_t iters_per_cpu)
{
    Layout lay;
    Addr lock = lay.allocLock();
    std::vector<Addr> blocks{lay.allocLine(), lay.allocLine(),
                             lay.allocLine()};

    Workload wl;
    wl.name = "rotated-blocks";
    wl.lockClassifier = lay.classifier();
    for (int c = 0; c < num_cpus; ++c) {
        ProgramBuilder pb;
        pb.li(rLock, static_cast<std::int64_t>(lock));
        pb.li(rIter, static_cast<std::int64_t>(iters_per_cpu));
        pb.label("loop");
        emitTtsAcquire(pb, rLock, rT0, rT1);
        for (size_t k = 0; k < blocks.size(); ++k) {
            Addr t = blocks[(static_cast<size_t>(c) + k) % blocks.size()];
            pb.li(rA, static_cast<std::int64_t>(t));
            pb.ld(rV, rA).addi(rV, rV, 1).st(rV, rA);
        }
        emitTtsRelease(pb, rLock);
        pb.addi(rIter, rIter, -1);
        pb.bne(rIter, 0, "loop");
        pb.halt();
        wl.programs.push_back(pb.build());
    }
    const std::uint64_t expected =
        iters_per_cpu * static_cast<std::uint64_t>(num_cpus);
    std::vector<Addr> blocksCopy = blocks;
    wl.validate = [blocksCopy, expected](System &sys) {
        for (Addr t : blocksCopy)
            if (readCoherent(sys, t) != expected)
                return false;
        return true;
    };
    return wl;
}

} // namespace tlr

#include "workloads/workload.hh"

#include "harness/system.hh"
#include "sim/logging.hh"

namespace tlr
{

void
installWorkload(System &sys, const Workload &wl)
{
    if (static_cast<int>(wl.programs.size()) != sys.numCpus())
        fatal("workload '%s' built for %zu cpus, system has %d",
              wl.name.c_str(), wl.programs.size(), sys.numCpus());
    for (int i = 0; i < sys.numCpus(); ++i)
        sys.setProgram(i, wl.programs[static_cast<size_t>(i)]);
    if (wl.lockClassifier)
        sys.setLockClassifier(wl.lockClassifier);
    if (wl.init)
        wl.init(sys.memory());
}

std::uint64_t
readCoherent(System &sys, Addr addr)
{
    for (int i = 0; i < sys.numCpus(); ++i) {
        CohState st = sys.l1(i).lineState(addr);
        if (isOwnerState(st))
            return sys.l1(i).peekWord(addr);
    }
    // No L1 owner: a Shared copy (if any) matches memory by invariant.
    return sys.memory().readWord(addr);
}

} // namespace tlr

#include "workloads/micro.hh"

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"

namespace tlr
{

namespace
{

// Register conventions shared by the generated programs.
constexpr Reg rLock = 1;
constexpr Reg rQn = 2;
constexpr Reg rAddr = 3;
constexpr Reg rIter = 4;
constexpr Reg rVal = 5;
constexpr Reg rT0 = 6;
constexpr Reg rT1 = 7;
constexpr Reg rT2 = 8;
constexpr Reg rDel = 9;
constexpr Reg rHead = 10;
constexpr Reg rTail = 11;
constexpr Reg rH = 12;
constexpr Reg rN = 13;
constexpr Reg rT = 14;

void
emitRandomDelay(ProgramBuilder &b, unsigned max_delay)
{
    if (max_delay == 0)
        return;
    b.li(rDel, max_delay);
    b.rnd(rT0, rDel);
    b.delay(rT0);
}

std::uint64_t
perCpuOps(const MicroParams &p)
{
    std::uint64_t per = p.totalOps / static_cast<std::uint64_t>(p.numCpus);
    return per == 0 ? 1 : per;
}

/** Allocate MCS queue nodes (one per cpu) when needed. */
std::vector<Addr>
allocQnodes(Layout &lay, const MicroParams &p)
{
    std::vector<Addr> qn;
    if (p.lockKind == LockKind::Mcs) {
        for (int i = 0; i < p.numCpus; ++i) {
            Addr a = lay.allocLine();
            lay.registerSyncAddr(a);
            qn.push_back(a);
        }
    }
    return qn;
}

} // namespace

Workload
makeMultipleCounter(const MicroParams &p)
{
    Layout lay;
    Addr lock = lay.allocLock();
    std::vector<Addr> counters;
    for (int i = 0; i < p.numCpus; ++i)
        counters.push_back(lay.allocLine());
    std::vector<Addr> qn = allocQnodes(lay, p);
    const std::uint64_t per = perCpuOps(p);

    Workload wl;
    wl.name = "multiple-counter";
    wl.lockClassifier = lay.classifier();
    for (int i = 0; i < p.numCpus; ++i) {
        ProgramBuilder b;
        b.li(rLock, static_cast<std::int64_t>(lock));
        if (p.lockKind == LockKind::Mcs)
            b.li(rQn, static_cast<std::int64_t>(qn[static_cast<size_t>(i)]));
        b.li(rAddr,
             static_cast<std::int64_t>(counters[static_cast<size_t>(i)]));
        b.li(rIter, static_cast<std::int64_t>(per));
        b.label("loop");
        emitAcquire(b, p.lockKind, rLock, rQn, rT0, rT1, rT2);
        b.ld(rVal, rAddr);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rAddr);
        emitRelease(b, p.lockKind, rLock, rQn, rT0, rT1);
        emitRandomDelay(b, p.postReleaseDelayMax);
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }
    wl.validate = [counters, per](System &sys) {
        for (Addr c : counters)
            if (readCoherent(sys, c) != per)
                return false;
        return true;
    };
    return wl;
}

Workload
makeSingleCounter(const MicroParams &p)
{
    Layout lay;
    Addr lock = lay.allocLock();
    Addr counter = lay.allocLine();
    std::vector<Addr> qn = allocQnodes(lay, p);
    const std::uint64_t per = perCpuOps(p);

    Workload wl;
    wl.name = "single-counter";
    wl.lockClassifier = lay.classifier();
    for (int i = 0; i < p.numCpus; ++i) {
        ProgramBuilder b;
        b.li(rLock, static_cast<std::int64_t>(lock));
        if (p.lockKind == LockKind::Mcs)
            b.li(rQn, static_cast<std::int64_t>(qn[static_cast<size_t>(i)]));
        b.li(rAddr, static_cast<std::int64_t>(counter));
        b.li(rIter, static_cast<std::int64_t>(per));
        b.label("loop");
        emitAcquire(b, p.lockKind, rLock, rQn, rT0, rT1, rT2);
        b.ld(rVal, rAddr);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rAddr);
        emitRelease(b, p.lockKind, rLock, rQn, rT0, rT1);
        emitRandomDelay(b, p.postReleaseDelayMax);
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }
    const std::uint64_t expected =
        per * static_cast<std::uint64_t>(p.numCpus);
    wl.validate = [counter, expected](System &sys) {
        return readCoherent(sys, counter) == expected;
    };
    return wl;
}

Workload
makeDoublyLinkedList(const MicroParams &p)
{
    constexpr std::int64_t nextOff = 0;
    constexpr std::int64_t prevOff = 8;

    Layout lay;
    Addr lock = lay.allocLock();
    Addr headAddr = lay.allocLine();
    Addr tailAddr = lay.allocLine();
    std::vector<Addr> nodes;
    for (int i = 0; i < p.numCpus; ++i)
        nodes.push_back(lay.allocLine());
    std::vector<Addr> qn = allocQnodes(lay, p);
    const std::uint64_t per = perCpuOps(p);

    Workload wl;
    wl.name = "doubly-linked-list";
    wl.lockClassifier = lay.classifier();
    wl.init = [headAddr, tailAddr, nodes](BackingStore &mem) {
        for (size_t i = 0; i < nodes.size(); ++i) {
            Addr next = i + 1 < nodes.size() ? nodes[i + 1] : 0;
            Addr prev = i > 0 ? nodes[i - 1] : 0;
            mem.writeWord(nodes[i] + static_cast<Addr>(nextOff), next);
            mem.writeWord(nodes[i] + static_cast<Addr>(prevOff), prev);
        }
        mem.writeWord(headAddr, nodes.front());
        mem.writeWord(tailAddr, nodes.back());
    };

    for (int i = 0; i < p.numCpus; ++i) {
        ProgramBuilder b;
        b.li(rLock, static_cast<std::int64_t>(lock));
        if (p.lockKind == LockKind::Mcs)
            b.li(rQn, static_cast<std::int64_t>(qn[static_cast<size_t>(i)]));
        b.li(rHead, static_cast<std::int64_t>(headAddr));
        b.li(rTail, static_cast<std::int64_t>(tailAddr));
        b.li(rIter, static_cast<std::int64_t>(per));

        b.label("loop");
        // --- dequeue transaction: remove the node at Head ----------
        b.label("deq_retry");
        emitAcquire(b, p.lockKind, rLock, rQn, rT0, rT1, rT2);
        b.ld(rH, rHead);
        b.bne(rH, 0, "have_item");
        emitRelease(b, p.lockKind, rLock, rQn, rT0, rT1);
        emitRandomDelay(b, p.postReleaseDelayMax);
        b.jmp("deq_retry");
        b.label("have_item");
        b.ld(rN, rH, nextOff);
        b.st(rN, rHead);
        b.bne(rN, 0, "fixprev");
        b.st(0, rTail); // removed the last item: queue is now empty
        b.jmp("deq_done");
        b.label("fixprev");
        b.st(0, rN, prevOff);
        b.label("deq_done");
        emitRelease(b, p.lockKind, rLock, rQn, rT0, rT1);
        emitRandomDelay(b, p.postReleaseDelayMax);

        // --- enqueue transaction: append the node at Tail ----------
        emitAcquire(b, p.lockKind, rLock, rQn, rT0, rT1, rT2);
        b.ld(rT, rTail);
        b.st(0, rH, nextOff);
        b.st(rT, rH, prevOff);
        b.st(rH, rTail);
        b.bne(rT, 0, "linkpred");
        b.st(rH, rHead); // queue was empty
        b.jmp("enq_done");
        b.label("linkpred");
        b.st(rH, rT, nextOff);
        b.label("enq_done");
        emitRelease(b, p.lockKind, rLock, rQn, rT0, rT1);
        emitRandomDelay(b, p.postReleaseDelayMax);

        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }

    const size_t expectedCount = nodes.size();
    wl.validate = [headAddr, tailAddr, expectedCount](System &sys) {
        Addr cur = readCoherent(sys, headAddr);
        Addr prev = 0;
        size_t count = 0;
        while (cur != 0 && count <= expectedCount) {
            if (readCoherent(sys, cur + 8) != prev)
                return false; // prev pointer corrupted
            prev = cur;
            cur = readCoherent(sys, cur + 0);
            ++count;
        }
        return count == expectedCount &&
               readCoherent(sys, tailAddr) == prev;
    };
    return wl;
}

} // namespace tlr

/**
 * @file
 * Workload abstraction: per-cpu programs plus initialization and
 * validation hooks. Validation reads coherent memory after the run,
 * so it checks end-to-end data correctness through the protocol, the
 * write buffers and the commit path — not just timing.
 */

#ifndef TLR_WORKLOADS_WORKLOAD_HH
#define TLR_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/program.hh"
#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace tlr
{

class System;

struct Workload
{
    std::string name;
    std::vector<ProgramPtr> programs;            ///< one per cpu
    std::function<bool(Addr)> lockClassifier;    ///< stall attribution
    std::function<void(BackingStore &)> init;    ///< pre-run memory image
    std::function<bool(System &)> validate;      ///< post-run invariants
};

/** Install a workload into a system (programs + classifier + init). */
void installWorkload(System &sys, const Workload &wl);

/** Read a word coherently: owner L1 copy if one exists, else memory. */
std::uint64_t readCoherent(System &sys, Addr addr);

} // namespace tlr

#endif // TLR_WORKLOADS_WORKLOAD_HH

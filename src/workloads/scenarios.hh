/**
 * @file
 * Small hand-crafted scenarios from the paper's figures:
 *
 *  - reverse-order writers (Figures 2 and 4): every processor's
 *    critical section increments two shared locations, with odd
 *    processors writing them in the opposite order — the canonical
 *    livelock under restart-only speculation, resolved by TLR.
 *  - rotated multi-block writers (Figure 6 generalization): each
 *    processor touches three blocks starting at a different offset,
 *    building the ownership chains that need marker/probe resolution.
 */

#ifndef TLR_WORKLOADS_SCENARIOS_HH
#define TLR_WORKLOADS_SCENARIOS_HH

#include "workloads/workload.hh"

namespace tlr
{

/** Figures 2/4 workload. Locations A and B end up at
 *  cpus * iters each when execution is correct. */
Workload makeReverseWriters(int num_cpus, std::uint64_t iters_per_cpu);

/** Figure 6 style rotated three-block critical sections. */
Workload makeRotatedBlocks(int num_cpus, std::uint64_t iters_per_cpu);

} // namespace tlr

#endif // TLR_WORKLOADS_SCENARIOS_HH

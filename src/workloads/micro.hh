/**
 * @file
 * The paper's three microbenchmarks (Section 5.1):
 *
 *  - multiple-counter: coarse-grain lock, no data conflicts. One lock
 *    protects n counters; each processor updates only its own counter.
 *  - single-counter: fine-grain, high conflict. One lock, one counter,
 *    every processor increments the same cache line.
 *  - doubly-linked list: fine-grain, dynamic conflicts. One lock
 *    protects a head/tail queue; dequeues touch Head, enqueues Tail,
 *    and only the empty transitions touch both.
 *
 * Total work is held constant across processor counts, and each
 * release is followed by a random delay so another processor gets a
 * chance at the lock (the Kumar et al. fairness methodology the paper
 * adopts).
 */

#ifndef TLR_WORKLOADS_MICRO_HH
#define TLR_WORKLOADS_MICRO_HH

#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlr
{

struct MicroParams
{
    int numCpus = 16;
    LockKind lockKind = LockKind::TestAndTestAndSet;
    std::uint64_t totalOps = 1u << 12; ///< divided among processors
    unsigned postReleaseDelayMax = 64; ///< random wait after release
};

Workload makeMultipleCounter(const MicroParams &p);
Workload makeSingleCounter(const MicroParams &p);
Workload makeDoublyLinkedList(const MicroParams &p);

} // namespace tlr

#endif // TLR_WORKLOADS_MICRO_HH

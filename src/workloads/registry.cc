#include "workloads/registry.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "workloads/apps.hh"
#include "workloads/db/db.hh"
#include "workloads/extra.hh"
#include "workloads/micro.hh"
#include "workloads/scenarios.hh"

namespace tlr
{

namespace
{

// Category headers. Alphabetical listing order is part of the
// contract (tests/test_db.cc pins it), so the names are chosen to
// read well sorted.
const char *const kCatApps = "application kernels (paper Table 1)";
const char *const kCatDb = "database workloads (src/workloads/db)";
const char *const kCatExtra = "extended workloads";
const char *const kCatMicro = "microbenchmarks (paper Section 5.1)";
const char *const kCatScenario = "scenarios (paper figures)";

MicroParams
microParams(const WorkloadParams &p)
{
    MicroParams mp;
    mp.numCpus = p.numCpus;
    mp.lockKind = p.lockKind;
    mp.totalOps = p.ops;
    return mp;
}

DbParams
dbParams(const WorkloadParams &p)
{
    DbParams d;
    d.numCpus = p.numCpus;
    d.opsPerCpu = p.ops;
    d.seed = p.seed;
    d.lockKind = p.lockKind;
    d.theta = p.theta;
    d.keys = p.keys;
    d.partitions = p.partitions;
    return d;
}

void
addDbEntries(std::vector<WorkloadEntry> &r)
{
    const std::string dbKnobs =
        "ops=per-cpu, --theta, --keys, --seed";
    r.push_back({"hash-kv", kCatDb,
                 "chained hash-table KV, per-bucket locks", dbKnobs,
                 [](const WorkloadParams &p) {
                     return makeHashKv(dbParams(p));
                 }});
    for (char mix : {'a', 'b', 'c'}) {
        std::string summary =
            std::string("YCSB-") +
            static_cast<char>(mix - 'a' + 'A') + " mix over hash-kv (" +
            (mix == 'a' ? "50% updates"
                        : mix == 'b' ? "5% updates" : "read-only") +
            ")";
        r.push_back({std::string("ycsb-") + mix, kCatDb, summary,
                     dbKnobs, [mix](const WorkloadParams &p) {
                         return makeYcsb(mix, dbParams(p));
                     }});
    }
    r.push_back({"ordered-index", kCatDb,
                 "leaf-locked index with two-lock range scans", dbKnobs,
                 [](const WorkloadParams &p) {
                     return makeOrderedIndex(dbParams(p));
                 }});
    r.push_back({"partition", kCatDb,
                 "cross-partition transfers, ordered two-lock txns",
                 "ops=per-cpu, --theta, --partitions, --seed",
                 [](const WorkloadParams &p) {
                     return makePartitionedTable(dbParams(p));
                 }});
    r.push_back({"tpcc-lite", kCatDb,
                 "TPC-C-style new-order/payment over warehouses",
                 "ops=per-cpu, --theta, --partitions (warehouses), "
                 "--seed",
                 [](const WorkloadParams &p) {
                     return makeTpccLite(dbParams(p));
                 }});
}

std::vector<WorkloadEntry>
buildRegistry()
{
    std::vector<WorkloadEntry> r;

    r.push_back({"single-counter", kCatMicro,
                 "fine-grain / high conflict", "ops=total",
                 [](const WorkloadParams &p) {
                     return makeSingleCounter(microParams(p));
                 }});
    r.push_back({"multiple-counter", kCatMicro,
                 "coarse-grain / no conflicts", "ops=total",
                 [](const WorkloadParams &p) {
                     return makeMultipleCounter(microParams(p));
                 }});
    r.push_back({"dlist", kCatMicro,
                 "fine-grain / dynamic conflicts", "ops=total",
                 [](const WorkloadParams &p) {
                     return makeDoublyLinkedList(microParams(p));
                 }});

    r.push_back({"reverse-writers", kCatScenario,
                 "Figures 2/4 conflict pattern", "ops=per-cpu",
                 [](const WorkloadParams &p) {
                     return makeReverseWriters(p.numCpus, p.ops);
                 }});
    r.push_back({"rotated-blocks", kCatScenario,
                 "Figure 6 chain pattern", "ops=per-cpu",
                 [](const WorkloadParams &p) {
                     return makeRotatedBlocks(p.numCpus, p.ops);
                 }});

    for (const AppProfile &prof : allAppProfiles()) {
        r.push_back({prof.name, kCatApps,
                     "synthetic SPLASH-style kernel", "ops=per-cpu",
                     [prof](const WorkloadParams &p) {
                         AppProfile a = prof;
                         a.itersPerCpu = p.ops;
                         return makeAppKernel(a, p.numCpus, p.lockKind);
                     }});
    }
    r.push_back({"mp3d-coarse", kCatApps,
                 "one lock over all cells (paper Section 6.3)",
                 "ops=per-cpu", [](const WorkloadParams &p) {
                     AppProfile a = mp3dCoarseProfile();
                     a.itersPerCpu = p.ops;
                     return makeAppKernel(a, p.numCpus, p.lockKind);
                 }});

    r.push_back({"bank", kCatExtra, "nested ordered account locks",
                 "ops=per-cpu", [](const WorkloadParams &p) {
                     return makeBankTransfer(p.numCpus, 16, p.ops,
                                             p.lockKind);
                 }});
    r.push_back({"octree", kCatExtra, "barnes-like tree-node locking",
                 "ops=per-cpu", [](const WorkloadParams &p) {
                     return makeOctreeInsert(p.numCpus, 2, p.ops,
                                             p.lockKind);
                 }});
    r.push_back({"history", kCatExtra,
                 "serialization-witness counter", "ops=per-cpu",
                 [](const WorkloadParams &p) {
                     return makeHistoryCounter(p.numCpus, p.ops,
                                               p.lockKind);
                 }});

    addDbEntries(r);

    std::sort(r.begin(), r.end(),
              [](const WorkloadEntry &a, const WorkloadEntry &b) {
                  if (a.category != b.category)
                      return a.category < b.category;
                  return a.name < b.name;
              });
    return r;
}

} // namespace

const std::vector<WorkloadEntry> &
workloadRegistry()
{
    static const std::vector<WorkloadEntry> r = buildRegistry();
    return r;
}

const WorkloadEntry *
findWorkload(const std::string &name)
{
    for (const WorkloadEntry &e : workloadRegistry())
        if (e.name == name)
            return &e;
    return nullptr;
}

Workload
makeRegisteredWorkload(const std::string &name, const WorkloadParams &p)
{
    const WorkloadEntry *e = findWorkload(name);
    if (!e)
        fatal("unknown workload '%s' (try --list)", name.c_str());
    return e->make(p);
}

std::string
workloadListText()
{
    const std::vector<WorkloadEntry> &reg = workloadRegistry();
    size_t width = 0;
    for (const WorkloadEntry &e : reg)
        width = std::max(width, e.name.size());
    std::ostringstream os;
    std::string cat;
    for (const WorkloadEntry &e : reg) {
        if (e.category != cat) {
            cat = e.category;
            os << cat << ":\n";
        }
        os << "  " << e.name
           << std::string(width - e.name.size() + 2, ' ') << e.summary;
        if (!e.params.empty())
            os << " [" << e.params << "]";
        os << "\n";
    }
    return os.str();
}

} // namespace tlr

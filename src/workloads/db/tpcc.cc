/**
 * @file
 * TPC-C-flavored kernel: `partitions` warehouses, 4 districts and 32
 * stock rows each. A 50/50 mix of new-order (district order counter +
 * three distinct stock-row decrements with threshold replenish) and
 * payment (warehouse + district year-to-date). All locks live in one
 * contiguous region ordered warehouse < district < stock, so every
 * transaction naturally acquires in ascending (global) address order,
 * and a single per-run delta maps any lock to its data line.
 *
 * Stock conservation is exact despite racing replenishes: each op
 * subtracts q in [1,10] and adds 91 iff the result dips below 10, so
 * qty stays in [10,100] — a width-91 window — and the final quantity
 * is the unique value in that window congruent to 100 - sum(q) mod 91,
 * independent of interleaving.
 */

#include <algorithm>
#include <vector>

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"
#include "workloads/db/db.hh"
#include "workloads/db/db_common.hh"
#include "workloads/db/keydist.hh"

namespace tlr
{

namespace
{

using namespace db;

constexpr unsigned districtsPerWh = 4;
constexpr unsigned stockPerWh = 32;
constexpr std::uint64_t initQty = 100;
constexpr std::uint64_t replenishAt = 10; ///< refill when qty drops below
constexpr std::uint64_t replenishBy = 91;

// Data-line offsets. Warehouse: ytd@0. District: orders@0, ytd@8.
// Stock: qty@0, ytd@8, count@16.
constexpr std::int64_t fYtd = 0;
constexpr std::int64_t fOrders = 0;
constexpr std::int64_t fDistYtd = 8;
constexpr std::int64_t fQty = 0;
constexpr std::int64_t fStockYtd = 8;
constexpr std::int64_t fStockCnt = 16;

// Final stock quantity implied by the total decremented amount.
std::uint64_t
expectedQty(std::uint64_t sumQ)
{
    std::uint64_t q = (initQty + replenishBy * (1 + sumQ / replenishBy) -
                       sumQ % replenishBy) %
                      replenishBy;
    if (q < replenishAt)
        q += replenishBy;
    return q;
}

} // namespace

Workload
makeTpccLite(const DbParams &p)
{
    const unsigned whs = p.partitions;
    if (whs == 0)
        fatal("tpcc-lite: need at least one warehouse");
    const unsigned districts = whs * districtsPerWh;
    const unsigned stocks = whs * stockPerWh;
    // Lock-region index space: [0, whs) warehouses, then districts,
    // then stock rows — ascending addresses give the global order.
    const unsigned dIdx0 = whs;
    const unsigned sIdx0 = whs + districts;
    const unsigned total = whs + districts + stocks;

    Layout lay;
    LockRegion locks = allocLockRegion(lay, total, p.numCpus, p.lockKind);
    Addr dataBase = lay.allocLines(total);
    const std::int64_t dataDelta =
        static_cast<std::int64_t>(dataBase) -
        static_cast<std::int64_t>(locks.lockBase);

    // One 64-byte line (8 words) per op. w0: kind (0 = new-order,
    // 1 = payment). New-order: w1 district lock, w2..w4 strictly
    // ascending distinct stock locks, w5 = q0 | q1<<8 | q2<<16.
    // Payment: w1 warehouse lock, w2 district lock, w3 amount.
    OpStream ops;
    std::vector<std::uint64_t> expOrd(districts, 0);
    std::vector<std::uint64_t> expWhYtd(whs, 0);
    std::vector<std::uint64_t> expDistYtd(districts, 0);
    std::vector<std::uint64_t> expStockYtd(stocks, 0);
    std::vector<std::uint64_t> expStockCnt(stocks, 0);
    Rng root(p.seed);
    for (int c = 0; c < p.numCpus; ++c) {
        KeyDist kd(stocks, p.theta,
                   root.fork(0x53544f434bull).fork(
                       static_cast<std::uint64_t>(c)));
        Rng mix = root.fork(0x545043ull).fork(
            static_cast<std::uint64_t>(c));
        std::vector<std::uint64_t> w;
        w.reserve(p.opsPerCpu * 8);
        for (std::uint64_t i = 0; i < p.opsPerCpu; ++i) {
            bool payment = mix.below(100) < 50;
            std::uint64_t line[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            if (payment) {
                unsigned wh = static_cast<unsigned>(mix.below(whs));
                unsigned d = wh * districtsPerWh +
                             static_cast<unsigned>(
                                 mix.below(districtsPerWh));
                std::uint64_t amount = 1 + mix.below(100);
                line[0] = 1;
                line[1] = locks.lockAddr(wh);
                line[2] = locks.lockAddr(dIdx0 + d);
                line[3] = amount;
                expWhYtd[wh] += amount;
                expDistYtd[d] += amount;
            } else {
                unsigned d = static_cast<unsigned>(mix.below(districts));
                // Three distinct stock rows, popularity-skewed.
                unsigned row[3];
                for (int j = 0; j < 3; ++j) {
                    bool dup;
                    do {
                        row[j] = static_cast<unsigned>(kd.next());
                        dup = false;
                        for (int k = 0; k < j; ++k)
                            dup = dup || row[k] == row[j];
                    } while (dup);
                }
                std::sort(row, row + 3);
                line[0] = 0;
                line[1] = locks.lockAddr(dIdx0 + d);
                std::uint64_t qtys = 0;
                for (int j = 0; j < 3; ++j) {
                    std::uint64_t q = 1 + mix.below(10);
                    line[2 + j] = locks.lockAddr(sIdx0 + row[j]);
                    qtys |= q << (8 * j);
                    expStockYtd[row[j]] += q;
                    ++expStockCnt[row[j]];
                }
                line[5] = qtys;
                ++expOrd[d];
            }
            w.insert(w.end(), line, line + 8);
        }
        ops.words.push_back(std::move(w));
    }
    ops.alloc(lay);

    Workload wl;
    wl.name = "tpcc-lite";
    wl.lockClassifier = lay.classifier();
    wl.init = [ops, dataBase, whs, districts, stocks, dIdx0,
               sIdx0](BackingStore &mem) {
        ops.write(mem);
        auto line = [&](unsigned idx) {
            return dataBase + static_cast<Addr>(idx) * lineBytes;
        };
        for (unsigned w = 0; w < whs; ++w)
            mem.writeWord(line(w) + fYtd, 0);
        for (unsigned d = 0; d < districts; ++d) {
            mem.writeWord(line(dIdx0 + d) + fOrders, 0);
            mem.writeWord(line(dIdx0 + d) + fDistYtd, 0);
        }
        for (unsigned s = 0; s < stocks; ++s) {
            mem.writeWord(line(sIdx0 + s) + fQty, initQty);
            mem.writeWord(line(sIdx0 + s) + fStockYtd, 0);
            mem.writeWord(line(sIdx0 + s) + fStockCnt, 0);
        }
    };

    for (int c = 0; c < p.numCpus; ++c) {
        ProgramBuilder b;
        emitOpLoopSetup(b, ops, locks, p.lockKind, c, p.opsPerCpu * 8);
        b.li(rF, dataDelta);
        b.label("loop");
        b.bge(rOps, rEnd, "exit");
        b.ld(rOp, rOps, 0);
        b.ld(rA, rOps, 8);
        b.ld(rB, rOps, 16);
        b.ld(rC, rOps, 24);
        b.ld(rD, rOps, 32);
        b.ld(rE, rOps, 40);
        b.addi(rOps, rOps, 64);
        b.bne(rOp, 0, "payment");

        // New-order: district lock then the three stock locks — the
        // op line already carries them in ascending global order.
        emitDbAcquire(b, p.lockKind, rA, rQnDelta, rQn, rT0, rT1, rT2);
        emitDbAcquire(b, p.lockKind, rB, rQnDelta, rQn, rT0, rT1, rT2);
        emitDbAcquire(b, p.lockKind, rC, rQnDelta, rQn, rT0, rT1, rT2);
        emitDbAcquire(b, p.lockKind, rD, rQnDelta, rQn, rT0, rT1, rT2);
        b.add(rG, rA, rF); // district data line
        b.ld(rVal, rG, fOrders);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rG, fOrders);
        const Reg stockLock[3] = {rB, rC, rD};
        for (int j = 0; j < 3; ++j) {
            std::string fill = "fill" + std::to_string(j);
            b.add(rG, stockLock[j], rF);
            b.srli(rT0, rE, 8 * static_cast<unsigned>(j));
            b.andi(rT0, rT0, 0xff); // this row's quantity
            b.ld(rVal, rG, fQty);
            b.sub(rVal, rVal, rT0);
            b.li(rT1, static_cast<std::int64_t>(replenishAt));
            b.bge(rVal, rT1, fill);
            b.addi(rVal, rVal, replenishBy); // threshold replenish
            b.label(fill);
            b.st(rVal, rG, fQty);
            b.ld(rVal, rG, fStockYtd);
            b.add(rVal, rVal, rT0);
            b.st(rVal, rG, fStockYtd);
            b.ld(rVal, rG, fStockCnt);
            b.addi(rVal, rVal, 1);
            b.st(rVal, rG, fStockCnt);
        }
        emitDbRelease(b, p.lockKind, rD, rQnDelta, rQn, rT0, rT1);
        emitDbRelease(b, p.lockKind, rC, rQnDelta, rQn, rT0, rT1);
        emitDbRelease(b, p.lockKind, rB, rQnDelta, rQn, rT0, rT1);
        emitDbRelease(b, p.lockKind, rA, rQnDelta, rQn, rT0, rT1);
        b.jmp("next");

        // Payment: warehouse then district (ascending by region).
        b.label("payment");
        emitDbAcquire(b, p.lockKind, rA, rQnDelta, rQn, rT0, rT1, rT2);
        emitDbAcquire(b, p.lockKind, rB, rQnDelta, rQn, rT0, rT1, rT2);
        b.add(rG, rA, rF);
        b.ld(rVal, rG, fYtd);
        b.add(rVal, rVal, rC);
        b.st(rVal, rG, fYtd);
        b.add(rG, rB, rF);
        b.ld(rVal, rG, fDistYtd);
        b.add(rVal, rVal, rC);
        b.st(rVal, rG, fDistYtd);
        emitDbRelease(b, p.lockKind, rB, rQnDelta, rQn, rT0, rT1);
        emitDbRelease(b, p.lockKind, rA, rQnDelta, rQn, rT0, rT1);

        b.label("next");
        emitPostDelay(b, p.postReleaseDelayMax);
        b.jmp("loop");
        b.label("exit");
        b.halt();
        wl.programs.push_back(b.build());
    }

    wl.validate = [dataBase, whs, districts, stocks, dIdx0, sIdx0,
                   expOrd, expWhYtd, expDistYtd, expStockYtd,
                   expStockCnt](System &sys) {
        auto line = [&](unsigned idx) {
            return dataBase + static_cast<Addr>(idx) * lineBytes;
        };
        for (unsigned w = 0; w < whs; ++w)
            if (readCoherent(sys, line(w) + fYtd) != expWhYtd[w])
                return false; // payment conservation (warehouse)
        for (unsigned d = 0; d < districts; ++d) {
            if (readCoherent(sys, line(dIdx0 + d) + fOrders) !=
                expOrd[d])
                return false;
            if (readCoherent(sys, line(dIdx0 + d) + fDistYtd) !=
                expDistYtd[d])
                return false;
        }
        for (unsigned s = 0; s < stocks; ++s) {
            Addr e = line(sIdx0 + s);
            if (readCoherent(sys, e + fStockYtd) != expStockYtd[s])
                return false;
            if (readCoherent(sys, e + fStockCnt) != expStockCnt[s])
                return false;
            if (readCoherent(sys, e + fQty) !=
                expectedQty(expStockYtd[s]))
                return false; // unique qty in the width-91 window
        }
        return true;
    };
    return wl;
}

} // namespace tlr

/**
 * @file
 * Internal scaffolding shared by the db workload generators: a
 * contiguous lock-region allocator with per-cpu MCS queue-node
 * mirrors, acquire/release wrappers that derive the queue node from
 * the lock address at runtime, and pre-generated per-cpu operation
 * streams baked into private memory.
 *
 * Not part of the public workload API — include only from the db
 * workload generators.
 */

#ifndef TLR_WORKLOADS_DB_DB_COMMON_HH
#define TLR_WORKLOADS_DB_DB_COMMON_HH

#include <cstdint>
#include <vector>

#include "sync/layout.hh"
#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlr
{
namespace db
{

/**
 * A contiguous run of line-padded locks plus, under MCS, one
 * same-stride queue-node mirror region per cpu. Because lock k and
 * cpu c's queue node for lock k sit at the same offset in their
 * regions, a program holding the lock address computes its queue
 * node with one add of the per-cpu constant delta() — no per-lock
 * tables, which matters when the lock is picked dynamically (hash
 * bucket, index leaf, partition, stock row).
 */
struct LockRegion
{
    Addr lockBase = 0;
    unsigned count = 0;
    std::vector<Addr> qnBase; ///< per-cpu mirror; empty unless MCS

    Addr lockAddr(unsigned idx) const
    {
        return lockBase + static_cast<Addr>(idx) * lineBytes;
    }

    /** qnode = lock + delta(cpu) (valid for every lock in the region). */
    std::int64_t delta(int cpu) const
    {
        return static_cast<std::int64_t>(qnBase[static_cast<size_t>(cpu)]) -
               static_cast<std::int64_t>(lockBase);
    }
};

inline LockRegion
allocLockRegion(Layout &lay, unsigned count, int cpus, LockKind kind)
{
    LockRegion r;
    r.count = count;
    r.lockBase = lay.allocLines(count);
    for (unsigned i = 0; i < count; ++i)
        lay.registerSyncAddr(r.lockAddr(i));
    if (kind == LockKind::Mcs) {
        for (int c = 0; c < cpus; ++c) {
            Addr base = lay.allocLines(count);
            for (unsigned i = 0; i < count; ++i)
                lay.registerSyncAddr(base +
                                     static_cast<Addr>(i) * lineBytes);
            r.qnBase.push_back(base);
        }
    }
    return r;
}

/** Acquire the lock whose address is in @p lock. Under MCS the queue
 *  node is derived as lock + @p qnDelta (see LockRegion); @p qn, @p
 *  t0..t2 are clobbered. */
inline void
emitDbAcquire(ProgramBuilder &b, LockKind kind, Reg lock, Reg qnDelta,
              Reg qn, Reg t0, Reg t1, Reg t2)
{
    if (kind == LockKind::Mcs) {
        b.add(qn, lock, qnDelta);
        emitMcsAcquire(b, lock, qn, t0, t1, t2);
    } else {
        emitTtsAcquire(b, lock, t0, t1);
    }
}

/** Release counterpart of emitDbAcquire (recomputes the queue node). */
inline void
emitDbRelease(ProgramBuilder &b, LockKind kind, Reg lock, Reg qnDelta,
              Reg qn, Reg t0, Reg t1)
{
    if (kind == LockKind::Mcs) {
        b.add(qn, lock, qnDelta);
        emitMcsRelease(b, lock, qn, t0, t1);
    } else {
        emitTtsRelease(b, lock);
    }
}

/** Per-cpu pre-generated operation words, baked into private memory
 *  by the workload's init hook (read-only to the simulated program). */
struct OpStream
{
    std::vector<std::vector<std::uint64_t>> words; ///< [cpu][op]
    std::vector<Addr> base;                        ///< [cpu]

    /** Allocate the backing arrays (call after words is filled). */
    void
    alloc(Layout &lay)
    {
        for (const auto &w : words)
            base.push_back(
                lay.alloc(static_cast<std::uint64_t>(w.size()) * 8,
                          lineBytes));
    }

    /** Write every stream into simulated memory. */
    void
    write(BackingStore &mem) const
    {
        for (size_t c = 0; c < words.size(); ++c)
            for (size_t i = 0; i < words[c].size(); ++i)
                mem.writeWord(base[c] + 8 * static_cast<Addr>(i),
                              words[c][i]);
    }
};

// Register conventions shared by the db program generators.
constexpr Reg rOps = 1;     ///< op-stream cursor
constexpr Reg rEnd = 2;     ///< op-stream end
constexpr Reg rOp = 3;      ///< current op word
constexpr Reg rKey = 4;
constexpr Reg rT0 = 5;
constexpr Reg rT1 = 6;
constexpr Reg rT2 = 7;
constexpr Reg rLock = 8;
constexpr Reg rQn = 9;      ///< MCS queue-node scratch
constexpr Reg rQnDelta = 10;
constexpr Reg rVal = 11;
constexpr Reg rCur = 12;
constexpr Reg rA = 13;      ///< generator-specific
constexpr Reg rB = 14;
constexpr Reg rC = 15;
constexpr Reg rD = 16;
constexpr Reg rE = 17;
constexpr Reg rF = 18;
constexpr Reg rG = 19;
constexpr Reg rH2 = 20;
constexpr Reg rDel = 21;

/** Standard op-loop prologue: cursor/end registers plus the MCS
 *  queue-node delta when needed. */
inline void
emitOpLoopSetup(ProgramBuilder &b, const OpStream &ops,
                const LockRegion &locks, LockKind kind, int cpu,
                std::uint64_t opWords)
{
    Addr base = ops.base[static_cast<size_t>(cpu)];
    b.li(rOps, static_cast<std::int64_t>(base));
    b.li(rEnd, static_cast<std::int64_t>(base + opWords * 8));
    if (kind == LockKind::Mcs)
        b.li(rQnDelta, locks.delta(cpu));
}

/** Post-release random delay (same methodology as the micros). */
inline void
emitPostDelay(ProgramBuilder &b, unsigned maxDelay)
{
    if (maxDelay == 0)
        return;
    b.li(rDel, maxDelay);
    b.rnd(rT0, rDel);
    b.delay(rT0);
}

} // namespace db
} // namespace tlr

#endif // TLR_WORKLOADS_DB_DB_COMMON_HH

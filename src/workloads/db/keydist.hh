/**
 * @file
 * Seeded key-distribution generators for the database workload suite.
 *
 * The YCSB evaluation methodology draws keys from either a uniform or
 * a Zipfian distribution; the Zipfian skew parameter theta controls
 * how hot the hottest keys are (theta = 0 degenerates to uniform,
 * YCSB's default is 0.99). Contention — and therefore TLR's
 * abort/defer behavior — is a direct function of that skew, so the
 * generator must be exactly reproducible: same (seed, n, theta) =>
 * same key sequence, on every host.
 *
 * Cross-platform determinism is load-bearing here (tests pin the
 * first draws to golden values): IEEE-754 +,-,*,/ are exactly
 * specified, but libm's pow/log/exp are not, so the Zipfian weights
 * are computed with our own fixed-iteration ln/exp built from basic
 * operations only (detPow below).
 */

#ifndef TLR_WORKLOADS_DB_KEYDIST_HH
#define TLR_WORKLOADS_DB_KEYDIST_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace tlr
{

/** Deterministic x^y for x > 0 (basic-op ln/exp; bit-stable across
 *  conforming IEEE-754 hosts, unlike std::pow). */
double detPow(double x, double y);

/**
 * Draws keys in [0, n) with Zipfian skew @p theta.
 *
 * theta == 0 is the uniform distribution; larger theta concentrates
 * probability on low-numbered keys (rank r has weight 1/(r+1)^theta).
 * Keys are drawn by binary search over the exact cumulative weight
 * table — O(log n) per draw, no approximation — so the empirical
 * frequencies match the Zipfian pmf for any n.
 *
 * The generator consumes exactly one Rng::next() per draw regardless
 * of theta, so interleaving key draws with other uses of the same Rng
 * stays reproducible when theta changes.
 */
class KeyDist
{
  public:
    KeyDist(std::uint64_t n, double theta, Rng rng);

    /** Next key in [0, n). */
    std::uint64_t next();

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    Rng rng_;
    /** Cumulative weights; empty when theta == 0 (uniform fast path
     *  still burns one next() per draw, see next()). */
    std::vector<double> cum_;
};

} // namespace tlr

#endif // TLR_WORKLOADS_DB_KEYDIST_HH

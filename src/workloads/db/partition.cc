/**
 * @file
 * Partitioned-table workload: P partitions of R balance rows, one
 * lock per partition. Every transaction moves money between two rows
 * drawn from the (possibly skewed) key distribution; when the rows
 * live in different partitions the two locks are acquired in global
 * partition-index order (the deadlock-free two-lock discipline),
 * which is exactly the cross-partition transaction shape sharded
 * stores serialize on.
 */

#include <vector>

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"
#include "workloads/db/db.hh"
#include "workloads/db/db_common.hh"
#include "workloads/db/keydist.hh"

namespace tlr
{

namespace
{

using namespace db;

constexpr std::uint64_t initBalance = 1000;

// Extra registers beyond the db_common conventions.
constexpr Reg rLockLo = 22;
constexpr Reg rLockHi = 23;
constexpr Reg rCtrS = 24;
constexpr Reg rCtrD = 25;
constexpr Reg rPs = 26;
constexpr Reg rPd = 27;

unsigned
log2of(unsigned v)
{
    unsigned s = 0;
    while ((1u << s) < v)
        ++s;
    return s;
}

} // namespace

Workload
makePartitionedTable(const DbParams &p)
{
    const unsigned rows = p.rowsPerPartition;
    if (rows == 0 || (rows & (rows - 1)) != 0)
        fatal("partition: rowsPerPartition (%u) must be a power of two",
              rows);
    if (p.partitions == 0)
        fatal("partition: need at least one partition");
    const unsigned rShift = log2of(rows);
    const unsigned totalRows = p.partitions * rows;

    Layout lay;
    LockRegion locks =
        allocLockRegion(lay, p.partitions, p.numCpus, p.lockKind);
    Addr ctrBase = lay.allocLines(p.partitions);
    Addr rowBase = lay.allocLines(totalRows);

    // Op word: amount in bits 0..7, source row in bits 8..31,
    // destination row in bits 32..55.
    OpStream ops;
    std::vector<std::uint64_t> expCtr(p.partitions, 0);
    Rng root(p.seed);
    for (int c = 0; c < p.numCpus; ++c) {
        KeyDist kd(totalRows, p.theta,
                   root.fork(0x50415254ull).fork(
                       static_cast<std::uint64_t>(c)));
        Rng amt = root.fork(0x414d4f54ull).fork(
            static_cast<std::uint64_t>(c));
        std::vector<std::uint64_t> w;
        w.reserve(p.opsPerCpu);
        for (std::uint64_t i = 0; i < p.opsPerCpu; ++i) {
            std::uint64_t src = kd.next();
            std::uint64_t dst = kd.next();
            std::uint64_t amount = 1 + amt.below(10);
            unsigned ps = static_cast<unsigned>(src >> rShift);
            unsigned pd = static_cast<unsigned>(dst >> rShift);
            ++expCtr[ps];
            if (pd != ps)
                ++expCtr[pd];
            w.push_back(amount | (src << 8) | (dst << 32));
        }
        ops.words.push_back(std::move(w));
    }
    ops.alloc(lay);

    Workload wl;
    wl.name = "partition";
    wl.lockClassifier = lay.classifier();
    wl.init = [ops, rowBase, totalRows](BackingStore &mem) {
        ops.write(mem);
        for (unsigned r = 0; r < totalRows; ++r)
            mem.writeWord(rowBase + static_cast<Addr>(r) * lineBytes,
                          initBalance);
    };

    for (int c = 0; c < p.numCpus; ++c) {
        ProgramBuilder b;
        emitOpLoopSetup(b, ops, locks, p.lockKind, c, p.opsPerCpu);
        b.li(rA, static_cast<std::int64_t>(locks.lockBase));
        b.li(rB, static_cast<std::int64_t>(rowBase));
        b.li(rF, static_cast<std::int64_t>(ctrBase));
        b.label("loop");
        b.bge(rOps, rEnd, "exit");
        b.ld(rOp, rOps);
        b.addi(rOps, rOps, 8);
        b.andi(rD, rOp, 0xff); // amount
        b.srli(rT0, rOp, 8);
        b.andi(rC, rT0, 0xffffff); // source row
        b.srli(rE, rOp, 32);       // destination row
        b.slli(rT0, rC, lineShift);
        b.add(rG, rB, rT0); // source row address
        b.slli(rT0, rE, lineShift);
        b.add(rH2, rB, rT0); // destination row address
        b.srli(rPs, rC, rShift);
        b.srli(rPd, rE, rShift);
        b.slli(rT0, rPs, lineShift);
        b.add(rLockLo, rA, rT0);
        b.add(rCtrS, rF, rT0);
        b.slli(rT0, rPd, lineShift);
        b.add(rLockHi, rA, rT0);
        b.add(rCtrD, rF, rT0);
        b.beq(rPs, rPd, "same_part");
        b.blt(rPs, rPd, "ordered");
        b.mov(rT0, rLockLo); // global-order the two partition locks
        b.mov(rLockLo, rLockHi);
        b.mov(rLockHi, rT0);
        b.label("ordered");
        emitDbAcquire(b, p.lockKind, rLockLo, rQnDelta, rQn, rT0, rT1,
                      rT2);
        emitDbAcquire(b, p.lockKind, rLockHi, rQnDelta, rQn, rT0, rT1,
                      rT2);
        // Move min(balance, amount) from source to destination.
        b.ld(rVal, rG);
        b.blt(rD, rVal, "enough2");
        b.mov(rD, rVal);
        b.label("enough2");
        b.sub(rVal, rVal, rD);
        b.st(rVal, rG);
        b.ld(rVal, rH2);
        b.add(rVal, rVal, rD);
        b.st(rVal, rH2);
        b.ld(rVal, rCtrS);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rCtrS);
        b.ld(rVal, rCtrD);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rCtrD);
        emitDbRelease(b, p.lockKind, rLockHi, rQnDelta, rQn, rT0, rT1);
        emitDbRelease(b, p.lockKind, rLockLo, rQnDelta, rQn, rT0, rT1);
        b.jmp("next");

        b.label("same_part"); // one lock; src may equal dst
        emitDbAcquire(b, p.lockKind, rLockLo, rQnDelta, rQn, rT0, rT1,
                      rT2);
        b.ld(rVal, rG);
        b.blt(rD, rVal, "enough1");
        b.mov(rD, rVal);
        b.label("enough1");
        b.sub(rVal, rVal, rD);
        b.st(rVal, rG);
        b.ld(rVal, rH2);
        b.add(rVal, rVal, rD);
        b.st(rVal, rH2);
        b.ld(rVal, rCtrS);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rCtrS);
        emitDbRelease(b, p.lockKind, rLockLo, rQnDelta, rQn, rT0, rT1);

        b.label("next");
        emitPostDelay(b, p.postReleaseDelayMax);
        b.jmp("loop");
        b.label("exit");
        b.halt();
        wl.programs.push_back(b.build());
    }

    const unsigned partitions = p.partitions;
    std::vector<std::uint64_t> exp = expCtr;
    wl.validate = [rowBase, ctrBase, totalRows, partitions,
                   exp](System &sys) {
        std::uint64_t sum = 0;
        for (unsigned r = 0; r < totalRows; ++r)
            sum += readCoherent(
                sys, rowBase + static_cast<Addr>(r) * lineBytes);
        if (sum != initBalance * totalRows)
            return false; // money is neither created nor lost
        for (unsigned q = 0; q < partitions; ++q)
            if (readCoherent(sys, ctrBase +
                                      static_cast<Addr>(q) * lineBytes) !=
                exp[q])
                return false;
        return true;
    };
    return wl;
}

} // namespace tlr

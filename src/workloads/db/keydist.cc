#include "workloads/db/keydist.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace tlr
{

namespace
{

/** ln 2 to full double precision (hex literal: exact). */
constexpr double ln2 = 0x1.62e42fefa39efp-1;

/**
 * Deterministic natural log for x > 0. Splits x = m * 2^e with
 * frexp (exact), maps m to [sqrt(0.5), sqrt(2)) and sums the atanh
 * series ln(m) = 2 * sum t^(2k+1)/(2k+1), t = (m-1)/(m+1). |t| <
 * 0.172 there, so 11 terms reach full double precision. Only +,-,*,/
 * are used; every conforming IEEE-754 host produces the same bits.
 */
double
detLn(double x)
{
    int e = 0;
    double m = std::frexp(x, &e); // m in [0.5, 1)
    if (m < 0x1.6a09e667f3bcdp-1) { // < sqrt(0.5): use 2m, e-1
        m *= 2;
        e -= 1;
    }
    const double t = (m - 1) / (m + 1);
    const double t2 = t * t;
    double term = t;
    double sum = t;
    for (int k = 1; k <= 10; ++k) {
        term *= t2;
        sum += term / (2 * k + 1);
    }
    return 2 * sum + static_cast<double>(e) * ln2;
}

/**
 * Deterministic exp. Range-reduces by n = nearest integer to x/ln2
 * (exact arithmetic on small integers), evaluates the Taylor series
 * of exp(r) for |r| <= ln2/2 to 13 terms, and rescales with ldexp
 * (exact).
 */
double
detExp(double x)
{
    const double nd = std::floor(x / ln2 + 0.5);
    const int n = static_cast<int>(nd);
    const double r = x - nd * ln2;
    double term = 1;
    double sum = 1;
    for (int k = 1; k <= 13; ++k) {
        term *= r / k;
        sum += term;
    }
    return std::ldexp(sum, n);
}

} // namespace

double
detPow(double x, double y)
{
    if (y == 0)
        return 1;
    return detExp(y * detLn(x));
}

KeyDist::KeyDist(std::uint64_t n, double theta, Rng rng)
    : n_(n), theta_(theta), rng_(rng)
{
    if (n == 0)
        fatal("KeyDist: empty key space");
    if (theta < 0 || theta >= 1.0 + 1e-9)
        fatal("KeyDist: theta %.3f out of range [0, 1]", theta);
    if (theta_ > 0) {
        cum_.reserve(n_);
        double total = 0;
        for (std::uint64_t r = 0; r < n_; ++r) {
            total += detPow(static_cast<double>(r + 1), -theta_);
            cum_.push_back(total);
        }
    }
}

std::uint64_t
KeyDist::next()
{
    if (cum_.empty())
        return rng_.below(n_);
    // 53 uniform mantissa bits -> u in [0, 1); one next() per draw.
    const double u =
        static_cast<double>(rng_.next() >> 11) * 0x1p-53;
    const double target = u * cum_.back();
    auto it = std::upper_bound(cum_.begin(), cum_.end(), target);
    if (it == cum_.end())
        --it;
    return static_cast<std::uint64_t>(it - cum_.begin());
}

} // namespace tlr

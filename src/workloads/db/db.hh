/**
 * @file
 * Transactional database workload suite (YCSB/TPC-C-class) on the
 * mini-ISA.
 *
 * The paper's evaluation tops out at microbenchmarks and SPLASH-style
 * kernels; this family supplies the database-shaped critical sections
 * a production lock-elision story is judged on: skewed (Zipfian) key
 * popularity, configurable read/write mixes, chained hash buckets,
 * ordered-index leaves with range scans, cross-partition two-lock
 * transactions, and a TPC-C-flavored new-order/payment kernel.
 *
 * Every workload drives plain test&test&set (or MCS) locks that the
 * BASE/SLE/TLR schemes elide — no annotations — and every workload
 * ships a post-run data-integrity validator built on coherent reads
 * (key-set and chain integrity, update-count and balance/stock
 * conservation), not just timing: lazy-subscription-style elision
 * hazards surface as validation failures, never as silent corruption.
 *
 * Determinism: each cpu's operation stream (keys, read/write choice,
 * amounts, item lists) is pre-generated host-side from (seed, cpu)
 * with the KeyDist generator and baked into private memory at init,
 * so the validators know the exact expected per-key update counts and
 * the simulated run consumes no host entropy.
 */

#ifndef TLR_WORKLOADS_DB_DB_HH
#define TLR_WORKLOADS_DB_DB_HH

#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlr
{

/** Shared configuration for the db workload family. */
struct DbParams
{
    int numCpus = 8;
    std::uint64_t opsPerCpu = 256;
    std::uint64_t seed = 12345;
    LockKind lockKind = LockKind::TestAndTestAndSet;

    /** Zipfian skew of key popularity: 0 = uniform, 0.99 = YCSB
     *  default (hottest keys dominate). */
    double theta = 0.6;
    /** Key-space size (hash-kv records / index entries). */
    unsigned keys = 256;
    /** Hash-table bucket count (power of two; per-bucket lock). */
    unsigned buckets = 64;
    /** Probability (percent) that a hash-kv op is an update. */
    unsigned updatePct = 50;
    /** Probability (percent) that an ordered-index op is a 4-key
     *  range scan (may span two leaves -> two ordered locks). */
    unsigned scanPct = 10;
    /** Partition count (partitioned table) / warehouse count (tpcc). */
    unsigned partitions = 4;
    /** Rows per partition (power of two). */
    unsigned rowsPerPartition = 16;

    /** Random post-release delay bound (Kumar et al. methodology,
     *  matching the microbenchmarks). */
    unsigned postReleaseDelayMax = 48;
};

/**
 * Hash-table KV store: `keys` records chained into `buckets`
 * fixed buckets, one lock per bucket. Ops read or update a record
 * found by chain walk; updatePct controls the mix. Validator walks
 * every chain coherently: key-set integrity (each key exactly once,
 * in its home bucket, chain length adds up) plus exact per-record
 * update-count and value conservation.
 */
Workload makeHashKv(const DbParams &p);

/** YCSB-style preset mixes over the hash KV: 'a' = 50/50 read/update,
 *  'b' = 95/5, 'c' = read-only. */
Workload makeYcsb(char mix, DbParams p);

/**
 * Ordered index: dense keys packed into 8-entry leaves, one lock per
 * leaf. Ops are point reads, point updates, and 4-key range scans; a
 * scan crossing a leaf boundary takes both leaf locks in ascending
 * (global) order. Validator checks every entry's key field survived
 * untouched and per-entry update-count/value conservation.
 */
Workload makeOrderedIndex(const DbParams &p);

/**
 * Partitioned table: `partitions` x `rowsPerPartition` balance rows,
 * one lock per partition. Each transaction transfers between two
 * (possibly cross-partition) rows, acquiring the two partition locks
 * in global index order. Validator: exact global balance conservation
 * plus per-partition transaction counters.
 */
Workload makePartitionedTable(const DbParams &p);

/**
 * TPC-C-flavored kernel: `partitions` warehouses x 4 districts x 32
 * stock rows; 50/50 new-order (district order-id increment + 3 stock
 * decrements with threshold replenish, locks taken in global order)
 * and payment (warehouse + district ytd). Validators: payment-amount
 * conservation into warehouse and district ytd, per-district order-id
 * counts, and per-stock-row qty/ytd/replenish conservation.
 */
Workload makeTpccLite(const DbParams &p);

} // namespace tlr

#endif // TLR_WORKLOADS_DB_DB_HH

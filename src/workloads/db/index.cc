/**
 * @file
 * Ordered-index workload: dense keys packed into 8-entry leaves (flat
 * B-tree leaf level), one lock per leaf. Point reads/updates lock one
 * leaf; 4-key range scans lock the one or two leaves they span in
 * ascending (global) order — the classic reader-chain shape where
 * obstruction-freedom trade-offs bite.
 */

#include <vector>

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"
#include "workloads/db/db.hh"
#include "workloads/db/db_common.hh"
#include "workloads/db/keydist.hh"

namespace tlr
{

namespace
{

using namespace db;

constexpr unsigned keysPerLeaf = 8;
constexpr unsigned leafShift = 3;
constexpr unsigned scanLen = 4;

// Entry record layout (one line per entry).
constexpr std::int64_t ixKeyOff = 0;
constexpr std::int64_t ixValOff = 8;
constexpr std::int64_t ixCntOff = 16;

// Op kinds (low byte of the op word).
constexpr std::uint64_t opRead = 0;
constexpr std::uint64_t opUpdate = 1;
constexpr std::uint64_t opScan = 2;

} // namespace

Workload
makeOrderedIndex(const DbParams &p)
{
    // Round the key space up to whole leaves.
    const unsigned keys =
        (p.keys + keysPerLeaf - 1) & ~(keysPerLeaf - 1);
    if (keys == 0)
        fatal("ordered-index: empty key space");
    const unsigned leaves = keys / keysPerLeaf;
    if (p.updatePct + p.scanPct > 100)
        fatal("ordered-index: updatePct + scanPct > 100");

    Layout lay;
    LockRegion locks = allocLockRegion(lay, leaves, p.numCpus, p.lockKind);
    Addr entryBase = lay.allocLines(keys);

    OpStream ops;
    std::vector<std::uint64_t> expUpd(keys, 0);
    Rng root(p.seed);
    for (int c = 0; c < p.numCpus; ++c) {
        KeyDist kd(keys, p.theta,
                   root.fork(0x49445855ull).fork(
                       static_cast<std::uint64_t>(c)));
        Rng mix = root.fork(0x49584d58ull).fork(
            static_cast<std::uint64_t>(c));
        std::vector<std::uint64_t> w;
        w.reserve(p.opsPerCpu);
        for (std::uint64_t i = 0; i < p.opsPerCpu; ++i) {
            std::uint64_t key = kd.next();
            std::uint64_t roll = mix.below(100);
            std::uint64_t kind;
            if (roll < p.updatePct) {
                kind = opUpdate;
                ++expUpd[key];
            } else if (roll < p.updatePct + p.scanPct) {
                kind = opScan;
                // Clamp so the scan stays inside the key space.
                if (key > keys - scanLen)
                    key = keys - scanLen;
            } else {
                kind = opRead;
            }
            w.push_back((key << 8) | kind);
        }
        ops.words.push_back(std::move(w));
    }
    ops.alloc(lay);

    Workload wl;
    wl.name = "ordered-index";
    wl.lockClassifier = lay.classifier();
    wl.init = [ops, entryBase, keys](BackingStore &mem) {
        ops.write(mem);
        for (unsigned k = 0; k < keys; ++k) {
            Addr e = entryBase + static_cast<Addr>(k) * lineBytes;
            mem.writeWord(e + ixKeyOff, k);
            mem.writeWord(e + ixValOff, 0);
            mem.writeWord(e + ixCntOff, 0);
        }
    };

    for (int c = 0; c < p.numCpus; ++c) {
        ProgramBuilder b;
        emitOpLoopSetup(b, ops, locks, p.lockKind, c, p.opsPerCpu);
        b.li(rA, static_cast<std::int64_t>(locks.lockBase));
        b.li(rB, static_cast<std::int64_t>(entryBase));
        b.label("loop");
        b.bge(rOps, rEnd, "exit");
        b.ld(rOp, rOps);
        b.addi(rOps, rOps, 8);
        b.andi(rD, rOp, 0xff); // op kind
        b.srli(rKey, rOp, 8);
        b.slli(rE, rKey, lineShift);
        b.add(rE, rB, rE); // entry address
        b.srli(rC, rKey, leafShift);
        b.slli(rC, rC, lineShift);
        b.add(rLock, rA, rC); // leaf lock
        b.li(rF, opScan);
        b.beq(rD, rF, "scan");

        // Point read / point update: one leaf lock.
        emitDbAcquire(b, p.lockKind, rLock, rQnDelta, rQn, rT0, rT1,
                      rT2);
        b.beq(rD, 0, "pread");
        b.ld(rVal, rE, ixValOff);
        b.addi(rT0, rKey, 1);
        b.add(rVal, rVal, rT0);
        b.st(rVal, rE, ixValOff);
        b.ld(rVal, rE, ixCntOff);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rE, ixCntOff);
        b.jmp("pdone");
        b.label("pread");
        b.ld(rVal, rE, ixValOff);
        b.label("pdone");
        emitDbRelease(b, p.lockKind, rLock, rQnDelta, rQn, rT0, rT1);
        b.jmp("next");

        // Range scan: lock the spanned leaf (or two, ascending).
        b.label("scan");
        b.addi(rT0, rKey, scanLen - 1);
        b.srli(rT0, rT0, leafShift);
        b.slli(rT0, rT0, lineShift);
        b.add(rG, rA, rT0); // high leaf lock
        emitDbAcquire(b, p.lockKind, rLock, rQnDelta, rQn, rT0, rT1,
                      rT2);
        b.beq(rG, rLock, "one_leaf");
        emitDbAcquire(b, p.lockKind, rG, rQnDelta, rQn, rT0, rT1, rT2);
        b.label("one_leaf");
        for (unsigned i = 0; i < scanLen; ++i)
            b.ld(rVal, rE,
                 ixValOff + static_cast<std::int64_t>(i) * lineBytes);
        b.beq(rG, rLock, "one_rel");
        emitDbRelease(b, p.lockKind, rG, rQnDelta, rQn, rT0, rT1);
        b.label("one_rel");
        emitDbRelease(b, p.lockKind, rLock, rQnDelta, rQn, rT0, rT1);

        b.label("next");
        emitPostDelay(b, p.postReleaseDelayMax);
        b.jmp("loop");
        b.label("exit");
        b.halt();
        wl.programs.push_back(b.build());
    }

    std::vector<std::uint64_t> exp = expUpd;
    wl.validate = [entryBase, keys, exp](System &sys) {
        for (unsigned k = 0; k < keys; ++k) {
            Addr e = entryBase + static_cast<Addr>(k) * lineBytes;
            if (readCoherent(sys, e + ixKeyOff) != k)
                return false; // key field must survive untouched
            if (readCoherent(sys, e + ixCntOff) != exp[k])
                return false;
            if (readCoherent(sys, e + ixValOff) != exp[k] * (k + 1))
                return false;
        }
        return true;
    };
    return wl;
}

} // namespace tlr

#include "workloads/db/db.hh"

#include <vector>

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"
#include "workloads/db/db_common.hh"
#include "workloads/db/keydist.hh"

namespace tlr
{

namespace
{

using namespace db;

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

// Node record layout (one line per record).
constexpr std::int64_t kvKeyOff = 0;
constexpr std::int64_t kvValOff = 8;
constexpr std::int64_t kvCntOff = 16;
constexpr std::int64_t kvNextOff = 24;

} // namespace

Workload
makeHashKv(const DbParams &p)
{
    if (!isPow2(p.buckets))
        fatal("hash-kv: buckets (%u) must be a power of two", p.buckets);
    if (p.keys == 0)
        fatal("hash-kv: empty key space");
    if (p.updatePct > 100)
        fatal("hash-kv: updatePct %u > 100", p.updatePct);

    Layout lay;
    LockRegion locks =
        allocLockRegion(lay, p.buckets, p.numCpus, p.lockKind);
    Addr headBase = lay.allocLines(p.buckets);
    Addr nodeBase = lay.allocLines(p.keys);

    // Pre-generate each cpu's (key, read-or-update) stream and tally
    // the exact expected per-record update counts for the validator.
    OpStream ops;
    std::vector<std::uint64_t> expUpd(p.keys, 0);
    Rng root(p.seed);
    for (int c = 0; c < p.numCpus; ++c) {
        KeyDist kd(p.keys, p.theta,
                   root.fork(0x4b5644ull).fork(
                       static_cast<std::uint64_t>(c)));
        Rng mix = root.fork(0x4d4958ull).fork(
            static_cast<std::uint64_t>(c));
        std::vector<std::uint64_t> w;
        w.reserve(p.opsPerCpu);
        for (std::uint64_t i = 0; i < p.opsPerCpu; ++i) {
            std::uint64_t key = kd.next();
            bool upd = mix.below(100) < p.updatePct;
            if (upd)
                ++expUpd[key];
            w.push_back((key << 8) | (upd ? 1 : 0));
        }
        ops.words.push_back(std::move(w));
    }
    ops.alloc(lay);

    Workload wl;
    wl.name = "hash-kv";
    wl.lockClassifier = lay.classifier();

    const unsigned buckets = p.buckets;
    const unsigned keys = p.keys;
    wl.init = [ops, headBase, nodeBase, buckets, keys](BackingStore &mem) {
        ops.write(mem);
        // Chain records into their home buckets in ascending key
        // order: head[b] -> node(k0) -> node(k1) -> ... -> 0.
        std::vector<Addr> tail(buckets, 0);
        for (unsigned k = 0; k < keys; ++k) {
            Addr node = nodeBase + static_cast<Addr>(k) * lineBytes;
            unsigned b = k & (buckets - 1);
            if (tail[b] == 0)
                mem.writeWord(headBase +
                                  static_cast<Addr>(b) * lineBytes,
                              node);
            else
                mem.writeWord(tail[b] + kvNextOff, node);
            tail[b] = node;
            mem.writeWord(node + kvKeyOff, k);
            mem.writeWord(node + kvValOff, 0);
            mem.writeWord(node + kvCntOff, 0);
            mem.writeWord(node + kvNextOff, 0);
        }
    };

    for (int c = 0; c < p.numCpus; ++c) {
        ProgramBuilder b;
        emitOpLoopSetup(b, ops, locks, p.lockKind, c, p.opsPerCpu);
        b.li(rA, static_cast<std::int64_t>(locks.lockBase));
        b.li(rB, static_cast<std::int64_t>(headBase));
        b.label("loop");
        b.bge(rOps, rEnd, "exit");
        b.ld(rOp, rOps);
        b.addi(rOps, rOps, 8);
        b.andi(rD, rOp, 1); // 1 = update
        b.srli(rKey, rOp, 8);
        b.andi(rC, rKey, p.buckets - 1);
        b.slli(rC, rC, lineShift);
        b.add(rLock, rA, rC);
        b.add(rE, rB, rC); // bucket head slot
        emitDbAcquire(b, p.lockKind, rLock, rQnDelta, rQn, rT0, rT1,
                      rT2);
        // Chain walk; every key is present, so the walk terminates.
        b.ld(rCur, rE);
        b.label("walk");
        b.ld(rVal, rCur, kvKeyOff);
        b.beq(rVal, rKey, "found");
        b.ld(rCur, rCur, kvNextOff);
        b.jmp("walk");
        b.label("found");
        b.beq(rD, 0, "read");
        b.ld(rVal, rCur, kvValOff);
        b.addi(rT0, rKey, 1);
        b.add(rVal, rVal, rT0);
        b.st(rVal, rCur, kvValOff);
        b.ld(rVal, rCur, kvCntOff);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rCur, kvCntOff);
        b.jmp("done");
        b.label("read");
        b.ld(rVal, rCur, kvValOff);
        b.label("done");
        emitDbRelease(b, p.lockKind, rLock, rQnDelta, rQn, rT0, rT1);
        emitPostDelay(b, p.postReleaseDelayMax);
        b.jmp("loop");
        b.label("exit");
        b.halt();
        wl.programs.push_back(b.build());
    }

    std::vector<std::uint64_t> exp = expUpd;
    wl.validate = [headBase, nodeBase, buckets, keys,
                   exp](System &sys) {
        // Key-set and chain integrity via coherent reads, then exact
        // per-record update-count and value conservation.
        std::vector<bool> seen(keys, false);
        std::uint64_t total = 0;
        for (unsigned b = 0; b < buckets; ++b) {
            Addr cur = readCoherent(
                sys, headBase + static_cast<Addr>(b) * lineBytes);
            std::uint64_t steps = 0;
            while (cur != 0) {
                if (++steps > keys) // cycle guard
                    return false;
                if (cur < nodeBase ||
                    (cur - nodeBase) % lineBytes != 0)
                    return false;
                std::uint64_t k = (cur - nodeBase) / lineBytes;
                if (k >= keys || seen[k])
                    return false;
                if ((k & (buckets - 1)) != b)
                    return false; // record strayed from its bucket
                if (readCoherent(sys, cur + kvKeyOff) != k)
                    return false;
                if (readCoherent(sys, cur + kvCntOff) != exp[k])
                    return false;
                if (readCoherent(sys, cur + kvValOff) !=
                    exp[k] * (k + 1))
                    return false;
                seen[k] = true;
                ++total;
                cur = readCoherent(sys, cur + kvNextOff);
            }
        }
        return total == keys;
    };
    return wl;
}

Workload
makeYcsb(char mix, DbParams p)
{
    const char *name = nullptr;
    switch (mix) {
      case 'a':
        p.updatePct = 50;
        name = "ycsb-a";
        break;
      case 'b':
        p.updatePct = 5;
        name = "ycsb-b";
        break;
      case 'c':
        p.updatePct = 0;
        name = "ycsb-c";
        break;
      default:
        fatal("unknown ycsb mix '%c' (a|b|c)", mix);
    }
    Workload wl = makeHashKv(p);
    wl.name = name;
    return wl;
}

} // namespace tlr

/**
 * @file
 * Name -> factory registry over every built-in workload.
 *
 * The tlrsim driver (and anything else that builds workloads from
 * strings) used to hard-code an if/else chain plus a hand-maintained
 * --list block; the two drifted whenever a workload was added. The
 * registry is the single source of truth: each entry carries the
 * user-visible name, a category for grouped listings, a one-line
 * summary, a note on how the generic knobs map onto the workload
 * (ops = total vs per-cpu, which extra knobs apply), and the factory.
 */

#ifndef TLR_WORKLOADS_REGISTRY_HH
#define TLR_WORKLOADS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlr
{

/** Generic knob set every registered factory draws from. Each
 *  workload uses the subset its entry's `params` note documents and
 *  ignores the rest. */
struct WorkloadParams
{
    int numCpus = 8;
    std::uint64_t ops = 1024;
    std::uint64_t seed = 12345;
    LockKind lockKind = LockKind::TestAndTestAndSet;

    /** @{ database-family knobs (tlrsim --theta/--keys/--partitions) */
    double theta = 0.6;      ///< Zipfian skew of key popularity
    unsigned keys = 256;     ///< key-space size
    unsigned partitions = 4; ///< partitions / warehouses
    /** @} */
};

struct WorkloadEntry
{
    std::string name;
    std::string category; ///< grouping header for listings
    std::string summary;  ///< one line for --list
    std::string params;   ///< how the knobs map, e.g. "ops=per-cpu"
    std::function<Workload(const WorkloadParams &)> make;
};

/** Every built-in workload, sorted by (category, name). */
const std::vector<WorkloadEntry> &workloadRegistry();

/** Entry for @p name, or null. */
const WorkloadEntry *findWorkload(const std::string &name);

/** Build @p name with @p p; fatal with a try-`--list` hint when the
 *  name is unknown. */
Workload makeRegisteredWorkload(const std::string &name,
                                const WorkloadParams &p);

/** The --list text: categories alphabetical, workloads alphabetical
 *  within each, one aligned `name  summary [params]` line per entry. */
std::string workloadListText();

} // namespace tlr

#endif // TLR_WORKLOADS_REGISTRY_HH

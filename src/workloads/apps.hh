/**
 * @file
 * Synthetic application kernels standing in for the paper's SPLASH /
 * SPLASH-2 applications (Table 1, Section 6.3).
 *
 * The paper's application-level results are driven entirely by each
 * program's locking signature: how many locks, how contended, how
 * large the protected data, how frequent the critical sections, and
 * whether conflicting data accesses are real. These kernels reproduce
 * those signatures in the mini-ISA (see DESIGN.md, Substitutions):
 *
 *  - barnes:    tree-node locks, root-biased selection, real data
 *               conflicts (TLR restarts; MCS's ordered queue wins).
 *  - cholesky:  column locks with occasionally huge critical sections
 *               that overflow the speculative write buffer (~4% of
 *               executions), exercising the lock-acquisition fallback.
 *  - mp3d:      very frequent, uncontended per-cell locks whose
 *               footprint exceeds the 128 KB L1 (lock miss latency
 *               dominates BASE; MCS overhead is a disaster; TLR wins).
 *  - radiosity: one hot task-queue lock, highly contended, moderate
 *               critical sections (TLR's biggest win, ~1.47x).
 *  - water-nsq: frequent uncontended locks with data misses hidden
 *               under the lock access (removing locks exposes them,
 *               so the gain is ~nil).
 *  - ocean-cont: mostly compute, rare counter locks (lock time is a
 *               tiny fraction; nothing to gain).
 *  - raytrace:  contended work-list lock plus per-ray counter locks.
 *
 * Every critical section increments a per-lock counter; validation
 * checks the final counts, so any atomicity violation in SLE/TLR
 * shows up as a lost update.
 */

#ifndef TLR_WORKLOADS_APPS_HH
#define TLR_WORKLOADS_APPS_HH

#include <string>
#include <vector>

#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlr
{

/** How a thread picks the lock for its next critical section. */
enum class LockSelect
{
    Fixed0,     ///< always lock 0 (single hot lock)
    OwnIndex,   ///< lock[cpu % numLocks] (no inter-thread contention)
    Random,     ///< uniform over the pool
    RootBiased, ///< rnd(rnd(N)+1): tree-like bias toward low indices
    HotOrRandom,///< lock 0 with probability ~1/2, else uniform
};

/** Locking-signature description of one application. */
struct AppProfile
{
    std::string name;
    unsigned numLocks = 16;
    /** Independent data regions. 0 (default) ties each region to its
     *  lock. A nonzero value decouples them: the critical section
     *  picks a uniformly random region — this models coarse-grain
     *  locking where one lock protects many independent cells
     *  (Section 6.3 coarse-vs-fine experiment). */
    unsigned dataRegions = 0;
    LockSelect select = LockSelect::Random;
    unsigned csReadLines = 1;   ///< extra lines read in the CS
    unsigned csWriteLines = 1;  ///< extra lines written in the CS
    unsigned csCompute = 0;     ///< delay cycles inside the CS
    unsigned bigCsWriteLines = 0;    ///< occasional oversized CS
    unsigned bigCsEveryN = 0;        ///< 0 = never
    unsigned hotOneInN = 2;          ///< HotOrRandom: P(hot) = 1/N
    unsigned outsideCompute = 100;   ///< fixed delay between CSs
    unsigned outsideRandom = 64;     ///< extra random delay
    unsigned outsideTouches = 2;     ///< private lines touched outside
    std::uint64_t itersPerCpu = 64;
};

/** The seven profiles used for Figure 11 (paper-calibrated). */
AppProfile barnesProfile();
AppProfile choleskyProfile();
AppProfile mp3dProfile();
AppProfile radiosityProfile();
AppProfile waterNsqProfile();
AppProfile oceanContProfile();
AppProfile raytraceProfile();

/** All seven, in the order of the paper's Figure 11. */
std::vector<AppProfile> allAppProfiles();

/** mp3d with one coarse lock over all cells (Section 6.3 coarse-grain
 *  vs fine-grain experiment). */
AppProfile mp3dCoarseProfile();

/** Build the workload for a profile. */
Workload makeAppKernel(const AppProfile &profile, int num_cpus,
                       LockKind lock_kind);

} // namespace tlr

#endif // TLR_WORKLOADS_APPS_HH

/**
 * @file
 * Additional realistic workloads beyond the paper's evaluation set.
 *
 *  - Bank transfers: N line-padded accounts, one lock per account;
 *    each transfer acquires the two locks in address order (the
 *    classic deadlock-free nesting discipline) and moves money. This
 *    exercises nested elision (paper Section 4) at scale, and its
 *    validation — exact conservation of the total balance — is a
 *    sharp failure-atomicity witness.
 *
 *  - Octree inserts: a preallocated 8-ary tree walked by pointer
 *    chasing from the root to a random node (biased shallow, like the
 *    upper levels of barnes' space octree); the node is locked and
 *    its body count updated. Contention concentrates near the root
 *    exactly as the paper describes for barnes (Section 6.3).
 *
 *  - Serializability history: every critical section logs the counter
 *    value it observed into a private slot; validation checks the
 *    union of all logs is exactly {0 .. total-1} — a complete
 *    serialization witness, far stronger than checking the final sum.
 */

#ifndef TLR_WORKLOADS_EXTRA_HH
#define TLR_WORKLOADS_EXTRA_HH

#include "sync/lock_progs.hh"
#include "workloads/workload.hh"

namespace tlr
{

/** Bank-transfer workload. Total balance must be conserved. */
Workload makeBankTransfer(int num_cpus, unsigned accounts,
                          std::uint64_t transfers_per_cpu,
                          LockKind kind = LockKind::TestAndTestAndSet);

/** Octree-insert workload (barnes-like tree-node locking). */
Workload makeOctreeInsert(int num_cpus, unsigned depth,
                          std::uint64_t inserts_per_cpu,
                          LockKind kind = LockKind::TestAndTestAndSet);

/** Single counter whose critical sections log the observed value;
 *  validation is a full serialization witness. */
Workload makeHistoryCounter(int num_cpus, std::uint64_t per_cpu,
                            LockKind kind = LockKind::TestAndTestAndSet);

} // namespace tlr

#endif // TLR_WORKLOADS_EXTRA_HH

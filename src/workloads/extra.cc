#include "workloads/extra.hh"

#include <vector>

#include "harness/system.hh"
#include "sim/logging.hh"
#include "sync/layout.hh"

namespace tlr
{

namespace
{

constexpr Reg rIter = 1;
constexpr Reg rI = 2;     // first index
constexpr Reg rJ = 3;     // second index
constexpr Reg rLockLo = 4;
constexpr Reg rLockHi = 5;
constexpr Reg rAmt = 6;
constexpr Reg rT0 = 7;
constexpr Reg rT1 = 8;
constexpr Reg rT2 = 9;
constexpr Reg rBalLo = 10;
constexpr Reg rBalHi = 11;
constexpr Reg rN = 12;
constexpr Reg rQnLo = 13;
constexpr Reg rQnHi = 14;
constexpr Reg rCur = 15;
constexpr Reg rDepth = 16;
constexpr Reg rLog = 17;
constexpr Reg rVal = 18;

/** rOut = base + rIdx * 64 (line-strided table indexing). */
void
emitIndexLine(ProgramBuilder &b, Reg out, Addr base, Reg idx, Reg t)
{
    b.slli(t, idx, lineShift);
    b.li(out, static_cast<std::int64_t>(base));
    b.add(out, out, t);
}

} // namespace

Workload
makeBankTransfer(int num_cpus, unsigned accounts,
                 std::uint64_t transfers_per_cpu, LockKind kind)
{
    constexpr std::uint64_t initBalance = 1000;
    Layout lay;
    Addr lockBase = lay.allocLines(accounts);
    for (unsigned i = 0; i < accounts; ++i)
        lay.registerSyncAddr(lockBase + static_cast<Addr>(i) * lineBytes);
    Addr balBase = lay.allocLines(accounts);
    std::vector<Addr> qnBase;
    if (kind == LockKind::Mcs) {
        for (int c = 0; c < num_cpus; ++c) {
            Addr base = lay.allocLines(accounts);
            for (unsigned i = 0; i < accounts; ++i)
                lay.registerSyncAddr(base + static_cast<Addr>(i) *
                                                lineBytes);
            qnBase.push_back(base);
        }
    }

    Workload wl;
    wl.name = "bank-transfer";
    wl.lockClassifier = lay.classifier();
    wl.init = [balBase, accounts](BackingStore &mem) {
        for (unsigned i = 0; i < accounts; ++i)
            mem.writeWord(balBase + static_cast<Addr>(i) * lineBytes,
                          initBalance);
    };

    for (int c = 0; c < num_cpus; ++c) {
        ProgramBuilder b;
        b.li(rIter, static_cast<std::int64_t>(transfers_per_cpu));
        b.li(rN, accounts);
        b.label("loop");
        // Pick two distinct accounts; order them by index so the two
        // nested acquires can never deadlock.
        b.rnd(rI, rN);
        b.rnd(rJ, rN);
        b.bne(rI, rJ, "distinct");
        b.addi(rJ, rI, 1);
        b.blt(rJ, rN, "distinct");
        b.li(rJ, 0);
        b.label("distinct");
        b.blt(rI, rJ, "ordered");
        b.mov(rT0, rI);
        b.mov(rI, rJ);
        b.mov(rJ, rT0);
        b.label("ordered");
        emitIndexLine(b, rLockLo, lockBase, rI, rT0);
        emitIndexLine(b, rLockHi, lockBase, rJ, rT0);
        emitIndexLine(b, rBalLo, balBase, rI, rT0);
        emitIndexLine(b, rBalHi, balBase, rJ, rT0);
        if (kind == LockKind::Mcs) {
            emitIndexLine(b, rQnLo,
                          qnBase[static_cast<size_t>(c)], rI, rT0);
            emitIndexLine(b, rQnHi,
                          qnBase[static_cast<size_t>(c)], rJ, rT0);
        }
        b.li(rT0, 10);
        b.rnd(rAmt, rT0); // transfer amount 0..9

        emitAcquire(b, kind, rLockLo, rQnLo, rT0, rT1, rT2);
        emitAcquire(b, kind, rLockHi, rQnHi, rT0, rT1, rT2);
        // Move min(balance, amount) from lo to hi.
        b.ld(rT0, rBalLo);
        b.blt(rAmt, rT0, "enough");
        b.mov(rAmt, rT0); // cap at the available balance
        b.label("enough");
        b.sub(rT0, rT0, rAmt);
        b.st(rT0, rBalLo);
        b.ld(rT1, rBalHi);
        b.add(rT1, rT1, rAmt);
        b.st(rT1, rBalHi);
        emitRelease(b, kind, rLockHi, rQnHi, rT0, rT1);
        emitRelease(b, kind, rLockLo, rQnLo, rT0, rT1);

        b.li(rT0, 32);
        b.rnd(rT1, rT0);
        b.delay(rT1);
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }

    const std::uint64_t expected =
        initBalance * static_cast<std::uint64_t>(accounts);
    wl.validate = [balBase, accounts, expected](System &sys) {
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < accounts; ++i)
            sum += readCoherent(sys, balBase +
                                         static_cast<Addr>(i) * lineBytes);
        return sum == expected; // money is neither created nor lost
    };
    return wl;
}

Workload
makeOctreeInsert(int num_cpus, unsigned depth,
                 std::uint64_t inserts_per_cpu, LockKind kind)
{
    // Node record: [lock line][count line][children line: 8 pointers].
    constexpr std::int64_t countOff = 64;
    constexpr std::int64_t childrenOff = 128;

    Layout lay;
    std::vector<Addr> nodes;      // breadth-first
    std::vector<unsigned> levelStart{0};
    unsigned levelCount = 1;
    for (unsigned d = 0; d <= depth; ++d) {
        for (unsigned i = 0; i < levelCount; ++i) {
            Addr n = lay.allocLines(3);
            lay.registerSyncAddr(n); // the lock line
            nodes.push_back(n);
        }
        levelStart.push_back(static_cast<unsigned>(nodes.size()));
        levelCount *= 8;
    }

    // MCS: one queue node per (cpu, tree node) would be huge; MCS is
    // supported only for the test&test&set kind here.
    if (kind != LockKind::TestAndTestAndSet)
        fatal("octree workload supports test&test&set locks only");

    Workload wl;
    wl.name = "octree-insert";
    wl.lockClassifier = lay.classifier();
    std::vector<Addr> nodesCopy = nodes;
    std::vector<unsigned> lsCopy = levelStart;
    unsigned depthCopy = depth;
    wl.init = [nodesCopy, lsCopy, depthCopy](BackingStore &mem) {
        // Wire up children pointers breadth-first.
        for (unsigned d = 0; d < depthCopy; ++d) {
            unsigned start = lsCopy[d];
            unsigned count = lsCopy[d + 1] - start;
            for (unsigned i = 0; i < count; ++i) {
                Addr parent = nodesCopy[start + i];
                for (unsigned ch = 0; ch < 8; ++ch) {
                    unsigned childIdx = lsCopy[d + 1] + i * 8 + ch;
                    mem.writeWord(parent +
                                      static_cast<Addr>(childrenOff) +
                                      8 * ch,
                                  nodesCopy[childIdx]);
                }
            }
        }
    };

    Addr root = nodes.front();
    for (int c = 0; c < num_cpus; ++c) {
        ProgramBuilder b;
        b.li(rIter, static_cast<std::int64_t>(inserts_per_cpu));
        b.label("loop");
        // Biased-shallow target depth: rnd(rnd(depth+1)+1), like the
        // upper levels of barnes' space octree.
        b.li(rT0, depth + 1);
        b.rnd(rT1, rT0);
        b.addi(rT1, rT1, 1);
        b.rnd(rDepth, rT1);
        // Pointer-chase from the root.
        b.li(rCur, static_cast<std::int64_t>(root));
        b.label("walk");
        b.beq(rDepth, 0, "arrived");
        b.li(rT0, 8);
        b.rnd(rT1, rT0);          // child index
        b.slli(rT1, rT1, 3);
        b.addi(rT2, rCur, childrenOff);
        b.add(rT2, rT2, rT1);
        b.ld(rCur, rT2);          // follow the pointer
        b.addi(rDepth, rDepth, -1);
        b.jmp("walk");
        b.label("arrived");
        // Lock the node, update its body count.
        emitTtsAcquire(b, rCur, rT0, rT1);
        b.ld(rVal, rCur, countOff);
        b.addi(rVal, rVal, 1);
        b.st(rVal, rCur, countOff);
        emitTtsRelease(b, rCur);
        b.li(rT0, 64);
        b.rnd(rT1, rT0);
        b.delay(rT1);
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }

    const std::uint64_t expected =
        inserts_per_cpu * static_cast<std::uint64_t>(num_cpus);
    wl.validate = [nodesCopy, expected](System &sys) {
        std::uint64_t sum = 0;
        for (Addr n : nodesCopy)
            sum += readCoherent(sys, n + 64);
        return sum == expected;
    };
    return wl;
}

Workload
makeHistoryCounter(int num_cpus, std::uint64_t per_cpu, LockKind kind)
{
    Layout lay;
    Addr lock = lay.allocLock();
    Addr counter = lay.allocLine();
    std::vector<Addr> logs; // per-cpu observation logs
    for (int c = 0; c < num_cpus; ++c)
        logs.push_back(lay.alloc(per_cpu * 8, lineBytes));
    std::vector<Addr> qn;
    if (kind == LockKind::Mcs) {
        for (int c = 0; c < num_cpus; ++c) {
            Addr a = lay.allocLine();
            lay.registerSyncAddr(a);
            qn.push_back(a);
        }
    }

    Workload wl;
    wl.name = "history-counter";
    wl.lockClassifier = lay.classifier();
    for (int c = 0; c < num_cpus; ++c) {
        ProgramBuilder b;
        b.li(rLockLo, static_cast<std::int64_t>(lock));
        if (kind == LockKind::Mcs)
            b.li(rQnLo,
                 static_cast<std::int64_t>(qn[static_cast<size_t>(c)]));
        b.li(rT2, static_cast<std::int64_t>(counter));
        b.li(rLog, static_cast<std::int64_t>(logs[static_cast<size_t>(
                       c)]));
        b.li(rIter, static_cast<std::int64_t>(per_cpu));
        b.label("loop");
        emitAcquire(b, kind, rLockLo, rQnLo, rT0, rT1, rDepth);
        b.ld(rVal, rT2);          // observe
        b.st(rVal, rLog);         // log the observation
        b.addi(rVal, rVal, 1);
        b.st(rVal, rT2);          // increment
        emitRelease(b, kind, rLockLo, rQnLo, rT0, rT1);
        b.addi(rLog, rLog, 8);
        b.li(rT0, 48);
        b.rnd(rT1, rT0);
        b.delay(rT1);
        b.addi(rIter, rIter, -1);
        b.bne(rIter, 0, "loop");
        b.halt();
        wl.programs.push_back(b.build());
    }

    const std::uint64_t total =
        per_cpu * static_cast<std::uint64_t>(num_cpus);
    std::vector<Addr> logsCopy = logs;
    wl.validate = [logsCopy, per_cpu, total](System &sys) {
        // Serialization witness: every value 0..total-1 observed
        // exactly once across all critical sections.
        std::vector<bool> seen(total, false);
        for (Addr base : logsCopy) {
            for (std::uint64_t k = 0; k < per_cpu; ++k) {
                std::uint64_t v = readCoherent(sys, base + 8 * k);
                if (v >= total || seen[v])
                    return false;
                seen[v] = true;
            }
        }
        return true;
    };
    return wl;
}

} // namespace tlr

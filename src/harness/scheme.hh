/**
 * @file
 * The four evaluated configurations of the paper (Section 5), plus the
 * TLR-strict-ts variant of Figure 9.
 */

#ifndef TLR_HARNESS_SCHEME_HH
#define TLR_HARNESS_SCHEME_HH

#include <string>

#include "core/spec_engine.hh"
#include "sync/lock_progs.hh"

namespace tlr
{

enum class Scheme
{
    Base,        ///< test&test&set locks, no speculation
    BaseSle,     ///< + Speculative Lock Elision
    BaseSleTlr,  ///< + Transactional Lock Removal (this paper)
    TlrStrictTs, ///< TLR without the Section 3.2 relaxation
    Mcs,         ///< MCS software queue locks
};

inline const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Base: return "BASE";
      case Scheme::BaseSle: return "BASE+SLE";
      case Scheme::BaseSleTlr: return "BASE+SLE+TLR";
      case Scheme::TlrStrictTs: return "BASE+SLE+TLR-strict-ts";
      case Scheme::Mcs: return "MCS";
    }
    return "?";
}

inline LockKind
schemeLockKind(Scheme s)
{
    return s == Scheme::Mcs ? LockKind::Mcs
                            : LockKind::TestAndTestAndSet;
}

/** Speculation configuration for a scheme. The RMW predictor is on
 *  for every scheme, as in the paper's experiments. */
inline SpecConfig
schemeSpecConfig(Scheme s)
{
    SpecConfig cfg;
    switch (s) {
      case Scheme::Base:
      case Scheme::Mcs:
        break;
      case Scheme::BaseSle:
        cfg.enableSle = true;
        break;
      case Scheme::BaseSleTlr:
        cfg.enableSle = true;
        cfg.enableTlr = true;
        break;
      case Scheme::TlrStrictTs:
        cfg.enableSle = true;
        cfg.enableTlr = true;
        cfg.strictTimestamps = true;
        break;
    }
    return cfg;
}

} // namespace tlr

#endif // TLR_HARNESS_SCHEME_HH

/**
 * @file
 * One-shot experiment runner: builds a system, installs a workload,
 * runs it to completion and collects the metrics the paper reports.
 */

#ifndef TLR_HARNESS_RUNNER_HH
#define TLR_HARNESS_RUNNER_HH

#include <cstdint>
#include <memory>

#include "harness/scheme.hh"
#include "harness/system.hh"
#include "workloads/workload.hh"

namespace tlr
{

/** Metrics gathered from one simulation run. */
struct RunStats
{
    bool completed = false; ///< all cores halted before maxTicks
    bool valid = false;     ///< workload validation passed
    Tick cycles = 0;        ///< parallel execution time (paper y-axes)

    std::uint64_t commits = 0;
    std::uint64_t elisions = 0;
    std::uint64_t restarts = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t defers = 0;
    std::uint64_t relaxedDefers = 0;
    std::uint64_t busTransactions = 0;
    std::uint64_t markerMsgs = 0;
    std::uint64_t probeMsgs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t writeBufferAborts = 0;

    /** @{ observability (populated when tracing/checking enabled) */
    std::uint64_t traceRecords = 0;        ///< events emitted by the sink
    std::uint64_t invariantViolations = 0; ///< checker hits (keep-going)
    /** Full metrics snapshot (latency histograms, lock contention,
     *  interconnect traffic); null unless MachineParams::collectMetrics
     *  was set. Shared so RunStats stays cheaply copyable in sweeps. */
    std::shared_ptr<const MetricsSnapshot> metrics;
    /** Causal-conflict report (explain subsystem); null unless
     *  MachineParams::explain was set. Shared for the same reason as
     *  metrics: RunStats must stay cheaply copyable in sweeps. */
    std::shared_ptr<const std::string> explainReport;
    /** Epoch-timeline digest (src/timeline/); null unless
     *  MachineParams::timelineEpoch was set. Shared for the same
     *  reason as metrics. */
    std::shared_ptr<const std::string> timelineReport;
    /** @} */

    /** Host-side: kernel events the run executed (events/sec metric;
     *  a function of the config only, so still deterministic). */
    std::uint64_t kernelEvents = 0;

    /** Per-cpu time integrals for the Figure 11 breakdown. */
    std::uint64_t lockCycles = 0;     ///< stalls on lock variables
    std::uint64_t dataStallCycles = 0;
    std::uint64_t busyCycles = 0;

    /** Fraction of aggregate cpu time spent on lock accesses. */
    double
    lockFraction(int num_cpus) const
    {
        double total = static_cast<double>(cycles) * num_cpus;
        return total > 0 ? static_cast<double>(lockCycles) / total : 0.0;
    }
};

/** Run @p wl on a machine configured by @p mp. */
RunStats runWorkload(const MachineParams &mp, const Workload &wl);

/** Convenience: configure the machine for @p scheme and run. */
RunStats runScheme(Scheme scheme, int num_cpus, const Workload &wl,
                   Tick max_ticks = 2'000'000'000ull);

/** Workload-scale multiplier from the TLR_SCALE environment variable
 *  (default 1): lets users regenerate paper-sized runs. */
std::uint64_t envScale();

/** True when the TLR_METRICS environment variable is set non-zero:
 *  runScheme() then attaches a MetricsCollector to every run so bench
 *  and figure binaries print latency/contention digests. */
bool envMetrics();

/** True when TLR_EXPLAIN is set non-zero: runScheme() then attaches
 *  the causal-conflict explainer and RunStats::explainReport carries
 *  the rendered top-K report (bench binaries print it). */
bool envExplain();

/** Epoch length from the TLR_TIMELINE environment variable (cycles;
 *  0 = off, the default): runScheme() then attaches an EpochTimeline
 *  and RunStats::timelineReport carries its digest. */
Tick envTimelineEpoch();

/** Ledger directory from the TLR_REPORT environment variable ("" =
 *  off, the default): runWorkload() then appends a run bundle (see
 *  src/report/bundle.hh) for every simulation it executes, so bench
 *  and experiment binaries produce tlrreport-renderable flight
 *  reports without new flags. */
std::string envReportDir();

} // namespace tlr

#endif // TLR_HARNESS_RUNNER_HH

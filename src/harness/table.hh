/**
 * @file
 * Fixed-width text tables for reproducing the paper's figures as
 * terminal output (series per scheme, rows per x-value), plus simple
 * ASCII bar rendering for the Figure 11 stacked bars.
 */

#ifndef TLR_HARNESS_TABLE_HH
#define TLR_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace tlr
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    std::string str() const;

    /** Convenience formatting. */
    static std::string num(double v, int precision = 2);
    static std::string num(std::uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** A proportional ASCII bar of @p width characters: the first
 *  fraction rendered with '#', the rest with '.'. */
std::string splitBar(double total, double first_fraction, double max_total,
                     int width = 40);

} // namespace tlr

#endif // TLR_HARNESS_TABLE_HH

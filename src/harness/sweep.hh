/**
 * @file
 * Host-parallel sweep runner.
 *
 * The paper's evaluation is a dense grid of (scheme × cpu-count ×
 * workload) simulations. Each simulation is single-threaded and fully
 * self-contained (a System owns its event queue, stats, memory and
 * RNG state, and shares nothing mutable), so independent
 * configurations can run on a host thread pool without perturbing a
 * single simulated cycle.
 *
 * Determinism contract (DESIGN.md §8): for the same task list,
 * runSweep() returns byte-for-byte the same results for any `jobs`
 * value — results are stored by task index, never by completion
 * order, and a simulation's outcome depends only on its own config.
 * tests/test_determinism.cc enforces this.
 */

#ifndef TLR_HARNESS_SWEEP_HH
#define TLR_HARNESS_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace tlr
{

/** One independent simulation in a sweep. */
struct SweepTask
{
    std::string key;                 ///< label ("fig08/tlr/p8", ...)
    std::function<RunStats()> run;   ///< builds and runs one System
};

/** Per-task host-side measurements collected by runSweep(). */
struct SweepResult
{
    RunStats stats;
    double wallSeconds = 0; ///< host time for this task
};

/** Host threads to use when the caller does not say: the hardware
 *  concurrency, floored at 1. */
unsigned defaultJobs();

/** Resolve a --jobs request against a shared core budget when each
 *  simulation itself runs @p threads_per_sim intra-sim workers
 *  (--threads). An explicit request wins unchanged; jobs==0 ("auto")
 *  divides defaultJobs() by the per-sim thread count so
 *  jobs * threads stays within the host, floored at 1. */
unsigned resolveJobs(unsigned requested, unsigned threads_per_sim);

/**
 * Run every task, @p jobs at a time (jobs == 0 → defaultJobs()),
 * returning results in task order regardless of scheduling.
 *
 * Tasks must be independent: each builds its own System inside
 * run(). A task that throws reports completed=false/valid=false and
 * the sweep carries on.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepTask> &tasks,
                                  unsigned jobs = 0);

/** Convenience: wrap a (MachineParams, Workload) pair into a task. */
SweepTask makeSweepTask(std::string key, MachineParams mp, Workload wl);

} // namespace tlr

#endif // TLR_HARNESS_SWEEP_HH

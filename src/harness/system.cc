#include "harness/system.hh"

#include "sim/logging.hh"

namespace tlr
{

namespace
{

std::unique_ptr<Interconnect>
makeInterconnect(Protocol p, EventQueue &eq, StatSet &stats,
                 InterconnectParams params)
{
    if (p == Protocol::Directory)
        return std::make_unique<DirectoryInterconnect>(eq, stats, params);
    return std::make_unique<BroadcastInterconnect>(eq, stats, params);
}

} // namespace

System::System(const MachineParams &params)
    : params_(params), store_(params.l2Lines),
      net_(makeInterconnect(params.protocol, eq_, stats_, params.net)),
      mem_(eq_, stats_, *net_, store_, params.mem)
{
    net_->setMemory(&mem_);
    trace_.configure(params.trace.ringCapacity, params.trace.echoText);
    if (params.trace.checkInvariants) {
        checkers_ = std::make_unique<InvariantRegistry>(
            stats_, &trace_, params.trace, params.spec.deferUntimestamped,
            params.l1.yieldTimeout);
        trace_.addListener(checkers_.get());
    }
    if (params.collectMetrics) {
        metrics_ = std::make_unique<MetricsCollector>();
        trace_.addListener(metrics_.get());
    }
    if (params.explain) {
        explain_ = std::make_unique<Explainer>(params.explainTopK);
        trace_.addListener(explain_.get());
    }
    net_->setTrace(&trace_);
    Rng root(params.seed);
    for (int i = 0; i < params.numCpus; ++i) {
        engines_.push_back(std::make_unique<SpecEngine>(
            eq_, stats_, i, params.spec));
        l1s_.push_back(std::make_unique<L1Controller>(
            eq_, stats_, i, params.l1, *net_, mem_, *engines_.back()));
        cores_.push_back(std::make_unique<Core>(
            eq_, stats_, i, root.fork(static_cast<std::uint64_t>(i) + 1)));
        engines_.back()->setCore(cores_.back().get());
        engines_.back()->setL1(l1s_.back().get());
        engines_.back()->setTrace(&trace_);
        l1s_.back()->setTrace(&trace_);
        cores_.back()->setPort(engines_.back().get());
        net_->addSnooper(l1s_.back().get());
        cores_.back()->setHaltHook([this](CpuId) {
            if (++haltedCount_ == params_.numCpus)
                completionTick_ = eq_.now();
        });
    }
}

void
System::setProgram(int cpu, ProgramPtr prog)
{
    core(cpu).setProgram(std::move(prog));
}

void
System::setLockClassifier(std::function<bool(Addr)> f)
{
    for (auto &c : cores_)
        c->setLockClassifier(f);
    if (metrics_)
        metrics_->setLockClassifier(f);
}

void
System::preemptCore(int cpu, Tick when, Tick duration)
{
    eq_.schedule(when, [this, cpu, duration] {
        if (core(cpu).halted())
            return;
        engine(cpu).descheduled();
        core(cpu).suspend(duration);
    });
}

bool
System::run()
{
    for (auto &c : cores_)
        c->start(0);
    bool drained = eq_.run(params_.maxTicks);
    trace_.finish(eq_.now());
    if (haltedCount_ == params_.numCpus)
        return true;
    if (drained) {
        // The event queue emptied with live cores: a deadlock in the
        // protocol or workload. This must never happen; fail loudly
        // with a full controller dump.
        std::string dump;
        for (auto &l1 : l1s_)
            dump += l1->debugState();
        for (auto &c : cores_)
            dump += strfmt("  core %d pc=%d halted=%d\n", c->id(),
                           c->pc(), c->halted() ? 1 : 0);
        panic("system quiesced with %d/%d cores halted at tick %llu\n%s",
              haltedCount_, params_.numCpus,
              static_cast<unsigned long long>(eq_.now()), dump.c_str());
    }
    return false; // watchdog expired (livelock experiments)
}

} // namespace tlr

#include "harness/system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tlr
{

namespace
{

std::unique_ptr<Interconnect>
makeInterconnect(Protocol p, EventQueue &eq, StatSet &stats,
                 InterconnectParams params)
{
    if (p == Protocol::Directory)
        return std::make_unique<DirectoryInterconnect>(eq, stats, params);
    return std::make_unique<BroadcastInterconnect>(eq, stats, params);
}

Tick
resolveLookahead(const MachineParams &p)
{
    Tick l = std::min(p.net.snoopLatency, p.net.dataLatency);
    if (p.lookahead > 0)
        l = std::min(l, p.lookahead);
    return l < 1 ? 1 : l;
}

std::unique_ptr<ParallelKernel>
makeKernel(const MachineParams &p, BackingStore &store, TraceSink &sink)
{
    if (p.threads == 0)
        return nullptr;
    ParallelKernel::Config cfg;
    cfg.numCpus = p.numCpus;
    cfg.threads = p.threads;
    cfg.lookahead = resolveLookahead(p);
    cfg.maxTicks = p.maxTicks;
    cfg.seed = p.seed;
    cfg.dataLatency = p.net.dataLatency;
    cfg.batchedGlobals = p.batchedGlobals;
    cfg.dynamicLookahead = p.dynamicLookahead;
    cfg.profilePhases = p.profilePhases;
    // Dynamic windows ignore the derived worst-case lookahead (the
    // promise machinery subsumes it); an explicit request BELOW it is
    // honored as a window cap — the lookahead=1 stress configuration
    // must still produce maximally small windows.
    Tick derived = std::min(p.net.snoopLatency, p.net.dataLatency);
    if (derived < 1)
        derived = 1;
    if (p.lookahead > 0 && p.lookahead < derived)
        cfg.lookaheadCap = p.lookahead;
    return std::make_unique<ParallelKernel>(cfg, store, sink);
}

} // namespace

System::System(const MachineParams &params)
    : params_(params), store_(params.l2Lines),
      kernel_(makeKernel(params, store_, trace_)),
      net_(makeInterconnect(params.protocol,
                            kernel_ ? kernel_->orderingQueue() : eq_,
                            kernel_ ? kernel_->shard(0) : stats_,
                            params.net)),
      mem_(kernel_ ? kernel_->queue(0) : eq_,
           kernel_ ? kernel_->shard(0) : stats_, *net_, store_, params.mem)
{
    if (kernel_) {
        net_->setRouter(kernel_.get());
        kernel_->setInterconnect(net_.get());
        mem_.setPort(&kernel_->port(0));
    }
    net_->setMemory(&mem_);
    trace_.configure(params.trace.ringCapacity, params.trace.echoText);
    if (params.trace.checkInvariants) {
        checkers_ = std::make_unique<InvariantRegistry>(
            stats_, &trace_, params.trace, params.spec.deferUntimestamped,
            params.l1.yieldTimeout);
        trace_.addListener(checkers_.get());
    }
    if (params.collectMetrics) {
        metrics_ = std::make_unique<MetricsCollector>();
        trace_.addListener(metrics_.get());
    }
    if (params.explain) {
        explain_ = std::make_unique<Explainer>(params.explainTopK);
        trace_.addListener(explain_.get());
    }
    if (params.timelineEpoch > 0) {
        timeline_ = std::make_unique<EpochTimeline>(params.timelineEpoch);
        trace_.addListener(timeline_.get());
    }
    net_->setTrace(kernel_ ? &kernel_->sink(0) : &trace_);
    Rng root(params.seed);
    for (int i = 0; i < params.numCpus; ++i) {
        // Partition i+1 owns CPU i's core, engine and L1; classic mode
        // puts everything on the one shared queue/stat set/sink.
        EventQueue &ceq = kernel_ ? kernel_->queue(i + 1) : eq_;
        StatSet &cstats = kernel_ ? kernel_->shard(i + 1) : stats_;
        TraceSink *csink = kernel_ ? &kernel_->sink(i + 1) : &trace_;
        engines_.push_back(std::make_unique<SpecEngine>(
            ceq, cstats, i, params.spec));
        l1s_.push_back(std::make_unique<L1Controller>(
            ceq, cstats, i, params.l1, *net_, mem_, *engines_.back()));
        cores_.push_back(std::make_unique<Core>(
            ceq, cstats, i, root.fork(static_cast<std::uint64_t>(i) + 1)));
        engines_.back()->setCore(cores_.back().get());
        engines_.back()->setL1(l1s_.back().get());
        engines_.back()->setTrace(csink);
        l1s_.back()->setTrace(csink);
        if (kernel_) {
            l1s_.back()->setPort(&kernel_->port(i + 1));
            kernel_->addSnooper(l1s_.back().get());
        }
        cores_.back()->setPort(engines_.back().get());
        net_->addSnooper(l1s_.back().get());
        EventQueue *hq = &ceq;
        cores_.back()->setHaltHook([this, hq](CpuId) {
            // Runs on the halting core's partition; count is a plain
            // sum and the completion tick a max over halt ticks, both
            // independent of worker interleaving.
            Tick t = hq->now();
            Tick cur = completionTick_.load(std::memory_order_relaxed);
            while (t > cur &&
                   !completionTick_.compare_exchange_weak(
                       cur, t, std::memory_order_relaxed))
                ;
            haltedCount_.fetch_add(1, std::memory_order_relaxed);
        });
    }
}

void
System::setProgram(int cpu, ProgramPtr prog)
{
    core(cpu).setProgram(std::move(prog));
}

void
System::setLockClassifier(std::function<bool(Addr)> f)
{
    for (auto &c : cores_)
        c->setLockClassifier(f);
    if (metrics_)
        metrics_->setLockClassifier(f);
}

void
System::preemptCore(int cpu, Tick when, Tick duration)
{
    // Preemption only touches the target CPU's core and engine, so it
    // belongs on that CPU's partition queue in partitioned mode.
    EventQueue &q = kernel_ ? kernel_->queue(cpu + 1) : eq_;
    q.schedule(when, [this, cpu, duration] {
        if (core(cpu).halted())
            return;
        engine(cpu).descheduled();
        core(cpu).suspend(duration);
    });
}

bool
System::run()
{
    for (auto &c : cores_)
        c->start(0);
    bool drained;
    Tick endNow;
    if (kernel_) {
        if (trace_.armed())
            kernel_->enableCapture();
        drained = kernel_->run();
        kernel_->mergeStatsInto(stats_);
        endNow = kernel_->simNow();
    } else {
        drained = eq_.run(params_.maxTicks);
        endNow = eq_.now();
    }
    trace_.finish(endNow);
    int halted = haltedCount_.load(std::memory_order_relaxed);
    if (halted == params_.numCpus)
        return true;
    if (drained) {
        // The event queue emptied with live cores: a deadlock in the
        // protocol or workload. This must never happen; fail loudly
        // with a full controller dump.
        std::string dump;
        for (auto &l1 : l1s_)
            dump += l1->debugState();
        for (auto &c : cores_)
            dump += strfmt("  core %d pc=%d halted=%d\n", c->id(),
                           c->pc(), c->halted() ? 1 : 0);
        panic("system quiesced with %d/%d cores halted at tick %llu\n%s",
              halted, params_.numCpus,
              static_cast<unsigned long long>(endNow), dump.c_str());
    }
    return false; // watchdog expired (livelock experiments)
}

} // namespace tlr

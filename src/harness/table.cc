#include "harness/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace tlr
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "  " << row[c]
               << std::string(width[c] - row[c].size(), ' ');
        }
        os << "\n";
    };
    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < headers_.size(); ++c)
        total += width[c] + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
splitBar(double total, double first_fraction, double max_total, int width)
{
    if (max_total <= 0)
        max_total = 1;
    int len = static_cast<int>(total / max_total * width + 0.5);
    len = std::max(0, std::min(len, width));
    int first = static_cast<int>(len * first_fraction + 0.5);
    first = std::max(0, std::min(first, len));
    return std::string(static_cast<size_t>(first), '#') +
           std::string(static_cast<size_t>(len - first), '.');
}

} // namespace tlr

#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "sim/logging.hh"

namespace tlr
{

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
resolveJobs(unsigned requested, unsigned threads_per_sim)
{
    if (requested > 0)
        return requested;
    unsigned per = threads_per_sim ? threads_per_sim : 1;
    unsigned jobs = defaultJobs() / per;
    return jobs ? jobs : 1;
}

std::vector<SweepResult>
runSweep(const std::vector<SweepTask> &tasks, unsigned jobs)
{
    std::vector<SweepResult> results(tasks.size());
    if (tasks.empty())
        return results;
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > tasks.size())
        jobs = static_cast<unsigned>(tasks.size());

    auto runOne = [&](std::size_t i) {
        using Clock = std::chrono::steady_clock;
        auto t0 = Clock::now();
        try {
            results[i].stats = tasks[i].run();
        } catch (const std::exception &e) {
            // A failed config (watchdog, bad params) must not take the
            // rest of the sweep down; completed/valid stay false.
            warn("sweep task '%s' failed: %s", tasks[i].key.c_str(),
                 e.what());
        }
        results[i].wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
    };

    if (jobs == 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            runOne(i);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= tasks.size())
                    return;
                runOne(i);
            }
        });
    }
    for (std::thread &th : pool)
        th.join();
    return results;
}

SweepTask
makeSweepTask(std::string key, MachineParams mp, Workload wl)
{
    return SweepTask{std::move(key),
                     [mp, wl] { return runWorkload(mp, wl); }};
}

} // namespace tlr

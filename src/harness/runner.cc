#include "harness/runner.hh"

#include <cstdio>
#include <cstdlib>

#include "report/bundle.hh"
#include "sim/logging.hh"

namespace tlr
{

namespace
{

/** TLR_REPORT hook: append a run bundle for this run to the ledger
 *  directory named by the environment, mirroring what `tlrsim
 *  --report-dir` records. Lives here so every harness entry point —
 *  bench binaries, figure generators, exp_* experiments — gets flight
 *  reports without growing its own flag. The scheme label is derived
 *  from the spec flags (callers hand us a SpecConfig, not a Scheme;
 *  experiment variants with tweaked knobs report the nearest canonical
 *  label). Failures warn and continue: telemetry must never kill a
 *  run. */
void
maybeWriteEnvBundle(const MachineParams &mp, const Workload &wl,
                    System &sys, const RunStats &r)
{
    const char *dir = std::getenv("TLR_REPORT");
    if (!dir || !*dir)
        return;

    BundleMeta bm;
    bm.workload = wl.name;
    bm.scheme = mp.spec.enableTlr
                    ? (mp.spec.strictTimestamps
                           ? "BASE+SLE+TLR-strict-ts"
                           : "BASE+SLE+TLR")
                    : (mp.spec.enableSle ? "BASE+SLE" : "BASE");
    bm.protocol =
        mp.protocol == Protocol::Directory ? "directory" : "broadcast";
    bm.cpus = mp.numCpus;
    bm.seed = mp.seed;
    bm.wbLines = mp.spec.writeBufferLines;
    bm.victimEntries = mp.l1.victimEntries;
    bm.yieldTimeout = mp.l1.yieldTimeout;
    bm.maxTicks = mp.maxTicks;
    bm.timelineEpoch = mp.timelineEpoch;
    bm.metrics = mp.collectMetrics;
    bm.explain = mp.explain;
    bm.checkInvariants = mp.trace.checkInvariants;
    bm.completed = r.completed;
    bm.valid = r.valid;
    bm.cycles = r.cycles;
    bm.invariantViolations = r.invariantViolations;
    bm.threads = mp.threads;
    bm.lookahead = mp.lookahead;
    bm.dirBanks = mp.net.dirBanks;

    BundleArtifacts art;
    std::string extra;
    if (sys.metrics())
        extra = "  \"metrics\": " + sys.metrics()->snapshot().json();
    if (sys.timeline()) {
        if (!extra.empty())
            extra += ",\n";
        extra += "  \"timeline\": " + sys.timeline()->json();
        art.timelineCsv = sys.timeline()->csv();
    }
    art.statsJson = sys.stats().dumpJson(extra);
    if (sys.explainer())
        art.explainText = sys.explainer()->report(ExplainMode::Txn);

    std::string err;
    std::string entry = writeRunBundle(dir, bm, art, err);
    if (entry.empty())
        std::fprintf(stderr, "TLR_REPORT: %s (continuing)\n",
                     err.c_str());
    else
        std::fprintf(stderr, "report: wrote bundle %s\n", entry.c_str());
}

} // namespace

RunStats
runWorkload(const MachineParams &mp, const Workload &wl)
{
    System sys(mp);
    installWorkload(sys, wl);
    RunStats r;
    r.completed = sys.run();
    r.valid = wl.validate ? wl.validate(sys) : true;
    r.cycles = sys.completionTick();

    const StatSet &s = sys.stats();
    r.commits = s.sum("spec", "commits");
    r.elisions = s.sum("spec", "elisions");
    r.restarts = s.sum("spec", "restarts");
    r.fallbacks = s.sum("spec", "fallbacks");
    r.defers = s.sum("l1_", "defers");
    r.relaxedDefers = s.sum("l1_", "relaxedDefers");
    r.busTransactions = s.get("bus", "transactions");
    r.markerMsgs = s.get("net", "markerMsgs");
    r.probeMsgs = s.get("net", "probeMsgs");
    r.l1Misses = s.sum("l1_", "misses");
    r.writeBufferAborts = s.sum("spec", "abort.write-buffer-full");
    r.lockCycles = s.sum("core", "lockCycles");
    r.dataStallCycles = s.sum("core", "dataStallCycles");
    r.busyCycles = s.sum("core", "busyCycles");
    r.traceRecords = sys.traceSink().emitted();
    r.invariantViolations = s.get("trace", "violations");
    r.kernelEvents = sys.kernelEventsExecuted();
    if (sys.metrics())
        r.metrics = std::make_shared<MetricsSnapshot>(
            sys.metrics()->snapshot());
    if (sys.explainer())
        r.explainReport = std::make_shared<std::string>(
            sys.explainer()->report(ExplainMode::Txn));
    if (sys.timeline())
        r.timelineReport = std::make_shared<std::string>(
            sys.timeline()->report());
    maybeWriteEnvBundle(mp, wl, sys, r);
    return r;
}

RunStats
runScheme(Scheme scheme, int num_cpus, const Workload &wl, Tick max_ticks)
{
    MachineParams mp;
    mp.numCpus = num_cpus;
    mp.spec = schemeSpecConfig(scheme);
    mp.maxTicks = max_ticks;
    mp.collectMetrics = envMetrics();
    mp.explain = envExplain();
    mp.timelineEpoch = envTimelineEpoch();
    return runWorkload(mp, wl);
}

std::uint64_t
envScale()
{
    const char *s = std::getenv("TLR_SCALE");
    if (!s)
        return 1;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::uint64_t>(v) : 1;
}

bool
envMetrics()
{
    const char *s = std::getenv("TLR_METRICS");
    return s && *s && std::string(s) != "0";
}

bool
envExplain()
{
    const char *s = std::getenv("TLR_EXPLAIN");
    return s && *s && std::string(s) != "0";
}

Tick
envTimelineEpoch()
{
    const char *s = std::getenv("TLR_TIMELINE");
    if (!s)
        return 0;
    long long v = std::atoll(s);
    return v > 0 ? static_cast<Tick>(v) : 0;
}

std::string
envReportDir()
{
    const char *s = std::getenv("TLR_REPORT");
    return s ? s : "";
}

} // namespace tlr

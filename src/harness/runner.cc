#include "harness/runner.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace tlr
{

RunStats
runWorkload(const MachineParams &mp, const Workload &wl)
{
    System sys(mp);
    installWorkload(sys, wl);
    RunStats r;
    r.completed = sys.run();
    r.valid = wl.validate ? wl.validate(sys) : true;
    r.cycles = sys.completionTick();

    const StatSet &s = sys.stats();
    r.commits = s.sum("spec", "commits");
    r.elisions = s.sum("spec", "elisions");
    r.restarts = s.sum("spec", "restarts");
    r.fallbacks = s.sum("spec", "fallbacks");
    r.defers = s.sum("l1_", "defers");
    r.relaxedDefers = s.sum("l1_", "relaxedDefers");
    r.busTransactions = s.get("bus", "transactions");
    r.markerMsgs = s.get("net", "markerMsgs");
    r.probeMsgs = s.get("net", "probeMsgs");
    r.l1Misses = s.sum("l1_", "misses");
    r.writeBufferAborts = s.sum("spec", "abort.write-buffer-full");
    r.lockCycles = s.sum("core", "lockCycles");
    r.dataStallCycles = s.sum("core", "dataStallCycles");
    r.busyCycles = s.sum("core", "busyCycles");
    r.traceRecords = sys.traceSink().emitted();
    r.invariantViolations = s.get("trace", "violations");
    r.kernelEvents = sys.kernelEventsExecuted();
    if (sys.metrics())
        r.metrics = std::make_shared<MetricsSnapshot>(
            sys.metrics()->snapshot());
    if (sys.explainer())
        r.explainReport = std::make_shared<std::string>(
            sys.explainer()->report(ExplainMode::Txn));
    if (sys.timeline())
        r.timelineReport = std::make_shared<std::string>(
            sys.timeline()->report());
    return r;
}

RunStats
runScheme(Scheme scheme, int num_cpus, const Workload &wl, Tick max_ticks)
{
    MachineParams mp;
    mp.numCpus = num_cpus;
    mp.spec = schemeSpecConfig(scheme);
    mp.maxTicks = max_ticks;
    mp.collectMetrics = envMetrics();
    mp.explain = envExplain();
    mp.timelineEpoch = envTimelineEpoch();
    return runWorkload(mp, wl);
}

std::uint64_t
envScale()
{
    const char *s = std::getenv("TLR_SCALE");
    if (!s)
        return 1;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::uint64_t>(v) : 1;
}

bool
envMetrics()
{
    const char *s = std::getenv("TLR_METRICS");
    return s && *s && std::string(s) != "0";
}

bool
envExplain()
{
    const char *s = std::getenv("TLR_EXPLAIN");
    return s && *s && std::string(s) != "0";
}

Tick
envTimelineEpoch()
{
    const char *s = std::getenv("TLR_TIMELINE");
    if (!s)
        return 0;
    long long v = std::atoll(s);
    return v > 0 ? static_cast<Tick>(v) : 0;
}

} // namespace tlr

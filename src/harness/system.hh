/**
 * @file
 * Top-level simulated machine: cores + speculation engines + L1
 * controllers + interconnect + memory, wired per paper Table 2.
 */

#ifndef TLR_HARNESS_SYSTEM_HH
#define TLR_HARNESS_SYSTEM_HH

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "coherence/directory.hh"
#include "explain/explain.hh"
#include "coherence/interconnect.hh"
#include "coherence/l1_controller.hh"
#include "coherence/memory_controller.hh"
#include "core/spec_engine.hh"
#include "cpu/core.hh"
#include "mem/backing_store.hh"
#include "metrics/collector.hh"
#include "timeline/timeline.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_kernel.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "trace/checkers.hh"
#include "trace/sink.hh"

namespace tlr
{

/** Coherence organization (paper Section 3: either works with TLR). */
enum class Protocol
{
    Broadcast, ///< Gigaplane-style ordered broadcast (paper Table 2)
    Directory, ///< home directory, point-to-point forwarding
};

/** Full machine configuration (defaults follow paper Table 2). */
struct MachineParams
{
    int numCpus = 16;
    Protocol protocol = Protocol::Broadcast;
    InterconnectParams net;
    L1Params l1;
    MemParams mem;
    std::uint64_t l2Lines = (4ull << 20) / lineBytes; ///< 4 MB shared L2
    SpecConfig spec;
    TraceParams trace;
    /** Attach a MetricsCollector to the trace sink. Arms the sink, so
     *  events are recorded; latency/contention/traffic profiles become
     *  available via metrics() after the run. Off by default: with no
     *  listeners the sink stays disarmed and the hot path is a single
     *  predictable branch. */
    bool collectMetrics = false;
    /** Attach a causal-conflict Explainer (wait-for graph +
     *  critical-path accountant) to the trace sink. Same contract as
     *  collectMetrics: arms the sink, never perturbs simulated
     *  cycles, off by default. */
    bool explain = false;
    /** Transactions listed in the explain report (--explain top-K). */
    unsigned explainTopK = 10;
    /** Attach an EpochTimeline slicing the trace stream into epochs of
     *  this many cycles (--timeline-epoch, DESIGN.md §14). Same
     *  contract as collectMetrics/explain: arms the sink, never
     *  perturbs simulated cycles. 0 (default) = off. */
    Tick timelineEpoch = 0;
    std::uint64_t seed = 12345;
    Tick maxTicks = 2'000'000'000ull; ///< watchdog for livelock studies

    /** Intra-simulation worker threads (DESIGN.md §13). 0 (default)
     *  keeps the classic single event queue. >= 1 partitions the
     *  machine into per-CPU + fabric logical processes driven by the
     *  parallel kernel; results are bit-identical for every value
     *  >= 1 (threads=1 runs the same partitioned schedule on one
     *  thread). */
    unsigned threads = 0;
    /** Conservative-lookahead override in cycles. 0 derives the
     *  window size from the timing model:
     *  min(net.snoopLatency, net.dataLatency), clamped >= 1. Smaller
     *  values are valid (more barriers, same results; lookahead=1 is
     *  the stress configuration); requests above the derived bound
     *  are clamped down — exceeding it would break the
     *  delivery-horizon guarantee. With dynamic lookahead the derived
     *  value is only a floor reference: explicit values below it
     *  still cap the window (stress configs), larger windows come
     *  from partition promises automatically. */
    Tick lookahead = 0;
    /** Coalesce serialized globals per split point and skip/inline
     *  provably light window segments (DESIGN.md §13). Off = the
     *  one-barrier-pair-per-global schedule. */
    bool batchedGlobals = true;
    /** Protocol-aware dynamic windows from per-partition promises;
     *  off = fixed worst-case lookahead windows. */
    bool dynamicLookahead = true;
    /** Collect host-time phase attribution in the parallel kernel
     *  (bench_kernel --threads-grid; off in normal runs). */
    bool profilePhases = false;
};

class System
{
  public:
    explicit System(const MachineParams &params);

    int numCpus() const { return params_.numCpus; }
    Core &core(int i) { return *cores_.at(static_cast<size_t>(i)); }
    L1Controller &l1(int i) { return *l1s_.at(static_cast<size_t>(i)); }
    SpecEngine &engine(int i)
    {
        return *engines_.at(static_cast<size_t>(i));
    }
    BackingStore &memory() { return store_; }
    Interconnect &interconnect() { return *net_; }
    EventQueue &eventQueue() { return eq_; }
    StatSet &stats() { return stats_; }
    TraceSink &traceSink() { return trace_; }
    /** The parallel kernel; null in classic (threads == 0) mode. */
    ParallelKernel *kernel() { return kernel_.get(); }
    /** Events executed, mode-independent: single queue or the summed
     *  partition/ordering/global population of the parallel kernel. */
    std::uint64_t kernelEventsExecuted() const
    {
        return kernel_ ? kernel_->eventsExecuted() : eq_.executed();
    }
    /** Tick of the last executed event, mode-independent. */
    Tick simNow() const
    {
        return kernel_ ? kernel_->simNow() : eq_.now();
    }
    /** The attached metrics collector; null unless collectMetrics. */
    MetricsCollector *metrics() { return metrics_.get(); }
    /** The attached explainer; null unless MachineParams::explain. */
    Explainer *explainer() { return explain_.get(); }
    /** The attached timeline; null unless timelineEpoch > 0. */
    EpochTimeline *timeline() { return timeline_.get(); }

    /** Attach an event-stream consumer (lifecycle tracker, custom
     *  checker). The sink arms itself on first listener. */
    void addTraceListener(TraceListener *l) { trace_.addListener(l); }

    void setProgram(int cpu, ProgramPtr prog);
    void setLockClassifier(std::function<bool(Addr)> f);

    /**
     * Run until every core halts.
     * @return true on completion; false if maxTicks elapsed first
     *         (livelock experiments rely on this).
     */
    bool run();

    /** Tick at which the last core halted (parallel execution time);
     *  0 unless every core halted. */
    Tick completionTick() const
    {
        return haltedCount_.load(std::memory_order_relaxed) ==
                       params_.numCpus
                   ? completionTick_.load(std::memory_order_relaxed)
                   : 0;
    }

    /** Schedule an OS preemption: at tick @p when, core @p cpu stops
     *  for @p duration cycles. An active transaction aborts and its
     *  lock stays free (paper Section 4, non-blocking behavior); a
     *  BASE thread holding a real lock keeps it and blocks everyone
     *  else — the contrast the paper's stability claim is about. */
    void preemptCore(int cpu, Tick when, Tick duration);

  private:
    MachineParams params_;
    EventQueue eq_;
    StatSet stats_;
    BackingStore store_;
    TraceSink trace_; ///< before net_/l1s_: they capture its address
    std::unique_ptr<ParallelKernel> kernel_; ///< null in classic mode
    std::unique_ptr<InvariantRegistry> checkers_;
    std::unique_ptr<MetricsCollector> metrics_;
    std::unique_ptr<Explainer> explain_;
    std::unique_ptr<EpochTimeline> timeline_;
    std::unique_ptr<Interconnect> net_;
    MemoryController mem_;
    std::vector<std::unique_ptr<SpecEngine>> engines_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Halt hooks fire from worker threads in partitioned mode; the
     *  count is a plain sum and the completion tick a max, so relaxed
     *  atomics keep both exact and thread-count independent. */
    std::atomic<int> haltedCount_{0};
    std::atomic<Tick> completionTick_{0};
};

} // namespace tlr

#endif // TLR_HARNESS_SYSTEM_HH

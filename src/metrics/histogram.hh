/**
 * @file
 * Allocation-free log-bucketed histogram.
 *
 * The paper's evaluation (Figs. 8-11, Table 2) is about distributions
 * — critical-section latency, restart counts, deferral wait — not just
 * means. This histogram records 64-bit samples into a fixed array of
 * logarithmic buckets (4 sub-buckets per power of two, so relative
 * bucket width is at most 25%), tracks exact count/sum/min/max, and
 * reports interpolated percentiles.
 *
 * Properties the metrics layer relies on:
 *  - record() is a handful of integer ops into a fixed-size array:
 *    no heap, no branches on size, safe on the simulation hot path.
 *  - merge() is a pure element-wise sum plus min/max folds, so it is
 *    commutative and associative: parallel sweep shards merged in any
 *    order produce byte-identical JSON (tests/test_metrics.cc).
 *  - percentile() interpolates linearly inside a bucket and clamps to
 *    the exact [min, max] envelope, so single-sample and two-sample
 *    histograms report exact values.
 */

#ifndef TLR_METRICS_HISTOGRAM_HH
#define TLR_METRICS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <string>

namespace tlr
{

class Histogram
{
  public:
    /** Sub-bucket resolution: 2^2 = 4 linear sub-buckets per octave. */
    static constexpr unsigned subBucketBits = 2;
    static constexpr unsigned subBuckets = 1u << subBucketBits;
    /** Index space: values 0..3 exact, then 4 sub-buckets for each of
     *  the 62 remaining octaves of a 64-bit value. */
    static constexpr unsigned numBuckets = 252;

    /** Bucket index for @p v (monotonic in v, total over uint64). */
    static unsigned bucketIndex(std::uint64_t v);
    /** Smallest value mapping to bucket @p idx. */
    static std::uint64_t bucketLo(unsigned idx);
    /** Largest value mapping to bucket @p idx. */
    static std::uint64_t bucketHi(unsigned idx);

    void record(std::uint64_t v, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    bool empty() const { return count_ == 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Value at percentile @p p in [0, 100], linearly interpolated
     *  within the containing bucket and clamped to [min, max]. 0 when
     *  empty. */
    double percentile(double p) const;

    /** Element-wise accumulate @p o into this histogram. Commutative
     *  and associative up to byte-identical json() output. */
    void merge(const Histogram &o);

    /** One JSON object: count/sum/min/max/mean/p50/p90/p99 plus the
     *  sparse non-zero bucket list (bucket floor value -> count). */
    std::string json() const;

    bool operator==(const Histogram &o) const
    {
        return count_ == o.count_ && sum_ == o.sum_ && min_ == o.min_ &&
               max_ == o.max_ && counts_ == o.counts_;
    }

  private:
    std::array<std::uint64_t, numBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

} // namespace tlr

#endif // TLR_METRICS_HISTOGRAM_HH

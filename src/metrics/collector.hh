/**
 * @file
 * Simulation-time metrics layer (paper Figs. 8-11, Table 2 support).
 *
 * The scalar StatSet can reproduce means but not tails, and it cannot
 * say *which lock* or *which link* is hot. The MetricsCollector is a
 * TraceListener: it consumes the same structured event stream the
 * invariant checkers and the lifecycle exporter use, and condenses it
 * into a MetricsSnapshot:
 *
 *  - log-bucketed latency histograms (critical-section latency, commit
 *    and abort outcome latencies, retry counts, deferral wait cycles,
 *    deferral-queue depth), each reporting p50/p90/p99/max;
 *  - a per-lock contention profile (acquires, elisions, commits,
 *    restarts, fallbacks, deferrals, exclusive-owner occupancy),
 *    surfaced as a ranked "hottest locks" table;
 *  - interconnect/directory accounting: message counts and bytes per
 *    message type and per (from, to) link, including marker/probe
 *    traffic and directory-forwarded snoops.
 *
 * Zero-overhead-off contract: the collector is only ever attached as a
 * sink listener, so with metrics disabled the sink stays disarmed and
 * components skip every emit behind TLR_TRACE_ARMED — no cycles or
 * counters change. Even when attached it never mutates simulation
 * state, so enabling metrics cannot change simulated cycle counts.
 *
 * Snapshots merge: MetricsSnapshot::merge() is commutative and
 * associative (element-wise histogram adds plus keyed-map sums), so
 * parallel sweep shards (harness/sweep.hh) combine into byte-identical
 * JSON regardless of merge order.
 */

#ifndef TLR_METRICS_COLLECTOR_HH
#define TLR_METRICS_COLLECTOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "metrics/histogram.hh"
#include "trace/lifecycle.hh"
#include "trace/sink.hh"

namespace tlr
{

/** Per-lock contention counters, keyed by lock address. */
struct LockProfile
{
    std::uint64_t acquires = 0;  ///< real (non-elided) acquisitions
    std::uint64_t elisions = 0;  ///< new elided instances
    std::uint64_t commits = 0;
    std::uint64_t restarts = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t defers = 0;    ///< requests deferred on the lock line
                                 ///< or on data held under this lock
    std::uint64_t occupancyTicks = 0; ///< held/elided-exclusive time

    void merge(const LockProfile &o);
    /** Ranking key for the hottest-locks table. */
    std::uint64_t contention() const
    {
        return restarts + fallbacks + defers;
    }
};

/** Interconnect message classes accounted separately. */
enum class MsgClass : unsigned
{
    AddrGetS,
    AddrGetX,
    AddrUpgrade,
    AddrWriteBack,
    Data,
    Marker,
    Probe,
    DirFwd, ///< directory-forwarded snoop/invalidation
};
constexpr unsigned numMsgClasses = 8;
const char *msgClassName(MsgClass c);

struct MsgStat
{
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
};

/** Pseudo-node ids for link accounting (>= 0 are cpus). */
constexpr int memNode = -1; ///< memory controller
constexpr int ordNode = -2; ///< ordering point (bus / directory)
std::string linkNodeName(int node);

/** Everything the metrics layer measured in one run (or the merge of
 *  several shards of a sweep). */
struct MetricsSnapshot
{
    Histogram csLatency;     ///< critical-section entry -> outcome
    Histogram commitLatency; ///< commit start -> commit done
    Histogram abortLatency;  ///< instance begin -> fallback/quantum end
    Histogram retries;       ///< restarts per finished instance
    Histogram deferWait;     ///< request deferred -> serviced
    Histogram deferDepth;    ///< deferral backlog per change

    std::map<Addr, LockProfile> locks;
    std::array<MsgStat, numMsgClasses> msgs{};
    std::map<std::pair<int, int>, MsgStat> links; ///< (from, to)

    std::uint64_t records = 0;  ///< trace records consumed
    std::uint64_t runTicks = 0; ///< summed run lengths (occupancy base)

    /** Commutative/associative accumulate (byte-identical json() for
     *  any merge order — tests/test_metrics.cc). */
    void merge(const MetricsSnapshot &o);

    /** @{ abort digest, derived from the lock map (metrics schema v3
     *  exposes these as the "aborts" section). */
    std::uint64_t totalCommits() const;
    std::uint64_t totalRestarts() const;
    /** restarts / (commits + restarts); 0 when idle. */
    double abortRate() const;
    /** Highest-contention() lock and its contention; {0, 0} when no
     *  lock ever contended. */
    std::pair<Addr, std::uint64_t> hottestLock() const;
    /** @} */

    /** One JSON object (histograms + locks + interconnect), embedded
     *  as the "metrics" section of a versioned stats dump. */
    std::string json() const;

    /** Human-readable tables: histogram percentiles, the hottest
     *  @p maxLocks locks, per-message-type byte counts. */
    std::string summary(size_t maxLocks = 8) const;
};

class MetricsCollector : public TraceListener
{
  public:
    /** Lock addresses (sync/layout classifier) for attribution of
     *  MemWrite acquire/release heuristics and defer ownership. */
    void setLockClassifier(std::function<bool(Addr)> f)
    {
        isLock_ = std::move(f);
    }

    /** Also retain raw (tick, depth) samples per cpu so tlrsim can
     *  append Perfetto counter tracks to --trace-out exports. Off by
     *  default: plain metrics runs stay O(1) in memory. */
    void enableCounterTracks(bool on = true) { tracks_ = on; }

    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

    const MetricsSnapshot &snapshot() const { return snap_; }

    /** Deferral-queue depth counter tracks (one per cpu that ever
     *  deferred), for TxnLifecycle::exportChromeTrace. */
    std::vector<CounterTrack> counterTracks() const;

  private:
    /** Open critical-section instance on one cpu (elided or real). */
    struct OpenTxn
    {
        bool active = false;
        bool inCommit = false;
        Tick begin = 0;
        Tick commitStart = 0;
        Addr lock = 0;
        std::uint64_t restarts = 0;
    };

    OpenTxn &openFor(CpuId cpu);
    void closeTxn(OpenTxn &t);
    void accountMsg(MsgClass cls, std::uint64_t bytes, int from, int to);

    MetricsSnapshot snap_;
    std::vector<OpenTxn> open_;
    /** (line, requester) -> tick the request was first deferred. */
    std::map<std::pair<Addr, std::uint64_t>, Tick> deferStart_;
    /** Real lock holds: lock addr -> (holder cpu, acquire tick). */
    std::map<Addr, std::pair<int, Tick>> held_;
    std::map<int, std::vector<std::pair<Tick, std::uint64_t>>> depth_;
    std::function<bool(Addr)> isLock_;
    bool tracks_ = false;
};

} // namespace tlr

#endif // TLR_METRICS_COLLECTOR_HH

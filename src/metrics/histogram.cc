#include "metrics/histogram.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace tlr
{

unsigned
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < subBuckets)
        return static_cast<unsigned>(v);
    unsigned top = 63u - static_cast<unsigned>(std::countl_zero(v));
    unsigned shift = top - subBucketBits;
    return (top - subBucketBits + 1) * subBuckets +
           static_cast<unsigned>((v >> shift) - subBuckets);
}

std::uint64_t
Histogram::bucketLo(unsigned idx)
{
    if (idx < subBuckets)
        return idx;
    unsigned octave = idx / subBuckets;
    unsigned sub = idx % subBuckets;
    return static_cast<std::uint64_t>(subBuckets + sub) << (octave - 1);
}

std::uint64_t
Histogram::bucketHi(unsigned idx)
{
    if (idx + 1 >= numBuckets)
        return std::numeric_limits<std::uint64_t>::max();
    return bucketLo(idx + 1) - 1;
}

void
Histogram::record(std::uint64_t v, std::uint64_t weight)
{
    if (weight == 0)
        return;
    counts_[bucketIndex(v)] += weight;
    count_ += weight;
    sum_ += v * weight;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Histogram::merge(const Histogram &o)
{
    for (unsigned i = 0; i < numBuckets; ++i)
        counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    double need = p / 100.0 * static_cast<double>(count_);
    double cum = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        std::uint64_t c = counts_[i];
        if (c == 0)
            continue;
        if (cum + static_cast<double>(c) >= need) {
            double frac =
                c ? std::clamp((need - cum) / static_cast<double>(c),
                               0.0, 1.0)
                  : 0.0;
            double lo = static_cast<double>(bucketLo(i));
            double hi = static_cast<double>(bucketHi(i));
            double v = lo + frac * (hi - lo);
            return std::clamp(v, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
        cum += static_cast<double>(c);
    }
    return static_cast<double>(max_);
}

std::string
Histogram::json() const
{
    std::ostringstream os;
    os << "{\"count\": " << count_ << ", \"sum\": " << sum_
       << ", \"min\": " << min() << ", \"max\": " << max_
       << strfmt(", \"mean\": %.6g, \"p50\": %.6g, \"p90\": %.6g"
                 ", \"p99\": %.6g",
                 mean(), percentile(50), percentile(90), percentile(99))
       << ", \"buckets\": [";
    bool first = true;
    for (unsigned i = 0; i < numBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "[" << bucketLo(i) << ", " << counts_[i] << "]";
    }
    os << "]}";
    return os.str();
}

} // namespace tlr

#include "metrics/collector.hh"

#include <algorithm>
#include <sstream>

#include "coherence/messages.hh"
#include "sim/logging.hh"

namespace tlr
{

void
LockProfile::merge(const LockProfile &o)
{
    acquires += o.acquires;
    elisions += o.elisions;
    commits += o.commits;
    restarts += o.restarts;
    fallbacks += o.fallbacks;
    defers += o.defers;
    occupancyTicks += o.occupancyTicks;
}

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::AddrGetS: return "addr.GetS";
      case MsgClass::AddrGetX: return "addr.GetX";
      case MsgClass::AddrUpgrade: return "addr.Upgrade";
      case MsgClass::AddrWriteBack: return "addr.WriteBack";
      case MsgClass::Data: return "data";
      case MsgClass::Marker: return "marker";
      case MsgClass::Probe: return "probe";
      case MsgClass::DirFwd: return "dir.fwd";
    }
    return "?";
}

std::string
linkNodeName(int node)
{
    if (node == memNode)
        return "mem";
    if (node == ordNode)
        return "ord";
    return "cpu" + std::to_string(node);
}

//
// ---- MetricsSnapshot ----------------------------------------------------
//

void
MetricsSnapshot::merge(const MetricsSnapshot &o)
{
    csLatency.merge(o.csLatency);
    commitLatency.merge(o.commitLatency);
    abortLatency.merge(o.abortLatency);
    retries.merge(o.retries);
    deferWait.merge(o.deferWait);
    deferDepth.merge(o.deferDepth);
    for (const auto &[addr, p] : o.locks)
        locks[addr].merge(p);
    for (unsigned i = 0; i < numMsgClasses; ++i) {
        msgs[i].count += o.msgs[i].count;
        msgs[i].bytes += o.msgs[i].bytes;
    }
    for (const auto &[link, s] : o.links) {
        MsgStat &dst = links[link];
        dst.count += s.count;
        dst.bytes += s.bytes;
    }
    records += o.records;
    runTicks += o.runTicks;
}

std::uint64_t
MetricsSnapshot::totalCommits() const
{
    std::uint64_t n = 0;
    for (const auto &[addr, p] : locks)
        n += p.commits;
    return n;
}

std::uint64_t
MetricsSnapshot::totalRestarts() const
{
    std::uint64_t n = 0;
    for (const auto &[addr, p] : locks)
        n += p.restarts;
    return n;
}

double
MetricsSnapshot::abortRate() const
{
    double attempts = static_cast<double>(totalCommits()) +
                      static_cast<double>(totalRestarts());
    return attempts > 0
               ? static_cast<double>(totalRestarts()) / attempts
               : 0.0;
}

std::pair<Addr, std::uint64_t>
MetricsSnapshot::hottestLock() const
{
    std::pair<Addr, std::uint64_t> best{0, 0};
    for (const auto &[addr, p] : locks)
        if (p.contention() > best.second)
            best = {addr, p.contention()};
    return best;
}

std::string
MetricsSnapshot::json() const
{
    std::ostringstream os;
    os << "{\n";
    os << "    \"histograms\": {\n";
    const std::pair<const char *, const Histogram *> hists[] = {
        {"cs_latency", &csLatency},     {"commit_latency", &commitLatency},
        {"abort_latency", &abortLatency}, {"retries", &retries},
        {"defer_wait", &deferWait},     {"defer_depth", &deferDepth},
    };
    for (size_t i = 0; i < std::size(hists); ++i)
        os << "      \"" << hists[i].first
           << "\": " << hists[i].second->json()
           << (i + 1 < std::size(hists) ? ",\n" : "\n");
    os << "    },\n";

    os << "    \"locks\": [";
    bool first = true;
    for (const auto &[addr, p] : locks) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << strfmt("      {\"addr\": %llu, \"acquires\": %llu, "
                     "\"elisions\": %llu, \"commits\": %llu, "
                     "\"restarts\": %llu, \"fallbacks\": %llu, "
                     "\"defers\": %llu, \"occupancy_ticks\": %llu}",
                     static_cast<unsigned long long>(addr),
                     static_cast<unsigned long long>(p.acquires),
                     static_cast<unsigned long long>(p.elisions),
                     static_cast<unsigned long long>(p.commits),
                     static_cast<unsigned long long>(p.restarts),
                     static_cast<unsigned long long>(p.fallbacks),
                     static_cast<unsigned long long>(p.defers),
                     static_cast<unsigned long long>(p.occupancyTicks));
    }
    os << (first ? "],\n" : "\n    ],\n");

    os << "    \"interconnect\": {\n      \"types\": {";
    first = true;
    for (unsigned i = 0; i < numMsgClasses; ++i) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << strfmt("        \"%s\": {\"count\": %llu, \"bytes\": %llu}",
                     msgClassName(static_cast<MsgClass>(i)),
                     static_cast<unsigned long long>(msgs[i].count),
                     static_cast<unsigned long long>(msgs[i].bytes));
    }
    os << "\n      },\n      \"links\": [";
    first = true;
    for (const auto &[link, s] : links) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << strfmt("        {\"from\": \"%s\", \"to\": \"%s\", "
                     "\"count\": %llu, \"bytes\": %llu}",
                     linkNodeName(link.first).c_str(),
                     linkNodeName(link.second).c_str(),
                     static_cast<unsigned long long>(s.count),
                     static_cast<unsigned long long>(s.bytes));
    }
    os << (first ? "]\n    },\n" : "\n      ]\n    },\n");

    // Schema v3: per-workload abort digest (sim/build_info.hh).
    const auto [hotAddr, hotCont] = hottestLock();
    os << strfmt("    \"aborts\": {\"commits\": %llu, "
                 "\"restarts\": %llu, \"abort_rate\": %.6f, "
                 "\"hottest_lock\": %llu, "
                 "\"hottest_lock_contention\": %llu},\n",
                 static_cast<unsigned long long>(totalCommits()),
                 static_cast<unsigned long long>(totalRestarts()),
                 abortRate(),
                 static_cast<unsigned long long>(hotAddr),
                 static_cast<unsigned long long>(hotCont));

    os << "    \"records\": " << records << ",\n";
    os << "    \"run_ticks\": " << runTicks << "\n";
    os << "  }";
    return os.str();
}

std::string
MetricsSnapshot::summary(size_t maxLocks) const
{
    std::string out;
    out += "-- latency histograms (cycles) --\n";
    out += strfmt("  %-14s %10s %10s %10s %10s %10s %10s\n", "metric",
                  "count", "mean", "p50", "p90", "p99", "max");
    const std::pair<const char *, const Histogram *> hists[] = {
        {"cs-latency", &csLatency},     {"commit-latency", &commitLatency},
        {"abort-latency", &abortLatency}, {"retries", &retries},
        {"defer-wait", &deferWait},     {"defer-depth", &deferDepth},
    };
    for (const auto &[name, h] : hists) {
        out += strfmt("  %-14s %10llu %10.1f %10.0f %10.0f %10.0f "
                      "%10llu\n",
                      name, static_cast<unsigned long long>(h->count()),
                      h->mean(), h->percentile(50), h->percentile(90),
                      h->percentile(99),
                      static_cast<unsigned long long>(h->max()));
    }

    {
        const auto [hotAddr, hotCont] = hottestLock();
        out += strfmt("-- aborts --\n  commits %llu  restarts %llu  "
                      "abort-rate %.2f%%  hottest-lock %#llx "
                      "(contention %llu)\n",
                      static_cast<unsigned long long>(totalCommits()),
                      static_cast<unsigned long long>(totalRestarts()),
                      100.0 * abortRate(),
                      static_cast<unsigned long long>(hotAddr),
                      static_cast<unsigned long long>(hotCont));
    }

    out += "-- hottest locks --\n";
    out += strfmt("  %-10s %8s %8s %8s %8s %9s %7s %12s %6s\n", "addr",
                  "acquires", "elisions", "commits", "restarts",
                  "fallbacks", "defers", "occ-ticks", "occ%");
    std::vector<std::pair<Addr, LockProfile>> ranked(locks.begin(),
                                                     locks.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto &a,
                                               const auto &b) {
        if (a.second.contention() != b.second.contention())
            return a.second.contention() > b.second.contention();
        if (a.second.occupancyTicks != b.second.occupancyTicks)
            return a.second.occupancyTicks > b.second.occupancyTicks;
        return a.first < b.first;
    });
    size_t shown = std::min(maxLocks, ranked.size());
    for (size_t i = 0; i < shown; ++i) {
        const auto &[addr, p] = ranked[i];
        double occPct =
            runTicks ? 100.0 * static_cast<double>(p.occupancyTicks) /
                           static_cast<double>(runTicks)
                     : 0.0;
        out += strfmt("  %#-10llx %8llu %8llu %8llu %8llu %9llu %7llu "
                      "%12llu %6.1f\n",
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(p.acquires),
                      static_cast<unsigned long long>(p.elisions),
                      static_cast<unsigned long long>(p.commits),
                      static_cast<unsigned long long>(p.restarts),
                      static_cast<unsigned long long>(p.fallbacks),
                      static_cast<unsigned long long>(p.defers),
                      static_cast<unsigned long long>(p.occupancyTicks),
                      occPct);
    }
    if (ranked.size() > shown)
        out += strfmt("  (%zu more locks)\n", ranked.size() - shown);

    out += "-- interconnect messages --\n";
    out += strfmt("  %-14s %10s %12s\n", "type", "count", "bytes");
    for (unsigned i = 0; i < numMsgClasses; ++i) {
        if (msgs[i].count == 0)
            continue;
        out += strfmt("  %-14s %10llu %12llu\n",
                      msgClassName(static_cast<MsgClass>(i)),
                      static_cast<unsigned long long>(msgs[i].count),
                      static_cast<unsigned long long>(msgs[i].bytes));
    }
    std::vector<std::pair<std::pair<int, int>, MsgStat>> busiest(
        links.begin(), links.end());
    std::sort(busiest.begin(), busiest.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.bytes != b.second.bytes)
                      return a.second.bytes > b.second.bytes;
                  return a.first < b.first;
              });
    size_t nlinks = std::min<size_t>(12, busiest.size());
    if (nlinks) {
        out += strfmt("  %-14s %10s %12s\n", "link (busiest)", "count",
                      "bytes");
        for (size_t i = 0; i < nlinks; ++i) {
            const auto &[link, s] = busiest[i];
            out += strfmt("  %-14s %10llu %12llu\n",
                          (linkNodeName(link.first) + "->" +
                           linkNodeName(link.second))
                              .c_str(),
                          static_cast<unsigned long long>(s.count),
                          static_cast<unsigned long long>(s.bytes));
        }
        if (busiest.size() > nlinks)
            out += strfmt("  (%zu more links)\n",
                          busiest.size() - nlinks);
    }
    return out;
}

//
// ---- MetricsCollector ---------------------------------------------------
//

MetricsCollector::OpenTxn &
MetricsCollector::openFor(CpuId cpu)
{
    size_t idx = cpu >= 0 ? static_cast<size_t>(cpu) : 0;
    if (idx >= open_.size())
        open_.resize(idx + 1);
    return open_[idx];
}

void
MetricsCollector::closeTxn(OpenTxn &t)
{
    t = OpenTxn{};
}

void
MetricsCollector::accountMsg(MsgClass cls, std::uint64_t bytes, int from,
                             int to)
{
    MsgStat &m = snap_.msgs[static_cast<unsigned>(cls)];
    ++m.count;
    m.bytes += bytes;
    MsgStat &l = snap_.links[{from, to}];
    ++l.count;
    l.bytes += bytes;
}

void
MetricsCollector::onRecord(const TraceRecord &r)
{
    ++snap_.records;
    switch (r.kind) {
      case TraceEvent::TxnElide: {
        if (r.a3 == 0)
            return; // re-elision after a restart: same instance
        OpenTxn &t = openFor(r.cpu);
        // A dangling instance means the previous one never reported an
        // outcome (mirrors TxnLifecycle); drop it without recording.
        t = OpenTxn{};
        t.active = true;
        t.begin = r.tick;
        t.lock = r.addr;
        ++snap_.locks[r.addr].elisions;
        return;
      }
      case TraceEvent::TxnRestart: {
        OpenTxn &t = openFor(r.cpu);
        if (!t.active)
            return;
        ++t.restarts;
        LockProfile &p = snap_.locks[t.lock];
        ++p.restarts;
        t.inCommit = false;
        if (r.a2 != 0) { // instance ended: fallback to the real lock
            ++p.fallbacks;
            snap_.abortLatency.record(r.tick - t.begin);
            snap_.retries.record(t.restarts);
            closeTxn(t);
        }
        return;
      }
      case TraceEvent::TxnQuantumEnd: {
        OpenTxn &t = openFor(r.cpu);
        if (!t.active)
            return;
        snap_.abortLatency.record(r.tick - t.begin);
        snap_.retries.record(t.restarts);
        closeTxn(t);
        return;
      }
      case TraceEvent::TxnCommitStart: {
        OpenTxn &t = openFor(r.cpu);
        if (t.active) {
            t.inCommit = true;
            t.commitStart = r.tick;
        }
        return;
      }
      case TraceEvent::TxnCommit: {
        OpenTxn &t = openFor(r.cpu);
        if (!t.active)
            return;
        snap_.csLatency.record(r.tick - t.begin);
        if (t.inCommit)
            snap_.commitLatency.record(r.tick - t.commitStart);
        snap_.retries.record(t.restarts);
        LockProfile &p = snap_.locks[t.lock];
        ++p.commits;
        p.occupancyTicks += r.tick - t.begin;
        closeTxn(t);
        return;
      }
      case TraceEvent::CohDefer:
      case TraceEvent::CohRelaxedDefer: {
        // Keep the earliest defer tick: a request can be re-queued
        // internally but waits from its first deferral.
        deferStart_.emplace(std::make_pair(r.addr, r.a0), r.tick);
        // Attribute the deferral to a lock: the line itself if it is a
        // lock line, otherwise the lock the deferring owner holds.
        if (isLock_ && isLock_(r.addr)) {
            ++snap_.locks[r.addr].defers;
        } else {
            OpenTxn &t = openFor(r.cpu);
            if (t.active)
                ++snap_.locks[t.lock].defers;
        }
        return;
      }
      case TraceEvent::CohService: {
        auto it = deferStart_.find(std::make_pair(r.addr, r.a0));
        if (it != deferStart_.end()) {
            snap_.deferWait.record(r.tick - it->second);
            deferStart_.erase(it);
        }
        return;
      }
      case TraceEvent::CohDeferDepth: {
        snap_.deferDepth.record(r.a0);
        if (tracks_)
            depth_[r.cpu].emplace_back(r.tick, r.a0);
        return;
      }
      case TraceEvent::CohOrder: {
        MsgClass cls = MsgClass::AddrGetS;
        switch (static_cast<ReqType>(r.a0)) {
          case ReqType::GetS: cls = MsgClass::AddrGetS; break;
          case ReqType::GetX: cls = MsgClass::AddrGetX; break;
          case ReqType::Upgrade: cls = MsgClass::AddrUpgrade; break;
          case ReqType::WriteBack: cls = MsgClass::AddrWriteBack; break;
        }
        accountMsg(cls, addrMsgBytes, r.cpu, ordNode);
        return;
      }
      case TraceEvent::CohData:
        accountMsg(MsgClass::Data, dataMsgBytes, r.cpu,
                   static_cast<int>(r.a0));
        return;
      case TraceEvent::CohMarker:
        accountMsg(MsgClass::Marker, markerMsgBytes, r.cpu,
                   static_cast<int>(r.a0));
        return;
      case TraceEvent::CohProbe:
        accountMsg(MsgClass::Probe, probeMsgBytes, r.cpu,
                   static_cast<int>(r.a0));
        return;
      case TraceEvent::CohFwd:
        accountMsg(MsgClass::DirFwd, addrMsgBytes, ordNode,
                   static_cast<int>(r.a0));
        return;
      case TraceEvent::MemWrite: {
        // Real (non-elided) lock occupancy, from committed writes to
        // lock words: a non-zero store opens a hold, the zero store
        // releases it. Exact for test&test&set locks (BASE/SLE/TLR
        // fallback); approximate for MCS, whose queue-node handoffs
        // also live on classified sync lines.
        if (!isLock_ || !isLock_(r.addr))
            return;
        if (r.a0 != 0) {
            if (held_.emplace(r.addr, std::make_pair(static_cast<int>(
                                                         r.cpu),
                                                     r.tick))
                    .second)
                ++snap_.locks[r.addr].acquires;
        } else {
            auto it = held_.find(r.addr);
            if (it != held_.end()) {
                Tick heldFor = r.tick - it->second.second;
                snap_.csLatency.record(heldFor);
                snap_.locks[r.addr].occupancyTicks += heldFor;
                held_.erase(it);
            }
        }
        return;
      }
      default:
        return;
    }
}

void
MetricsCollector::finish(Tick now)
{
    // Unfinished work (open transactions, still-held locks, never
    // serviced deferrals) is dropped rather than guessed at.
    snap_.runTicks = now;
}

std::vector<CounterTrack>
MetricsCollector::counterTracks() const
{
    std::vector<CounterTrack> out;
    for (const auto &[cpu, samples] : depth_) {
        CounterTrack t;
        t.name = strfmt("defer-depth cpu%d", cpu);
        t.samples = samples;
        out.push_back(std::move(t));
    }
    return out;
}

} // namespace tlr

/**
 * @file
 * Stats-dump comparison engine behind the tlrstat CLI.
 *
 * Diffs two parsed --stats-json (or BENCH_*.json) documents: flattens
 * every numeric leaf to a dotted path, pairs the paths, computes the
 * relative change and flags rows exceeding a threshold. Refuses to
 * compare documents with mismatched schema_version fields — cross-
 * schema diffs silently mis-pair keys, which is worse than an error.
 */

#ifndef TLR_METRICS_STATDIFF_HH
#define TLR_METRICS_STATDIFF_HH

#include <string>
#include <vector>

#include "sim/json.hh"

namespace tlr
{

struct DiffOptions
{
    double thresholdPct = 20.0; ///< flag rows with |delta| above this
    /** Dotted path selecting the comparison root inside each document
     *  (empty = whole document). Lets tlrstat diff one sub-record of a
     *  multi-config bench dump, e.g. --old-prefix=current. */
    std::string oldPrefix;
    std::string newPrefix;
    /** Display names for the two inputs (tlrstat passes the file
     *  paths) so refusal/error messages can say which file carries
     *  which schema version. */
    std::string oldName = "old";
    std::string newName = "new";
};

struct DiffRow
{
    std::string key;    ///< dotted path below the comparison root
    double oldVal = 0;
    double newVal = 0;
    double relPct = 0;  ///< 100*(new-old)/old; 0 when old==new==0
    bool exceeded = false;
    /** Shown but never gated: a host-performance key (speedup,
     *  efficiency, wall time, events/sec, host_threads) compared
     *  across runs recorded on different host-thread budgets. */
    bool reportOnly = false;
};

struct DiffReport
{
    bool schemaMismatch = false;
    /** Both documents carry a "timeline" section and their epoch
     *  lengths differ: per-epoch rows would mis-pair (epoch 3 of a
     *  500-cycle timeline is not epoch 3 of a 2000-cycle one), so the
     *  diff is refused like a schema mismatch. */
    bool timelineEpochMismatch = false;
    long oldEpochLen = -1; ///< -1 = no timeline section
    long newEpochLen = -1;
    /** Per-epoch regression localization: one line per timeline field
     *  that changed, naming the first diverging epoch. */
    std::vector<std::string> timelineNotes;
    /** Both documents record host_threads and the values differ: the
     *  runs used different host parallelism, so host-performance
     *  comparisons (speedup, wall time, events/sec) are meaningless.
     *  Those keys are reported but excluded from threshold gating. */
    bool hostThreadsDiffer = false;
    std::string error;       ///< non-empty on structural failure
    long oldSchema = -1;     ///< -1 = legacy (no schema_version field)
    long newSchema = -1;
    std::vector<DiffRow> rows;        ///< keys present in both, sorted
    std::vector<std::string> onlyOld; ///< keys that disappeared
    std::vector<std::string> onlyNew; ///< keys that appeared
    size_t exceeded = 0;              ///< rows over the threshold

    bool ok() const
    {
        return error.empty() && !schemaMismatch &&
               !timelineEpochMismatch;
    }
};

/** Compare two parsed stats documents. */
DiffReport diffStats(const JsonValue &old_doc, const JsonValue &new_doc,
                     const DiffOptions &opt);

/** Human-readable report: one line per changed row (threshold
 *  violations marked), plus appeared/disappeared key summaries. */
std::string renderDiff(const DiffReport &rep, const DiffOptions &opt);

/** Machine-readable report (tlrstat --json): a versioned document
 *  (diffJsonSchemaVersion) with one row object per DiffRow — including
 *  report-only rows — plus the refusal/note state, so CI can gate on
 *  specific keys without scraping the human table. */
std::string renderDiffJson(const DiffReport &rep, const DiffOptions &opt);

/** True for host-performance keys (speedup, efficiency, wall_sec,
 *  events_per_sec, host_threads — matched on the final path component):
 *  meaningful only when both runs used the same host-thread budget.
 *  Shared with tlrreport --trend, which marks them report-only. */
bool isHostPerfKey(const std::string &key);

/** Flatten every numeric leaf under @p v into @p out as
 *  ("a.b.c", value) pairs. Skips the schema_version field and the
 *  meta subtree at the top level (build metadata is not a metric). */
void flattenNumbers(const JsonValue &v,
                    std::vector<std::pair<std::string, double>> &out);

/** Walk a dotted path ("bench.current") into an object tree; null when
 *  any component is missing. */
const JsonValue *resolvePath(const JsonValue &v, const std::string &path);

} // namespace tlr

#endif // TLR_METRICS_STATDIFF_HH

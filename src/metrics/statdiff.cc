#include "metrics/statdiff.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>

#include "sim/build_info.hh"
#include "sim/logging.hh"

namespace tlr
{

namespace
{

void
flattenInto(const JsonValue &v, const std::string &prefix, bool top,
            std::vector<std::pair<std::string, double>> &out)
{
    if (v.isNumber()) {
        out.emplace_back(prefix, v.number);
        return;
    }
    if (v.isObject()) {
        for (const auto &[key, child] : v.members) {
            // Versioning and build metadata are not metrics: the
            // schema check handles the former, and comparing compiler
            // strings numerically is meaningless.
            if (top && (key == "schema_version" || key == "meta"))
                continue;
            flattenInto(child, prefix.empty() ? key : prefix + "." + key,
                        false, out);
        }
        return;
    }
    if (v.isArray()) {
        for (size_t i = 0; i < v.elements.size(); ++i)
            flattenInto(v.elements[i],
                        prefix + "[" + std::to_string(i) + "]", false,
                        out);
    }
    // Strings/bools/nulls are not comparable metrics; skip.
}

long
schemaOf(const JsonValue &doc)
{
    const JsonValue *s = doc.find("schema_version");
    return s && s->isNumber() ? static_cast<long>(s->number) : -1;
}

} // namespace

// Matched on the final path component so per-config variants
// (threads_4_speedup) are covered too.
bool
isHostPerfKey(const std::string &key)
{
    size_t dot = key.rfind('.');
    std::string leaf = dot == std::string::npos ? key
                                                : key.substr(dot + 1);
    for (const char *suffix :
         {"host_threads", "speedup", "efficiency", "wall_sec",
          "events_per_sec"}) {
        size_t n = std::strlen(suffix);
        if (leaf.size() >= n &&
            leaf.compare(leaf.size() - n, n, suffix) == 0)
            return true;
    }
    return false;
}

void
flattenNumbers(const JsonValue &v,
               std::vector<std::pair<std::string, double>> &out)
{
    flattenInto(v, "", true, out);
}

const JsonValue *
resolvePath(const JsonValue &v, const std::string &path)
{
    const JsonValue *cur = &v;
    size_t pos = 0;
    while (pos < path.size()) {
        size_t dot = path.find('.', pos);
        if (dot == std::string::npos)
            dot = path.size();
        cur = cur->find(path.substr(pos, dot - pos));
        if (!cur)
            return nullptr;
        pos = dot + 1;
    }
    return cur;
}

DiffReport
diffStats(const JsonValue &old_doc, const JsonValue &new_doc,
          const DiffOptions &opt)
{
    DiffReport rep;
    rep.oldSchema = schemaOf(old_doc);
    rep.newSchema = schemaOf(new_doc);
    // Two legacy (pre-versioning) dumps may still be compared; any
    // other mismatch means the key spaces are not the same schema.
    if (rep.oldSchema != rep.newSchema) {
        rep.schemaMismatch = true;
        return rep;
    }

    const JsonValue *oldRoot = resolvePath(old_doc, opt.oldPrefix);
    const JsonValue *newRoot = resolvePath(new_doc, opt.newPrefix);
    if (!oldRoot) {
        rep.error = "old document: no such path: " + opt.oldPrefix;
        return rep;
    }
    if (!newRoot) {
        rep.error = "new document: no such path: " + opt.newPrefix;
        return rep;
    }

    {
        const JsonValue *oldLen =
            resolvePath(*oldRoot, "timeline.epoch_len");
        const JsonValue *newLen =
            resolvePath(*newRoot, "timeline.epoch_len");
        if (oldLen && oldLen->isNumber())
            rep.oldEpochLen = static_cast<long>(oldLen->number);
        if (newLen && newLen->isNumber())
            rep.newEpochLen = static_cast<long>(newLen->number);
        if (rep.oldEpochLen >= 0 && rep.newEpochLen >= 0 &&
            rep.oldEpochLen != rep.newEpochLen) {
            rep.timelineEpochMismatch = true;
            return rep;
        }
    }

    std::vector<std::pair<std::string, double>> oldFlat, newFlat;
    flattenNumbers(*oldRoot, oldFlat);
    flattenNumbers(*newRoot, newFlat);
    std::map<std::string, double> oldMap(oldFlat.begin(), oldFlat.end());
    std::map<std::string, double> newMap(newFlat.begin(), newFlat.end());

    {
        auto oldHt = oldMap.find("host_threads");
        auto newHt = newMap.find("host_threads");
        rep.hostThreadsDiffer = oldHt != oldMap.end() &&
                                newHt != newMap.end() &&
                                oldHt->second != newHt->second;
    }

    for (const auto &[key, oldVal] : oldMap) {
        auto it = newMap.find(key);
        if (it == newMap.end()) {
            rep.onlyOld.push_back(key);
            continue;
        }
        DiffRow row;
        row.key = key;
        row.oldVal = oldVal;
        row.newVal = it->second;
        if (oldVal == it->second)
            row.relPct = 0;
        else if (oldVal == 0)
            row.relPct = std::numeric_limits<double>::infinity();
        else
            row.relPct = 100.0 * (it->second - oldVal) / std::abs(oldVal);
        row.reportOnly = rep.hostThreadsDiffer && isHostPerfKey(key);
        row.exceeded = !row.reportOnly &&
                       std::abs(row.relPct) > opt.thresholdPct;
        if (row.exceeded)
            ++rep.exceeded;
        rep.rows.push_back(std::move(row));
    }
    for (const auto &[key, val] : newMap) {
        (void)val;
        if (!oldMap.count(key))
            rep.onlyNew.push_back(key);
    }

    // Localize timeline regressions: a counter drifting mid-run shows
    // up as hundreds of changed timeline.epochs[i].* rows; one line
    // naming the first diverging epoch is the useful summary.
    {
        std::map<std::string, long> firstDiverging;
        const std::string pre = "timeline.epochs[";
        for (const DiffRow &r : rep.rows) {
            if (r.oldVal == r.newVal ||
                r.key.compare(0, pre.size(), pre) != 0)
                continue;
            size_t close = r.key.find(']', pre.size());
            if (close == std::string::npos ||
                close + 1 >= r.key.size() || r.key[close + 1] != '.')
                continue;
            long epoch = std::atol(r.key.c_str() + pre.size());
            std::string field = r.key.substr(close + 2);
            auto [it, fresh] = firstDiverging.emplace(field, epoch);
            if (!fresh && epoch < it->second)
                it->second = epoch;
        }
        for (const auto &[field, epoch] : firstDiverging)
            rep.timelineNotes.push_back(
                strfmt("timeline: %s diverges starting at epoch %ld",
                       field.c_str(), epoch));
    }
    return rep;
}

std::string
renderDiff(const DiffReport &rep, const DiffOptions &opt)
{
    std::string out;
    if (rep.schemaMismatch) {
        auto schemaStr = [](long v) {
            return v < 0 ? std::string("none (legacy)")
                         : std::to_string(v);
        };
        out += strfmt("schema mismatch: %s has schema_version %s, "
                      "%s has schema_version %s "
                      "(refusing to diff across schema versions)\n",
                      opt.oldName.c_str(),
                      schemaStr(rep.oldSchema).c_str(),
                      opt.newName.c_str(),
                      schemaStr(rep.newSchema).c_str());
        return out;
    }
    if (rep.timelineEpochMismatch) {
        out += strfmt("timeline epoch mismatch: %s has epoch_len %ld, "
                      "%s has epoch_len %ld (refusing to diff "
                      "timelines with different epoch lengths)\n",
                      opt.oldName.c_str(), rep.oldEpochLen,
                      opt.newName.c_str(), rep.newEpochLen);
        return out;
    }
    if (!rep.error.empty()) {
        out += "error: " + rep.error + "\n";
        return out;
    }

    if (rep.hostThreadsDiffer)
        out += "note: host_threads differs between the runs; host-"
               "performance keys (speedup, efficiency, wall_sec, "
               "events_per_sec) are report-only and not gated\n";
    size_t changed = 0;
    out += strfmt("%-44s %14s %14s %9s\n", "key", "old", "new", "delta%");
    for (const DiffRow &r : rep.rows) {
        if (r.relPct == 0)
            continue;
        ++changed;
        const char *mark = r.exceeded     ? "  <-- EXCEEDS" :
                           r.reportOnly   ? "  (report-only)" :
                                            "";
        if (std::isinf(r.relPct))
            out += strfmt("%-44s %14.6g %14.6g %9s%s\n", r.key.c_str(),
                          r.oldVal, r.newVal, "inf", mark);
        else
            out += strfmt("%-44s %14.6g %14.6g %+8.1f%%%s\n",
                          r.key.c_str(), r.oldVal, r.newVal, r.relPct,
                          mark);
    }
    if (changed == 0)
        out += "  (no numeric changes)\n";
    for (const std::string &n : rep.timelineNotes)
        out += n + "\n";
    for (const std::string &k : rep.onlyOld)
        out += strfmt("only in old: %s\n", k.c_str());
    for (const std::string &k : rep.onlyNew)
        out += strfmt("only in new: %s\n", k.c_str());
    out += strfmt("%zu keys compared, %zu changed, %zu exceed "
                  "threshold (%.1f%%)\n",
                  rep.rows.size(), changed, rep.exceeded,
                  opt.thresholdPct);
    return out;
}

namespace
{

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** JSON has no Infinity literal; relPct for a 0 -> nonzero change is
 *  serialized as null (consumers treat null as "undefined ratio"). */
std::string
jsonNum(double v)
{
    if (std::isinf(v) || std::isnan(v))
        return "null";
    return strfmt("%.6g", v);
}

} // namespace

std::string
renderDiffJson(const DiffReport &rep, const DiffOptions &opt)
{
    std::string out;
    out += strfmt("{\n  \"schema_version\": %d,\n", diffJsonSchemaVersion);
    out += "  \"old\": {\"name\": " + jsonQuote(opt.oldName) +
           strfmt(", \"schema\": %ld},\n", rep.oldSchema);
    out += "  \"new\": {\"name\": " + jsonQuote(opt.newName) +
           strfmt(", \"schema\": %ld},\n", rep.newSchema);
    out += strfmt("  \"threshold_pct\": %.6g,\n", opt.thresholdPct);

    const char *refusal = rep.schemaMismatch ? "schema_mismatch"
                          : rep.timelineEpochMismatch
                              ? "timeline_epoch_mismatch"
                          : !rep.error.empty() ? "error"
                                               : nullptr;
    if (refusal) {
        out += strfmt("  \"refused\": true,\n  \"refusal\": \"%s\",\n",
                      refusal);
        if (!rep.error.empty())
            out += "  \"error\": " + jsonQuote(rep.error) + ",\n";
        if (rep.timelineEpochMismatch)
            out += strfmt("  \"old_epoch_len\": %ld, "
                          "\"new_epoch_len\": %ld,\n",
                          rep.oldEpochLen, rep.newEpochLen);
        out += "  \"rows\": [],\n  \"only_old\": [], \"only_new\": [],\n"
               "  \"timeline_notes\": [],\n"
               "  \"compared\": 0, \"changed\": 0, \"exceeded\": 0\n}\n";
        return out;
    }

    out += "  \"refused\": false,\n";
    out += strfmt("  \"host_threads_differ\": %s,\n",
                  rep.hostThreadsDiffer ? "true" : "false");
    size_t changed = 0;
    out += "  \"rows\": [\n";
    for (size_t i = 0; i < rep.rows.size(); ++i) {
        const DiffRow &r = rep.rows[i];
        if (r.relPct != 0)
            ++changed;
        out += "    {\"key\": " + jsonQuote(r.key) +
               ", \"old\": " + jsonNum(r.oldVal) +
               ", \"new\": " + jsonNum(r.newVal) +
               ", \"rel_pct\": " + jsonNum(r.relPct) +
               strfmt(", \"exceeded\": %s, \"report_only\": %s}%s\n",
                      r.exceeded ? "true" : "false",
                      r.reportOnly ? "true" : "false",
                      i + 1 < rep.rows.size() ? "," : "");
    }
    out += "  ],\n";
    auto strArray = [&](const char *name,
                        const std::vector<std::string> &v) {
        out += strfmt("  \"%s\": [", name);
        for (size_t i = 0; i < v.size(); ++i)
            out += (i ? ", " : "") + jsonQuote(v[i]);
        out += "],\n";
    };
    strArray("only_old", rep.onlyOld);
    strArray("only_new", rep.onlyNew);
    strArray("timeline_notes", rep.timelineNotes);
    out += strfmt("  \"compared\": %zu, \"changed\": %zu, "
                  "\"exceeded\": %zu\n}\n",
                  rep.rows.size(), changed, rep.exceeded);
    return out;
}

} // namespace tlr

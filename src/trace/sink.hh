/**
 * @file
 * The structured trace sink.
 *
 * Components emit fixed-size binary TraceRecords through one sink per
 * simulated system. The sink fans each record out to (a) an optional
 * ring buffer (flight recorder), (b) registered online listeners
 * (invariant checkers, the transaction lifecycle tracker) and (c) an
 * optional human-readable text echo on stderr.
 *
 * Zero-overhead-when-off contract: components guard every emit with
 * TLR_TRACE_ARMED(sink), a null check plus one boolean load, so a
 * system with no ring, no listeners and no echo pays a predicted
 * branch per would-be event and nothing else. The sink never schedules
 * events and never mutates simulation state, so enabling it cannot
 * change simulated cycle counts.
 */

#ifndef TLR_TRACE_SINK_HH
#define TLR_TRACE_SINK_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/ring.hh"

namespace tlr
{

/** One-line text rendering of a record (echo mode, ring dumps). */
std::string formatRecord(const TraceRecord &r);

/** Online consumer of the event stream (checker, lifecycle tracker). */
class TraceListener
{
  public:
    virtual ~TraceListener() = default;
    virtual void onRecord(const TraceRecord &r) = 0;
    /** Called once after the run completes (end-of-stream checks). */
    virtual void finish(Tick now) { (void)now; }
};

/** Configuration of the per-system tracing/checking machinery. */
struct TraceParams
{
    /** Flight-recorder depth in records; 0 disables the ring. */
    size_t ringCapacity = 0;
    /** Echo each record as text on stderr (tlrsim --trace). */
    bool echoText = false;
    /** Attach the online invariant checkers (System does this). */
    bool checkInvariants = false;
    /** Record violations in stats but keep running instead of
     *  panicking at the violating tick (test support). */
    bool keepGoingOnViolation = false;
    /** Deferral-graph cycles older than this many ticks are reported
     *  as deadlocks; 0 derives a bound from the L1 yield timeout. */
    Tick cycleStuckTicks = 0;
};

class TraceSink
{
  public:
    TraceSink() : ring_(0) {}

    void
    configure(size_t ring_capacity, bool echo_text)
    {
        ring_ = TraceRing(ring_capacity);
        echo_ = echo_text;
        rearm();
    }

    void
    addListener(TraceListener *l)
    {
        listeners_.push_back(l);
        rearm();
    }

    /** Hot-path gate: true when any consumer wants records. */
    bool armed() const { return armed_; }

    /**
     * Switch this sink into capture mode: emit() buffers records
     * instead of fanning them out. The parallel kernel gives each
     * partition a capture sink, then stitches the buffers into tick
     * order and replays them through the real sink via emitRecord(),
     * so downstream consumers (ring, checkers, raw-trace writers)
     * observe exactly the single-threaded stream.
     */
    void
    enableCapture()
    {
        capture_ = true;
        armed_ = true;
    }

    bool captureEnabled() const { return capture_; }
    std::vector<TraceRecord> &captured() { return captured_; }

    /** Divert captured records into @p dst's buffer (null restores
     *  local buffering). The parallel kernel redirects every partition
     *  sink to one shared serial sink while it executes serialized
     *  phases (ordering replays, cross-partition globals), so records
     *  those phases emit keep their exact emission order no matter
     *  which component — hence which partition sink — emitted them. */
    void setCaptureRedirect(TraceSink *dst) { redirect_ = dst; }

    void
    emit(Tick tick, TraceComp comp, TraceEvent kind, CpuId cpu, Addr addr,
         std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
         std::uint64_t a3 = 0)
    {
        TraceRecord r;
        r.tick = tick;
        r.comp = comp;
        r.kind = kind;
        r.cpu = static_cast<std::int16_t>(cpu);
        r.addr = addr;
        r.a0 = a0;
        r.a1 = a1;
        r.a2 = a2;
        r.a3 = a3;
        if (capture_) {
            (redirect_ ? redirect_ : this)->captured_.push_back(r);
            return;
        }
        r.seq = emitted_++;
        ring_.push(r);
        if (echo_)
            std::fprintf(stderr, "%s\n", formatRecord(r).c_str());
        for (TraceListener *l : listeners_)
            l->onRecord(r);
    }

    /** Replay a stitched record through the real fan-out. The global
     *  emission sequence number is (re)assigned here, so replayed
     *  streams carry the same seq values a single-threaded run
     *  emits. */
    void
    emitRecord(const TraceRecord &rec)
    {
        TraceRecord r = rec;
        r.seq = emitted_++;
        ring_.push(r);
        if (echo_)
            std::fprintf(stderr, "%s\n", formatRecord(r).c_str());
        for (TraceListener *l : listeners_)
            l->onRecord(r);
    }

    /** End-of-run hook: flush listeners' pending state. */
    void
    finish(Tick now)
    {
        for (TraceListener *l : listeners_)
            l->finish(now);
    }

    std::uint64_t emitted() const { return emitted_; }
    const TraceRing &ring() const { return ring_; }

    /** Dump the newest @p max_records ring entries to @p out
     *  (post-mortem context for a violation report). */
    void dumpRecent(std::FILE *out, size_t max_records = 64) const;

  private:
    void
    rearm()
    {
        armed_ = echo_ || ring_.capacity() > 0 || !listeners_.empty();
    }

    bool armed_ = false;
    bool echo_ = false;
    bool capture_ = false;
    TraceRing ring_;
    std::vector<TraceListener *> listeners_;
    std::vector<TraceRecord> captured_;
    TraceSink *redirect_ = nullptr;
    std::uint64_t emitted_ = 0;
};

/** Emit guard used on hot paths: null sink or disarmed sink costs one
 *  branch. Usage: if (TLR_TRACE_ARMED(trace_)) trace_->emit(...); */
#define TLR_TRACE_ARMED(sink) ((sink) != nullptr && (sink)->armed())

} // namespace tlr

#endif // TLR_TRACE_SINK_HH

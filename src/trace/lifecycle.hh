/**
 * @file
 * Per-transaction lifecycle tracker and Chrome-trace exporter.
 *
 * Consumes the structured event stream and reconstructs every
 * critical-section instance on every processor: elide → speculate →
 * conflict → defer/restart → commit or fallback. The result exports as
 * Chrome trace-event JSON (the format Perfetto and chrome://tracing
 * open natively): one timeline row per cpu, a duration span per
 * transaction instance colored by outcome, and instant markers for
 * restarts, defers, probes and yields.
 */

#ifndef TLR_TRACE_LIFECYCLE_HH
#define TLR_TRACE_LIFECYCLE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "trace/sink.hh"

namespace tlr
{

/** One Perfetto counter track: a named series of (tick, value)
 *  samples, appended to the Chrome-trace export as "C" events (the
 *  metrics layer supplies deferral-queue depth tracks this way). */
struct CounterTrack
{
    std::string name;
    std::vector<std::pair<Tick, std::uint64_t>> samples;
};

/** One causal flow arrow for the Chrome-trace export: drawn from
 *  (fromCpu row, fromTick) to (toCpu row, toTick) as an "s"/"f" flow
 *  event pair (the explain subsystem supplies deferral arrows —
 *  owner at the defer tick → waiter at the service tick). */
struct FlowArrow
{
    CpuId fromCpu = invalidCpu;
    Tick fromTick = 0;
    CpuId toCpu = invalidCpu;
    Tick toTick = 0;
    std::string name;
};

class TxnLifecycle : public TraceListener
{
  public:
    /** One critical-section instance, first elision to final outcome. */
    struct Span
    {
        CpuId cpu = invalidCpu;
        Tick begin = 0;
        Tick end = 0;
        Addr lock = 0;
        std::uint64_t tsClock = 0;
        bool tsValid = false;
        unsigned restarts = 0;
        unsigned nests = 0;
        std::string outcome; ///< "commit" | "fallback:<reason>" |
                             ///< "quantum-end" | "unfinished"
    };

    /** A point event on a cpu row (restart, defer, probe, yield). */
    struct Instant
    {
        CpuId cpu = invalidCpu;
        Tick tick = 0;
        std::string name;
        std::string detail;
    };

    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<Instant> &instants() const { return instants_; }

    /** Write the whole run as Chrome trace-event JSON, optionally
     *  appending @p counters as Perfetto counter tracks and @p flows
     *  as causal flow arrows between cpu rows. */
    void exportChromeTrace(std::ostream &os,
                           const std::vector<CounterTrack> &counters = {},
                           const std::vector<FlowArrow> &flows = {})
        const;

  private:
    void closeSpan(CpuId cpu, Tick end, std::string outcome);

    std::map<CpuId, Span> open_;
    std::vector<Span> spans_;
    std::vector<Instant> instants_;
};

} // namespace tlr

#endif // TLR_TRACE_LIFECYCLE_HH

/**
 * @file
 * Online invariant checkers driven from the structured event stream.
 *
 * Each checker watches the TraceRecord stream and verifies one of the
 * paper's correctness claims *while the run executes*, panicking at
 * the violating tick (with a flight-recorder dump) instead of letting
 * the bug surface as a wrong answer at run end:
 *
 *  - SingleOwnerChecker: MOESI safety — at most one cache holds a
 *    line writable (M/E), and a writable copy excludes all others.
 *  - TimestampOrderChecker: the paper's conflict-resolution rule —
 *    a transaction never loses a conflict to a contender with a
 *    *later* timestamp (Section 2.1.2: earlier timestamp wins).
 *  - DeferralCycleChecker: deferral chains never deadlock — a cycle
 *    in the waits-for graph built from deferral decisions must be
 *    broken (by probes or the recovery timer) within a bounded window
 *    (paper Fig. 6 and Section 3.1.1).
 *  - AtomicityChecker: commit atomicity against a shadow-memory
 *    oracle — every value a transaction read must still be the
 *    globally visible value when the transaction commits (exactly
 *    the serializability obligation of paper Section 2.1.1).
 *
 * Checkers are passive listeners: they never schedule events or touch
 * simulation state, so attaching them cannot change simulated cycles.
 */

#ifndef TLR_TRACE_CHECKERS_HH
#define TLR_TRACE_CHECKERS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "trace/sink.hh"

namespace tlr
{

/** Shared context: violation accounting + policy knobs. */
struct CheckerContext
{
    StatSet *stats = nullptr;
    TraceSink *sink = nullptr; ///< for flight-recorder dumps on panic
    bool keepGoing = false;    ///< count violations instead of panicking
    bool deferUntimestamped = true; ///< engine policy (SpecConfig)
    Tick cycleStuckTicks = 50'000;  ///< deadlock persistence bound

    /** Record a violation; panics at the violating tick unless
     *  keepGoing is set. */
    void violation(const char *checker, Tick tick, const std::string &msg);
};

/** At most one writable (M/E) copy of a line system-wide, and a
 *  writable copy excludes every other valid copy. */
class SingleOwnerChecker : public TraceListener
{
  public:
    explicit SingleOwnerChecker(CheckerContext &ctx) : ctx_(ctx) {}
    void onRecord(const TraceRecord &r) override;

  private:
    CheckerContext &ctx_;
    /** line -> (cpu -> CohState as int). */
    std::unordered_map<Addr, std::map<CpuId, int>> state_;
};

/** A conflict is never lost to a later-timestamp contender. */
class TimestampOrderChecker : public TraceListener
{
  public:
    explicit TimestampOrderChecker(CheckerContext &ctx) : ctx_(ctx) {}
    void onRecord(const TraceRecord &r) override;

  private:
    CheckerContext &ctx_;
};

/** Deferral waits-for cycles must be broken within a bounded window. */
class DeferralCycleChecker : public TraceListener
{
  public:
    explicit DeferralCycleChecker(CheckerContext &ctx) : ctx_(ctx) {}
    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

  private:
    struct Edge
    {
        CpuId waiter;
        CpuId holder;
        Addr line;
        bool operator<(const Edge &o) const
        {
            if (waiter != o.waiter)
                return waiter < o.waiter;
            if (holder != o.holder)
                return holder < o.holder;
            return line < o.line;
        }
    };

    bool hasCycle(std::vector<CpuId> *cycle_out) const;
    void edgesChanged(Tick now);
    void report(Tick now);

    CheckerContext &ctx_;
    std::set<Edge> edges_;
    bool cyclePresent_ = false;
    Tick cycleSince_ = 0;
    std::vector<CpuId> cycleNodes_;
};

/** Shadow-memory oracle: transactional read sets must still be valid
 *  at commit time (commit atomicity / serializability). */
class AtomicityChecker : public TraceListener
{
  public:
    explicit AtomicityChecker(CheckerContext &ctx) : ctx_(ctx) {}
    void onRecord(const TraceRecord &r) override;

    /** Oracle introspection (tests). */
    bool hasWord(Addr addr) const { return shadow_.count(addr) != 0; }
    std::uint64_t word(Addr addr) const
    {
        auto it = shadow_.find(addr);
        return it == shadow_.end() ? 0 : it->second;
    }

  private:
    void noteRead(CpuId cpu, Addr addr, std::uint64_t value, Tick tick);

    CheckerContext &ctx_;
    std::unordered_map<Addr, std::uint64_t> shadow_; ///< word -> value
    /** cpu -> (word -> first value read inside the transaction). */
    std::map<CpuId, std::unordered_map<Addr, std::uint64_t>> readSets_;
};

/**
 * Bundles the four checkers behind one listener and owns the shared
 * context. Violations increment StatSet counter "trace.violations"
 * (and "trace.violations.<checker>") before panicking, so tests
 * running with keepGoing can assert on counts.
 */
class InvariantRegistry : public TraceListener
{
  public:
    InvariantRegistry(StatSet &stats, TraceSink *sink,
                      const TraceParams &params,
                      bool defer_untimestamped, Tick yield_timeout);

    void onRecord(const TraceRecord &r) override;
    void finish(Tick now) override;

    std::uint64_t violations() const;
    AtomicityChecker &atomicity() { return atomicity_; }

  private:
    CheckerContext ctx_;
    SingleOwnerChecker owner_;
    TimestampOrderChecker tsOrder_;
    DeferralCycleChecker cycles_;
    AtomicityChecker atomicity_;
};

} // namespace tlr

#endif // TLR_TRACE_CHECKERS_HH

/**
 * @file
 * Record-level trace filter.
 *
 * Parses a comma-separated filter specification —
 *
 *   cpu:3,class:Coh,kind:defer,comp:L1,addr:0x40,tick:100-5000
 *
 * — into a predicate over TraceRecords. Repeating a key ORs its
 * values; distinct keys AND together. Used by `tlrsim
 * --trace-filter=...` to thin the raw-trace file on large runs and by
 * `tlrquery --filter=...` for offline queries, so both tools accept
 * the exact same syntax.
 */

#ifndef TLR_TRACE_FILTER_HH
#define TLR_TRACE_FILTER_HH

#include <string>
#include <vector>

#include "trace/events.hh"

namespace tlr
{

/** Event-name prefix groups selectable with `class:`. */
enum class TraceClass : std::uint8_t
{
    Txn,  ///< transaction lifecycle (TxnElide .. TxnWrite)
    Coh,  ///< coherence activity (CohMiss .. CohFwd)
    Line, ///< line-ownership transitions (LineInstall .. LineInval)
    Mem,  ///< committed non-speculative writes (MemWrite)
};

TraceClass traceClassOf(TraceEvent e);
const char *traceClassName(TraceClass c);

struct TraceFilter
{
    /** Empty vector = wildcard for that key. */
    std::vector<std::int16_t> cpus;
    std::vector<TraceComp> comps;
    std::vector<TraceEvent> kinds;
    std::vector<TraceClass> classes;
    std::vector<Addr> addrs;
    Tick tickLo = 0;
    Tick tickHi = ~static_cast<Tick>(0);

    bool
    empty() const
    {
        return cpus.empty() && comps.empty() && kinds.empty() &&
               classes.empty() && addrs.empty() && tickLo == 0 &&
               tickHi == ~static_cast<Tick>(0);
    }

    bool matches(const TraceRecord &r) const;

    /**
     * Parse @p spec into this filter (merging with any keys already
     * set, so a CLI can stack several --filter flags).
     * @return empty string on success, else a description of the
     *         first offending term.
     */
    std::string parse(const std::string &spec);
};

} // namespace tlr

#endif // TLR_TRACE_FILTER_HH

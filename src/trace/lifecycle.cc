#include "trace/lifecycle.hh"

#include <algorithm>

#include "coherence/messages.hh"
#include "coherence/spec_hooks.hh"
#include "sim/logging.hh"

namespace tlr
{

void
TxnLifecycle::closeSpan(CpuId cpu, Tick end, std::string outcome)
{
    auto it = open_.find(cpu);
    if (it == open_.end())
        return;
    // Clamp: a span must never extend past its close tick or run
    // backwards — Perfetto rejects traces with negative durations.
    it->second.end = std::max(end, it->second.begin);
    it->second.outcome = std::move(outcome);
    spans_.push_back(it->second);
    open_.erase(it);
}

void
TxnLifecycle::onRecord(const TraceRecord &r)
{
    switch (r.kind) {
      case TraceEvent::TxnElide: {
        if (r.a3 != 0) {
            // New instance. A dangling span here means the previous
            // instance never reported an outcome; close it defensively.
            closeSpan(r.cpu, r.tick, "unfinished");
            Span s;
            s.cpu = r.cpu;
            s.begin = r.tick;
            s.lock = r.addr;
            Timestamp ts = unpackTs(r.a1, r.a2);
            s.tsClock = ts.clock;
            s.tsValid = ts.valid;
            open_[r.cpu] = s;
        }
        // Re-elision after a restart continues the open span.
        return;
      }
      case TraceEvent::TxnNest: {
        auto it = open_.find(r.cpu);
        if (it != open_.end())
            ++it->second.nests;
        return;
      }
      case TraceEvent::TxnRestart: {
        auto reason = static_cast<AbortReason>(r.a0);
        if (r.a2 != 0) {
            closeSpan(r.cpu, r.tick,
                      std::string("fallback:") + abortReasonName(reason));
        } else {
            auto it = open_.find(r.cpu);
            if (it != open_.end())
                ++it->second.restarts;
            instants_.push_back({r.cpu, r.tick, "restart",
                                 abortReasonName(reason)});
        }
        return;
      }
      case TraceEvent::TxnCommit:
        closeSpan(r.cpu, r.tick, "commit");
        return;
      case TraceEvent::TxnQuantumEnd:
        closeSpan(r.cpu, r.tick, "quantum-end");
        return;
      case TraceEvent::CohDefer:
      case TraceEvent::CohRelaxedDefer:
        instants_.push_back(
            {r.cpu, r.tick,
             r.kind == TraceEvent::CohDefer ? "defer" : "relaxed-defer",
             strfmt("cpu%llu %s line=%#llx",
                    static_cast<unsigned long long>(r.a0),
                    reqTypeName(static_cast<ReqType>(r.a1)),
                    static_cast<unsigned long long>(r.addr))});
        return;
      case TraceEvent::CohProbe:
        instants_.push_back(
            {r.cpu, r.tick, "probe",
             strfmt("to cpu%llu line=%#llx",
                    static_cast<unsigned long long>(r.a0),
                    static_cast<unsigned long long>(r.addr))});
        return;
      case TraceEvent::CohYield:
        instants_.push_back(
            {r.cpu, r.tick, "yield",
             strfmt("line=%#llx",
                    static_cast<unsigned long long>(r.addr))});
        return;
      default:
        return;
    }
}

void
TxnLifecycle::finish(Tick now)
{
    while (!open_.empty())
        closeSpan(open_.begin()->first, now, "unfinished");
}

namespace
{

/** Chrome trace-event colors by outcome (cname is a documented
 *  trace-viewer field; Perfetto falls back to its own palette). */
const char *
outcomeColor(const std::string &outcome)
{
    if (outcome == "commit")
        return "good";
    if (outcome.rfind("fallback:", 0) == 0)
        return "terrible";
    return "bad";
}

} // namespace

void
TxnLifecycle::exportChromeTrace(std::ostream &os,
                                const std::vector<CounterTrack> &counters,
                                const std::vector<FlowArrow> &flows)
    const
{
    // Durations use "X" complete events; markers use "i" instants.
    // Ticks (cycles) are written as microseconds so viewers show cycle
    // counts directly.
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    std::map<CpuId, bool> rows;
    for (const Span &s : spans_)
        rows[s.cpu] = true;
    for (const Instant &i : instants_)
        rows[i.cpu] = true;
    for (const auto &[cpu, unused] : rows) {
        (void)unused;
        sep();
        os << strfmt("{\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"cpu %d\"}}",
                     cpu, cpu);
    }

    for (const Span &s : spans_) {
        sep();
        Tick dur = s.end > s.begin ? s.end - s.begin : 0;
        os << strfmt(
            "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"cat\":\"txn\","
            "\"name\":\"txn lock=%#llx\",\"ts\":%llu,\"dur\":%llu,"
            "\"cname\":\"%s\",\"args\":{\"outcome\":\"%s\","
            "\"restarts\":%u,\"nests\":%u,\"ts_clock\":%llu,"
            "\"ts_valid\":%s}}",
            s.cpu, static_cast<unsigned long long>(s.lock),
            static_cast<unsigned long long>(s.begin),
            static_cast<unsigned long long>(dur),
            outcomeColor(s.outcome), s.outcome.c_str(), s.restarts,
            s.nests, static_cast<unsigned long long>(s.tsClock),
            s.tsValid ? "true" : "false");
    }

    for (const Instant &i : instants_) {
        sep();
        os << strfmt("{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"s\":\"t\","
                     "\"cat\":\"coh\",\"name\":\"%s\",\"ts\":%llu,"
                     "\"args\":{\"detail\":\"%s\"}}",
                     i.cpu, i.name.c_str(),
                     static_cast<unsigned long long>(i.tick),
                     i.detail.c_str());
    }

    // Causal flow arrows: an "s" (start) / "f" (finish) pair with a
    // shared id draws an arrow between the two rows; "bp":"e" binds
    // the endpoint to the enclosing slice rather than the next one.
    for (size_t fi = 0; fi < flows.size(); ++fi) {
        const FlowArrow &f = flows[fi];
        sep();
        os << strfmt("{\"ph\":\"s\",\"pid\":0,\"tid\":%d,"
                     "\"cat\":\"dep\",\"name\":\"%s\",\"id\":%zu,"
                     "\"ts\":%llu}",
                     f.fromCpu, f.name.c_str(), fi,
                     static_cast<unsigned long long>(f.fromTick));
        sep();
        os << strfmt("{\"ph\":\"f\",\"pid\":0,\"tid\":%d,"
                     "\"cat\":\"dep\",\"name\":\"%s\",\"id\":%zu,"
                     "\"bp\":\"e\",\"ts\":%llu}",
                     f.toCpu, f.name.c_str(), fi,
                     static_cast<unsigned long long>(f.toTick));
    }

    // Counter tracks render as per-name value graphs in Perfetto.
    for (const CounterTrack &c : counters) {
        for (const auto &[tick, value] : c.samples) {
            sep();
            os << strfmt("{\"ph\":\"C\",\"pid\":0,\"name\":\"%s\","
                         "\"ts\":%llu,\"args\":{\"value\":%llu}}",
                         c.name.c_str(),
                         static_cast<unsigned long long>(tick),
                         static_cast<unsigned long long>(value));
        }
    }

    os << "\n]}\n";
}

} // namespace tlr

#include "trace/sink.hh"

#include "coherence/messages.hh"
#include "coherence/spec_hooks.hh"
#include "mem/line.hh"
#include "sim/logging.hh"

namespace tlr
{

const char *
traceCompName(TraceComp c)
{
    switch (c) {
      case TraceComp::Spec: return "Spec";
      case TraceComp::L1: return "L1";
      case TraceComp::Bus: return "Bus";
      case TraceComp::Dir: return "Dir";
      case TraceComp::Net: return "Net";
    }
    return "?";
}

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::TxnElide: return "txn-elide";
      case TraceEvent::TxnNest: return "txn-nest";
      case TraceEvent::TxnRestart: return "txn-restart";
      case TraceEvent::TxnCommitStart: return "txn-commit-start";
      case TraceEvent::TxnCommit: return "txn-commit";
      case TraceEvent::TxnQuantumEnd: return "txn-quantum-end";
      case TraceEvent::TxnRead: return "txn-read";
      case TraceEvent::TxnWrite: return "txn-write";
      case TraceEvent::CohMiss: return "miss";
      case TraceEvent::CohSubmit: return "submit";
      case TraceEvent::CohOrder: return "order";
      case TraceEvent::CohDefer: return "defer";
      case TraceEvent::CohRelaxedDefer: return "relaxed-defer";
      case TraceEvent::CohLose: return "lose";
      case TraceEvent::CohYield: return "yield";
      case TraceEvent::CohService: return "service";
      case TraceEvent::CohDeferDrain: return "defer-drain";
      case TraceEvent::CohMarker: return "marker";
      case TraceEvent::CohProbe: return "probe";
      case TraceEvent::CohData: return "data";
      case TraceEvent::CohDeferDepth: return "defer-depth";
      case TraceEvent::CohFwd: return "fwd";
      case TraceEvent::LineInstall: return "line-install";
      case TraceEvent::LineUpgrade: return "line-upgrade";
      case TraceEvent::LineDowngrade: return "line-downgrade";
      case TraceEvent::LineInval: return "line-inval";
      case TraceEvent::MemWrite: return "mem-write";
    }
    return "?";
}

const char *
serviceCauseName(ServiceCause c)
{
    switch (c) {
      case ServiceCause::Chain: return "chain";
      case ServiceCause::CommitDrain: return "commit-drain";
      case ServiceCause::AbortDrain: return "abort-drain";
    }
    return "?";
}

std::string
formatRecord(const TraceRecord &r)
{
    std::string s =
        strfmt("%10llu: %-4s: cpu%-2d %-16s addr=%#llx",
               static_cast<unsigned long long>(r.tick),
               traceCompName(r.comp), r.cpu, traceEventName(r.kind),
               static_cast<unsigned long long>(r.addr));
    switch (r.kind) {
      case TraceEvent::TxnElide:
      case TraceEvent::TxnNest:
        s += strfmt(" free=%llu %s new=%llu",
                    static_cast<unsigned long long>(r.a0),
                    unpackTs(r.a1, r.a2).str().c_str(),
                    static_cast<unsigned long long>(r.a3));
        break;
      case TraceEvent::TxnRestart:
        s += strfmt(" reason=%s resource=%llu fallback=%llu",
                    abortReasonName(static_cast<AbortReason>(r.a0)),
                    static_cast<unsigned long long>(r.a1),
                    static_cast<unsigned long long>(r.a2));
        if (unpackTs(0, r.a3).valid)
            s += strfmt(" loser-to-cpu%d", unpackTs(0, r.a3).cpu);
        break;
      case TraceEvent::TxnCommit:
        s += strfmt(" lines=%llu clock=%llu",
                    static_cast<unsigned long long>(r.a0),
                    static_cast<unsigned long long>(r.a1));
        break;
      case TraceEvent::TxnRead:
      case TraceEvent::TxnWrite:
      case TraceEvent::MemWrite:
        s += strfmt(" value=%llu", static_cast<unsigned long long>(r.a0));
        break;
      case TraceEvent::CohMiss:
        s += strfmt(" %s spec=%llu",
                    reqTypeName(static_cast<ReqType>(r.a0)),
                    static_cast<unsigned long long>(r.a1));
        break;
      case TraceEvent::CohSubmit:
        s += strfmt(" %s %s", reqTypeName(static_cast<ReqType>(r.a0)),
                    unpackTs(r.a1, r.a2).str().c_str());
        break;
      case TraceEvent::CohOrder:
        s += strfmt(" %s sn=%llu %s",
                    reqTypeName(static_cast<ReqType>(r.a0)),
                    static_cast<unsigned long long>(r.a1),
                    unpackTs(r.a2, r.a3).str().c_str());
        break;
      case TraceEvent::CohDefer:
      case TraceEvent::CohRelaxedDefer:
        s += strfmt(" from=%llu %s %s",
                    static_cast<unsigned long long>(r.a0),
                    reqTypeName(static_cast<ReqType>(r.a1)),
                    unpackTs(r.a2, r.a3).str().c_str());
        break;
      case TraceEvent::CohLose:
        s += strfmt(" winner=%s own=%s",
                    unpackTs(r.a0, r.a1).str().c_str(),
                    unpackTs(r.a2, r.a3).str().c_str());
        break;
      case TraceEvent::CohService:
        s += strfmt(" to=%llu cause=%s",
                    static_cast<unsigned long long>(r.a0),
                    serviceCauseName(static_cast<ServiceCause>(r.a1)));
        break;
      case TraceEvent::CohMarker:
        s += strfmt(" to=%llu", static_cast<unsigned long long>(r.a0));
        break;
      case TraceEvent::CohDeferDrain:
        s += strfmt(" n=%llu at=%s",
                    static_cast<unsigned long long>(r.a0),
                    r.a1 ? "commit" : "abort");
        break;
      case TraceEvent::CohProbe:
        s += strfmt(" to=%llu %s",
                    static_cast<unsigned long long>(r.a0),
                    unpackTs(r.a1, r.a2).str().c_str());
        break;
      case TraceEvent::CohData:
        s += strfmt(" to=%llu grant=%llu",
                    static_cast<unsigned long long>(r.a0),
                    static_cast<unsigned long long>(r.a1));
        break;
      case TraceEvent::CohDeferDepth:
        s += strfmt(" depth=%llu",
                    static_cast<unsigned long long>(r.a0));
        break;
      case TraceEvent::CohFwd:
        s += strfmt(" to=%llu %s inval=%llu sn=%llu",
                    static_cast<unsigned long long>(r.a0),
                    reqTypeName(static_cast<ReqType>(r.a1)),
                    static_cast<unsigned long long>(r.a2),
                    static_cast<unsigned long long>(r.a3));
        break;
      case TraceEvent::LineInstall:
      case TraceEvent::LineDowngrade:
        s += strfmt(" state=%s",
                    cohStateName(static_cast<CohState>(r.a0)));
        break;
      default:
        break;
    }
    return s;
}

void
TraceSink::dumpRecent(std::FILE *out, size_t max_records) const
{
    size_t n = ring_.size();
    size_t skip = n > max_records ? n - max_records : 0;
    if (n > 0)
        std::fprintf(out, "---- last %zu trace records ----\n", n - skip);
    size_t i = 0;
    ring_.forEach([&](const TraceRecord &r) {
        if (i++ >= skip)
            std::fprintf(out, "%s\n", formatRecord(r).c_str());
    });
}

} // namespace tlr

/**
 * @file
 * Structured trace event definitions.
 *
 * Every observable step of the machine — transaction lifecycle
 * transitions, coherence decisions, line-ownership changes, committed
 * memory writes — is describable as one fixed-size binary TraceRecord.
 * Records are cheap to produce (a struct store into a ring buffer, no
 * formatting) and carry enough payload for online invariant checkers
 * and offline timeline export to reconstruct the run.
 */

#ifndef TLR_TRACE_EVENTS_HH
#define TLR_TRACE_EVENTS_HH

#include <cstdint>

#include "core/timestamp.hh"
#include "sim/types.hh"

namespace tlr
{

/** Which hardware component emitted a record. */
enum class TraceComp : std::uint8_t
{
    Spec, ///< SLE/TLR speculation engine
    L1,   ///< L1 coherence controller
    Bus,  ///< broadcast address network
    Dir,  ///< directory ordering point
    Net,  ///< point-to-point data network
};

const char *traceCompName(TraceComp c);

/**
 * Event kinds. The payload convention for each kind is documented
 * inline; a0..a3 are free-form 64-bit words (timestamps travel as a
 * (clock, meta) pair — see packTsMeta/unpackTs below).
 */
enum class TraceEvent : std::uint8_t
{
    /** @{ Transaction lifecycle (comp=Spec, cpu=transacting cpu). */
    TxnElide,       ///< region elided; addr=lock, a0=free value,
                    ///< a1=ts clock, a2=ts meta, a3=1 if new instance
    TxnNest,        ///< nested elision; addr=lock, a0=free value
    TxnRestart,     ///< misspeculation restart; addr=conflicting or
                    ///< overflowing line (0 when none applies),
                    ///< a0=AbortReason, a1=1 if resource, a2=1 if
                    ///< instance ended (fallback to real lock
                    ///< acquisition), a3=ts meta of the last
                    ///< conflicting contender (packTsMeta; the winner
                    ///< that caused a conflict abort — invalid when no
                    ///< conflict was noted this instance)
    TxnCommitStart, ///< all misses drained, atomic commit begins
    TxnCommit,      ///< commit done; a0=lines written, a1=ts clock
    TxnQuantumEnd,  ///< instance ended by the scheduling-quantum bound
                    ///< while between restarts (no active speculation)
    TxnRead,        ///< transactional read observed a global value;
                    ///< addr=word, a0=value (comp=L1)
    TxnWrite,       ///< one committed word; addr=word, a0=value
                    ///< (comp=L1, between TxnCommitStart and TxnCommit)
    /** @} */

    /** @{ Coherence activity (cpu=acting controller). */
    CohMiss,        ///< miss issued; addr=line, a0=ReqType, a1=spec
    CohSubmit,      ///< request submitted for ordering; addr=line,
                    ///< a0=ReqType, a1=ts clock, a2=ts meta
    CohOrder,       ///< request globally ordered; addr=line,
                    ///< a0=ReqType, a1=sn, a2=ts clock, a3=ts meta
    CohDefer,       ///< incoming request deferred until commit;
                    ///< addr=line, a0=requesting cpu, a1=ReqType,
                    ///< a2=requester ts clock, a3=requester ts meta
    CohRelaxedDefer,///< Section 3.2 relaxation applied; same payload
    CohLose,        ///< conflict lost at a timestamp decision point;
                    ///< addr=line, a0=winner ts clock, a1=winner meta,
                    ///< a2=own ts clock, a3=own ts meta
    CohYield,       ///< deadlock-recovery yield (timer or 2-cycle);
                    ///< addr=line
    CohService,     ///< one waiter/deferred request serviced;
                    ///< addr=line, a0=serviced cpu,
                    ///< a1=ServiceCause (why the owner let go)
    CohDeferDrain,  ///< deferred queue drained at commit/abort;
                    ///< a0=queue entries drained, a1=1 when the drain
                    ///< happens on the commit path, 0 on abort
    CohMarker,      ///< marker sent; addr=line, a0=destination cpu
    CohProbe,       ///< probe sent; addr=line, a0=destination cpu,
                    ///< a1=ts clock, a2=ts meta
    CohData,        ///< data message sent; addr=line, a0=dest, a1=Grant
    CohDeferDepth,  ///< deferral backlog changed; a0=new depth
                    ///< (deferred queue + deferred chain waiters) —
                    ///< sampled by the metrics layer as a counter track
    CohFwd,         ///< directory forwarded a snoop; addr=line,
                    ///< a0=target cpu, a1=ReqType, a2=1 if invalidation,
                    ///< a3=global order sn of the triggering request
                    ///< (comp=Dir, cpu=requester)
    /** @} */

    /** @{ Line-ownership transitions (comp=L1, cpu=cache). */
    LineInstall,    ///< line filled into the cache; addr=line,
                    ///< a0=CohState installed
    LineUpgrade,    ///< Shared/Owned copy upgraded to Modified
    LineDowngrade,  ///< owner downgraded; addr=line, a0=new CohState
    LineInval,      ///< valid copy invalidated (snoop/evict/service)
    /** @} */

    /** Non-speculative store/atomic made globally visible;
     *  addr=word, a0=value (comp=L1). */
    MemWrite,
};

const char *traceEventName(TraceEvent e);

/** Why an owner released a deferred/waiting request (CohService a1). */
enum class ServiceCause : std::uint8_t
{
    Chain,       ///< ownership-chain handoff outside any drain
    CommitDrain, ///< deferred queue drained after an atomic commit
    AbortDrain,  ///< deferred queue drained after a restart/abort
};

const char *serviceCauseName(ServiceCause c);

/** One binary trace record. Fixed 64-byte layout, no heap. */
struct TraceRecord
{
    Tick tick = 0;
    TraceComp comp = TraceComp::Spec;
    TraceEvent kind = TraceEvent::TxnElide;
    std::int16_t cpu = -1;
    std::uint32_t pad_ = 0;
    Addr addr = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    std::uint64_t a2 = 0;
    std::uint64_t a3 = 0;
    /** Global emission sequence number, stamped by the sink. Orders
     *  records that share a tick (e.g. snoop then own-request). */
    std::uint64_t seq = 0;
};

static_assert(sizeof(TraceRecord) == 64, "records must stay compact");

/** Timestamps ride in two payload words: the clock and this meta word
 *  (cpu id in the low 32 bits, validity in bit 32). */
inline std::uint64_t
packTsMeta(const Timestamp &ts)
{
    return static_cast<std::uint32_t>(ts.cpu) |
           (ts.valid ? (1ull << 32) : 0);
}

inline Timestamp
unpackTs(std::uint64_t clock, std::uint64_t meta)
{
    Timestamp ts;
    ts.clock = clock;
    ts.cpu = static_cast<CpuId>(static_cast<std::int32_t>(
        meta & 0xffffffffull));
    ts.valid = (meta & (1ull << 32)) != 0;
    return ts;
}

} // namespace tlr

#endif // TLR_TRACE_EVENTS_HH

#include "trace/filter.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tlr
{

TraceClass
traceClassOf(TraceEvent e)
{
    if (e >= TraceEvent::TxnElide && e <= TraceEvent::TxnWrite)
        return TraceClass::Txn;
    if (e >= TraceEvent::CohMiss && e <= TraceEvent::CohFwd)
        return TraceClass::Coh;
    if (e >= TraceEvent::LineInstall && e <= TraceEvent::LineInval)
        return TraceClass::Line;
    return TraceClass::Mem;
}

const char *
traceClassName(TraceClass c)
{
    switch (c) {
      case TraceClass::Txn: return "Txn";
      case TraceClass::Coh: return "Coh";
      case TraceClass::Line: return "Line";
      case TraceClass::Mem: return "Mem";
    }
    return "?";
}

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 0);
    return end && *end == '\0';
}

constexpr int numTraceEvents =
    static_cast<int>(TraceEvent::MemWrite) + 1;
constexpr int numTraceComps = static_cast<int>(TraceComp::Net) + 1;

} // namespace

bool
TraceFilter::matches(const TraceRecord &r) const
{
    if (r.tick < tickLo || r.tick > tickHi)
        return false;
    if (!cpus.empty() &&
        std::find(cpus.begin(), cpus.end(), r.cpu) == cpus.end())
        return false;
    if (!comps.empty() &&
        std::find(comps.begin(), comps.end(), r.comp) == comps.end())
        return false;
    if (!kinds.empty() &&
        std::find(kinds.begin(), kinds.end(), r.kind) == kinds.end())
        return false;
    if (!classes.empty() &&
        std::find(classes.begin(), classes.end(), traceClassOf(r.kind)) ==
            classes.end())
        return false;
    if (!addrs.empty() &&
        std::find(addrs.begin(), addrs.end(), r.addr) == addrs.end())
        return false;
    return true;
}

std::string
TraceFilter::parse(const std::string &spec)
{
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string term = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (term.empty())
            continue;
        size_t colon = term.find(':');
        if (colon == std::string::npos)
            return "term '" + term + "' has no key: prefix";
        std::string key = lower(term.substr(0, colon));
        std::string val = term.substr(colon + 1);
        if (key == "cpu") {
            std::uint64_t n;
            if (!parseU64(val, n))
                return "bad cpu '" + val + "'";
            cpus.push_back(static_cast<std::int16_t>(n));
        } else if (key == "comp") {
            std::string want = lower(val);
            bool found = false;
            for (int i = 0; i < numTraceComps; ++i) {
                auto c = static_cast<TraceComp>(i);
                if (lower(traceCompName(c)) == want) {
                    comps.push_back(c);
                    found = true;
                    break;
                }
            }
            if (!found)
                return "unknown comp '" + val +
                       "' (Spec|L1|Bus|Dir|Net)";
        } else if (key == "kind") {
            std::string want = lower(val);
            bool found = false;
            for (int i = 0; i < numTraceEvents; ++i) {
                auto k = static_cast<TraceEvent>(i);
                if (lower(traceEventName(k)) == want) {
                    kinds.push_back(k);
                    found = true;
                    break;
                }
            }
            if (!found)
                return "unknown kind '" + val +
                       "' (see trace event names, e.g. defer, "
                       "txn-restart)";
        } else if (key == "class") {
            std::string want = lower(val);
            if (want == "txn")
                classes.push_back(TraceClass::Txn);
            else if (want == "coh")
                classes.push_back(TraceClass::Coh);
            else if (want == "line")
                classes.push_back(TraceClass::Line);
            else if (want == "mem")
                classes.push_back(TraceClass::Mem);
            else
                return "unknown class '" + val + "' (Txn|Coh|Line|Mem)";
        } else if (key == "addr" || key == "lock" || key == "line") {
            std::uint64_t n;
            if (!parseU64(val, n))
                return "bad addr '" + val + "'";
            addrs.push_back(n);
        } else if (key == "tick") {
            size_t dash = val.find('-');
            if (dash == std::string::npos)
                return "tick wants LO-HI, got '" + val + "'";
            std::uint64_t lo, hi;
            if (!parseU64(val.substr(0, dash), lo) ||
                !parseU64(val.substr(dash + 1), hi) || hi < lo)
                return "bad tick range '" + val + "'";
            tickLo = lo;
            tickHi = hi;
        } else {
            return "unknown key '" + key +
                   "' (cpu|comp|kind|class|addr|tick)";
        }
    }
    return "";
}

} // namespace tlr

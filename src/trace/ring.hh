/**
 * @file
 * Fixed-capacity ring buffer of binary trace records.
 *
 * The hot-path store is an index increment plus a 64-byte struct copy;
 * when full, the oldest record is overwritten. The buffer is the
 * post-mortem flight recorder: on an invariant violation (or any
 * panic) the last N records explain how the machine got there.
 */

#ifndef TLR_TRACE_RING_HH
#define TLR_TRACE_RING_HH

#include <cstddef>
#include <vector>

#include "trace/events.hh"

namespace tlr
{

class TraceRing
{
  public:
    /** @param capacity number of records retained; 0 disables storage. */
    explicit TraceRing(size_t capacity) : buf_(capacity) {}

    void
    push(const TraceRecord &r)
    {
        if (buf_.empty())
            return;
        buf_[head_] = r;
        head_ = (head_ + 1) % buf_.size();
        if (size_ < buf_.size())
            ++size_;
    }

    size_t size() const { return size_; }
    size_t capacity() const { return buf_.size(); }

    /** Visit retained records oldest-first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        size_t start = (head_ + buf_.size() - size_) % buf_.size();
        for (size_t i = 0; i < size_; ++i)
            fn(buf_[(start + i) % buf_.size()]);
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::vector<TraceRecord> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace tlr

#endif // TLR_TRACE_RING_HH

#include "trace/checkers.hh"

#include <algorithm>
#include <functional>

#include "mem/line.hh"
#include "sim/logging.hh"

namespace tlr
{

void
CheckerContext::violation(const char *checker, Tick tick,
                          const std::string &msg)
{
    if (stats) {
        ++stats->counter("trace", "violations");
        ++stats->counter("trace",
                         std::string("violations.") + checker);
    }
    if (keepGoing) {
        warn("invariant %s violated @%llu: %s", checker,
             static_cast<unsigned long long>(tick), msg.c_str());
        return;
    }
    if (sink)
        sink->dumpRecent(stderr);
    panic("invariant %s violated @%llu: %s", checker,
          static_cast<unsigned long long>(tick), msg.c_str());
}

// ---------------------------------------------------------------------
// SingleOwnerChecker

void
SingleOwnerChecker::onRecord(const TraceRecord &r)
{
    if (r.comp != TraceComp::L1)
        return;

    switch (r.kind) {
      case TraceEvent::LineInstall:
        state_[r.addr][r.cpu] = static_cast<int>(r.a0);
        break;
      case TraceEvent::LineUpgrade:
        state_[r.addr][r.cpu] = static_cast<int>(CohState::Modified);
        break;
      case TraceEvent::LineDowngrade:
        state_[r.addr][r.cpu] = static_cast<int>(r.a0);
        break;
      case TraceEvent::LineInval: {
        auto it = state_.find(r.addr);
        if (it != state_.end()) {
            it->second.erase(r.cpu);
            if (it->second.empty())
                state_.erase(it);
        }
        return; // removal cannot create a violation
      }
      default:
        return;
    }

    // Validate the line whose state just changed.
    const auto &copies = state_[r.addr];
    CpuId writable = invalidCpu;
    int nvalid = 0;
    for (const auto &[cpu, st] : copies) {
        CohState s = static_cast<CohState>(st);
        if (s == CohState::Invalid)
            continue;
        ++nvalid;
        if (s == CohState::Modified || s == CohState::Exclusive) {
            if (writable != invalidCpu) {
                ctx_.violation(
                    "single-owner", r.tick,
                    strfmt("line %#llx writable in cpu%d and cpu%d",
                           static_cast<unsigned long long>(r.addr),
                           writable, cpu));
                return;
            }
            writable = cpu;
        }
    }
    if (writable != invalidCpu && nvalid > 1) {
        ctx_.violation(
            "single-owner", r.tick,
            strfmt("line %#llx writable in cpu%d but %d copies exist",
                   static_cast<unsigned long long>(r.addr), writable,
                   nvalid));
    }
}

// ---------------------------------------------------------------------
// TimestampOrderChecker

void
TimestampOrderChecker::onRecord(const TraceRecord &r)
{
    if (r.kind != TraceEvent::CohLose)
        return;

    Timestamp winner = unpackTs(r.a0, r.a1);
    Timestamp own = unpackTs(r.a2, r.a3);

    if (own.valid && winner.valid && !winner.earlierThan(own)) {
        ctx_.violation(
            "timestamp-order", r.tick,
            strfmt("cpu%d lost line %#llx to later %s (own %s)", r.cpu,
                   static_cast<unsigned long long>(r.addr),
                   winner.str().c_str(), own.str().c_str()));
        return;
    }
    // An un-timestamped winner beating a timestamped transaction is
    // only a bug when the engine's policy says such requests must be
    // deferred (paper Section 2.2 discusses both choices).
    if (own.valid && !winner.valid && ctx_.deferUntimestamped) {
        ctx_.violation(
            "timestamp-order", r.tick,
            strfmt("cpu%d (own %s) lost line %#llx to an "
                   "un-timestamped request despite defer policy",
                   r.cpu, own.str().c_str(),
                   static_cast<unsigned long long>(r.addr)));
    }
}

// ---------------------------------------------------------------------
// DeferralCycleChecker

void
DeferralCycleChecker::onRecord(const TraceRecord &r)
{
    switch (r.kind) {
      case TraceEvent::CohDefer:
      case TraceEvent::CohRelaxedDefer: {
        Edge e{static_cast<CpuId>(r.a0), r.cpu, r.addr};
        if (edges_.insert(e).second)
            edgesChanged(r.tick);
        return;
      }
      case TraceEvent::CohService: {
        // The holder released this line to one specific waiter.
        Edge e{static_cast<CpuId>(r.a0), r.cpu, r.addr};
        if (edges_.erase(e) > 0)
            edgesChanged(r.tick);
        return;
      }
      case TraceEvent::CohDeferDrain: {
        // Commit/abort drains everything deferred at this holder.
        bool changed = false;
        for (auto it = edges_.begin(); it != edges_.end();) {
            if (it->holder == r.cpu) {
                it = edges_.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
        if (changed)
            edgesChanged(r.tick);
        return;
      }
      case TraceEvent::TxnRestart:
      case TraceEvent::TxnCommit:
        // A cpu leaving speculation can no longer be waiting on
        // anyone's deferral queue; drop its outgoing edges.
        {
            bool changed = false;
            for (auto it = edges_.begin(); it != edges_.end();) {
                if (it->waiter == r.cpu) {
                    it = edges_.erase(it);
                    changed = true;
                } else {
                    ++it;
                }
            }
            if (changed)
                edgesChanged(r.tick);
        }
        return;
      default:
        return;
    }
}

bool
DeferralCycleChecker::hasCycle(std::vector<CpuId> *cycle_out) const
{
    // Tiny graphs (<= #cpus nodes): iterative DFS with colors.
    std::map<CpuId, std::vector<CpuId>> adj;
    for (const Edge &e : edges_)
        adj[e.waiter].push_back(e.holder);

    std::map<CpuId, int> color; // 0 white, 1 gray, 2 black
    std::vector<CpuId> stack;

    std::function<bool(CpuId)> dfs = [&](CpuId u) -> bool {
        color[u] = 1;
        stack.push_back(u);
        for (CpuId v : adj[u]) {
            if (color[v] == 1) {
                if (cycle_out) {
                    auto it = std::find(stack.begin(), stack.end(), v);
                    cycle_out->assign(it, stack.end());
                }
                return true;
            }
            if (color[v] == 0 && dfs(v))
                return true;
        }
        stack.pop_back();
        color[u] = 2;
        return false;
    };

    for (const auto &[u, unused] : adj) {
        (void)unused;
        if (color[u] == 0 && dfs(u))
            return true;
    }
    return false;
}

void
DeferralCycleChecker::edgesChanged(Tick now)
{
    std::vector<CpuId> cycle;
    bool cyc = hasCycle(&cycle);
    if (cyc && !cyclePresent_) {
        cyclePresent_ = true;
        cycleSince_ = now;
        cycleNodes_ = cycle;
    } else if (!cyc) {
        cyclePresent_ = false;
        cycleNodes_.clear();
    }
    // A *persistent* cycle is the bug; transient cycles form and are
    // broken by markers/probes (paper Fig. 6) or the yield timer.
    if (cyclePresent_ && now - cycleSince_ > ctx_.cycleStuckTicks)
        report(now);
}

void
DeferralCycleChecker::report(Tick now)
{
    std::string nodes;
    for (CpuId c : cycleNodes_)
        nodes += strfmt("%scpu%d", nodes.empty() ? "" : " -> ", c);
    ctx_.violation(
        "deferral-cycle", now,
        strfmt("waits-for cycle [%s] unbroken for %llu ticks",
               nodes.c_str(),
               static_cast<unsigned long long>(now - cycleSince_)));
    // keepGoing mode: restart the persistence clock so one stuck
    // cycle reports once per window instead of on every edge change.
    cycleSince_ = now;
}

void
DeferralCycleChecker::finish(Tick now)
{
    if (cyclePresent_ && now - cycleSince_ > ctx_.cycleStuckTicks)
        report(now);
}

// ---------------------------------------------------------------------
// AtomicityChecker

void
AtomicityChecker::noteRead(CpuId cpu, Addr addr, std::uint64_t value,
                           Tick tick)
{
    (void)tick;
    // The oracle learns a word lazily, on first observation: workload
    // initialisation writes directly into backing store and emits no
    // events, so the first traced read defines the starting value.
    shadow_.emplace(addr, value);
    // Keep the FIRST value read in this transaction; later reads of
    // the same word hit the cache and must agree with it, which the
    // commit-time check against the shadow subsumes.
    readSets_[cpu].emplace(addr, value);
}

void
AtomicityChecker::onRecord(const TraceRecord &r)
{
    switch (r.kind) {
      case TraceEvent::TxnElide:
      case TraceEvent::TxnNest:
        // Eliding reads the lock word and predicts it free; that read
        // is part of the transaction's read set.
        noteRead(r.cpu, r.addr, r.a0, r.tick);
        return;
      case TraceEvent::TxnRead:
        noteRead(r.cpu, r.addr, r.a0, r.tick);
        return;
      case TraceEvent::TxnRestart:
        // Aborted speculation discards its read set.
        readSets_.erase(r.cpu);
        return;
      case TraceEvent::TxnQuantumEnd:
        readSets_.erase(r.cpu);
        return;
      case TraceEvent::TxnCommitStart: {
        // Atomic commit point: every word this transaction read must
        // still hold the value it read, or some conflicting write
        // slipped past the coherence protocol without aborting us.
        auto it = readSets_.find(r.cpu);
        if (it != readSets_.end()) {
            for (const auto &[addr, readval] : it->second) {
                auto sh = shadow_.find(addr);
                std::uint64_t cur =
                    sh == shadow_.end() ? readval : sh->second;
                if (cur != readval) {
                    ctx_.violation(
                        "atomicity", r.tick,
                        strfmt("cpu%d commits having read %#llx=%llu "
                               "but globally visible value is %llu",
                               r.cpu,
                               static_cast<unsigned long long>(addr),
                               static_cast<unsigned long long>(readval),
                               static_cast<unsigned long long>(cur)));
                }
            }
            readSets_.erase(it);
        }
        return;
      }
      case TraceEvent::TxnWrite:
      case TraceEvent::MemWrite:
        shadow_[r.addr] = r.a0;
        return;
      default:
        return;
    }
}

// ---------------------------------------------------------------------
// InvariantRegistry

InvariantRegistry::InvariantRegistry(StatSet &stats, TraceSink *sink,
                                     const TraceParams &params,
                                     bool defer_untimestamped,
                                     Tick yield_timeout)
    : owner_(ctx_), tsOrder_(ctx_), cycles_(ctx_), atomicity_(ctx_)
{
    ctx_.stats = &stats;
    ctx_.sink = sink;
    ctx_.keepGoing = params.keepGoingOnViolation;
    ctx_.deferUntimestamped = defer_untimestamped;
    if (params.cycleStuckTicks > 0) {
        ctx_.cycleStuckTicks = params.cycleStuckTicks;
    } else {
        // Default bound: well past the point where the yield timer
        // must have fired and broken any real cycle.
        ctx_.cycleStuckTicks = 20 * yield_timeout + 20'000;
    }
    // Ensure the counter exists even on clean runs, so consumers can
    // distinguish "checked, zero violations" from "never checked".
    stats.counter("trace", "violations");
}

void
InvariantRegistry::onRecord(const TraceRecord &r)
{
    owner_.onRecord(r);
    tsOrder_.onRecord(r);
    cycles_.onRecord(r);
    atomicity_.onRecord(r);
}

void
InvariantRegistry::finish(Tick now)
{
    owner_.finish(now);
    tsOrder_.finish(now);
    cycles_.finish(now);
    atomicity_.finish(now);
}

std::uint64_t
InvariantRegistry::violations() const
{
    return ctx_.stats ? ctx_.stats->get("trace", "violations") : 0;
}

} // namespace tlr

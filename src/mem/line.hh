/**
 * @file
 * Cache line representation and MOESI coherence states.
 */

#ifndef TLR_MEM_LINE_HH
#define TLR_MEM_LINE_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace tlr
{

/** Data payload of one cache line: 8 x 64-bit words. */
using LineData = std::array<std::uint64_t, wordsPerLine>;

/** MOESI coherence states. */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** States that make this cache the data supplier for the line. */
constexpr bool
isOwnerState(CohState s)
{
    return s == CohState::Modified || s == CohState::Owned ||
           s == CohState::Exclusive;
}

/** States granting write permission without a bus transaction. */
constexpr bool
isWritableState(CohState s)
{
    return s == CohState::Modified || s == CohState::Exclusive;
}

constexpr bool
isValidState(CohState s)
{
    return s != CohState::Invalid;
}

/** Dirty with respect to memory: must write back on eviction. */
constexpr bool
isDirtyState(CohState s)
{
    return s == CohState::Modified || s == CohState::Owned;
}

const char *cohStateName(CohState s);

/**
 * One cache line. The transactional access bits implement the paper's
 * "1 bit per block to track data accessed within transaction"
 * (we keep separate read/write bits so read-read sharing is not a
 * conflict, per the data-conflict definition in the paper's Section 1).
 */
struct CacheLine
{
    Addr addr = 0;                 ///< line-aligned address (tag)
    CohState state = CohState::Invalid;
    LineData data{};
    bool accessRead = false;       ///< speculatively read in transaction
    bool accessWrite = false;      ///< speculatively written in transaction
    std::uint64_t lastUse = 0;     ///< LRU timestamp
    bool pinned = false;           ///< ineligible for eviction (MSHR/defer)

    bool inTransaction() const { return accessRead || accessWrite; }

    void
    clearAccess()
    {
        accessRead = false;
        accessWrite = false;
    }

    void
    invalidate()
    {
        state = CohState::Invalid;
        clearAccess();
        pinned = false;
    }
};

} // namespace tlr

#endif // TLR_MEM_LINE_HH

#include "mem/write_buffer.hh"

namespace tlr
{

bool
WriteBuffer::write(Addr addr, std::uint64_t value)
{
    Addr line = lineAlign(addr);
    auto it = entries_.find(line);
    if (it == entries_.end()) {
        if (entries_.size() >= capacity_)
            return false;
        it = entries_.emplace(line, Entry{}).first;
    }
    unsigned w = wordIndex(addr);
    it->second.mask |= 1u << w;
    it->second.words[w] = value;
    return true;
}

std::optional<std::uint64_t>
WriteBuffer::read(Addr addr) const
{
    auto it = entries_.find(lineAlign(addr));
    if (it == entries_.end())
        return std::nullopt;
    unsigned w = wordIndex(addr);
    if (!(it->second.mask & (1u << w)))
        return std::nullopt;
    return it->second.words[w];
}

} // namespace tlr

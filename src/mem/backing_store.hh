/**
 * @file
 * Functional backing store behind the L1s (shared L2 + DRAM).
 *
 * Holds the authoritative copy of every line that no L1 currently
 * owns. Timing (L2 hit latency vs DRAM latency) is modeled by the
 * MemoryController in the coherence module; this class is purely
 * functional plus an L2 presence filter used for latency selection.
 */

#ifndef TLR_MEM_BACKING_STORE_HH
#define TLR_MEM_BACKING_STORE_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "mem/line.hh"
#include "sim/types.hh"

namespace tlr
{

class BackingStore
{
  public:
    /** @param l2_capacity_lines L2 size in lines; 0 disables the L2
     *  presence filter (everything costs DRAM latency). */
    explicit BackingStore(std::uint64_t l2_capacity_lines)
        : l2Capacity_(l2_capacity_lines)
    {}

    /** Read a full line (zero-filled if never written). */
    LineData readLine(Addr line_addr) const;

    /** Overwrite a full line. Thread-safe: under the parallel kernel
     *  evictions on different partitions may write back concurrently;
     *  the single-owner invariant guarantees the lines are disjoint,
     *  but the map itself needs the lock. Reads happen only in the
     *  serialized phases (ordered supply, post-run validation), with
     *  a happens-before edge through the window barrier. */
    void writeLine(Addr line_addr, const LineData &data);

    /** Functional word access (loader / test support). */
    std::uint64_t readWord(Addr addr) const;
    void writeWord(Addr addr, std::uint64_t value);

    /**
     * Record an access for L2 occupancy and report whether it hit.
     * FIFO-ish filter: once capacity is exceeded the set is cleared,
     * modeling cold refill without tracking full LRU (the L2 is 4 MB,
     * far larger than any workload here, so this almost never fires).
     */
    bool accessL2(Addr line_addr);

  private:
    std::uint64_t l2Capacity_;
    std::unordered_map<Addr, LineData> lines_;
    std::unordered_set<Addr> l2Present_;
    std::mutex writeMu_; ///< guards lines_ against concurrent writeLine
};

} // namespace tlr

#endif // TLR_MEM_BACKING_STORE_HH

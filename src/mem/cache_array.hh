/**
 * @file
 * Set-associative cache data array with LRU replacement.
 */

#ifndef TLR_MEM_CACHE_ARRAY_HH
#define TLR_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/line.hh"
#include "sim/types.hh"

namespace tlr
{

class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     */
    CacheArray(std::uint64_t size_bytes, unsigned ways);

    /** Find a valid line; nullptr on miss. Does not touch LRU. */
    CacheLine *find(Addr line_addr);
    const CacheLine *find(Addr line_addr) const;

    /** Update LRU on access. */
    void touch(CacheLine &line, std::uint64_t use_tick)
    {
        line.lastUse = use_tick;
    }

    /**
     * Pick a slot for @p line_addr. Prefers an invalid way, else the
     * LRU non-pinned way. Returns nullptr when every way is pinned
     * (caller treats as a structural/resource condition).
     * The returned slot may still hold a valid victim line; the caller
     * must handle the eviction before overwriting.
     */
    CacheLine *allocateSlot(Addr line_addr);

    unsigned numSets() const { return numSets_; }
    unsigned numWays() const { return ways_; }

    /** Iterate all valid lines (snoop conflict scans in tests, dumps). */
    void forEachValid(const std::function<void(CacheLine &)> &fn);

  private:
    unsigned setIndex(Addr line_addr) const
    {
        return static_cast<unsigned>((line_addr >> lineShift) &
                                     (numSets_ - 1));
    }

    unsigned ways_;
    unsigned numSets_;
    std::vector<CacheLine> lines_; // numSets_ * ways_, set-major
};

} // namespace tlr

#endif // TLR_MEM_CACHE_ARRAY_HH

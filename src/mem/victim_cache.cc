#include "mem/victim_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tlr
{

CacheLine *
VictimCache::find(Addr line_addr)
{
    for (auto &l : entries_)
        if (isValidState(l.state) && l.addr == line_addr)
            return &l;
    return nullptr;
}

const CacheLine *
VictimCache::find(Addr line_addr) const
{
    for (const auto &l : entries_)
        if (isValidState(l.state) && l.addr == line_addr)
            return &l;
    return nullptr;
}

bool
VictimCache::insert(const CacheLine &line)
{
    if (entries_.size() >= capacity_)
        return false;
    entries_.push_back(line);
    return true;
}

void
VictimCache::erase(Addr line_addr)
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [line_addr](const CacheLine &l) {
                                      return l.addr == line_addr;
                                  }),
                   entries_.end());
}

} // namespace tlr

/**
 * @file
 * Victim cache for conflict-evicted transactional lines.
 *
 * The paper (Sections 3.3 and 4) extends a small fully-associative
 * victim cache with a speculative-access bit so that set-conflict
 * evictions do not abort transactions: a transaction touching up to
 * (ways + victim entries) lines that map to one set is still
 * guaranteed a lock-free execution. We dedicate the victim cache to
 * transactional lines; clean/non-transactional victims go straight
 * back to memory, which does not change any guarantee the paper makes.
 */

#ifndef TLR_MEM_VICTIM_CACHE_HH
#define TLR_MEM_VICTIM_CACHE_HH

#include <cstddef>
#include <vector>

#include "mem/line.hh"
#include "sim/types.hh"

namespace tlr
{

class VictimCache
{
  public:
    explicit VictimCache(unsigned entries) : capacity_(entries) {}

    CacheLine *find(Addr line_addr);
    /** Pure lookup (no LRU or promotion side effects); safe from
     *  const contexts like the interconnect's snoop filter. */
    const CacheLine *find(Addr line_addr) const;

    /** Insert (copy) @p line. @return false when full (resource
     *  violation => the caller must fall back to lock acquisition). */
    bool insert(const CacheLine &line);

    /** Remove a line (after swapping it back into the main array). */
    void erase(Addr line_addr);

    size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    std::vector<CacheLine> &entries() { return entries_; }

  private:
    unsigned capacity_;
    std::vector<CacheLine> entries_;
};

} // namespace tlr

#endif // TLR_MEM_VICTIM_CACHE_HH

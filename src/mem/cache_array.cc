#include "mem/cache_array.hh"

#include "sim/logging.hh"

namespace tlr
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v && !(v & (v - 1));
}

} // namespace

CacheArray::CacheArray(std::uint64_t size_bytes, unsigned ways)
    : ways_(ways)
{
    if (ways == 0 || size_bytes % (ways * lineBytes) != 0)
        fatal("bad cache geometry: %llu bytes / %u ways",
              static_cast<unsigned long long>(size_bytes), ways);
    numSets_ = static_cast<unsigned>(size_bytes / (ways * lineBytes));
    if (!isPow2(numSets_))
        fatal("cache set count %u not a power of two", numSets_);
    lines_.resize(static_cast<size_t>(numSets_) * ways_);
}

CacheLine *
CacheArray::find(Addr line_addr)
{
    CacheLine *base = &lines_[static_cast<size_t>(setIndex(line_addr)) *
                              ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &l = base[w];
        if (isValidState(l.state) && l.addr == line_addr)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->find(line_addr);
}

CacheLine *
CacheArray::allocateSlot(Addr line_addr)
{
    CacheLine *base = &lines_[static_cast<size_t>(setIndex(line_addr)) *
                              ways_];
    CacheLine *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &l = base[w];
        if (!isValidState(l.state))
            return &l;
        if (l.pinned)
            continue;
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    return victim;
}

void
CacheArray::forEachValid(const std::function<void(CacheLine &)> &fn)
{
    for (auto &l : lines_)
        if (isValidState(l.state))
            fn(l);
}

} // namespace tlr

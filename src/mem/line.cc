#include "mem/line.hh"

namespace tlr
{

const char *
cohStateName(CohState s)
{
    switch (s) {
      case CohState::Invalid: return "I";
      case CohState::Shared: return "S";
      case CohState::Exclusive: return "E";
      case CohState::Owned: return "O";
      case CohState::Modified: return "M";
    }
    return "?";
}

} // namespace tlr

/**
 * @file
 * Speculative merging write buffer.
 *
 * Holds all stores performed inside an optimistic transaction until
 * commit (paper Fig. 3, step 3: "locally buffer speculative updates").
 * Writes to the same line merge into one entry, so the capacity limit
 * is the number of *unique lines* written in the critical section —
 * exactly the resource constraint described in paper Section 3.3.
 */

#ifndef TLR_MEM_WRITE_BUFFER_HH
#define TLR_MEM_WRITE_BUFFER_HH

#include <cstdint>
#include <map>
#include <optional>

#include "mem/line.hh"
#include "sim/types.hh"

namespace tlr
{

class WriteBuffer
{
  public:
    struct Entry
    {
        std::uint32_t mask = 0; ///< bit i set => word i written
        LineData words{};
    };

    explicit WriteBuffer(unsigned capacity_lines)
        : capacity_(capacity_lines)
    {}

    /** Buffer one word. @return false when a new line entry would
     *  exceed capacity (resource violation => fallback to the lock). */
    bool write(Addr addr, std::uint64_t value);

    /** Store-to-load forwarding: value if the word was written. */
    std::optional<std::uint64_t> read(Addr addr) const;

    bool containsLine(Addr line_addr) const
    {
        return entries_.count(lineAlign(line_addr)) != 0;
    }

    const std::map<Addr, Entry> &entries() const { return entries_; }
    size_t lineCount() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    void clear() { entries_.clear(); }

  private:
    unsigned capacity_;
    std::map<Addr, Entry> entries_; ///< keyed by line address
};

} // namespace tlr

#endif // TLR_MEM_WRITE_BUFFER_HH

#include "mem/backing_store.hh"

#include "sim/logging.hh"

namespace tlr
{

LineData
BackingStore::readLine(Addr line_addr) const
{
    auto it = lines_.find(lineAlign(line_addr));
    return it == lines_.end() ? LineData{} : it->second;
}

void
BackingStore::writeLine(Addr line_addr, const LineData &data)
{
    std::lock_guard<std::mutex> lock(writeMu_);
    lines_[lineAlign(line_addr)] = data;
}

std::uint64_t
BackingStore::readWord(Addr addr) const
{
    auto it = lines_.find(lineAlign(addr));
    return it == lines_.end() ? 0 : it->second[wordIndex(addr)];
}

void
BackingStore::writeWord(Addr addr, std::uint64_t value)
{
    lines_[lineAlign(addr)][wordIndex(addr)] = value;
}

bool
BackingStore::accessL2(Addr line_addr)
{
    if (l2Capacity_ == 0)
        return false;
    Addr line = lineAlign(line_addr);
    bool hit = l2Present_.count(line) != 0;
    if (!hit) {
        if (l2Present_.size() >= l2Capacity_)
            l2Present_.clear();
        l2Present_.insert(line);
    }
    return hit;
}

} // namespace tlr

#include "core/spec_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tlr
{

SpecEngine::SpecEngine(EventQueue &eq, StatSet &stats, CpuId id,
                       SpecConfig cfg)
    : eq_(eq), stats_(stats), id_(id), cfg_(cfg),
      wb_(cfg.writeBufferLines), pairPred_(cfg.silentPairEntries),
      rmwPred_(cfg.rmwEntries, cfg.rmwWindow),
      elisions_(stats.counter("spec" + std::to_string(id), "elisions")),
      commits_(stats.counter("spec" + std::to_string(id), "commits")),
      restarts_(stats.counter("spec" + std::to_string(id), "restarts")),
      fallbacks_(stats.counter("spec" + std::to_string(id), "fallbacks")),
      exclEscalations_(
          stats.counter("spec" + std::to_string(id), "exclEscalations"))
{
}

void
SpecEngine::respondCore(std::uint64_t value, Tick delay)
{
    if (!pendingCore_)
        return;
    MemResponse r{value, pendingCore_->gen};
    pendingCore_.reset();
    if (delay == 0) {
        core_->memResponse(r);
    } else {
        eq_.scheduleIn(delay, [this, r] { core_->memResponse(r); },
                       EventPrio::DataResponse);
    }
}

void
SpecEngine::issueCacheOp(CacheOp::Kind kind, const CoreMemOp &op, bool spec,
                         bool is_ll)
{
    CacheOp co;
    co.kind = kind;
    co.addr = op.addr;
    co.data = op.data;
    co.expected = op.expected;
    co.spec = spec;
    co.isLl = is_ll;
    co.pc = op.pc;
    co.token = token_;
    l1_->access(co);
}

void
SpecEngine::request(const CoreMemOp &op)
{
    if (pendingCore_)
        panic("engine %d: overlapping core requests", id_);
    pendingCore_ = op;
    ++token_;

    switch (op.type) {
      case CoreMemOp::Type::Load:
      case CoreMemOp::Type::LoadLinked: {
        if (op.type == CoreMemOp::Type::LoadLinked)
            syncLines_.insert(lineAlign(op.addr));
        bool syncLine = syncLines_.count(lineAlign(op.addr)) != 0;
        if (cfg_.enableRmwPredictor &&
            op.type == CoreMemOp::Type::Load && !syncLine)
            rmwPred_.observeLoad(op.pc, op.addr);
        if (mode_ == Mode::Spec) {
            // Program-order forwarding: an elided lock reads as held
            // locally even though it is globally free.
            for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
                if (it->lockAddr == op.addr) {
                    respondCore(it->heldVal, 1);
                    return;
                }
            }
            if (auto v = wb_.read(op.addr)) {
                respondCore(*v, 1);
                return;
            }
        }
        bool excl = cfg_.enableRmwPredictor && !syncLine &&
                    rmwPred_.predictExclusive(op.pc);
        if (mode_ == Mode::Spec && escalation_.count(lineAlign(op.addr))) {
            // Repeated upgrade-induced violations: fetch exclusive up
            // front so the block can be retained (paper Section 3.1.2).
            excl = true;
            ++exclEscalations_;
        }
        issueCacheOp(excl ? CacheOp::Kind::LoadExclusive
                          : CacheOp::Kind::LoadShared,
                     op, mode_ == Mode::Spec,
                     op.type == CoreMemOp::Type::LoadLinked);
        return;
      }

      case CoreMemOp::Type::Store:
        if (cfg_.enableRmwPredictor &&
            !syncLines_.count(lineAlign(op.addr)))
            rmwPred_.observeStore(op.addr);
        if (mode_ == Mode::Spec) {
            handleSpecStore(op);
            return;
        }
        issueCacheOp(CacheOp::Kind::Store, op, false, false);
        return;

      case CoreMemOp::Type::StoreCond:
        if (mode_ == Mode::Spec) {
            handleSpecStore(op);
            return;
        }
        if (tryElide(op))
            return;
        issueCacheOp(CacheOp::Kind::StoreCond, op, false, false);
        return;

      case CoreMemOp::Type::AtomicSwap:
      case CoreMemOp::Type::AtomicCas:
      case CoreMemOp::Type::AtomicAdd:
        // Atomic read-modify-writes are synchronization primitives:
        // never feed them to the RMW predictor.
        syncLines_.insert(lineAlign(op.addr));
        if (mode_ == Mode::Spec) {
            // Inside a transaction atomicity is already guaranteed:
            // read the current value (forwarded from the write buffer
            // or fetched exclusive) and buffer the new one. Completion
            // continues in cacheOpDone().
            if (auto v = wb_.read(op.addr)) {
                finishSpecAtomic(op, *v, false);
                return;
            }
            issueCacheOp(CacheOp::Kind::EnsureExclusive, op, true,
                         false);
            return;
        }
        issueCacheOp(op.type == CoreMemOp::Type::AtomicSwap
                         ? CacheOp::Kind::AtomicSwap
                         : op.type == CoreMemOp::Type::AtomicCas
                               ? CacheOp::Kind::AtomicCas
                               : CacheOp::Kind::AtomicAdd,
                     op, false, false);
        return;
    }
}

void
SpecEngine::finishSpecAtomic(const CoreMemOp &op, std::uint64_t old_value,
                             bool mark_line)
{
    bool doWrite = op.type != CoreMemOp::Type::AtomicCas ||
                   old_value == op.expected;
    std::uint64_t newValue = op.type == CoreMemOp::Type::AtomicAdd
                                 ? old_value + op.data
                                 : op.data;
    if (doWrite && !wb_.write(op.addr, newValue)) {
        doAbort(AbortReason::ResourceWriteBuffer, true, op.addr);
        return;
    }
    if (mark_line)
        l1_->markTransactionalWrite(op.addr);
    respondCore(old_value, mark_line ? 0 : 1);
}

bool
SpecEngine::tryElide(const CoreMemOp &op)
{
    if (!cfg_.enableSle)
        return false;
    if (op.pc == noElideOncePc_) {
        // One-shot suppression after a fallback: this SC must really
        // acquire the lock (exposing the elided write, paper Fig. 3).
        noElideOncePc_ = -1;
        return false;
    }
    if (!lastLl_.valid || lastLl_.addr != op.addr ||
        op.data == lastLl_.value)
        return false; // not the silent store-pair idiom
    if (!l1_->linkValid(op.addr))
        return false; // lock changed hands since the LL: do not elide
    if (!pairPred_.shouldElide(op.pc))
        return false;

    checkpoint_ = core_->takeCheckpoint();
    regionPc_ = op.pc;
    const bool newInstance = !instanceActive_;
    if (!instanceActive_) {
        // A new critical-section instance (not a restart): reset the
        // SLE retry budget and, under TLR, fix the timestamp, which is
        // then retained across restarts until a successful execution
        // (Section 2.1.2).
        instanceActive_ = true;
        retriesUsed_ = 0;
        lastConflictTs_ = Timestamp{};
        if (cfg_.enableTlr) {
            activeTs_ = Timestamp::make(clock_, id_);
            tsHeld_ = true;
            maxConflictClock_ = 0;
        }
        // Arm the scheduling-quantum bound for this instance.
        const std::uint64_t gen = ++instanceGen_;
        eq_.scheduleIn(cfg_.specMaxCycles, [this, gen] {
            if (gen != instanceGen_ || !instanceActive_)
                return;
            if (mode_ == Mode::Spec) {
                doAbort(AbortReason::QuantumExpired, true);
                return;
            }
            // Between restarts (e.g., spinning on a really-taken
            // lock): end the instance so the next elision attempt is
            // suppressed and executes for real.
            instanceActive_ = false;
            noElideOncePc_ = regionPc_;
            pairPred_.penalize(regionPc_);
            if (tsHeld_) {
                tsHeld_ = false;
                ++clock_;
            }
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::Spec,
                             TraceEvent::TxnQuantumEnd, id_, 0);
        });
    }
    mode_ = Mode::Spec;
    committing_ = false;
    stack_.push_back({op.addr, lastLl_.value, op.data, op.pc});
    l1_->markTransactionalRead(op.addr);
    ++elisions_;
    if (TLR_TRACE_ARMED(trace_)) {
        const Timestamp ts = currentTs();
        trace_->emit(eq_.now(), TraceComp::Spec, TraceEvent::TxnElide,
                     id_, op.addr, lastLl_.value, ts.clock,
                     packTsMeta(ts), newInstance ? 1 : 0);
    }
    respondCore(1, 1);
    return true;
}

void
SpecEngine::handleSpecStore(const CoreMemOp &op)
{
    // Release detection: the second half of the silent store-pair.
    if (!stack_.empty() && op.type == CoreMemOp::Type::Store &&
        op.addr == stack_.back().lockAddr &&
        op.data == stack_.back().freeVal) {
        stack_.pop_back();
        if (stack_.empty())
            beginCommit();
        else
            respondCore(0, 1);
        return;
    }

    if (op.type == CoreMemOp::Type::StoreCond) {
        // Nested lock acquire inside the region.
        if (stack_.size() < cfg_.maxElisionDepth && lastLl_.valid &&
            lastLl_.addr == op.addr && op.data != lastLl_.value &&
            l1_->linkValid(op.addr) && pairPred_.shouldElide(op.pc)) {
            stack_.push_back({op.addr, lastLl_.value, op.data, op.pc});
            l1_->markTransactionalRead(op.addr);
            ++elisions_;
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::Spec,
                             TraceEvent::TxnNest, id_, op.addr,
                             lastLl_.value);
            respondCore(1, 1);
            return;
        }
        // Elision resources exhausted (or not the idiom): treat the
        // inner lock as ordinary transactional data (paper Section 4).
        if (!l1_->linkValid(op.addr)) {
            respondCore(0, 1);
            return;
        }
    }

    if (!wb_.write(op.addr, op.data)) {
        doAbort(AbortReason::ResourceWriteBuffer, true, op.addr);
        return;
    }
    issueCacheOp(CacheOp::Kind::EnsureExclusive, op, true, false);
}

void
SpecEngine::beginCommit()
{
    committing_ = true;
    tryFinishCommit();
}

void
SpecEngine::tryFinishCommit()
{
    if (!committing_ || l1_->outstandingSpecMisses() > 0)
        return;
    const size_t commitLines = wb_.lineCount();
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Spec,
                     TraceEvent::TxnCommitStart, id_, 0, commitLines);
    l1_->commitTransaction(wb_);
    wb_.clear();
    mode_ = Mode::Inactive;
    committing_ = false;
    instanceActive_ = false;
    if (cfg_.enableTlr && tsHeld_) {
        // Monotonic clock update, kept loosely synchronized with every
        // conflicting contender seen (paper Section 2.1.2).
        clock_ = std::max(clock_ + 1, maxConflictClock_ + 1);
        tsHeld_ = false;
    }
    pairPred_.reward(regionPc_);
    escalation_.clear();
    ++commits_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Spec, TraceEvent::TxnCommit,
                     id_, 0, commitLines, clock_);
    respondCore(0, 1); // the elided release store completes
}

void
SpecEngine::doAbort(AbortReason reason, bool resource, Addr line_addr)
{
    if (mode_ != Mode::Spec)
        panic("engine %d: abort outside speculation (%s)", id_,
              abortReasonName(reason));
    ++restarts_;
    std::uint64_t *&abortCtr =
        abortCounters_[static_cast<std::size_t>(reason)];
    if (!abortCtr)
        abortCtr = &stats_.counter("spec" + std::to_string(id_),
                                   std::string("abort.") +
                                       abortReasonName(reason));
    ++*abortCtr;
    wb_.clear();
    stack_.clear();
    committing_ = false;
    mode_ = Mode::Inactive;
    l1_->abortTransaction();
    pendingCore_.reset();

    if (resource) {
        // Insufficient resources: re-execute and really take the lock
        // (paper Fig. 3, step 3). The TLR instance ends here; the lock
        // itself serializes the retry, so the timestamp is released.
        noElideOncePc_ = regionPc_;
        pairPred_.penalize(regionPc_);
        ++fallbacks_;
        instanceActive_ = false;
        if (cfg_.enableTlr && tsHeld_) {
            tsHeld_ = false;
            ++clock_;
        }
    } else if (!cfg_.enableTlr) {
        // SLE restart policy: a bounded number of retries, then the
        // lock is acquired for real.
        if (++retriesUsed_ > cfg_.sleMaxRetries) {
            noElideOncePc_ = regionPc_;
            pairPred_.penalize(regionPc_);
            ++fallbacks_;
            instanceActive_ = false;
        }
    } else {
        // TLR robustness cap: a region that keeps restarting without
        // ever committing is not a critical section at all (e.g., a
        // spin-wait inside a wrongly-elided fetch-and-add idiom, such
        // as a barrier arrival counter). Timestamps guarantee
        // progress only for *finite* transactions, so after far more
        // retries than any real conflict schedule produces, expose
        // the elided write and execute for real.
        if (++retriesUsed_ > cfg_.tlrMaxRetries) {
            noElideOncePc_ = regionPc_;
            pairPred_.penalize(regionPc_);
            ++fallbacks_;
            instanceActive_ = false;
            if (tsHeld_) {
                tsHeld_ = false;
                ++clock_;
            }
        }
    }
    // Under TLR the timestamp is retained and reused so the thread
    // keeps its position in the priority order (paper Section 4).
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Spec, TraceEvent::TxnRestart,
                     id_, line_addr, static_cast<std::uint64_t>(reason),
                     resource ? 1 : 0, instanceActive_ ? 0 : 1,
                     packTsMeta(lastConflictTs_));
    core_->restoreCheckpoint(checkpoint_);
}

void
SpecEngine::noteConflictTs(const Timestamp &ts)
{
    if (ts.valid) {
        maxConflictClock_ = std::max(maxConflictClock_, ts.clock);
        lastConflictTs_ = ts;
    }
}

void
SpecEngine::conflictAbort(Addr line_addr, AbortReason reason)
{
    if (reason == AbortReason::SharedInvalidation ||
        reason == AbortReason::PendingInvalidated) {
        escalation_.insert(lineAlign(line_addr));
    }
    doAbort(reason, false, line_addr);
}

void
SpecEngine::resourceAbort(Addr line_addr, AbortReason reason)
{
    doAbort(reason, true, line_addr);
}

void
SpecEngine::specMshrDrained(Addr line_addr)
{
    (void)line_addr;
    if (committing_)
        tryFinishCommit();
}

void
SpecEngine::cacheOpDone(const CacheOp &op, std::uint64_t value)
{
    if (!pendingCore_ || op.token != token_)
        return; // response from a squashed attempt

    switch (op.kind) {
      case CacheOp::Kind::LoadShared:
      case CacheOp::Kind::LoadExclusive:
        if (pendingCore_->type == CoreMemOp::Type::LoadLinked)
            lastLl_ = {true, op.addr, value};
        respondCore(value, 0);
        return;
      case CacheOp::Kind::Store:
        respondCore(0, 0);
        return;
      case CacheOp::Kind::EnsureExclusive:
        if (pendingCore_->type == CoreMemOp::Type::AtomicSwap ||
            pendingCore_->type == CoreMemOp::Type::AtomicCas ||
            pendingCore_->type == CoreMemOp::Type::AtomicAdd) {
            // Speculative atomic: the exclusive fetch returned the
            // current value; buffer the modified value.
            finishSpecAtomic(*pendingCore_, value, true);
            return;
        }
        // A buffered speculative store (or SC treated as data).
        respondCore(
            pendingCore_->type == CoreMemOp::Type::StoreCond ? 1 : 0, 0);
        return;
      case CacheOp::Kind::StoreCond:
      case CacheOp::Kind::AtomicSwap:
      case CacheOp::Kind::AtomicCas:
      case CacheOp::Kind::AtomicAdd:
        respondCore(value, 0);
        return;
    }
}

void
SpecEngine::descheduled()
{
    // A speculative region is fully replayable: abort it so its
    // (elided, never-acquired) lock stays free while we are off the
    // cpu. doAbort() also drops the pending core request. Outside
    // speculation, in-flight operations may have irreversible memory
    // effects, so they complete normally and the core defers the
    // suspension to the instruction boundary.
    if (mode_ == Mode::Spec)
        doAbort(AbortReason::Preempted, false);
}

void
SpecEngine::io(CpuId cpu)
{
    (void)cpu;
    if (mode_ == Mode::Spec)
        doAbort(AbortReason::Unbufferable, true);
}

} // namespace tlr

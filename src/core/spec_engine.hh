/**
 * @file
 * The SLE/TLR speculation engine — the paper's primary contribution.
 *
 * Sits between the core and its L1 controller. Implements:
 *
 *  - Speculative Lock Elision (Rajwar & Goodman, MICRO'01), the
 *    enabling substrate: silent store-pair detection on the dynamic
 *    store stream (an SC that would change a just-load-linked value,
 *    paired with a later store restoring it), register checkpointing,
 *    speculative store buffering, atomic commit, misspeculation
 *    recovery and fallback to real lock acquisition;
 *
 *  - Transactional Lock Removal (this paper): globally-unique
 *    (logical clock, cpu) timestamps attached to all transactional
 *    misses, timestamp retention across conflict restarts, the
 *    monotonic clock-update rule on commit, and resource-constraint
 *    fallback — together with the deferral machinery in L1Controller
 *    this yields lock-free, starvation-free execution under conflicts;
 *
 *  - the read-modify-write predictor of Section 3.1.2 and the
 *    exclusive-request escalation for repeated upgrade-induced
 *    violations.
 */

#ifndef TLR_CORE_SPEC_ENGINE_HH
#define TLR_CORE_SPEC_ENGINE_HH

#include <array>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "coherence/l1_controller.hh"
#include "coherence/spec_hooks.hh"
#include "core/predictors.hh"
#include "core/timestamp.hh"
#include "cpu/core.hh"
#include "cpu/mem_port.hh"
#include "mem/write_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trace/sink.hh"

namespace tlr
{

struct SpecConfig
{
    bool enableSle = false;
    bool enableTlr = false;
    bool strictTimestamps = false;   ///< disable the Section 3.2 relaxation
    bool deferUntimestamped = true;  ///< paper Section 2.2, 2nd approach
    bool enableRmwPredictor = true;
    unsigned maxElisionDepth = 8;    ///< paper Table 2
    unsigned sleMaxRetries = 1;      ///< SLE restarts before lock fallback
    unsigned tlrMaxRetries = 256;    ///< non-committing-region safety cap
    /** Maximum duration of one region instance, elision to commit,
     *  across restarts (paper Section 3.3: the critical section must
     *  execute within a scheduling quantum). A region that spins
     *  forever — e.g., a wrongly-elided barrier arrival whose count
     *  can never advance because every arrival was elided — has no
     *  conflicts to abort on; this bound rescues it into real lock
     *  acquisition. */
    Tick specMaxCycles = 100'000;
    unsigned writeBufferLines = 64;  ///< paper Table 2
    unsigned silentPairEntries = 64; ///< paper Table 2
    unsigned rmwEntries = 128;       ///< paper Table 2
    unsigned rmwWindow = 32;         ///< recent loads matched for training
};

class SpecEngine : public MemPort, public SpecHooks
{
  public:
    SpecEngine(EventQueue &eq, StatSet &stats, CpuId id, SpecConfig cfg);

    void setCore(Core *core) { core_ = core; }
    void setL1(L1Controller *l1) { l1_ = l1; }
    void setTrace(TraceSink *sink) { trace_ = sink; }

    /** @{ MemPort (core-facing). */
    void request(const CoreMemOp &op) override;
    void io(CpuId cpu) override;
    /** @} */

    /** The OS de-scheduled this thread (paper Section 4): any active
     *  transaction aborts — its speculative updates are discarded and
     *  the (never-acquired) lock stays free, so other threads keep
     *  making progress while this one is off the cpu. */
    void descheduled();

    /** @{ SpecHooks (controller-facing). */
    bool specActive() const override { return mode_ == Mode::Spec; }
    bool tlrActive() const override
    {
        return mode_ == Mode::Spec && cfg_.enableTlr;
    }
    /** The instance timestamp. Valid while the TLR instance lives,
     *  including the window between a restart and the re-elision —
     *  requests reissued in that window must keep their priority
     *  (paper Section 2.1.2: the timestamp is retained and reused). */
    Timestamp currentTs() const override
    {
        return tsHeld_ ? activeTs_ : Timestamp{};
    }
    bool strictTimestamps() const override { return cfg_.strictTimestamps; }
    bool deferUntimestamped() const override
    {
        return cfg_.deferUntimestamped;
    }
    void noteConflictTs(const Timestamp &ts) override;
    void conflictAbort(Addr line_addr, AbortReason reason) override;
    void resourceAbort(Addr line_addr, AbortReason reason) override;
    void specMshrDrained(Addr line_addr) override;
    void cacheOpDone(const CacheOp &op, std::uint64_t value) override;
    /** @} */

    /** @{ introspection (tests / harness) */
    std::uint64_t logicalClock() const { return clock_; }
    size_t elisionDepth() const { return stack_.size(); }
    bool timestampHeld() const { return tsHeld_; }
    const WriteBuffer &writeBuffer() const { return wb_; }
    /** @} */

  private:
    enum class Mode { Inactive, Spec };

    struct Elision
    {
        Addr lockAddr;           ///< word address of the elided lock
        std::uint64_t freeVal;   ///< value restored by the release
        std::uint64_t heldVal;   ///< value the elided SC would write
        int acquirePc;
    };

    /** Attempt to elide the SC described by @p op. @return true if
     *  the store was elided (a region started or nested). */
    bool tryElide(const CoreMemOp &op);
    void handleSpecStore(const CoreMemOp &op);
    void finishSpecAtomic(const CoreMemOp &op, std::uint64_t old_value,
                          bool mark_line);
    void beginCommit();
    void tryFinishCommit();
    void doAbort(AbortReason reason, bool resource, Addr line_addr = 0);
    void respondCore(std::uint64_t value, Tick delay);
    void issueCacheOp(CacheOp::Kind kind, const CoreMemOp &op, bool spec,
                      bool is_ll);

    EventQueue &eq_;
    StatSet &stats_;
    const CpuId id_;
    SpecConfig cfg_;
    Core *core_ = nullptr;
    L1Controller *l1_ = nullptr;
    TraceSink *trace_ = nullptr;

    Mode mode_ = Mode::Inactive;
    std::vector<Elision> stack_;
    Checkpoint checkpoint_;
    WriteBuffer wb_;
    bool committing_ = false;

    /** @{ TLR timestamp state (paper Section 2.1.2) */
    std::uint64_t clock_ = 0;
    Timestamp activeTs_;
    bool tsHeld_ = false;
    std::uint64_t maxConflictClock_ = 0;
    /** Last conflicting contender seen this instance (trace payload:
     *  TxnRestart a3 carries its packed meta so the explainer can
     *  attribute the restart to a specific owner). Invalid until the
     *  first conflict of the instance. */
    Timestamp lastConflictTs_;
    /** @} */

    unsigned retriesUsed_ = 0;
    std::uint64_t instanceGen_ = 0; ///< quantum-timer staleness guard
    /** True from the first elision of a critical-section instance
     *  until it commits or falls back. Restarts keep the instance
     *  (and, under TLR, its timestamp) alive. */
    bool instanceActive_ = false;
    int noElideOncePc_ = -1;
    int regionPc_ = -1; ///< outermost elided acquire (predictor index)
    std::set<Addr> escalation_; ///< lines to read-for-ownership

    SilentPairPredictor pairPred_;
    RmwPredictor rmwPred_;

    /** Lines that have ever been LL/SC targets on this processor.
     *  These are synchronization variables: the RMW predictor must
     *  not learn them, or spin reads would turn into exclusive
     *  requests and livelock every LL/SC sequence. The paper's
     *  predictor explicitly targets read-modify-write *data* within
     *  critical sections (Section 3.1.2). */
    std::set<Addr> syncLines_;

    std::optional<CoreMemOp> pendingCore_;
    std::uint64_t token_ = 0;

    /** Last load-linked observed (the elision idiom's first half). */
    struct
    {
        bool valid = false;
        Addr addr = 0;
        std::uint64_t value = 0;
    } lastLl_;

    /** @{ stats */
    std::uint64_t &elisions_;
    std::uint64_t &commits_;
    std::uint64_t &restarts_;
    std::uint64_t &fallbacks_;
    std::uint64_t &exclEscalations_;
    /** Per-reason abort counters, resolved from the StatSet on first
     *  use so the abort path never builds a string key. Lazy (rather
     *  than eager at construction) so a run's stat dump still lists
     *  only the abort reasons that actually occurred. */
    std::array<std::uint64_t *, numAbortReasons> abortCounters_{};
    /** @} */
};

} // namespace tlr

#endif // TLR_CORE_SPEC_ENGINE_HH

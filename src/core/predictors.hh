/**
 * @file
 * Hardware predictors used by SLE/TLR.
 *
 * SilentPairPredictor: decides whether a store-conditional that
 * matches the silent store-pair idiom should be elided (64 entries,
 * paper Table 2). Entries lose confidence when elision of that static
 * store keeps failing for resource reasons, with periodic re-probing
 * so a temporarily oversized critical section is not blacklisted
 * forever.
 *
 * RmwPredictor: the PC-indexed read-modify-write predictor of paper
 * Section 3.1.2 (128 entries, Table 2). A load whose address is later
 * stored to trains the predictor; predicted loads are issued as
 * read-for-ownership, collapsing the load + upgrade pair into a
 * single exclusive request. Used by every scheme, including BASE.
 */

#ifndef TLR_CORE_PREDICTORS_HH
#define TLR_CORE_PREDICTORS_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace tlr
{

/** PC-indexed table with LRU replacement and saturating confidence. */
class SilentPairPredictor
{
  public:
    explicit SilentPairPredictor(unsigned entries) : capacity_(entries) {}

    /** Should the SC at @p pc be elided? Unknown PCs elide (the idiom
     *  itself is the evidence). Blocked PCs re-probe every 16th try. */
    bool shouldElide(int pc);

    /** A region started at @p pc committed successfully. */
    void reward(int pc);

    /** Elision at @p pc was abandoned (resource fallback / SLE retry
     *  budget exhausted). */
    void penalize(int pc);

  private:
    struct Entry
    {
        int conf = 2; ///< 2-bit saturating confidence
        unsigned blockedTries = 0;
        std::uint64_t lastUse = 0;
    };

    Entry &lookup(int pc);

    unsigned capacity_;
    std::uint64_t useTick_ = 0;
    std::unordered_map<int, Entry> table_;
};

class RmwPredictor
{
  public:
    RmwPredictor(unsigned entries, unsigned window)
        : capacity_(entries), window_(window)
    {}

    /** Record a retiring load for later store matching. */
    void observeLoad(int pc, Addr addr);

    /** A store retired: train the predictor for any recent load to
     *  the same word address. */
    void observeStore(Addr addr);

    /** Should the load at @p pc request exclusive ownership? */
    bool predictExclusive(int pc) const;

    size_t tableSize() const { return table_.size(); }

  private:
    struct RecentLoad
    {
        int pc;
        Addr addr;
    };

    unsigned capacity_;
    unsigned window_;
    std::list<RecentLoad> recent_;
    std::unordered_map<int, bool> table_; ///< pc -> predict exclusive
};

} // namespace tlr

#endif // TLR_CORE_PREDICTORS_HH

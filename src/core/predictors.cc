#include "core/predictors.hh"

#include <algorithm>

namespace tlr
{

SilentPairPredictor::Entry &
SilentPairPredictor::lookup(int pc)
{
    auto it = table_.find(pc);
    if (it == table_.end()) {
        if (table_.size() >= capacity_) {
            // Evict the least recently used entry.
            auto victim = table_.begin();
            for (auto i = table_.begin(); i != table_.end(); ++i)
                if (i->second.lastUse < victim->second.lastUse)
                    victim = i;
            table_.erase(victim);
        }
        it = table_.emplace(pc, Entry{}).first;
    }
    it->second.lastUse = ++useTick_;
    return it->second;
}

bool
SilentPairPredictor::shouldElide(int pc)
{
    Entry &e = lookup(pc);
    if (e.conf > 0)
        return true;
    // Blocked: periodically probe in case the region shrank.
    return ++e.blockedTries % 16 == 0;
}

void
SilentPairPredictor::reward(int pc)
{
    Entry &e = lookup(pc);
    e.conf = std::min(e.conf + 1, 3);
    e.blockedTries = 0;
}

void
SilentPairPredictor::penalize(int pc)
{
    Entry &e = lookup(pc);
    e.conf = std::max(e.conf - 2, 0);
}

void
RmwPredictor::observeLoad(int pc, Addr addr)
{
    recent_.push_front({pc, addr});
    if (recent_.size() > window_)
        recent_.pop_back();
}

void
RmwPredictor::observeStore(Addr addr)
{
    for (const auto &rl : recent_) {
        if (rl.addr == addr) {
            if (table_.size() >= capacity_ && !table_.count(rl.pc))
                return; // table full; do not learn new PCs
            table_[rl.pc] = true;
            return;
        }
    }
}

bool
RmwPredictor::predictExclusive(int pc) const
{
    auto it = table_.find(pc);
    return it != table_.end() && it->second;
}

} // namespace tlr

/**
 * @file
 * TLR timestamps (paper Section 2.1.2).
 *
 * A timestamp is (local logical clock, processor id). Clocks count
 * successful TLR executions on a processor; ties between processors
 * break on the id, making timestamps globally unique. Earlier
 * timestamp = higher priority: that transaction wins every conflict.
 */

#ifndef TLR_CORE_TIMESTAMP_HH
#define TLR_CORE_TIMESTAMP_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tlr
{

struct Timestamp
{
    std::uint64_t clock = 0;
    CpuId cpu = invalidCpu;
    bool valid = false; ///< false => request from outside any transaction

    static Timestamp
    make(std::uint64_t clock, CpuId cpu)
    {
        return Timestamp{clock, cpu, true};
    }

    /**
     * True when *this has higher priority than @p other.
     * An invalid (un-timestamped) request is treated as having the
     * latest timestamp in the system, i.e., the lowest priority
     * (paper Section 2.2, deferrable un-timestamped requests).
     */
    bool
    earlierThan(const Timestamp &other) const
    {
        if (!valid)
            return false;
        if (!other.valid)
            return true;
        if (clock != other.clock)
            return clock < other.clock;
        return cpu < other.cpu;
    }

    std::string
    str() const
    {
        if (!valid)
            return "ts<none>";
        return "ts<" + std::to_string(clock) + "," + std::to_string(cpu) +
               ">";
    }
};

} // namespace tlr

#endif // TLR_CORE_TIMESTAMP_HH

/**
 * @file
 * Memory-side controller: shared L2 + DRAM behind the snooping L1s.
 *
 * Supplies data for ordered transactions with no L1 owner and absorbs
 * writebacks. Writeback data becomes architecturally visible at
 * eviction time (the bus transaction models timing only), which keeps
 * the "no owner => memory is current" invariant trivially true.
 */

#ifndef TLR_COHERENCE_MEMORY_CONTROLLER_HH
#define TLR_COHERENCE_MEMORY_CONTROLLER_HH

#include "coherence/interconnect.hh"
#include "coherence/messages.hh"
#include "mem/backing_store.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tlr
{

struct MemParams
{
    Tick l2Latency = 12;  ///< shared L2 access (paper Table 2)
    Tick memLatency = 70; ///< additional DRAM latency on L2 miss
};

class FabricPort;

class MemoryController
{
  public:
    MemoryController(EventQueue &eq, StatSet &stats, Interconnect &net,
                     BackingStore &store, MemParams params);

    /** Route data responses through a parallel-kernel FabricPort
     *  instead of the interconnect directly. Null (the default) keeps
     *  the classic direct path. */
    void setPort(FabricPort *port) { port_ = port; }

    /** Called by the bus for an ordered GetS/GetX with no L1 owner. */
    void supply(const BusRequest &req, bool any_sharer);

    /** Functional writeback (called at eviction time by an L1). */
    void writeBack(Addr line_addr, const LineData &data);

    BackingStore &store() { return store_; }

  private:
    EventQueue &eq_;
    Interconnect &net_;
    BackingStore &store_;
    FabricPort *port_ = nullptr;
    MemParams params_;
    std::uint64_t &supplies_;
    std::uint64_t &writeBacks_;
    std::uint64_t &l2Hits_;
    std::uint64_t &l2Misses_;
};

} // namespace tlr

#endif // TLR_COHERENCE_MEMORY_CONTROLLER_HH

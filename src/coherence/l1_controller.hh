/**
 * @file
 * Private L1 cache + coherence controller with TLR support.
 *
 * Implements the MOESI broadcast snooping protocol over the
 * split-transaction interconnect, plus the paper's deferral-based TLR
 * machinery (Section 3): a deferred-request queue, marker messages to
 * make pending owners aware of their upstream neighbor, and probe
 * forwarding to break cyclic waits across ownership chains.
 *
 * Protocol-ownership model: when a GetX is ordered on the address
 * network its requester becomes the *protocol owner* of the line even
 * though data may arrive arbitrarily later; subsequent requests for
 * the line are recorded at that pending owner. This reproduces the
 * request/response decoupling that creates the paper's Figure 6
 * deadlock scenario, which markers + probes then resolve.
 */

#ifndef TLR_COHERENCE_L1_CONTROLLER_HH
#define TLR_COHERENCE_L1_CONTROLLER_HH

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "coherence/interconnect.hh"
#include "coherence/memory_controller.hh"
#include "coherence/messages.hh"
#include "coherence/spec_hooks.hh"
#include "mem/cache_array.hh"
#include "mem/victim_cache.hh"
#include "mem/write_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trace/sink.hh"

namespace tlr
{

struct L1Params
{
    std::uint64_t sizeBytes = 128 * 1024; ///< paper Table 2
    unsigned ways = 4;
    unsigned victimEntries = 16;          ///< paper Section 4 example
    Tick hitLatency = 1;

    /** Deadlock-recovery window. While a transaction both waits for a
     *  block and holds off a higher-priority contender, a potential
     *  cyclic wait exists; if the situation persists this long, the
     *  transaction yields (timestamp order is enforced). Waiting this
     *  long first lets order-consistent hardware queues drain without
     *  spurious restarts — a cycle is the only thing that cannot
     *  drain. Strict-timestamp mode enforces order immediately
     *  instead. */
    Tick yieldTimeout = 1000;
};

class FabricPort;

class L1Controller : public Snooper
{
  public:
    L1Controller(EventQueue &eq, StatSet &stats, CpuId id, L1Params params,
                 Interconnect &net, MemoryController &mem, SpecHooks &hooks);

    void setTrace(TraceSink *sink) { trace_ = sink; }

    /** Route fabric traffic (submits, data/marker/probe sends,
     *  writebacks) through a parallel-kernel FabricPort instead of
     *  the interconnect/memory directly. Null (the default) keeps the
     *  classic direct path. */
    void setPort(FabricPort *port) { port_ = port; }

    /** @{ Engine-facing request interface. */
    void access(const CacheOp &op);

    /** Atomically commit buffered speculative stores into the cache,
     *  clear access bits and service the deferred queue (paper Fig. 3
     *  step 4). Pre-condition: outstandingSpecMisses() == 0 and every
     *  buffered line is writable in the local hierarchy. */
    void commitTransaction(const WriteBuffer &wb);

    /** Discard transactional marking and service the deferred queue
     *  with the (still pre-transactional) cache contents. */
    void abortTransaction();

    unsigned outstandingSpecMisses() const;

    /** Any deferred request with priority over @p ts? Used before
     *  issuing a new transactional miss: acquiring another block while
     *  holding off a higher-priority contender risks deadlock, so the
     *  engine must abort first (paper Section 3.2). */
    bool deferredHasEarlierThan(const Timestamp &ts) const;

    bool linkValid(Addr addr) const;

    /** Add a resident line to the transactional read set. Used for the
     *  elided lock itself: a real write to the lock by another thread
     *  must abort every elided execution (paper Section 2.2). */
    void markTransactionalRead(Addr addr);

    /** Add a resident writable line to the transactional write set
     *  (speculative atomic read-modify-writes). */
    void markTransactionalWrite(Addr addr);
    /** @} */

    /** @{ Snooper interface (called by the interconnect). */
    CpuId id() const override { return id_; }
    bool upgradeValid(Addr line) const override;
    bool holdsLineState(Addr line) const override;
    SnoopReply snoop(const BusRequest &req) override;
    void ownRequestOrdered(const BusRequest &req, bool any_owner,
                           bool any_sharer) override;
    void dataResponse(const DataMsg &msg) override;
    void marker(const MarkerMsg &msg) override;
    void probe(const ProbeMsg &msg) override;
    /** @} */

    /** Test/debug introspection. */
    CohState lineState(Addr addr) const;
    /** Human-readable dump of MSHRs and the deferred queue. */
    std::string debugState() const;
    size_t deferredCount() const { return deferred_.size(); }
    /** Total deferral backlog: the deferred queue plus chain waiters
     *  marked deferred in MSHRs (metrics counter-track sampling). */
    std::uint64_t deferredDepth() const;
    std::uint64_t peekWord(Addr addr) const;

  private:
    struct Waiter
    {
        CpuId cpu = invalidCpu;
        ReqType type = ReqType::GetS;
        Timestamp ts;
        bool deferred = false; ///< hold until commit (TLR win)
    };

    struct Mshr
    {
        ReqType type = ReqType::GetS;
        Addr line = 0;
        bool ordered = false;
        bool spec = false;
        bool invalidateOnArrival = false; ///< GetS overtaken by a write
        bool downgradeToShared = false;   ///< concurrent reader exists
        bool loseOnArrival = false;       ///< forward data, self aborted
        std::optional<CacheOp> op;        ///< op that triggered the miss
        std::optional<CacheOp> queuedOp;  ///< op re-issued post-restart
        std::vector<Waiter> waiters;
        bool ownershipPassed = false;     ///< a GetX waiter was recorded
        CpuId markerFrom = invalidCpu;    ///< upstream chain neighbor
        std::optional<Timestamp> pendingProbe;
        bool isExclusive() const
        {
            return type == ReqType::GetX || type == ReqType::Upgrade;
        }
    };

    struct DeferredReq
    {
        Addr line = 0;
        CpuId cpu = invalidCpu;
        ReqType type = ReqType::GetS;
        Timestamp ts;
    };

    /** @{ internal helpers */
    CacheLine *findLine(Addr line_addr);
    const CacheLine *findLineConst(Addr line_addr) const;
    CacheLine *installLine(Addr line_addr, const LineData &data,
                           CohState state);
    bool evictLine(CacheLine &line);
    void respond(const CacheOp &op, std::uint64_t value);
    void finishOp(Mshr &mshr, CacheLine *line, const LineData &data);
    void missIssue(const CacheOp &op, ReqType type);
    bool yieldBeforeWaiting(Addr line_addr, bool spec);
    bool hasEarlierContender(Addr *line_out = nullptr) const;
    bool detectTwoCycle(Addr *line_out = nullptr) const;
    void forwardContenderProbes();
    void maybeArmYield();
    void yieldFire(std::uint64_t gen);
    void handleChainSnoop(Mshr &mshr, const BusRequest &req,
                          SnoopReply &reply);
    void handleOwnerSnoop(CacheLine &line, const BusRequest &req,
                          SnoopReply &reply);
    void serviceWaiter(const Waiter &w, Addr line_addr,
                       ServiceCause cause = ServiceCause::Chain);
    void serviceDeferredQueue(bool at_commit);
    bool deferredExclusive(Addr line_addr) const;
    void clearLinkIf(Addr line_addr);
    bool conflicts(const BusRequest &req, bool read_set,
                   bool write_set) const;
    bool winsConflict(const Timestamp &incoming) const;
    /** @} */

    /** @{ Fabric access: via port_ when set, direct otherwise. */
    void netSubmit(const BusRequest &req);
    void netSendData(CpuId to, const DataMsg &msg);
    void netSendMarker(CpuId to, const MarkerMsg &msg);
    void netSendProbe(CpuId to, const ProbeMsg &msg);
    void memWriteBack(Addr line_addr, const LineData &data);
    /** @} */

    EventQueue &eq_;
    StatSet &stats_;
    const CpuId id_;
    L1Params params_;
    Interconnect &net_;
    MemoryController &mem_;
    SpecHooks &hooks_;
    TraceSink *trace_ = nullptr;
    FabricPort *port_ = nullptr;

    CacheArray array_;
    VictimCache victim_;
    std::map<Addr, Mshr> mshrs_;
    std::deque<DeferredReq> deferred_;

    /** Earliest probe timestamp seen per held line. A probe that is
     *  relax-ignored (we were single-block at the time) must not lose
     *  its priority information: if this transaction later waits for
     *  anything, the remembered contender wins (paper Section 3.2:
     *  "the timestamp order must be enforced" once another block is
     *  accessed). Cleared when the deferred queue drains. */
    std::map<Addr, Timestamp> probeHints_;

    bool linkValid_ = false;
    Addr linkLine_ = 0;
    Addr linkAddr_ = 0;

    /** Deadlock-recovery timer state (see L1Params::yieldTimeout). */
    bool yieldArmed_ = false;
    std::uint64_t yieldGen_ = 0;

    /** @{ stats */
    std::uint64_t &hits_;
    std::uint64_t &misses_;
    std::uint64_t &upgrades_;
    std::uint64_t &defers_;
    std::uint64_t &relaxedDefers_;
    std::uint64_t &probesSent_;
    std::uint64_t &writeBacksInit_;
    std::uint64_t &victimInserts_;
    /** @} */
};

} // namespace tlr

#endif // TLR_COHERENCE_L1_CONTROLLER_HH

#include "coherence/memory_controller.hh"

#include "sim/logging.hh"
#include "sim/parallel_kernel.hh"

namespace tlr
{

MemoryController::MemoryController(EventQueue &eq, StatSet &stats,
                                   Interconnect &net, BackingStore &store,
                                   MemParams params)
    : eq_(eq), net_(net), store_(store), params_(params),
      supplies_(stats.counter("mem", "supplies")),
      writeBacks_(stats.counter("mem", "writeBacks")),
      l2Hits_(stats.counter("mem", "l2Hits")),
      l2Misses_(stats.counter("mem", "l2Misses"))
{
}

void
MemoryController::supply(const BusRequest &req, bool any_sharer)
{
    ++supplies_;
    bool l2Hit = store_.accessL2(req.line);
    if (l2Hit)
        ++l2Hits_;
    else
        ++l2Misses_;
    Tick latency = params_.l2Latency + (l2Hit ? 0 : params_.memLatency);

    DataMsg msg;
    msg.line = req.line;
    msg.data = store_.readLine(req.line);
    msg.from = invalidCpu;
    if (req.type == ReqType::GetX)
        msg.grant = Grant::ModifiedData;
    else
        msg.grant = any_sharer ? Grant::SharedData : Grant::ExclusiveData;

    CpuId to = req.requester;
    eq_.scheduleIn(latency,
                   [this, to, msg] {
                       if (port_)
                           port_->sendData(to, msg);
                       else
                           net_.sendData(to, msg);
                   },
                   EventPrio::Default);
}

void
MemoryController::writeBack(Addr line_addr, const LineData &data)
{
    ++writeBacks_;
    store_.writeLine(line_addr, data);
}

} // namespace tlr

/**
 * @file
 * Coherence protocol message definitions.
 *
 * The address network carries BusRequests (ordered, broadcast). The
 * data network carries DataMsg (point-to-point) plus the two TLR
 * control messages: markers (tell a pending owner who its upstream
 * neighbor is) and probes (propagate a high-priority conflict up a
 * coherence ownership chain) — paper Section 3.1.1.
 */

#ifndef TLR_COHERENCE_MESSAGES_HH
#define TLR_COHERENCE_MESSAGES_HH

#include <cstdint>

#include "core/timestamp.hh"
#include "mem/line.hh"
#include "sim/types.hh"

namespace tlr
{

enum class ReqType : std::uint8_t
{
    GetS,      ///< read, want at least Shared
    GetX,      ///< read-for-ownership (rd_X), want Modified
    Upgrade,   ///< Shared -> Modified, no data needed
    WriteBack, ///< eviction of dirty line to memory
};

const char *reqTypeName(ReqType t);

/** @{ Modeled wire sizes, used by the metrics layer for interconnect
 *  byte accounting. Address-network slots carry address + command +
 *  ids (+ timestamp under TLR); data replies add a full cache line;
 *  probes add the contender timestamp. Rounded to whole flits. */
constexpr unsigned addrMsgBytes = 16;
constexpr unsigned dataMsgBytes = 16 + lineBytes;
constexpr unsigned markerMsgBytes = 16;
constexpr unsigned probeMsgBytes = 24;
/** @} */

/** An address-network transaction. */
struct BusRequest
{
    ReqType type = ReqType::GetS;
    Addr line = 0;                ///< line-aligned address
    CpuId requester = invalidCpu;
    Timestamp ts;                 ///< valid iff issued inside a transaction
    std::uint64_t sn = 0;         ///< global serial number (trace/debug)
};

/** Coherence permission granted along with a data response. */
enum class Grant : std::uint8_t
{
    SharedData,    ///< install Shared
    ExclusiveData, ///< install Exclusive (clean, no other sharers)
    ModifiedData,  ///< install Modified (ownership transferred)
    UpgradeAck,    ///< no data: Shared copy becomes Modified
    DontInstall,   ///< use data for the pending op but do not cache
};

/** Point-to-point data network message. */
struct DataMsg
{
    Addr line = 0;
    LineData data{};
    Grant grant = Grant::SharedData;
    CpuId from = invalidCpu; ///< invalidCpu == memory controller
};

/** TLR marker: "I hold (or will hold) the data you are waiting for". */
struct MarkerMsg
{
    Addr line = 0;
    CpuId from = invalidCpu;
};

/** TLR probe: an earlier-timestamp request exists downstream. */
struct ProbeMsg
{
    Addr line = 0;
    Timestamp ts;    ///< timestamp of the high-priority contender
    CpuId from = invalidCpu;
};

} // namespace tlr

#endif // TLR_COHERENCE_MESSAGES_HH

/**
 * @file
 * Directory-based interconnect (paper Section 3: "the protocol may be
 * broadcast snooping or directory-based").
 *
 * A home directory tracks, per line, the owning cache and the sharer
 * set, and forwards each ordered request only to the controllers
 * involved: the owner (which may supply, defer, or chain-record the
 * request — all TLR machinery unchanged) and, for writes, the sharers
 * (invalidations). The directory is the per-line ordering point;
 * unlike the broadcast bus there is no global order across lines,
 * which exercises TLR's claim of protocol independence.
 *
 * Protocol-owner tracking matches the split-transaction model in
 * L1Controller: the requester of an ordered GetX becomes the
 * directory owner immediately, even though data may arrive much
 * later through a deferral chain.
 */

#ifndef TLR_COHERENCE_DIRECTORY_HH
#define TLR_COHERENCE_DIRECTORY_HH

#include <deque>
#include <set>
#include <unordered_map>

#include "coherence/interconnect.hh"

namespace tlr
{

class DirectoryInterconnect : public Interconnect
{
  public:
    DirectoryInterconnect(EventQueue &eq, StatSet &stats,
                          InterconnectParams params);

    void submit(const BusRequest &req) override;
    void submitArrive(const BusRequest &req, Tick submit_tick) override;
    /** A submit's first effect is its home-node arrival event,
     *  snoopLatency ticks later. */
    Tick orderingNotice() const override
    {
        return params_.snoopLatency > 0 ? params_.snoopLatency : 1;
    }
    /** The directory pump processes (and posts) at its own tick. */
    Tick globalPostLag() const override { return 0; }

    /** Test introspection. */
    CpuId dirOwner(Addr line) const;
    size_t dirSharers(Addr line) const;

    /** Bank (address-interleaved by line) holding @p line's entry. */
    int bankOf(Addr line) const;
    /** CPU whose partition owns bank @p bank's state. */
    CpuId bankOwnerCpu(int bank) const;

  private:
    struct Entry
    {
        CpuId owner = invalidCpu;   ///< L1 owner; invalid => memory
        std::set<CpuId> sharers;    ///< may be stale (silent evictions)
    };

    void pump();
    void process(const BusRequest &req);
    /** Bank-local WriteBack application (banked mode): ordered and
     *  counted in pump(); the entry update itself runs inside the
     *  bank owner's partition via ParallelRouter::postPartition. */
    void applyWriteBack(const BusRequest &req, Tick order_tick);
    /** Trace a directory-forwarded snoop/invalidation toward @p dest
     *  (metrics: per-link accounting of directory fan-out traffic). */
    void traceFwd(const BusRequest &req, CpuId dest, bool inval);

    Entry &entryFor(Addr line);

    /** Per-bank entry maps; size params_.dirBanks. One bank keeps the
     *  old single-map behavior byte for byte; with more, each bank's
     *  map is touched only by its owner partition's events and by
     *  serialized contexts (workers parked), so sharded processing
     *  needs no locks. */
    std::vector<std::unordered_map<Addr, Entry>> banks_;
    std::deque<BusRequest> queue_;
    bool pumpScheduled_ = false;

    std::uint64_t &fwdSnoops_;
    std::uint64_t &invalidations_;
    std::uint64_t &bankedWriteBacks_;
};

} // namespace tlr

#endif // TLR_COHERENCE_DIRECTORY_HH

#include "coherence/directory.hh"

#include "coherence/memory_controller.hh"
#include "sim/logging.hh"

namespace tlr
{

DirectoryInterconnect::DirectoryInterconnect(EventQueue &eq,
                                             StatSet &stats,
                                             InterconnectParams params)
    : Interconnect(eq, stats, params),
      fwdSnoops_(stats.counter("dir", "forwardedSnoops")),
      invalidations_(stats.counter("dir", "invalidations")),
      bankedWriteBacks_(stats.counter("dir", "bankedWriteBacks"))
{
    banks_.resize(static_cast<std::size_t>(params_.dirBanks));
}

int
DirectoryInterconnect::bankOf(Addr line) const
{
    return static_cast<int>((lineAlign(line) >> lineShift) %
                            static_cast<Addr>(banks_.size()));
}

CpuId
DirectoryInterconnect::bankOwnerCpu(int bank) const
{
    return static_cast<CpuId>(static_cast<std::size_t>(bank) %
                              snoopers_.size());
}

DirectoryInterconnect::Entry &
DirectoryInterconnect::entryFor(Addr line)
{
    return banks_[static_cast<std::size_t>(bankOf(line))][line];
}

void
DirectoryInterconnect::submit(const BusRequest &req)
{
    submitArrive(req, eq_.now());
}

void
DirectoryInterconnect::submitArrive(const BusRequest &req, Tick submit_tick)
{
    BusRequest r = req;
    r.sn = nextSn_++;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(submit_tick, TraceComp::Dir, TraceEvent::CohSubmit,
                     r.requester, r.line,
                     static_cast<std::uint64_t>(r.type), r.ts.clock,
                     packTsMeta(r.ts));
    // Request travels to the home node, then queues for the directory
    // pipeline (one ordered transaction per addrOccupancy cycles).
    eq_.schedule(submit_tick + params_.snoopLatency,
                 [this, r] {
                     queue_.push_back(r);
                     if (!pumpScheduled_) {
                         pumpScheduled_ = true;
                         eq_.scheduleIn(0, [this] { pump(); },
                                        EventPrio::Snoop);
                     }
                 },
                 EventPrio::BusArbitration);
}

void
DirectoryInterconnect::traceFwd(const BusRequest &req, CpuId dest,
                                bool inval)
{
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(curTick(), TraceComp::Dir, TraceEvent::CohFwd,
                     req.requester, req.line,
                     static_cast<std::uint64_t>(dest),
                     static_cast<std::uint64_t>(req.type),
                     inval ? 1 : 0, req.sn);
}

void
DirectoryInterconnect::pump()
{
    if (queue_.empty()) {
        pumpScheduled_ = false;
        return;
    }
    BusRequest req = queue_.front();
    queue_.pop_front();
    ++txnCount_;
    if (params_.dirBanks > 1 && req.type == ReqType::WriteBack) {
        // Bank-local work: a WriteBack touches exactly one bank entry
        // and snoops nobody, so it needs no serialized global. It is
        // ordered and counted here, at the pump (stats shards must
        // not be touched from partition context); the entry update
        // runs inside the bank owner's partition — as an ordinary
        // event under the kernel, as a same-tick DataResponse event
        // classically — so banked timing is mode-independent.
        ++bankedWriteBacks_;
        const Tick order_tick = eq_.now();
        const BusRequest r = req;
        auto apply = [this, r, order_tick] {
            applyWriteBack(r, order_tick);
        };
        if (router_)
            router_->postPartition(
                static_cast<int>(bankOwnerCpu(bankOf(req.line))),
                order_tick, std::move(apply));
        else
            eq_.schedule(order_tick, std::move(apply),
                         EventPrio::DataResponse);
    } else if (router_) {
        router_->postGlobal(eq_.now(), [this, req] { process(req); });
    } else {
        process(req);
    }
    eq_.scheduleIn(params_.addrOccupancy, [this] { pump(); },
                   EventPrio::Snoop);
}

void
DirectoryInterconnect::applyWriteBack(const BusRequest &req,
                                      Tick order_tick)
{
    // Partition-context twin of process()'s WriteBack arm. The trace
    // record goes through the executing partition's own sink (the
    // shared sink belongs to serialized contexts); the stitcher sorts
    // it into tick order with everything else.
    TraceSink *sink =
        router_ ?
            router_->partitionSink(
                static_cast<int>(bankOwnerCpu(bankOf(req.line)))) :
            trace_;
    if (TLR_TRACE_ARMED(sink))
        sink->emit(order_tick, TraceComp::Dir, TraceEvent::CohOrder,
                   req.requester, req.line,
                   static_cast<std::uint64_t>(req.type), req.sn,
                   req.ts.clock, packTsMeta(req.ts));
    Entry &e = entryFor(req.line);
    if (e.owner == req.requester)
        e.owner = invalidCpu;
    e.sharers.erase(req.requester);
}

void
DirectoryInterconnect::process(const BusRequest &req)
{
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(curTick(), TraceComp::Dir, TraceEvent::CohOrder,
                     req.requester, req.line,
                     static_cast<std::uint64_t>(req.type), req.sn,
                     req.ts.clock, packTsMeta(req.ts));
    Entry &e = entryFor(req.line);
    auto snooper = [this](CpuId c) {
        return snoopers_.at(static_cast<size_t>(c));
    };

    switch (req.type) {
      case ReqType::WriteBack:
        // Data became architecturally visible at eviction time; the
        // directory merely stops forwarding requests to the ex-owner.
        if (e.owner == req.requester)
            e.owner = invalidCpu;
        e.sharers.erase(req.requester);
        return;

      case ReqType::Upgrade: {
        if (!snooper(req.requester)->upgradeValid(req.line)) {
            // Stale: the requester reissues as GetX (no side effects).
            ++serialOps_;
            snooper(req.requester)->ownRequestOrdered(req, false, false);
            return;
        }
        // Invalidate every other copy, including an Owned supplier.
        for (CpuId c : e.sharers) {
            if (c != req.requester) {
                ++invalidations_;
                ++serialSnoops_;
                ++serialOps_;
                traceFwd(req, c, true);
                snooper(c)->snoop(req);
            }
        }
        if (e.owner != invalidCpu && e.owner != req.requester &&
            !e.sharers.count(e.owner)) {
            ++invalidations_;
            ++serialSnoops_;
            ++serialOps_;
            traceFwd(req, e.owner, true);
            snooper(e.owner)->snoop(req);
        }
        e.owner = req.requester;
        e.sharers = {req.requester};
        ++serialOps_;
        snooper(req.requester)->ownRequestOrdered(req, false, false);
        return;
      }

      case ReqType::GetS: {
        if (e.owner == req.requester)
            e.owner = invalidCpu; // it clearly lost its copy
        bool anyOwner = false;
        if (e.owner != invalidCpu) {
            ++fwdSnoops_;
            ++serialSnoops_;
            ++serialOps_;
            traceFwd(req, e.owner, false);
            SnoopReply r = snooper(e.owner)->snoop(req);
            anyOwner = r.owner;
            if (!anyOwner)
                e.owner = invalidCpu; // silently evicted / written back
        }
        bool anySharer = anyOwner;
        for (CpuId c : e.sharers)
            if (c != req.requester)
                anySharer = true;
        e.sharers.insert(req.requester);
        ++serialOps_;
        snooper(req.requester)->ownRequestOrdered(req, anyOwner,
                                                  anySharer);
        if (!anyOwner) {
            ++serialOps_;
            if (!anySharer) {
                // The grant will be Exclusive: E is an owner state, so
                // the directory must track the requester as owner (it
                // can silently write, and later readers must be able
                // to find it).
                e.owner = req.requester;
            }
            mem_->supply(req, anySharer);
        }
        return;
      }

      case ReqType::GetX: {
        if (e.owner == req.requester)
            e.owner = invalidCpu;
        bool anyOwner = false;
        CpuId oldOwner = e.owner;
        if (oldOwner != invalidCpu) {
            ++fwdSnoops_;
            ++serialSnoops_;
            ++serialOps_;
            traceFwd(req, oldOwner, false);
            SnoopReply r = snooper(oldOwner)->snoop(req);
            anyOwner = r.owner;
        }
        for (CpuId c : e.sharers) {
            if (c != req.requester && c != oldOwner) {
                ++invalidations_;
                ++serialSnoops_;
                ++serialOps_;
                traceFwd(req, c, true);
                snooper(c)->snoop(req);
            }
        }
        // The requester is the protocol owner from this point on,
        // even though the data may flow through a deferral chain.
        e.owner = req.requester;
        e.sharers = {req.requester};
        ++serialOps_;
        snooper(req.requester)->ownRequestOrdered(req, anyOwner, false);
        if (!anyOwner) {
            ++serialOps_;
            mem_->supply(req, false);
        }
        return;
      }
    }
}

CpuId
DirectoryInterconnect::dirOwner(Addr line) const
{
    const Addr la = lineAlign(line);
    const auto &bank = banks_[static_cast<std::size_t>(bankOf(la))];
    auto it = bank.find(la);
    return it == bank.end() ? invalidCpu : it->second.owner;
}

size_t
DirectoryInterconnect::dirSharers(Addr line) const
{
    const Addr la = lineAlign(line);
    const auto &bank = banks_[static_cast<std::size_t>(bankOf(la))];
    auto it = bank.find(la);
    return it == bank.end() ? 0 : it->second.sharers.size();
}

} // namespace tlr

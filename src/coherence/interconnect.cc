#include "coherence/interconnect.hh"

#include "coherence/memory_controller.hh"
#include "sim/logging.hh"

namespace tlr
{

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::GetS: return "GetS";
      case ReqType::GetX: return "GetX";
      case ReqType::Upgrade: return "Upg";
      case ReqType::WriteBack: return "WB";
    }
    return "?";
}

Interconnect::Interconnect(EventQueue &eq, StatSet &stats,
                           InterconnectParams params)
    : eq_(eq), stats_(stats), params_(params),
      txnCount_(stats.counter("bus", "transactions")),
      dataMsgs_(stats.counter("net", "dataMsgs")),
      markerMsgs_(stats.counter("net", "markerMsgs")),
      probeMsgs_(stats.counter("net", "probeMsgs")),
      serialOps_(stats.counter("pkernel", "serialOps")),
      serialSnoops_(stats.counter("pkernel", "serialSnoops")),
      filteredSnoops_(stats.counter("pkernel", "filteredSnoops"))
{
    if (params_.dirBanks < 1)
        fatal("interconnect needs at least one directory bank");
}

void
Interconnect::addSnooper(Snooper *s)
{
    if (s->id() != static_cast<CpuId>(snoopers_.size()))
        fatal("snoopers must be added in CpuId order");
    snoopers_.push_back(s);
}

void
Interconnect::sendData(CpuId to, const DataMsg &msg)
{
    ++dataMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohData,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to),
                     static_cast<std::uint64_t>(msg.grant));
    eq_.scheduleIn(params_.dataLatency,
                   [this, to, msg] {
                       snoopers_.at(static_cast<size_t>(to))
                           ->dataResponse(msg);
                   },
                   EventPrio::DataResponse);
}

void
Interconnect::sendMarker(CpuId to, const MarkerMsg &msg)
{
    ++markerMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohMarker,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to));
    eq_.scheduleIn(params_.dataLatency,
                   [this, to, msg] {
                       snoopers_.at(static_cast<size_t>(to))->marker(msg);
                   },
                   EventPrio::DataResponse);
}

void
Interconnect::sendProbe(CpuId to, const ProbeMsg &msg)
{
    ++probeMsgs_;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::Net, TraceEvent::CohProbe,
                     msg.from, msg.line,
                     static_cast<std::uint64_t>(to), msg.ts.clock,
                     packTsMeta(msg.ts));
    eq_.scheduleIn(params_.dataLatency,
                   [this, to, msg] {
                       snoopers_.at(static_cast<size_t>(to))->probe(msg);
                   },
                   EventPrio::DataResponse);
}

//
// ---- BroadcastInterconnect ----------------------------------------------
//

void
BroadcastInterconnect::addSnooper(Snooper *s)
{
    Interconnect::addSnooper(s);
    queues_.emplace_back();
}

void
BroadcastInterconnect::submit(const BusRequest &req)
{
    submitArrive(req, eq_.now());
}

void
BroadcastInterconnect::submitArrive(const BusRequest &req, Tick submit_tick)
{
    BusRequest r = req;
    r.sn = nextSn_++;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(submit_tick, TraceComp::Bus, TraceEvent::CohSubmit,
                     r.requester, r.line,
                     static_cast<std::uint64_t>(r.type), r.ts.clock,
                     packTsMeta(r.ts));
    queues_.at(static_cast<size_t>(r.requester)).push_back(r);
    if (!arbScheduled_) {
        arbScheduled_ = true;
        eq_.schedule(submit_tick + 1, [this] { arbitrate(); },
                     EventPrio::BusArbitration);
    }
}

void
BroadcastInterconnect::arbitrate()
{
    // Round-robin grant of one address transaction.
    size_t n = queues_.size();
    for (size_t i = 0; i < n; ++i) {
        size_t idx = (rrNext_ + i) % n;
        if (!queues_[idx].empty()) {
            BusRequest req = queues_[idx].front();
            queues_[idx].pop_front();
            rrNext_ = idx + 1;
            ++txnCount_;
            if (router_)
                router_->postGlobal(eq_.now() + params_.snoopLatency,
                                    [this, req] { deliver(req); });
            else
                eq_.scheduleIn(params_.snoopLatency,
                               [this, req] { deliver(req); },
                               EventPrio::Snoop);
            break;
        }
    }
    for (const auto &q : queues_) {
        if (!q.empty()) {
            eq_.scheduleIn(params_.addrOccupancy, [this] { arbitrate(); },
                           EventPrio::BusArbitration);
            return;
        }
    }
    arbScheduled_ = false;
}

void
BroadcastInterconnect::deliver(BusRequest req)
{
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(curTick(), TraceComp::Bus, TraceEvent::CohOrder,
                     req.requester, req.line,
                     static_cast<std::uint64_t>(req.type), req.sn,
                     req.ts.clock, packTsMeta(req.ts));

    if (req.type == ReqType::WriteBack) {
        // Data already absorbed functionally at eviction time; the bus
        // transaction accounts for address-network occupancy only.
        return;
    }

    if (req.type == ReqType::Upgrade &&
        !snoopers_.at(static_cast<size_t>(req.requester))
             ->upgradeValid(req.line)) {
        // Stale upgrade: the requester lost its copy while the request
        // was in flight. It must not invalidate anyone; the requester
        // converts it to a GetX at its order point.
        ++serialOps_;
        snoopers_.at(static_cast<size_t>(req.requester))
            ->ownRequestOrdered(req, false, false);
        return;
    }

    bool anyOwner = false;
    bool anySharer = false;
    for (Snooper *s : snoopers_) {
        if (s->id() == req.requester)
            continue;
        // Snoop filter: a controller holding no state for the line —
        // no valid copy, no victim copy, no MSHR — answers with a
        // strict no-op, so the call (the dominant serialized cost of
        // a broadcast delivery) can be elided outright.
        if (params_.snoopFilter && !s->holdsLineState(req.line)) {
            ++filteredSnoops_;
            continue;
        }
        ++serialSnoops_;
        ++serialOps_;
        SnoopReply r = s->snoop(req);
        anyOwner |= r.owner;
        anySharer |= r.sharer;
    }
    ++serialOps_;
    snoopers_.at(static_cast<size_t>(req.requester))
        ->ownRequestOrdered(req, anyOwner, anySharer);
    if (!anyOwner &&
        (req.type == ReqType::GetS || req.type == ReqType::GetX)) {
        ++serialOps_;
        mem_->supply(req, anySharer);
    }
}

} // namespace tlr

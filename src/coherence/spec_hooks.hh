/**
 * @file
 * Interface between the L1 coherence controller and the SLE/TLR
 * speculation engine.
 *
 * The paper places TLR's concurrency-control decisions at the
 * coherence controller while the transaction state machine (elision
 * stack, checkpoint, write buffer, timestamp management) lives next
 * to the processor. This interface is that boundary: the controller
 * asks the engine for policy (mode, timestamp, conflict outcome) and
 * reports completions; the engine drives the controller through the
 * L1Controller public API.
 */

#ifndef TLR_COHERENCE_SPEC_HOOKS_HH
#define TLR_COHERENCE_SPEC_HOOKS_HH

#include <cstdint>

#include "core/timestamp.hh"
#include "sim/types.hh"

namespace tlr
{

/** Why a transaction had to restart or fall back. */
enum class AbortReason
{
    ConflictLost,        ///< lost a timestamp conflict
    SharedInvalidation,  ///< upgrade-type invalidation of a Shared block
    ProbeLost,           ///< probe carried an earlier timestamp
    PendingInvalidated,  ///< transactional read invalidated before data
    ResourceVictimFull,  ///< victim cache could not hold an eviction
    ResourceWriteBuffer, ///< too many unique lines written
    ResourceStructural,  ///< no allocatable way in the cache set
    Unbufferable,        ///< I/O-like operation inside the region
    Preempted,           ///< thread de-scheduled by the OS (paper §4)
    QuantumExpired,      ///< region exceeded the max duration (paper
                         ///< §3.3: a critical section must fit in one
                         ///< scheduling quantum)
};

/** Number of AbortReason values (for per-reason counter arrays). */
constexpr int numAbortReasons =
    static_cast<int>(AbortReason::QuantumExpired) + 1;

const char *abortReasonName(AbortReason r);

/** Operations the speculation engine issues to the L1 controller. */
struct CacheOp
{
    enum class Kind
    {
        LoadShared,      ///< read, Shared suffices
        LoadExclusive,   ///< read issued as rd_X (RMW predictor hit)
        Store,           ///< non-speculative store
        EnsureExclusive, ///< speculative store: permissions only
        StoreCond,       ///< non-speculative store-conditional
        AtomicSwap,      ///< non-speculative atomic swap
        AtomicCas,       ///< non-speculative atomic compare-and-swap
        AtomicAdd,       ///< non-speculative atomic fetch-and-add
    };

    Kind kind = Kind::LoadShared;
    Addr addr = 0;
    std::uint64_t data = 0;
    std::uint64_t expected = 0; ///< AtomicCas comparison value
    bool spec = false;  ///< issued from inside a transaction
    bool isLl = false;  ///< set the link register on completion
    int pc = 0;
    std::uint64_t token = 0; ///< engine-issued id for stale filtering
};

class SpecHooks
{
  public:
    virtual ~SpecHooks() = default;

    /** @{ Policy queries made by the controller on snoops. */
    virtual bool specActive() const = 0;
    virtual bool tlrActive() const = 0;
    virtual Timestamp currentTs() const = 0;
    virtual bool strictTimestamps() const = 0;
    virtual bool deferUntimestamped() const = 0;
    /** @} */

    /** Record an incoming conflicting timestamp (clock update rule). */
    virtual void noteConflictTs(const Timestamp &ts) = 0;

    /**
     * The transaction lost a conflict (or hit an un-deferrable one).
     * The engine must restore the core, discard the write buffer and
     * call L1Controller::abortTransaction() before returning, so the
     * controller can service the conflicting request afterwards.
     */
    virtual void conflictAbort(Addr line_addr, AbortReason reason) = 0;

    /**
     * A resource constraint makes speculation impossible (paper
     * Fig. 3: "if insufficient resources, acquire lock"). Semantics
     * as conflictAbort, plus the engine disables elision for the
     * re-executed acquire so the lock is really taken.
     */
    virtual void resourceAbort(Addr line_addr, AbortReason reason) = 0;

    /** A speculative miss completed (commit-wait bookkeeping). */
    virtual void specMshrDrained(Addr line_addr) = 0;

    /** A cache operation previously passed to access() finished.
     *  @p value is the load result / SC success flag. */
    virtual void cacheOpDone(const CacheOp &op, std::uint64_t value) = 0;
};

} // namespace tlr

#endif // TLR_COHERENCE_SPEC_HOOKS_HH
